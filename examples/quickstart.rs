//! Quickstart: compile one function for two architectures, decompile both
//! binaries, and measure the Asteria similarity between the recovered
//! ASTs.
//!
//! Run with: `cargo run --release -p asteria --example quickstart`

use asteria::compiler::{compile_program, Arch};
use asteria::core::{extract_function, AsteriaModel, ModelConfig, DEFAULT_INLINE_BETA};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = r#"
        int checksum(int seed, int rounds) {
            int h = seed;
            for (int i = 0; i < rounds % 16; i++) {
                h = h * 31 + ext_read(i);
                if (h > 1000000) { h = h % 65537; }
            }
            return h;
        }
    "#;

    println!("source function:\n{source}");

    // Cross-compile for two architectures (the paper's setting).
    let program = asteria::lang::parse(source)?;
    let arm = compile_program(&program, Arch::Arm)?;
    let x86 = compile_program(&program, Arch::X86)?;
    println!("arm binary: {} bytes of code", arm.code_size());
    println!("x86 binary: {} bytes of code", x86.code_size());

    // Decompile and extract digitalized, binarized ASTs (Fig. 3 steps 1–2).
    let fa = extract_function(&arm, 0, DEFAULT_INLINE_BETA)?;
    let fx = extract_function(&x86, 0, DEFAULT_INLINE_BETA)?;
    println!(
        "decompiled ASTs: arm {} nodes / x86 {} nodes (callees: {} / {})",
        fa.ast_size, fx.ast_size, fa.callee_count, fx.callee_count
    );

    // Encode and compare with an (untrained) Asteria model. A fresh model
    // already produces a similarity score; training sharpens it — see the
    // train_model example.
    let model = AsteriaModel::new(ModelConfig::default());
    let similarity = model.similarity(&fa.tree, &fx.tree);
    println!("untrained model similarity M(T_arm, T_x86) = {similarity:.4}");

    // Calibrated final score (eq. 10).
    let final_score =
        asteria::core::calibrated_similarity(similarity as f64, fa.callee_count, fx.callee_count);
    println!("calibrated similarity F(F1, F2) = {final_score:.4}");
    Ok(())
}
