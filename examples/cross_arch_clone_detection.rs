//! Cross-architecture clone detection: given a library of named functions
//! compiled for x86, find their anonymous counterparts inside a *stripped*
//! ARM binary — the code-reuse scenario from the paper's introduction.
//!
//! Run with: `cargo run --release -p asteria --example cross_arch_clone_detection`

use asteria::compiler::{compile_program, Arch};
use asteria::core::{
    calibrated_similarity, extract_binary, train, AsteriaModel, ModelConfig, TrainOptions,
};
use asteria::datasets::{build_corpus, build_pairs, to_train_pairs, CorpusConfig, PairConfig};

const LIBRARY_SRC: &str = r#"
    int crc_step(int crc, int byte) {
        int x = crc ^ byte;
        for (int i = 0; i < 8; i++) {
            if (x & 1) { x = (x >> 1) ^ 40961; } else { x = x >> 1; }
        }
        return x;
    }
    int sat_add(int a, int b) {
        int s = a + b;
        if (s > 32767) { return 32767; }
        if (s < 0 - 32768) { return 0 - 32768; }
        return s;
    }
    int find_max(int n) {
        int best = 0 - 1;
        for (int i = 0; i < n % 32; i++) {
            int v = ext_read(i);
            if (v > best) { best = v; }
        }
        return best;
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Train a small model first (clone detection without training works,
    // but a trained encoder separates much more sharply).
    eprintln!("training a small model…");
    let corpus = build_corpus(&CorpusConfig {
        packages: 6,
        functions_per_package: 6,
        seed: 7,
        ..Default::default()
    });
    let pairs = build_pairs(
        &corpus,
        &PairConfig {
            positives_per_combination: 30,
            negatives_per_combination: 30,
            seed: 3,
        },
    );
    let train_pairs = to_train_pairs(&corpus, &pairs);
    let mut model = AsteriaModel::new(ModelConfig::default());
    train(
        &mut model,
        &train_pairs,
        &TrainOptions {
            epochs: 6,
            seed: 7,
            verbose: false,
        },
        None,
    );

    // The "known" side: an x86 build with symbols.
    let program = asteria::lang::parse(LIBRARY_SRC)?;
    let x86 = compile_program(&program, Arch::X86)?;
    let known = extract_binary(&x86, asteria::core::DEFAULT_INLINE_BETA)?;

    // The "unknown" side: a stripped ARM build of the same library.
    let mut arm = compile_program(&program, Arch::Arm)?;
    arm.strip();
    let unknown = extract_binary(&arm, asteria::core::DEFAULT_INLINE_BETA)?;
    println!(
        "searching {} stripped ARM functions for {} known x86 functions\n",
        unknown.len(),
        known.len()
    );

    let mut correct = 0;
    for k in &known {
        let ek = model.encode(&k.tree);
        let mut best: Option<(f64, &str)> = None;
        for u in &unknown {
            let eu = model.encode(&u.tree);
            let m = model.similarity_from_encodings(&ek, &eu) as f64;
            let score = calibrated_similarity(m, k.callee_count, u.callee_count);
            if best.is_none_or(|(s, _)| score > s) {
                best = Some((score, &u.name));
            }
        }
        let (score, name) = best.expect("nonempty");
        println!("{:<12} → {:<12} (score {score:.4})", k.name, name);
        // Ground truth: symbols were assigned in source order, so the i-th
        // stripped function corresponds to the i-th known one.
        let truth = &unknown[known.iter().position(|x| x.name == k.name).unwrap()].name;
        if name == truth {
            correct += 1;
        }
    }
    println!("\nmatched {correct}/{} functions correctly", known.len());
    Ok(())
}
