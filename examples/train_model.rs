//! Train an Asteria model on a small synthetic cross-architecture corpus
//! and report held-out AUC per epoch — the §IV-A/B protocol end to end.
//!
//! Run with: `cargo run --release -p asteria --example train_model`

use asteria::core::{train, AsteriaModel, ModelConfig, TrainOptions};
use asteria::datasets::{build_corpus, build_pairs, to_train_pairs, CorpusConfig, PairConfig};
use asteria::eval::{auc, ScoredPair};

fn main() {
    // A small corpus: 6 packages × 6 functions × 4 architectures.
    let corpus = build_corpus(&CorpusConfig {
        packages: 6,
        functions_per_package: 6,
        seed: 2024,
        ..Default::default()
    });
    println!(
        "corpus: {} binaries, {} function instances ({} filtered as too small)",
        corpus.binaries.len(),
        corpus.instances.len(),
        corpus.filtered_out
    );

    let pairs = build_pairs(
        &corpus,
        &PairConfig {
            positives_per_combination: 30,
            negatives_per_combination: 30,
            seed: 3,
        },
    );
    let (train_set, test_set) = pairs.split(0.8, 5);
    println!("pairs: {} train / {} test", train_set.len(), test_set.len());

    let mut model = AsteriaModel::new(ModelConfig::default());
    println!("model: {} trainable weights", model.num_weights());

    let train_pairs = to_train_pairs(&corpus, &train_set);
    let score_test = |m: &AsteriaModel| -> f64 {
        let scores: Vec<ScoredPair> = test_set
            .pairs
            .iter()
            .map(|p| {
                let s = m.similarity(
                    &corpus.instances[p.a].extracted.tree,
                    &corpus.instances[p.b].extracted.tree,
                ) as f64;
                ScoredPair::new(s, p.homologous)
            })
            .collect();
        auc(&scores)
    };

    println!("initial AUC: {:.4}", score_test(&model));
    let mut epoch = 0;
    let mut validate = |m: &AsteriaModel| -> f64 {
        let a = score_test(m);
        epoch += 1;
        println!("epoch {epoch}: held-out AUC {a:.4}");
        a
    };
    let stats = train(
        &mut model,
        &train_pairs,
        &TrainOptions {
            epochs: 8,
            seed: 7,
            verbose: false,
        },
        Some(&mut validate),
    );
    let final_auc = score_test(&model);
    println!(
        "done: mean loss {:.4} → {:.4}; best-epoch weights restored (AUC {final_auc:.4})",
        stats.first().map(|s| s.mean_loss).unwrap_or(0.0),
        stats.last().map(|s| s.mean_loss).unwrap_or(0.0),
    );

    // Persist the weights like the paper's released model files.
    let bytes = model.snapshot();
    println!("serialized model: {} bytes", bytes.len());
}
