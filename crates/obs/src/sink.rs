//! Sinks: render the collector's state as a human-readable summary
//! tree, Prometheus text exposition, or a JSONL trace log.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::MetricKey;
use crate::Collector;

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Escapes a Prometheus label value (backslash, quote, newline).
fn prom_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Sanitizes a metric or label name to the Prometheus charset
/// `[a-zA-Z_][a-zA-Z0-9_]*`.
fn prom_name(s: &str) -> String {
    let mut out: String = s
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.is_empty() || out.starts_with(|c: char| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

fn prom_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}=\"{}\"", prom_name(k), prom_escape(v));
    }
    out.push('}');
    out
}

fn prom_labels_with_le(labels: &[(String, String)], le: &str) -> String {
    let mut out = String::from("{");
    for (k, v) in labels {
        let _ = write!(out, "{}=\"{}\",", prom_name(k), prom_escape(v));
    }
    let _ = write!(out, "le=\"{le}\"");
    out.push('}');
    out
}

/// Formats an f64 the way Prometheus expects (`+Inf`, no exponent for
/// common magnitudes, shortest round-trip otherwise).
fn prom_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Prometheus text exposition: all counters, gauges, and histograms,
/// plus per-path span duration aggregates.
pub(crate) fn render_prometheus(c: &Collector) -> String {
    let m = crate::relock(c.metrics.lock());
    let mut out = String::new();

    // Group series by sanitized name so each name gets one # TYPE line.
    let mut counters: BTreeMap<String, Vec<(&MetricKey, u64)>> = BTreeMap::new();
    for (k, v) in m.counters.iter() {
        counters
            .entry(prom_name(&k.name))
            .or_default()
            .push((k, *v));
    }
    for (name, series) in &counters {
        let _ = writeln!(out, "# TYPE {name} counter");
        for (k, v) in series {
            let _ = writeln!(out, "{name}{} {v}", prom_labels(&k.labels));
        }
    }

    let mut gauges: BTreeMap<String, Vec<(&MetricKey, f64)>> = BTreeMap::new();
    for (k, v) in m.gauges.iter() {
        gauges.entry(prom_name(&k.name)).or_default().push((k, *v));
    }
    for (name, series) in &gauges {
        let _ = writeln!(out, "# TYPE {name} gauge");
        for (k, v) in series {
            let _ = writeln!(out, "{name}{} {}", prom_labels(&k.labels), prom_f64(*v));
        }
    }

    let mut hists: BTreeMap<String, Vec<(&MetricKey, &crate::Histogram)>> = BTreeMap::new();
    for (k, v) in m.histograms.iter() {
        hists.entry(prom_name(&k.name)).or_default().push((k, v));
    }
    for (name, series) in &hists {
        let _ = writeln!(out, "# TYPE {name} histogram");
        for (k, h) in series {
            let mut cum = 0u64;
            for (i, count) in h.counts.iter().enumerate() {
                cum += count;
                let le = match h.bounds.get(i) {
                    Some(b) => prom_f64(*b),
                    None => "+Inf".to_string(),
                };
                let _ = writeln!(
                    out,
                    "{name}_bucket{} {cum}",
                    prom_labels_with_le(&k.labels, &le)
                );
            }
            let _ = writeln!(
                out,
                "{name}_sum{} {}",
                prom_labels(&k.labels),
                prom_f64(h.sum)
            );
            let _ = writeln!(out, "{name}_count{} {}", prom_labels(&k.labels), h.count);
        }
    }
    drop(m);

    // Span aggregates: total duration + count per span path, so a
    // Prometheus file alone still carries the stage cost breakdown.
    let spans = c.finished_spans();
    if !spans.is_empty() {
        let mut agg: BTreeMap<&str, (f64, u64, u64)> = BTreeMap::new();
        for s in &spans {
            let e = agg.entry(s.path.as_str()).or_insert((0.0, 0, 0));
            e.0 += s.dur_us as f64 / 1e6;
            e.1 += 1;
            e.2 += s.items;
        }
        let _ = writeln!(out, "# TYPE asteria_span_duration_seconds_sum gauge");
        for (path, (sum, _, _)) in &agg {
            let _ = writeln!(
                out,
                "asteria_span_duration_seconds_sum{{path=\"{}\"}} {}",
                prom_escape(path),
                prom_f64(*sum)
            );
        }
        let _ = writeln!(out, "# TYPE asteria_span_count counter");
        for (path, (_, count, _)) in &agg {
            let _ = writeln!(
                out,
                "asteria_span_count{{path=\"{}\"}} {count}",
                prom_escape(path)
            );
        }
        let _ = writeln!(out, "# TYPE asteria_span_items_total counter");
        for (path, (_, _, items)) in &agg {
            let _ = writeln!(
                out,
                "asteria_span_items_total{{path=\"{}\"}} {items}",
                prom_escape(path)
            );
        }
    }
    out
}

/// JSONL trace: one `span` line per finished span (deterministic
/// merge order) followed by one `event` line per recorded event.
pub(crate) fn render_trace_jsonl(c: &Collector) -> String {
    let mut out = String::new();
    for s in c.finished_spans() {
        let _ = writeln!(
            out,
            "{{\"type\":\"span\",\"path\":\"{}\",\"name\":\"{}\",\"start_us\":{},\"dur_us\":{},\"items\":{},\"thread\":{},\"seq\":{}}}",
            json_escape(&s.path),
            json_escape(s.name()),
            s.start_us,
            s.dur_us,
            s.items,
            s.thread,
            s.seq
        );
    }
    for e in c.events() {
        let _ = writeln!(
            out,
            "{{\"type\":\"event\",\"level\":\"{}\",\"t_us\":{},\"msg\":\"{}\"}}",
            e.level.label(),
            e.t_us,
            json_escape(&e.msg)
        );
    }
    out
}

/// Aggregate of one span path for the summary tree.
struct PathAgg {
    total_s: f64,
    count: u64,
    items: u64,
}

/// Human-readable summary: span tree (indented by depth, with count,
/// total time, and items/sec), then counters, gauges, and histogram
/// percentiles.
pub(crate) fn render_summary(c: &Collector) -> String {
    let mut out = String::new();
    let spans = c.finished_spans();
    if !spans.is_empty() {
        out.push_str("spans:\n");
        let mut agg: BTreeMap<String, PathAgg> = BTreeMap::new();
        for s in &spans {
            let e = agg.entry(s.path.clone()).or_insert(PathAgg {
                total_s: 0.0,
                count: 0,
                items: 0,
            });
            e.total_s += s.dur_us as f64 / 1e6;
            e.count += 1;
            e.items += s.items;
        }
        // BTreeMap path-prefix order gives parent-before-child, which
        // is deterministic and readable.
        for (path, a) in agg.iter() {
            let depth = path.matches('/').count();
            let name = path.rsplit('/').next().unwrap_or(path);
            let indent = "  ".repeat(depth + 1);
            let _ = write!(out, "{indent}{name}: {:.3}s", a.total_s);
            if a.count > 1 {
                let _ = write!(out, " ({} calls)", a.count);
            }
            if a.items > 0 {
                let rate = if a.total_s > 0.0 {
                    a.items as f64 / a.total_s
                } else {
                    0.0
                };
                let _ = write!(out, " [{} items, {:.1}/s]", a.items, rate);
            }
            out.push('\n');
        }
    }

    let m = crate::relock(c.metrics.lock());
    if !m.counters.is_empty() {
        out.push_str("counters:\n");
        for (k, v) in m.counters.iter() {
            let _ = writeln!(out, "  {} = {v}", k.render());
        }
    }
    if !m.gauges.is_empty() {
        out.push_str("gauges:\n");
        for (k, v) in m.gauges.iter() {
            let _ = writeln!(out, "  {} = {v}", k.render());
        }
    }
    if !m.histograms.is_empty() {
        out.push_str("histograms:\n");
        for (k, h) in m.histograms.iter() {
            let p50 = h.quantile(0.5).unwrap_or(0.0);
            let p95 = h.quantile(0.95).unwrap_or(0.0);
            let _ = writeln!(
                out,
                "  {}: count {} sum {:.6} p50<= {} p95<= {}",
                k.render(),
                h.count,
                h.sum,
                prom_f64(p50),
                prom_f64(p95)
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("tab\there"), "tab\\there");
        assert_eq!(prom_escape("x\"y\\z\nw"), "x\\\"y\\\\z\\nw");
        assert_eq!(prom_name("asteria.lift-seconds"), "asteria_lift_seconds");
        assert_eq!(prom_name("9lead"), "_9lead");
        assert_eq!(prom_f64(f64::INFINITY), "+Inf");
        assert_eq!(prom_f64(0.001), "0.001");
    }
}
