//! `asteria-obs` — the workspace's unified tracing and metrics layer.
//!
//! The paper's evaluation hinges on per-stage cost accounting (its
//! Fig. 10 splits offline AST-extraction/encoding from online similarity
//! calculation). This crate gives the whole pipeline one observability
//! spine instead of ad-hoc `eprintln!` lines and bench-only JSON:
//!
//! - **Spans** ([`span`]) — hierarchical enter/exit timings with
//!   monotonic wall-time and parent linkage. Each thread buffers its
//!   finished spans locally; buffers are merged deterministically (by
//!   start time, then a global sequence number) when a sink renders.
//!   Worker pools propagate the caller's span path into workers via
//!   [`current_path`] + [`push_thread_root`], so fan-out work nests
//!   under the stage that spawned it.
//! - **Metrics** — typed [`counter_add`]/[`gauge_set`] and
//!   [`observe_seconds`] histograms with fixed bucket boundaries
//!   ([`TIME_BUCKETS_SECONDS`]).
//! - **Events** ([`info!`]/[`warn!`]/[`debug!`]) — progress and warning
//!   lines that respect a global [`Verbosity`] for stderr and are also
//!   recorded into the trace, so `--quiet` runs stay silent while still
//!   populating `--metrics-out`/`--trace` artifacts.
//! - **Sinks** — a human-readable summary tree
//!   ([`Collector::render_summary`]), a machine-readable JSONL event log
//!   ([`Collector::render_trace_jsonl`]), and a Prometheus-style text
//!   exposition ([`Collector::render_prometheus`]).
//!
//! # Zero cost when disabled
//!
//! The global recorder starts **disabled**: every entry point checks one
//! relaxed atomic load and returns immediately — no allocation, no clock
//! read, no lock. [`install`] enables recording process-wide;
//! [`set_enabled`] toggles it (the bench harness uses this to measure
//! instrumentation overhead).
//!
//! # Determinism contract
//!
//! Metrics carry wall-clock timings and therefore **never** enter any
//! bit-identity-checked payload (indexes, encodings, reports, on-disk
//! caches). Counters that the determinism suite pins down (items
//! processed, cache hits, budget exceedances) are incremented from
//! deterministically merged results, so their values are identical at
//! every thread count.
//!
//! # Examples
//!
//! ```
//! let collector = asteria_obs::install();
//! collector.reset();
//! {
//!     let mut outer = asteria_obs::span("offline");
//!     outer.set_items(2);
//!     let _inner = asteria_obs::span("encode");
//!     asteria_obs::counter_add("functions_encoded_total", &[], 2);
//! }
//! let snap = collector.snapshot();
//! assert_eq!(snap.counters["functions_encoded_total"], 2);
//! let prom = collector.render_prometheus();
//! assert!(prom.contains("functions_encoded_total 2"));
//! assert!(collector.render_summary().contains("offline"));
//! # asteria_obs::set_enabled(false);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod sink;
pub mod span;

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

pub use metrics::{Histogram, MetricKey, MetricsSnapshot, TIME_BUCKETS_SECONDS};
pub use span::{SpanGuard, SpanRecord, ThreadRootGuard};

/// Severity of one event line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Chatty progress detail (stderr only under `Verbose`).
    Debug,
    /// Normal progress lines.
    Info,
    /// Something degraded but the run continues.
    Warn,
}

impl Level {
    /// Lower-case label used by the JSONL trace.
    pub fn label(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
        }
    }
}

/// How much event output reaches stderr. Recording into the trace is
/// governed separately by [`enabled`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verbosity {
    /// Nothing on stderr — `--quiet`.
    Quiet,
    /// Info and warnings (the default).
    Normal,
    /// Everything, including debug lines and the final summary tree.
    Verbose,
}

static VERBOSITY: AtomicU8 = AtomicU8::new(1);
static ENABLED: AtomicBool = AtomicBool::new(false);
static COLLECTOR: OnceLock<Collector> = OnceLock::new();

/// Sets the process-wide stderr verbosity.
pub fn set_verbosity(v: Verbosity) {
    let n = match v {
        Verbosity::Quiet => 0,
        Verbosity::Normal => 1,
        Verbosity::Verbose => 2,
    };
    VERBOSITY.store(n, Ordering::Relaxed);
}

/// The current stderr verbosity.
pub fn verbosity() -> Verbosity {
    match VERBOSITY.load(Ordering::Relaxed) {
        0 => Verbosity::Quiet,
        1 => Verbosity::Normal,
        _ => Verbosity::Verbose,
    }
}

/// Installs (idempotently) and enables the global collector, returning
/// it. Until this is called every instrumentation entry point is a
/// no-op.
pub fn install() -> &'static Collector {
    let c = COLLECTOR.get_or_init(Collector::new);
    ENABLED.store(true, Ordering::Relaxed);
    c
}

/// Toggles recording without discarding the installed collector. The
/// bench harness flips this to measure instrumented vs no-op overhead.
pub fn set_enabled(on: bool) {
    if on {
        install();
    } else {
        ENABLED.store(false, Ordering::Relaxed);
    }
}

/// True when a collector is installed and recording.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The installed collector, when recording is enabled.
pub fn collector() -> Option<&'static Collector> {
    if enabled() {
        COLLECTOR.get()
    } else {
        None
    }
}

/// Recovers the inner data from a poisoned lock: a panicking worker must
/// cost one fault, not cascade into every later metrics call.
pub(crate) fn relock<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// One recorded log event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Severity.
    pub level: Level,
    /// Rendered message.
    pub msg: String,
    /// Microseconds since the collector's epoch.
    pub t_us: u64,
}

/// The global recorder: per-thread span buffers merged on render, typed
/// metrics, and the event log. All locks recover from poisoning.
#[derive(Debug)]
pub struct Collector {
    epoch: Instant,
    pub(crate) spans: Mutex<Vec<SpanRecord>>,
    pub(crate) metrics: Mutex<metrics::Metrics>,
    events: Mutex<Vec<Event>>,
}

impl Collector {
    fn new() -> Collector {
        Collector {
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
            metrics: Mutex::new(metrics::Metrics::default()),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Microseconds of monotonic time since the collector was installed.
    pub(crate) fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Appends an event to the trace log.
    pub fn record_event(&self, level: Level, msg: String) {
        let t_us = self.now_us();
        relock(self.events.lock()).push(Event { level, msg, t_us });
    }

    /// Clears all recorded spans, metrics, and events (the current
    /// thread's span buffer is flushed first so it cannot leak stale
    /// records into the next window).
    pub fn reset(&self) {
        span::flush_current_thread();
        relock(self.spans.lock()).clear();
        relock(self.events.lock()).clear();
        *relock(self.metrics.lock()) = metrics::Metrics::default();
    }

    /// A deterministic snapshot of all counters, gauges, and histograms.
    pub fn snapshot(&self) -> MetricsSnapshot {
        relock(self.metrics.lock()).snapshot()
    }

    /// All finished spans, merged across threads in deterministic order
    /// (start time, then global sequence number). Flushes the calling
    /// thread's buffer; spans still open, or buffered on threads that
    /// have not exited, are not included.
    pub fn finished_spans(&self) -> Vec<SpanRecord> {
        span::flush_current_thread();
        let mut spans = relock(self.spans.lock()).clone();
        spans.sort_by_key(|s| (s.start_us, s.seq));
        spans
    }

    /// All recorded events, in recording order.
    pub fn events(&self) -> Vec<Event> {
        relock(self.events.lock()).clone()
    }

    /// Human-readable summary: span tree with per-stage wall time and
    /// throughput, then counters, gauges, and histogram percentiles.
    pub fn render_summary(&self) -> String {
        sink::render_summary(self)
    }

    /// Prometheus-style text exposition of every metric, including
    /// per-span-path duration aggregates.
    pub fn render_prometheus(&self) -> String {
        sink::render_prometheus(self)
    }

    /// Machine-readable JSONL trace: one line per span and per event.
    pub fn render_trace_jsonl(&self) -> String {
        sink::render_trace_jsonl(self)
    }
}

/// Routes a leveled event line: to stderr when [`Verbosity`] allows it,
/// and into the trace when recording is [`enabled`]. The message is only
/// rendered when at least one destination wants it.
pub fn emit(level: Level, args: fmt::Arguments<'_>) {
    let to_stderr = match verbosity() {
        Verbosity::Quiet => false,
        Verbosity::Normal => level >= Level::Info,
        Verbosity::Verbose => true,
    };
    let sink = collector();
    if !to_stderr && sink.is_none() {
        return;
    }
    let msg = args.to_string();
    if to_stderr {
        eprintln!("{msg}");
    }
    if let Some(c) = sink {
        c.record_event(level, msg);
    }
}

/// Emits a [`Level::Debug`] event (stderr only under `--verbose`).
#[macro_export]
macro_rules! debug {
    ($($t:tt)*) => { $crate::emit($crate::Level::Debug, format_args!($($t)*)) };
}

/// Emits a [`Level::Info`] progress event.
#[macro_export]
macro_rules! info {
    ($($t:tt)*) => { $crate::emit($crate::Level::Info, format_args!($($t)*)) };
}

/// Emits a [`Level::Warn`] event.
#[macro_export]
macro_rules! warn {
    ($($t:tt)*) => { $crate::emit($crate::Level::Warn, format_args!($($t)*)) };
}

/// Adds `delta` to a counter (creating it at zero first). A zero delta
/// registers the series so it appears in the exposition even when it
/// never fires.
pub fn counter_add(name: &str, labels: &[(&str, &str)], delta: u64) {
    if let Some(c) = collector() {
        relock(c.metrics.lock()).counter_add(name, labels, delta);
    }
}

/// Sets a gauge to `value`.
pub fn gauge_set(name: &str, labels: &[(&str, &str)], value: f64) {
    if let Some(c) = collector() {
        relock(c.metrics.lock()).gauge_set(name, labels, value);
    }
}

/// Records one observation into a histogram with the default
/// [`TIME_BUCKETS_SECONDS`] boundaries.
pub fn observe_seconds(name: &str, labels: &[(&str, &str)], seconds: f64) {
    observe_with_buckets(name, labels, seconds, TIME_BUCKETS_SECONDS);
}

/// Records one observation into a histogram with explicit fixed bucket
/// boundaries (ascending; an implicit `+Inf` bucket is appended). The
/// boundaries are fixed by the first observation of a series.
pub fn observe_with_buckets(name: &str, labels: &[(&str, &str)], value: f64, bounds: &[f64]) {
    if let Some(c) = collector() {
        relock(c.metrics.lock()).observe(name, labels, value, bounds);
    }
}

/// Opens a span named `name`, nested under the calling thread's current
/// span (if any). The span closes — and its record is buffered — when
/// the guard drops. No-op while disabled.
pub fn span(name: &str) -> SpanGuard {
    span::enter(name)
}

/// The calling thread's current span path, for propagating parent
/// linkage into worker threads. `None` while disabled or outside any
/// span.
pub fn current_path() -> Option<String> {
    span::current_path()
}

/// Makes `path` the root of the calling thread's span stack until the
/// guard drops — how a worker pool nests its workers' spans under the
/// span that spawned them.
pub fn push_thread_root(path: &str) -> ThreadRootGuard {
    span::push_thread_root(path)
}

/// Brackets a pool worker's closure: nests the worker's spans under
/// `parent` (when given) and flushes the worker's span buffer when the
/// guard drops. Worker pools must hold this for the closure's whole
/// body — scoped-thread APIs can return to the spawner before the
/// worker's TLS destructors run, so only a drop inside the closure
/// guarantees the records land before the pool call returns.
pub fn worker_scope(parent: Option<&str>) -> ThreadRootGuard {
    span::worker_scope(parent)
}

/// A started wall-clock timing, or nothing while disabled.
#[derive(Debug)]
#[must_use = "a timer only records when observed"]
pub struct StageTimer(Option<Instant>);

/// Starts a stage timer — a no-op (no clock read) while disabled.
pub fn timer() -> StageTimer {
    StageTimer(enabled().then(Instant::now))
}

impl StageTimer {
    /// Stops the timer, recording the elapsed seconds into a histogram.
    pub fn observe_seconds(self, name: &str, labels: &[(&str, &str)]) {
        if let Some(t0) = self.0 {
            observe_seconds(name, labels, t0.elapsed().as_secs_f64());
        }
    }

    /// Stops the timer, returning elapsed seconds when it was live.
    pub fn stop_seconds(self) -> Option<f64> {
        self.0.map(|t0| t0.elapsed().as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The collector is process-global, so every assertion about recorded
    // state lives in this one test (Rust runs tests in one process).
    #[test]
    fn end_to_end_recording_and_noop_paths() {
        // Disabled: everything is a no-op and allocates nothing visible.
        set_enabled(false);
        assert!(!enabled());
        assert!(collector().is_none());
        counter_add("never", &[], 1);
        gauge_set("never", &[], 1.0);
        observe_seconds("never", &[], 1.0);
        assert!(timer().stop_seconds().is_none());
        assert!(current_path().is_none());
        {
            let mut g = span("never");
            g.set_items(3);
        }

        let c = install();
        c.reset();
        assert!(enabled());

        // The disabled-phase calls must have recorded nothing.
        let snap = c.snapshot();
        assert!(snap.counters.is_empty(), "{snap:?}");
        assert!(c.finished_spans().is_empty());

        // Counters accumulate; zero deltas register the series.
        counter_add("hits_total", &[("kind", "warm")], 2);
        counter_add("hits_total", &[("kind", "warm")], 3);
        counter_add("empty_total", &[], 0);
        gauge_set("loss", &[], 0.25);
        observe_seconds("lat_seconds", &[], 0.003);
        let snap = c.snapshot();
        assert_eq!(snap.counters["hits_total{kind=\"warm\"}"], 5);
        assert_eq!(snap.counters["empty_total"], 0);
        assert_eq!(snap.gauges["loss"], 0.25);
        assert_eq!(snap.histograms["lat_seconds"].count, 1);

        // Spans nest via the thread-local stack.
        {
            let mut outer = span("outer");
            outer.set_items(7);
            assert_eq!(current_path().as_deref(), Some("outer"));
            let _inner = span("inner");
            assert_eq!(current_path().as_deref(), Some("outer/inner"));
        }
        let spans = c.finished_spans();
        let paths: Vec<&str> = spans.iter().map(|s| s.path.as_str()).collect();
        assert!(paths.contains(&"outer"), "{paths:?}");
        assert!(paths.contains(&"outer/inner"), "{paths:?}");
        let outer = spans.iter().find(|s| s.path == "outer").unwrap();
        assert_eq!(outer.items, 7);

        // Thread-root propagation: a worker's spans nest under the
        // caller's path even though it runs on another thread.
        {
            let _stage = span("stage");
            let parent = current_path().expect("inside a span");
            std::thread::scope(|s| {
                s.spawn(|| {
                    let _root = push_thread_root(&parent);
                    let _w = span("worker");
                    assert_eq!(current_path().as_deref(), Some("stage/worker"));
                });
            });
        }
        let spans = c.finished_spans();
        assert!(
            spans.iter().any(|s| s.path == "stage/worker"),
            "worker span must nest: {spans:?}"
        );

        // Events respect verbosity for stderr but always hit the trace.
        set_verbosity(Verbosity::Quiet);
        crate::info!("quiet progress {}", 42);
        crate::warn!("quiet warning");
        set_verbosity(Verbosity::Normal);
        let events = c.events();
        assert!(events.iter().any(|e| e.msg == "quiet progress 42"));
        assert!(events
            .iter()
            .any(|e| e.level == Level::Warn && e.msg == "quiet warning"));

        // Timers feed histograms.
        let t = timer();
        t.observe_seconds("stage_seconds", &[("stage", "lift")]);
        let snap = c.snapshot();
        assert_eq!(snap.histograms["stage_seconds{stage=\"lift\"}"].count, 1);

        // Sinks render all three formats.
        let summary = c.render_summary();
        assert!(summary.contains("outer"), "{summary}");
        assert!(summary.contains("hits_total"), "{summary}");
        let prom = c.render_prometheus();
        assert!(prom.contains("# TYPE hits_total counter"), "{prom}");
        assert!(prom.contains("hits_total{kind=\"warm\"} 5"), "{prom}");
        assert!(prom.contains("lat_seconds_bucket"), "{prom}");
        let trace = c.render_trace_jsonl();
        assert!(trace.contains("\"type\":\"span\""), "{trace}");
        assert!(trace.contains("\"path\":\"outer/inner\""), "{trace}");
        assert!(trace.contains("\"type\":\"event\""), "{trace}");

        // A panic while a lock is held poisons it; later calls recover.
        let poison = std::panic::catch_unwind(|| {
            let _guard = c.spans.lock().unwrap();
            panic!("poison the span lock");
        });
        assert!(poison.is_err());
        let _ = c.finished_spans(); // must not panic
        counter_add("after_poison_total", &[], 1);
        assert_eq!(c.snapshot().counters["after_poison_total"], 1);

        // reset() clears every sink input.
        c.reset();
        assert!(c.snapshot().counters.is_empty());
        assert!(c.finished_spans().is_empty());
        assert!(c.events().is_empty());

        // Disabling again restores the no-op path without uninstalling.
        set_enabled(false);
        counter_add("hits_total", &[], 1);
        assert!(COLLECTOR.get().unwrap().snapshot().counters.is_empty());
    }
}
