//! Typed metrics: counters, gauges, and fixed-boundary histograms.
//!
//! Every series is keyed by name plus a sorted label set, stored in
//! `BTreeMap`s so iteration — and therefore every sink rendering — is
//! deterministic.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Default histogram boundaries for wall-time observations, in seconds
/// (an implicit `+Inf` bucket is always appended). Spanning 10 µs to
/// 10 s covers everything from one cached similarity to a whole-corpus
/// stage.
pub const TIME_BUCKETS_SECONDS: &[f64] = &[1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0];

/// A metric series identity: name plus sorted `(key, value)` labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name (Prometheus-style `snake_case`).
    pub name: String,
    /// Label pairs, sorted by key then value.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    pub(crate) fn new(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }

    /// Renders `name{k="v",…}` (bare `name` when label-free).
    pub fn render(&self) -> String {
        let mut out = self.name.clone();
        if !self.labels.is_empty() {
            out.push('{');
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{k}=\"{v}\"");
            }
            out.push('}');
        }
        out
    }
}

/// A histogram with fixed bucket boundaries (plus an implicit `+Inf`).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Ascending finite bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts; `counts[bounds.len()]` is `+Inf`.
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Total observations.
    pub count: u64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Histogram {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value;
        self.count += 1;
    }

    /// Upper-bound estimate of the `q`-quantile (0 ≤ q ≤ 1): the
    /// boundary of the first bucket whose cumulative count reaches
    /// `q × count`. Returns `None` for an empty histogram; the `+Inf`
    /// bucket reports the largest finite boundary.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Some(match self.bounds.get(i) {
                    Some(b) => *b,
                    None => *self.bounds.last().unwrap_or(&f64::INFINITY),
                });
            }
        }
        None
    }

    /// Mean observed value (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }
}

/// The live metric store behind the collector's lock.
#[derive(Debug, Default)]
pub(crate) struct Metrics {
    pub(crate) counters: BTreeMap<MetricKey, u64>,
    pub(crate) gauges: BTreeMap<MetricKey, f64>,
    pub(crate) histograms: BTreeMap<MetricKey, Histogram>,
}

impl Metrics {
    pub(crate) fn counter_add(&mut self, name: &str, labels: &[(&str, &str)], delta: u64) {
        *self
            .counters
            .entry(MetricKey::new(name, labels))
            .or_insert(0) += delta;
    }

    pub(crate) fn gauge_set(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.gauges.insert(MetricKey::new(name, labels), value);
    }

    pub(crate) fn observe(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        value: f64,
        bounds: &[f64],
    ) {
        self.histograms
            .entry(MetricKey::new(name, labels))
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| (k.render(), *v))
                .collect(),
            gauges: self.gauges.iter().map(|(k, v)| (k.render(), *v)).collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, v)| (k.render(), v.clone()))
                .collect(),
        }
    }
}

/// A deterministic, cloneable view of every metric, keyed by the
/// rendered series name (`name{k="v"}`), for tests and reports.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter values.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms.
    pub histograms: BTreeMap<String, Histogram>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_keys_sort_labels_and_render() {
        let a = MetricKey::new("hits", &[("b", "2"), ("a", "1")]);
        let b = MetricKey::new("hits", &[("a", "1"), ("b", "2")]);
        assert_eq!(a, b);
        assert_eq!(a.render(), "hits{a=\"1\",b=\"2\"}");
        assert_eq!(MetricKey::new("bare", &[]).render(), "bare");
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new(&[0.001, 0.01, 0.1]);
        assert_eq!(h.quantile(0.5), None);
        for v in [0.0005, 0.002, 0.003, 0.05, 5.0] {
            h.observe(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.counts, vec![1, 2, 1, 1]);
        assert!((h.sum - 5.0555).abs() < 1e-9);
        // p20 → first bucket, p50 → second, p100 → +Inf reported as the
        // largest finite bound.
        assert_eq!(h.quantile(0.2), Some(0.001));
        assert_eq!(h.quantile(0.5), Some(0.01));
        assert_eq!(h.quantile(1.0), Some(0.1));
        assert!((h.mean().unwrap() - 1.0111).abs() < 1e-9);
    }

    #[test]
    fn boundary_values_land_in_the_le_bucket() {
        // Prometheus buckets are `le` (≤), so an exact boundary counts
        // in its own bucket.
        let mut h = Histogram::new(&[1.0, 2.0]);
        h.observe(1.0);
        h.observe(2.0);
        h.observe(2.0000001);
        assert_eq!(h.counts, vec![1, 1, 1]);
    }

    #[test]
    fn metrics_store_accumulates_deterministically() {
        let mut m = Metrics::default();
        m.counter_add("c", &[("k", "b")], 1);
        m.counter_add("c", &[("k", "a")], 2);
        m.counter_add("c", &[("k", "b")], 10);
        m.gauge_set("g", &[], 1.5);
        m.gauge_set("g", &[], 2.5);
        m.observe("h", &[], 0.5, &[1.0]);
        let snap = m.snapshot();
        let keys: Vec<&String> = snap.counters.keys().collect();
        assert_eq!(keys, vec!["c{k=\"a\"}", "c{k=\"b\"}"]);
        assert_eq!(snap.counters["c{k=\"b\"}"], 11);
        assert_eq!(snap.gauges["g"], 2.5, "gauges keep the last value");
        assert_eq!(snap.histograms["h"].count, 1);
    }
}
