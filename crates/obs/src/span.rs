//! Hierarchical spans: enter/exit wall-time with parent linkage.
//!
//! Each thread keeps a stack of open span paths (parent linkage) and a
//! local buffer of finished records. Buffers flush into the global
//! collector when they fill, when a worker's [`ThreadRootGuard`] drops,
//! when the thread exits, and when a sink renders — so the hot path
//! takes the global lock rarely, and the merge order is made
//! deterministic by sorting on `(start_us, seq)` where `seq` is a global
//! monotone sequence number.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::time::Instant;

use crate::{collector, relock, Collector};

/// Records buffered per thread before the local buffer spills into the
/// global collector.
const FLUSH_AT: usize = 128;

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Full path from the thread root, `/`-separated
    /// (`"index-build/encode-binary"`). Parent linkage is the prefix.
    pub path: String,
    /// Microseconds since the collector epoch at enter.
    pub start_us: u64,
    /// Wall-clock duration in microseconds (monotonic clock).
    pub dur_us: u64,
    /// Work items the span covered (0 when unset) — per-stage items/sec
    /// in the summary derives from this.
    pub items: u64,
    /// Ordinal of the recording thread (first-use order).
    pub thread: u32,
    /// Global sequence number: the deterministic merge tiebreak.
    pub seq: u64,
}

impl SpanRecord {
    /// Nesting depth (number of `/` separators).
    pub fn depth(&self) -> usize {
        self.path.matches('/').count()
    }

    /// The final path segment (the span's own name).
    pub fn name(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or(&self.path)
    }
}

static NEXT_THREAD: AtomicU32 = AtomicU32::new(0);
static NEXT_SEQ: AtomicU64 = AtomicU64::new(0);

struct LocalBuf {
    recs: Vec<SpanRecord>,
    thread: u32,
}

impl LocalBuf {
    fn new() -> LocalBuf {
        LocalBuf {
            recs: Vec::new(),
            thread: NEXT_THREAD.fetch_add(1, Ordering::Relaxed),
        }
    }

    fn flush_into(&mut self, c: &Collector) {
        if !self.recs.is_empty() {
            relock(c.spans.lock()).append(&mut self.recs);
        }
    }
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        // Thread exit: spill whatever is left so scoped worker threads
        // never lose records.
        if let Some(c) = crate::COLLECTOR.get() {
            self.flush_into(c);
        }
    }
}

thread_local! {
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
    static BUF: RefCell<LocalBuf> = RefCell::new(LocalBuf::new());
}

/// Spills the calling thread's buffered records into the collector.
pub(crate) fn flush_current_thread() {
    if let Some(c) = crate::COLLECTOR.get() {
        let _ = BUF.try_with(|b| b.borrow_mut().flush_into(c));
    }
}

#[derive(Debug)]
struct Active {
    path: String,
    start: Instant,
    start_us: u64,
    items: u64,
}

/// Guard for an open span; the record is written when it drops.
#[derive(Debug)]
pub struct SpanGuard {
    active: Option<Active>,
}

pub(crate) fn enter(name: &str) -> SpanGuard {
    let Some(c) = collector() else {
        return SpanGuard { active: None };
    };
    let path = STACK.with(|s| {
        let mut s = s.borrow_mut();
        let path = match s.last() {
            Some(top) => format!("{top}/{name}"),
            None => name.to_string(),
        };
        s.push(path.clone());
        path
    });
    SpanGuard {
        active: Some(Active {
            path,
            start: Instant::now(),
            start_us: c.now_us(),
            items: 0,
        }),
    }
}

impl SpanGuard {
    /// Annotates the span with the number of work items it covers.
    pub fn set_items(&mut self, items: u64) {
        if let Some(a) = self.active.as_mut() {
            a.items = items;
        }
    }

    /// True when the span is live (recording was enabled at enter).
    pub fn is_active(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else { return };
        let dur_us = a.start.elapsed().as_micros() as u64;
        let _ = STACK.try_with(|s| {
            s.borrow_mut().pop();
        });
        let _ = BUF.try_with(|b| {
            let mut b = b.borrow_mut();
            let rec = SpanRecord {
                path: a.path,
                start_us: a.start_us,
                dur_us,
                items: a.items,
                thread: b.thread,
                seq: NEXT_SEQ.fetch_add(1, Ordering::Relaxed),
            };
            b.recs.push(rec);
            if b.recs.len() >= FLUSH_AT {
                if let Some(c) = crate::COLLECTOR.get() {
                    b.flush_into(c);
                }
            }
        });
    }
}

pub(crate) fn current_path() -> Option<String> {
    collector()?;
    STACK.with(|s| s.borrow().last().cloned())
}

/// Guard bracketing a worker thread's lifetime: injects the spawning
/// thread's span path as the worker's root (when given one) and, on
/// drop, spills the worker's buffered records into the collector.
///
/// The drop-time flush is what makes worker spans visible to the caller:
/// `std::thread::scope` may return as soon as the worker *closure*
/// finishes, before the thread's TLS destructors (the backstop flush)
/// run — so without this guard, records could surface in a later
/// recording window, or after a `reset`.
#[derive(Debug)]
pub struct ThreadRootGuard {
    pushed: bool,
}

pub(crate) fn push_thread_root(path: &str) -> ThreadRootGuard {
    if collector().is_none() {
        return ThreadRootGuard { pushed: false };
    }
    STACK.with(|s| s.borrow_mut().push(path.to_string()));
    ThreadRootGuard { pushed: true }
}

pub(crate) fn worker_scope(parent: Option<&str>) -> ThreadRootGuard {
    match parent {
        Some(path) => push_thread_root(path),
        None => ThreadRootGuard { pushed: false },
    }
}

impl Drop for ThreadRootGuard {
    fn drop(&mut self) {
        if self.pushed {
            let _ = STACK.try_with(|s| {
                s.borrow_mut().pop();
            });
        }
        // Flush even when nothing was pushed: spans recorded by this
        // worker must land before the spawning scope returns.
        flush_current_thread();
    }
}
