//! Criterion micro-benchmarks for the offline phase (Fig. 10b):
//! decompilation, preprocessing, Tree-LSTM encoding, Diaphora hashing,
//! ACFG extraction and Gemini embedding of a single function.

use criterion::{criterion_group, criterion_main, Criterion};

use asteria::baselines::{extract_acfg, hash_ast, GeminiConfig, GeminiModel};
use asteria::compiler::{compile_program, Arch};
use asteria::core::{binarize, digitalize, AsteriaModel, ModelConfig};
use asteria::decompiler::decompile_function;

const SRC: &str = "int f(int n, int k) { int s = 0; int buf[8]; \
                   for (int i = 0; i < n; i++) { buf[i] = ext_read(i) ^ k; \
                   if (buf[i] > 64) { s += helper(buf[i]); } } return s; } \
                   int helper(int x) { return x * 31 + 7; }";

fn bench_offline(c: &mut Criterion) {
    let program = asteria::lang::parse(SRC).expect("parse");
    let binary = compile_program(&program, Arch::Ppc).expect("compile");
    let model = AsteriaModel::new(ModelConfig::default());
    let gemini = GeminiModel::new(GeminiConfig::default());
    let decompiled = decompile_function(&binary, 0).expect("decompile");
    let tree = binarize(&digitalize(&decompiled));
    let acfg = extract_acfg(&binary, 0).expect("acfg");

    let mut group = c.benchmark_group("offline_encoding");
    group.bench_function("decompile_function", |b| {
        b.iter(|| std::hint::black_box(decompile_function(&binary, 0).expect("ok")))
    });
    group.bench_function("preprocess_digitalize_binarize", |b| {
        b.iter(|| std::hint::black_box(binarize(&digitalize(&decompiled))))
    });
    group.bench_function("tree_lstm_encode", |b| {
        b.iter(|| std::hint::black_box(model.encode(&tree)))
    });
    group.bench_function("diaphora_hash", |b| {
        b.iter(|| std::hint::black_box(hash_ast(&digitalize(&decompiled))))
    });
    group.bench_function("acfg_extract", |b| {
        b.iter(|| std::hint::black_box(extract_acfg(&binary, 0).expect("ok")))
    });
    group.bench_function("gemini_embed", |b| {
        b.iter(|| std::hint::black_box(gemini.embed(&acfg)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_offline
}
criterion_main!(benches);
