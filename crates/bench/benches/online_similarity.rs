//! Criterion micro-benchmarks for the online phase (Fig. 10c): similarity
//! of one pre-encoded pair per system.

use criterion::{criterion_group, criterion_main, Criterion};

use asteria::baselines::{diaphora_similarity, hash_ast, GeminiConfig, GeminiModel};
use asteria::compiler::{compile_program, Arch};
use asteria::core::{digitalize, extract_function, AsteriaModel, ModelConfig, DEFAULT_INLINE_BETA};
use asteria::decompiler::decompile_function;

const SRC: &str = "int f(int n, int k) { int s = 0; for (int i = 0; i < n; i++) { \
                   if (i % 3 == 0) { s += ext_a(i, k); } else { s -= ext_b(i); } } \
                   int t = 0; while (k > 0) { t ^= s + k; k -= 1; } return s + t; }";

fn bench_online(c: &mut Criterion) {
    let program = asteria::lang::parse(SRC).expect("parse");
    let bx = compile_program(&program, Arch::X86).expect("compile");
    let ba = compile_program(&program, Arch::Arm).expect("compile");

    let model = AsteriaModel::new(ModelConfig::default());
    let fx = extract_function(&bx, 0, DEFAULT_INLINE_BETA).expect("extract");
    let fa = extract_function(&ba, 0, DEFAULT_INLINE_BETA).expect("extract");
    let ex = model.encode(&fx.tree);
    let ea = model.encode(&fa.tree);

    let gemini = GeminiModel::new(GeminiConfig::default());
    let gx = gemini.embed(&asteria::baselines::extract_acfg(&bx, 0).expect("acfg"));
    let ga = gemini.embed(&asteria::baselines::extract_acfg(&ba, 0).expect("acfg"));

    let hx = hash_ast(&digitalize(&decompile_function(&bx, 0).expect("ok")));
    let ha = hash_ast(&digitalize(&decompile_function(&ba, 0).expect("ok")));

    let mut group = c.benchmark_group("online_similarity");
    group.bench_function("asteria_pair", |b| {
        b.iter(|| std::hint::black_box(model.similarity_from_encodings(&ex, &ea)))
    });
    group.bench_function("gemini_pair", |b| {
        b.iter(|| std::hint::black_box(GeminiModel::similarity_from_embeddings(&gx, &ga)))
    });
    group.bench_function("diaphora_pair", |b| {
        b.iter(|| std::hint::black_box(diaphora_similarity(&hx, &ha)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_online
}
criterion_main!(benches);
