//! Table II: number of binaries and functions per platform in the
//! datasets (training corpus + firmware corpus).

use asteria::vulnsearch::{build_firmware_corpus, vulnerability_library, FirmwareConfig};
use asteria_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let corpus = asteria::datasets::build_corpus(&scale.corpus_config());

    println!("# Table II — datasets ({scale:?} scale)");
    println!();
    println!("| dataset | platform | binaries | functions |");
    println!("|---------|----------|----------|-----------|");
    let mut total_bins = 0;
    let mut total_funcs = 0;
    for (arch, bins, funcs) in corpus.arch_stats() {
        println!("| corpus | {arch} | {bins} | {funcs} |");
        total_bins += bins;
        total_funcs += funcs;
    }

    let fw_cfg = match scale {
        Scale::Smoke => FirmwareConfig {
            images: 12,
            ..Default::default()
        },
        Scale::Mid => FirmwareConfig {
            images: 30,
            ..Default::default()
        },
        Scale::Paper => FirmwareConfig {
            images: 60,
            ..Default::default()
        },
    };
    let firmware = build_firmware_corpus(&fw_cfg, &vulnerability_library());
    for arch in asteria::compiler::Arch::ALL {
        let images: Vec<_> = firmware.iter().filter(|i| i.arch == arch).collect();
        let bins: usize = images.iter().map(|i| i.binaries.len()).sum();
        let funcs: usize = images.iter().map(|i| i.function_count()).sum();
        println!("| firmware | {arch} | {bins} | {funcs} |");
        total_bins += bins;
        total_funcs += funcs;
    }
    println!("| total | — | {total_bins} | {total_funcs} |");
    println!();
    println!(
        "(corpus: {} packages × 4 ISAs; firmware: {} images; {} ASTs filtered by size < 5)",
        scale.corpus_config().packages,
        firmware.len(),
        corpus.filtered_out
    );
}
