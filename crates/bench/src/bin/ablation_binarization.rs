//! Extra ablation (DESIGN.md §4): left-child right-sibling binarization
//! vs naive child truncation. LCRS preserves every sibling; truncation
//! silently drops statements past the second child of each node.

use asteria::core::{
    binarize_truncated, digitalize, train, AsteriaModel, ModelConfig, TrainOptions, TrainPair,
};
use asteria::datasets::{build_corpus, build_pairs};
use asteria::eval::{auc, ScoredPair};
use asteria_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let corpus = build_corpus(&scale.corpus_config());
    let pairs = build_pairs(&corpus, &scale.pair_config());
    let (train_set, test_set) = pairs.split(0.8, 5);

    // Re-digitalize every instance under the truncated binarization.
    let truncated: Vec<_> = corpus
        .instances
        .iter()
        .map(|inst| {
            let cb = corpus
                .binaries
                .iter()
                .find(|b| b.package == inst.package && b.arch == inst.arch)
                .expect("binary");
            let sym = cb.binary.symbol_index(&inst.name).expect("symbol");
            let df = asteria::decompiler::decompile_function(&cb.binary, sym).expect("ok");
            binarize_truncated(&digitalize(&df))
        })
        .collect();

    println!("# Ablation — binarization strategy ({scale:?} scale)");
    println!();
    println!("| binarization | AUC (best epoch) |");
    println!("|--------------|------------------|");

    // LCRS (the paper's choice) on the normal pipeline.
    {
        let mut model = AsteriaModel::new(ModelConfig::default());
        let tp: Vec<TrainPair> = train_set
            .pairs
            .iter()
            .map(|p| TrainPair {
                a: corpus.instances[p.a].extracted.tree.clone(),
                b: corpus.instances[p.b].extracted.tree.clone(),
                homologous: p.homologous,
            })
            .collect();
        let mut best = f64::NEG_INFINITY;
        {
            let corpus_ref = &corpus;
            let test_ref = &test_set;
            let mut validate = |m: &AsteriaModel| {
                let scores: Vec<ScoredPair> = test_ref
                    .pairs
                    .iter()
                    .map(|p| {
                        ScoredPair::new(
                            m.similarity(
                                &corpus_ref.instances[p.a].extracted.tree,
                                &corpus_ref.instances[p.b].extracted.tree,
                            ) as f64,
                            p.homologous,
                        )
                    })
                    .collect();
                let a = auc(&scores);
                best = best.max(a);
                a
            };
            train(
                &mut model,
                &tp,
                &TrainOptions {
                    epochs: scale.epochs(),
                    seed: 7,
                    verbose: false,
                },
                Some(&mut validate),
            );
        }
        println!("| LCRS (paper) | {best:.4} |");
        asteria::obs::info!("[ablation] LCRS: {best:.4}");
    }

    // Truncation.
    {
        let mut model = AsteriaModel::new(ModelConfig::default());
        let tp: Vec<TrainPair> = train_set
            .pairs
            .iter()
            .map(|p| TrainPair {
                a: truncated[p.a].clone(),
                b: truncated[p.b].clone(),
                homologous: p.homologous,
            })
            .collect();
        let mut best = f64::NEG_INFINITY;
        {
            let trunc_ref = &truncated;
            let test_ref = &test_set;
            let mut validate = |m: &AsteriaModel| {
                let scores: Vec<ScoredPair> = test_ref
                    .pairs
                    .iter()
                    .map(|p| {
                        ScoredPair::new(
                            m.similarity(&trunc_ref[p.a], &trunc_ref[p.b]) as f64,
                            p.homologous,
                        )
                    })
                    .collect();
                let a = auc(&scores);
                best = best.max(a);
                a
            };
            train(
                &mut model,
                &tp,
                &TrainOptions {
                    epochs: scale.epochs(),
                    seed: 7,
                    verbose: false,
                },
                Some(&mut validate),
            );
        }
        println!("| child truncation | {best:.4} |");
        asteria::obs::info!("[ablation] truncation: {best:.4}");
    }
}
