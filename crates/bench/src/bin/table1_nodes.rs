//! Table I: statements and expressions in ASTs — the node-type label
//! table, plus observed node counts over a generated corpus (the paper
//! notes it counted node kinds over decompiled output the same way).

use asteria::core::NodeType;
use asteria_bench::{corpus_acfgs, Scale};

fn main() {
    let scale = Scale::from_args();
    let corpus = asteria::datasets::build_corpus(&scale.corpus_config());
    // Aggregate label histogram over every extracted function.
    let mut counts = vec![0usize; NodeType::VOCAB];
    for inst in &corpus.instances {
        let t = &inst.extracted.tree;
        for n in 0..t.size() as u32 {
            counts[t.label(n) as usize] += 1;
        }
    }
    // Touch ACFG extraction so the binary also smoke-tests that path.
    let _ = corpus_acfgs(&corpus).len();

    println!("# Table I — AST node types and labels ({scale:?} scale)");
    println!();
    println!("| class | node type | label | observed count |");
    println!("|-------|-----------|-------|----------------|");
    for ty in NodeType::all() {
        println!(
            "| {} | {} | {} | {} |",
            ty.class(),
            ty.name(),
            ty.label(),
            counts[ty.label() as usize]
        );
    }
    let total: usize = counts.iter().sum();
    println!();
    println!(
        "total nodes: {total} across {} functions",
        corpus.instances.len()
    );
}
