//! Fig. 9: impact of the Siamese structure (classification vs cosine
//! regression) and of the leaf-state initialization (zeros vs ones),
//! plus this reproduction's extra ablation: the calibration filter β.

use asteria::core::{
    calibrated_similarity, train, AsteriaModel, LeafInit, ModelConfig, SiameseKind, TrainOptions,
};
use asteria::datasets::{build_corpus, build_pairs, to_train_pairs, CorpusConfig};
use asteria::eval::{auc, ScoredPair};
use asteria_bench::{asteria_scores, Scale};

fn main() {
    let scale = Scale::from_args();
    let corpus = build_corpus(&scale.corpus_config());
    let pairs = build_pairs(&corpus, &scale.pair_config());
    let (train_set, test_set) = pairs.split(0.8, 5);
    let train_pairs = to_train_pairs(&corpus, &train_set);

    println!("# Fig. 9 — Siamese structure & leaf-initialization ablations ({scale:?} scale)");
    println!();
    println!("| variant | AUC (best epoch) |");
    println!("|---------|------------------|");
    let variants: [(&str, SiameseKind, LeafInit); 4] = [
        (
            "Classification + Leaf-0 (paper)",
            SiameseKind::Classification,
            LeafInit::Zeros,
        ),
        (
            "Regression (cosine) + Leaf-0",
            SiameseKind::Regression,
            LeafInit::Zeros,
        ),
        (
            "Classification + Leaf-1",
            SiameseKind::Classification,
            LeafInit::Ones,
        ),
        (
            "Regression (cosine) + Leaf-1",
            SiameseKind::Regression,
            LeafInit::Ones,
        ),
    ];
    for (name, head, leaf) in variants {
        let mut model = AsteriaModel::new(ModelConfig {
            head,
            leaf_init: leaf,
            ..Default::default()
        });
        let mut best = f64::NEG_INFINITY;
        {
            let corpus_ref = &corpus;
            let test_ref = &test_set;
            let mut validate = |m: &AsteriaModel| -> f64 {
                let a = auc(&asteria_scores(m, corpus_ref, test_ref, true));
                if a > best {
                    best = a;
                }
                a
            };
            train(
                &mut model,
                &train_pairs,
                &TrainOptions {
                    epochs: scale.epochs(),
                    seed: 7,
                    verbose: false,
                },
                Some(&mut validate),
            );
        }
        println!("| {name} | {best:.4} |");
        asteria::obs::info!("[fig9] {name}: {best:.4}");
    }

    // Extra ablation (DESIGN.md §4): sweep the inline-filter β used by the
    // callee-count calibration. β controls which callees are considered
    // inlining candidates; too large and the calibration feature itself
    // becomes unstable across architectures.
    println!();
    println!("## Calibration inline-filter β sweep (extra ablation)");
    println!();
    println!("| β | AUC with calibration |");
    println!("|---|----------------------|");
    let mut model = AsteriaModel::new(ModelConfig::default());
    {
        let corpus_ref = &corpus;
        let test_ref = &test_set;
        let mut validate =
            |m: &AsteriaModel| -> f64 { auc(&asteria_scores(m, corpus_ref, test_ref, true)) };
        train(
            &mut model,
            &train_pairs,
            &TrainOptions {
                epochs: scale.epochs(),
                seed: 7,
                verbose: false,
            },
            Some(&mut validate),
        );
    }
    for beta in [0usize, 3, 6, 12, 24] {
        // Re-extract callee counts at this β for the test pairs.
        let corpus_beta = build_corpus(&CorpusConfig {
            beta,
            ..scale.corpus_config()
        });
        let scores: Vec<ScoredPair> = test_set
            .pairs
            .iter()
            .map(|p| {
                let ia = &corpus_beta.instances[p.a];
                let ib = &corpus_beta.instances[p.b];
                let m = model.similarity_from_encodings(
                    &model.encode(&ia.extracted.tree),
                    &model.encode(&ib.extracted.tree),
                ) as f64;
                ScoredPair::new(
                    calibrated_similarity(m, ia.extracted.callee_count, ib.extracted.callee_count),
                    p.homologous,
                )
            })
            .collect();
        println!("| {beta} | {:.4} |", auc(&scores));
        asteria::obs::info!("[fig9] beta {beta} done");
    }
}
