//! Table IV + the §V end-to-end comparison: vulnerability search over the
//! firmware corpus, thresholded at the Youden-index operating point, with
//! Asteria-vs-Gemini top-10 accuracy and end-to-end timing.

use std::sync::Arc;
use std::time::Instant;

use asteria::baselines::{extract_acfg, GeminiModel};
use asteria::compiler::Arch;
use asteria::eval::{auc, youden_threshold};
use asteria::vulnsearch::{
    build_firmware_corpus, top_k_accuracy, vulnerability_library, FirmwareConfig, IndexBuilder,
    SearchSession,
};
use asteria_bench::{Experiment, Scale};

fn main() {
    let scale = Scale::from_args();
    let exp = Experiment::setup(scale);

    // Operating point: the Youden-index threshold on the validation split
    // (the paper reports 0.84 on its data).
    let scores = exp.asteria_scores(&exp.test_set, true);
    let (threshold, j) = youden_threshold(&scores);
    asteria::obs::info!(
        "[table4] Youden threshold {threshold:.3} (J = {j:.3}), AUC {:.4}",
        auc(&scores)
    );

    let library = vulnerability_library();
    let fw_cfg = match scale {
        Scale::Smoke => FirmwareConfig {
            images: 16,
            ..Default::default()
        },
        Scale::Mid => FirmwareConfig {
            images: 40,
            ..Default::default()
        },
        Scale::Paper => FirmwareConfig {
            images: 80,
            ..Default::default()
        },
    };
    let firmware = build_firmware_corpus(&fw_cfg, &library);
    let total_functions: usize = firmware.iter().map(|i| i.function_count()).sum();
    asteria::obs::info!(
        "[table4] firmware corpus: {} images, {total_functions} functions",
        firmware.len()
    );

    let threads = asteria::exec::thread_count();
    asteria::obs::info!("[table4] offline/online phases on {threads} worker thread(s)");
    let t0 = Instant::now();
    let build = IndexBuilder::new(&exp.asteria)
        .build(&firmware)
        .expect("in-memory build cannot fail");
    let offline = t0.elapsed().as_secs_f64();
    let session = SearchSession::new(Arc::clone(&exp.asteria), build.index);
    let t1 = Instant::now();
    let results = match session.run(&firmware, &library, threshold, Arch::X86) {
        Ok(r) => r,
        Err(e) => {
            asteria::obs::warn!("[table4] error: {e}");
            std::process::exit(1);
        }
    };
    let online = t1.elapsed().as_secs_f64();

    println!("# Table IV — vulnerability search ({scale:?} scale, threshold {threshold:.2})");
    println!();
    println!(
        "| # | CVE | software | function | candidates | confirmed | planted | affected models |"
    );
    println!(
        "|---|-----|----------|----------|------------|-----------|---------|-----------------|"
    );
    let mut total_confirmed = 0;
    for (i, r) in results.iter().enumerate() {
        println!(
            "| {} | {} | {} | {} | {} | {} | {} | {} |",
            i + 1,
            r.cve,
            r.software,
            r.function,
            r.candidates,
            r.confirmed,
            r.total_vulnerable,
            if r.affected_models.is_empty() {
                "—".to_string()
            } else {
                r.affected_models.join(", ")
            }
        );
        total_confirmed += r.confirmed;
    }
    println!();
    println!(
        "total confirmed vulnerable functions: {total_confirmed} \
         (offline encode {offline:.1}s for {} functions, search {online:.2}s for 7 CVEs)",
        session.index().len()
    );

    // ---- §V end-to-end comparison vs Gemini -------------------------------
    println!();
    println!("## End-to-end comparison (top-10 accuracy), Asteria vs Gemini");
    println!();
    let asteria_acc = top_k_accuracy(&results, 10);

    // Gemini pipeline on the same corpus: embed every firmware function's
    // ACFG, rank against each CVE's ACFG embedding.
    let t2 = Instant::now();
    let mut gemini_embeddings = Vec::new();
    for (ii, img) in firmware.iter().enumerate() {
        for (bi, binary) in img.binaries.iter().enumerate() {
            for sym in binary.function_indices() {
                let acfg = extract_acfg(binary, sym).expect("acfg");
                let name = binary.symbols[sym].display_name();
                let gt = img
                    .planted
                    .iter()
                    .find(|p| p.binary_index == bi && p.display_name == name)
                    .map(|p| (p.cve_index, p.vulnerable));
                gemini_embeddings.push((ii, exp.gemini.embed(&acfg), gt));
            }
        }
    }
    let mut gemini_hits = 0usize;
    let mut gemini_possible = 0usize;
    for (cve_index, entry) in library.iter().enumerate() {
        let program = asteria::lang::parse(&entry.vulnerable_source).expect("parses");
        let binary = asteria::compiler::compile_program(&program, Arch::X86).expect("compiles");
        let sym = binary.symbol_index(entry.function).expect("symbol");
        let q = exp.gemini.embed(&extract_acfg(&binary, sym).expect("acfg"));
        let mut ranked: Vec<(f32, Option<(usize, bool)>)> = gemini_embeddings
            .iter()
            .map(|(_, e, gt)| (GeminiModel::similarity_from_embeddings(&q, e), *gt))
            .collect();
        ranked.sort_by(|a, b| b.0.total_cmp(&a.0));
        let hits = ranked
            .iter()
            .take(10)
            .filter(|(_, gt)| *gt == Some((cve_index, true)))
            .count();
        let planted = gemini_embeddings
            .iter()
            .filter(|(_, _, gt)| *gt == Some((cve_index, true)))
            .count();
        gemini_hits += hits.min(10);
        gemini_possible += planted.min(10);
    }
    let gemini_time = t2.elapsed().as_secs_f64();
    let gemini_acc = if gemini_possible == 0 {
        0.0
    } else {
        gemini_hits as f64 / gemini_possible as f64
    };

    println!("| system | top-10 accuracy | end-to-end seconds |");
    println!("|--------|-----------------|--------------------|");
    println!("| Asteria | {:.3} | {:.1} |", asteria_acc, offline + online);
    println!("| Gemini | {gemini_acc:.3} | {gemini_time:.1} |");
}
