//! Online-serving latency and throughput: `asteria serve`'s TCP path
//! under 1, 4 and 16 concurrent clients, batched vs unbatched.
//!
//! Every client fires queries rotating over the 7-CVE vulnerability
//! library (the paper's §V workload) back-to-back for a fixed number of
//! requests, measuring per-request wall latency. The **batched** server
//! (batch_size 16, ~4 ms dwell) coalesces concurrent identical queries
//! and answers them from one encode+rank via the session's in-batch
//! dedup; the **unbatched** server (batch_size 1, no dwell) pays full
//! price per request. On a saturated single core the dedup is exactly
//! what keeps tail latency down.
//!
//! Writes `BENCH_serve.json`. Flags: `--scale smoke|mid|paper`,
//! `--quiet`/`--verbose`.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Instant;

use asteria::core::{AsteriaModel, ModelConfig};
use asteria::serve::{start_tcp, ServeConfig, ServerHandle};
use asteria::vulnsearch::{
    build_firmware_corpus, vulnerability_library, FirmwareConfig, IndexBuilder, SearchSession,
};
use asteria_bench::Scale;

struct Run {
    clients: usize,
    batched: bool,
    p50_ms: f64,
    p95_ms: f64,
    throughput_rps: f64,
    served: u64,
}

fn percentile_ms(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)] * 1e3
}

fn start_server(session: Arc<SearchSession>, batched: bool) -> ServerHandle {
    let config = if batched {
        ServeConfig {
            batch_size: 16,
            batch_wait_ms: 4,
            ..ServeConfig::default()
        }
    } else {
        ServeConfig {
            batch_size: 1,
            batch_wait_ms: 0,
            ..ServeConfig::default()
        }
    };
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    start_tcp(session, config, listener).expect("start server")
}

fn run_load(session: &Arc<SearchSession>, clients: usize, batched: bool, per_client: usize) -> Run {
    let handle = start_server(Arc::clone(session), batched);
    let addr = handle.local_addr();
    let library = vulnerability_library();
    let t0 = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let library = library.clone();
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let mut stream = stream;
                let mut latencies = Vec::with_capacity(per_client);
                for k in 0..per_client {
                    // All clients walk the library in the same order, so
                    // concurrent requests frequently coincide on one CVE
                    // — the dedup opportunity a real vuln-search fleet
                    // presents when a new CVE drops.
                    let entry = &library[k % library.len()];
                    let source = entry
                        .vulnerable_source
                        .replace('\\', "\\\\")
                        .replace('"', "\\\"")
                        .replace('\n', "\\n")
                        .replace('\t', "\\t");
                    let line = format!(
                        "{{\"id\":{},\"op\":\"query\",\"function\":\"{}\",\"source\":\"{source}\"}}",
                        c * 1_000_000 + k,
                        entry.function,
                    );
                    let t = Instant::now();
                    stream
                        .write_all(format!("{line}\n").as_bytes())
                        .expect("send");
                    let mut reply = String::new();
                    reader.read_line(&mut reply).expect("reply");
                    latencies.push(t.elapsed().as_secs_f64());
                    assert!(
                        reply.contains("\"ok\":true"),
                        "query failed under load: {reply}"
                    );
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<f64> = Vec::new();
    for w in workers {
        latencies.extend(w.join().expect("client"));
    }
    let wall = t0.elapsed().as_secs_f64();
    let stats = handle.shutdown();
    latencies.sort_by(f64::total_cmp);
    Run {
        clients,
        batched,
        p50_ms: percentile_ms(&latencies, 0.50),
        p95_ms: percentile_ms(&latencies, 0.95),
        throughput_rps: latencies.len() as f64 / wall.max(1e-12),
        served: stats.ok,
    }
}

fn main() {
    let scale = Scale::from_args();
    let (images, per_client) = match scale {
        Scale::Smoke => (2, 24),
        Scale::Mid => (6, 48),
        Scale::Paper => (10, 96),
    };
    let model = AsteriaModel::new(ModelConfig {
        hidden_dim: 16,
        embed_dim: 8,
        ..Default::default()
    });
    let firmware = build_firmware_corpus(
        &FirmwareConfig {
            images,
            ..Default::default()
        },
        &vulnerability_library(),
    );
    let build = IndexBuilder::new(&model)
        .build(&firmware)
        .expect("in-memory build cannot fail");
    let session = Arc::new(SearchSession::new(model, build.index));
    asteria::obs::info!(
        "[bench_serve] index: {} functions from {} images",
        session.index().len(),
        firmware.len()
    );

    let mut runs = Vec::new();
    for clients in [1usize, 4, 16] {
        for batched in [false, true] {
            let run = run_load(&session, clients, batched, per_client);
            asteria::obs::info!(
                "[bench_serve] {} clients, {}: p50 {:.2} ms, p95 {:.2} ms, {:.1} req/s \
                 ({} served)",
                run.clients,
                if run.batched { "batched" } else { "unbatched" },
                run.p50_ms,
                run.p95_ms,
                run.throughput_rps,
                run.served
            );
            runs.push(run);
        }
    }

    println!("| clients | mode | p50 ms | p95 ms | req/s |");
    println!("|---------|------|--------|--------|-------|");
    for r in &runs {
        println!(
            "| {} | {} | {:.2} | {:.2} | {:.1} |",
            r.clients,
            if r.batched { "batched" } else { "unbatched" },
            r.p50_ms,
            r.p95_ms,
            r.throughput_rps
        );
    }

    // The acceptance bar: at 16 concurrent clients, batching (and its
    // in-batch dedup) must beat the unbatched tail.
    let by_key: HashMap<(usize, bool), &Run> =
        runs.iter().map(|r| ((r.clients, r.batched), r)).collect();
    let batched16 = by_key[&(16, true)];
    let unbatched16 = by_key[&(16, false)];
    println!(
        "16-client p95: batched {:.2} ms vs unbatched {:.2} ms ({:.2}x)",
        batched16.p95_ms,
        unbatched16.p95_ms,
        unbatched16.p95_ms / batched16.p95_ms.max(1e-12)
    );
    assert!(
        batched16.p95_ms < unbatched16.p95_ms,
        "batched p95 ({:.2} ms) must beat unbatched ({:.2} ms) at 16 clients",
        batched16.p95_ms,
        unbatched16.p95_ms
    );

    // Hand-rolled JSON (no serde in the offline workspace).
    let mut entries = String::new();
    for (i, r) in runs.iter().enumerate() {
        entries.push_str(&format!(
            "    {{\"clients\": {}, \"batched\": {}, \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \
             \"throughput_rps\": {:.2}, \"served\": {}}}{}\n",
            r.clients,
            r.batched,
            r.p50_ms,
            r.p95_ms,
            r.throughput_rps,
            r.served,
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    let json = format!(
        "{{\n  \"scale\": \"{scale:?}\",\n  \"images\": {images},\n  \
         \"indexed_functions\": {},\n  \"requests_per_client\": {per_client},\n  \
         \"runs\": [\n{entries}  ]\n}}\n",
        session.index().len(),
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    asteria::obs::info!("[bench_serve] wrote BENCH_serve.json");
}
