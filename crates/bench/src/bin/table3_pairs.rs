//! Table III: number of function pairs per architecture combination.

use asteria::datasets::{build_pairs, ARCH_COMBINATIONS};
use asteria_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let corpus = asteria::datasets::build_corpus(&scale.corpus_config());
    let pairs = build_pairs(&corpus, &scale.pair_config());
    let (train, test) = pairs.split(0.8, 5);

    println!("# Table III — function pairs per architecture combination ({scale:?} scale)");
    println!();
    println!("| arch-comb | pairs | train | test |");
    println!("|-----------|-------|-------|------|");
    for (a, b) in ARCH_COMBINATIONS {
        let all = pairs.for_combination(&corpus, a, b).len();
        let tr = train.for_combination(&corpus, a, b).len();
        let te = test.for_combination(&corpus, a, b).len();
        println!("| {a}-{b} | {all} | {tr} | {te} |");
    }
    println!(
        "| total | {} | {} | {} |",
        pairs.len(),
        train.len(),
        test.len()
    );
}
