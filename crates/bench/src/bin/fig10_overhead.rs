//! Fig. 10: computational overhead.
//!
//! (a) cumulative distribution of AST sizes;
//! (b) offline-phase time per function — decompilation (A-D),
//!     preprocessing (A-P), Tree-LSTM encoding (A-E) for Asteria; AST
//!     hashing for Diaphora (D-H); ACFG extraction (G-EX) and embedding
//!     (G-EN) for Gemini;
//! (c) online-phase time per pair for all three systems.

use asteria::baselines::{diaphora_similarity, extract_acfg, hash_ast, GeminiConfig, GeminiModel};
use asteria::core::{binarize, digitalize, AsteriaModel, ModelConfig};
use asteria::decompiler::decompile_function;
use asteria::eval::{cdf_points, measure_n, percentile};
use asteria_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let corpus = asteria::datasets::build_corpus(&scale.corpus_config());
    let model = AsteriaModel::new(ModelConfig::default());
    let gemini = GeminiModel::new(GeminiConfig::default());

    // ---- (a) AST size CDF -------------------------------------------------
    let sizes: Vec<f64> = corpus
        .instances
        .iter()
        .map(|i| i.extracted.ast_size as f64)
        .collect();
    println!(
        "# Fig. 10(a) — AST size CDF ({scale:?} scale, {} ASTs)",
        sizes.len()
    );
    println!();
    let mut sorted = sizes.clone();
    sorted.sort_by(f64::total_cmp);
    for bound in [20.0, 40.0, 80.0, 200.0] {
        let frac = sorted.iter().filter(|s| **s < bound).count() as f64 / sorted.len() as f64;
        println!("ASTs with size < {bound:>3}: {:.1}%", frac * 100.0);
    }
    println!(
        "min {} / median {} / p90 {} / max {}",
        sorted[0],
        percentile(&sorted, 50.0),
        percentile(&sorted, 90.0),
        sorted[sorted.len() - 1]
    );
    let cdf = cdf_points(&sizes);
    let step = (cdf.len() / 20).max(1);
    let pts: Vec<String> = cdf
        .iter()
        .step_by(step)
        .chain(cdf.last())
        .map(|(x, f)| format!("({x:.0},{f:.2})"))
        .collect();
    println!("CDF: {}", pts.join(" "));

    // ---- (b) offline time per function ------------------------------------
    // Sample functions across the corpus (the paper buckets by AST size;
    // we report aggregate per-function means per pipeline stage).
    let sample: Vec<(usize, usize)> = corpus
        .instances
        .iter()
        .enumerate()
        .step_by((corpus.instances.len() / 120).max(1))
        .map(|(_i, inst)| {
            let bi = corpus
                .binaries
                .iter()
                .position(|b| b.package == inst.package && b.arch == inst.arch)
                .expect("binary");
            let sym = corpus.binaries[bi]
                .binary
                .symbol_index(&inst.name)
                .expect("symbol");
            (bi, sym)
        })
        .collect();

    println!();
    println!("# Fig. 10(b) — offline phase, mean seconds per function");
    println!();
    println!("| stage | seconds/function |");
    println!("|-------|------------------|");
    let reps = 3u64;
    let t_decomp = measure_n(reps, || {
        let mut acc = 0.0;
        for (bi, sym) in &sample {
            let f = decompile_function(&corpus.binaries[*bi].binary, *sym).expect("decompile");
            acc += f.inst_count as f64;
        }
        acc
    });
    let decompiled: Vec<_> = sample
        .iter()
        .map(|(bi, sym)| decompile_function(&corpus.binaries[*bi].binary, *sym).expect("ok"))
        .collect();
    let t_prep = measure_n(reps, || {
        let mut acc = 0.0;
        for f in &decompiled {
            let t = binarize(&digitalize(f));
            acc += t.size() as f64;
        }
        acc
    });
    let trees: Vec<_> = decompiled
        .iter()
        .map(|f| binarize(&digitalize(f)))
        .collect();
    let t_encode = measure_n(reps, || {
        let mut acc = 0.0;
        for t in &trees {
            acc += model.encode(t)[0] as f64;
        }
        acc
    });
    let t_dhash = measure_n(reps, || {
        let mut acc = 0.0;
        for f in &decompiled {
            acc += hash_ast(&digitalize(f)).bits() as f64;
        }
        acc
    });
    let t_gex = measure_n(reps, || {
        let mut acc = 0.0;
        for (bi, sym) in &sample {
            let a = extract_acfg(&corpus.binaries[*bi].binary, *sym).expect("acfg");
            acc += a.len() as f64;
        }
        acc
    });
    let acfgs: Vec<_> = sample
        .iter()
        .map(|(bi, sym)| extract_acfg(&corpus.binaries[*bi].binary, *sym).expect("ok"))
        .collect();
    let t_gen = measure_n(reps, || {
        let mut acc = 0.0;
        for a in &acfgs {
            acc += gemini.embed(a)[0] as f64;
        }
        acc
    });
    let per_fn =
        |t: asteria::eval::Timing| t.total_seconds / (t.iterations as f64 * sample.len() as f64);
    println!("| A-D (Asteria decompile) | {:.3e} |", per_fn(t_decomp));
    println!("| A-P (Asteria preprocess) | {:.3e} |", per_fn(t_prep));
    println!("| A-E (Asteria encode) | {:.3e} |", per_fn(t_encode));
    println!("| D-H (Diaphora hash) | {:.3e} |", per_fn(t_dhash));
    println!("| G-EX (Gemini ACFG extract) | {:.3e} |", per_fn(t_gex));
    println!("| G-EN (Gemini embed) | {:.3e} |", per_fn(t_gen));

    // ---- (c) online time per pair -----------------------------------------
    println!();
    println!("# Fig. 10(c) — online phase, mean seconds per pair");
    println!();
    println!("| system | seconds/pair |");
    println!("|--------|--------------|");
    let enc: Vec<Vec<f32>> = trees.iter().map(|t| model.encode(t)).collect();
    let gemb: Vec<Vec<f32>> = acfgs.iter().map(|a| gemini.embed(a)).collect();
    let hashes: Vec<_> = decompiled
        .iter()
        .map(|f| hash_ast(&digitalize(f)))
        .collect();
    let n = enc.len();
    let online_reps = 200u64;
    let t_asteria = measure_n(online_reps, || {
        let mut acc = 0.0;
        for i in 0..n {
            acc += model.similarity_from_encodings(&enc[i], &enc[(i + 1) % n]) as f64;
        }
        acc
    });
    let t_gemini = measure_n(online_reps, || {
        let mut acc = 0.0;
        for i in 0..n {
            acc += GeminiModel::similarity_from_embeddings(&gemb[i], &gemb[(i + 1) % n]) as f64;
        }
        acc
    });
    let diaphora_reps = 3u64;
    let t_diaphora = measure_n(diaphora_reps, || {
        let mut acc = 0.0;
        for i in 0..n {
            acc += diaphora_similarity(&hashes[i], &hashes[(i + 1) % n]);
        }
        acc
    });
    let per_pair = |t: asteria::eval::Timing| t.total_seconds / (t.iterations as f64 * n as f64);
    let (a, g, d) = (
        per_pair(t_asteria),
        per_pair(t_gemini),
        per_pair(t_diaphora),
    );
    println!("| Asteria | {a:.3e} |");
    println!("| Gemini | {g:.3e} |");
    println!("| Diaphora | {d:.3e} |");
    println!();
    println!(
        "speedups: Asteria is {:.1}x faster than Gemini, {:.1}x faster than Diaphora",
        g / a,
        d / a
    );
}
