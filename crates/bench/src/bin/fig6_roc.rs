//! Fig. 6: ROC curves in the mixed cross-architecture evaluation for
//! Asteria, Asteria-WOC, Gemini, and Diaphora.

use asteria::eval::{auc, roc_curve, tpr_at_fpr};
use asteria_bench::{Experiment, Scale};

fn main() {
    let scale = Scale::from_args();
    let exp = Experiment::setup(scale);

    let systems = [
        ("Asteria", exp.asteria_scores(&exp.test_set, true)),
        ("Asteria-WOC", exp.asteria_scores(&exp.test_set, false)),
        ("Gemini", exp.gemini_scores(&exp.test_set)),
        ("Diaphora", exp.diaphora_scores(&exp.test_set)),
    ];

    println!("# Fig. 6 — mixed cross-architecture ROC ({scale:?} scale)");
    println!();
    println!("| system | AUC | TPR @ 5% FPR |");
    println!("|--------|-----|---------------|");
    for (name, scores) in &systems {
        println!(
            "| {name} | {:.4} | {:.3} |",
            auc(scores),
            tpr_at_fpr(scores, 0.05)
        );
    }
    println!();
    println!("ROC series (fpr,tpr per system, decimated to ≤25 points):");
    for (name, scores) in &systems {
        let roc = roc_curve(scores);
        let step = (roc.len() / 25).max(1);
        let pts: Vec<String> = roc
            .iter()
            .step_by(step)
            .chain(roc.last())
            .map(|p| format!("({:.3},{:.3})", p.fpr, p.tpr))
            .collect();
        println!("{name}: {}", pts.join(" "));
    }
}
