//! Extension experiment (paper §VII future work): robustness to
//! *cross-optimization* pairs. The model is trained on O1×O1
//! cross-architecture pairs; evaluation pairs an O1 binary of one
//! architecture against an **O0** binary of another — different
//! optimization level *and* different ISA at once.

use asteria::compiler::{compile_program_with, Arch, OptLevel};
use asteria::core::{calibrated_similarity, extract_function, DEFAULT_INLINE_BETA};
use asteria::datasets::{generate_package, GenConfig};
use asteria::eval::{auc, tpr_at_fpr, ScoredPair};
use asteria_bench::{Experiment, Scale};

fn main() {
    let scale = Scale::from_args();
    let exp = Experiment::setup(scale);

    // Build a fresh mini-corpus with both optimization levels. Packages
    // are disjoint from the training corpus (different seed space).
    let packages = 8;
    type Variant = (Arch, OptLevel, asteria::core::ExtractedFunction);
    let mut functions: Vec<(String, Vec<Variant>)> = Vec::new();
    for p in 0..packages {
        let cfg = GenConfig {
            functions: 6,
            max_depth: 3,
            seed: 0x0707 + p as u64,
        };
        let (_, program) = generate_package(&format!("xopt{p}"), &cfg);
        for func in &program.functions {
            let mut variants = Vec::new();
            for arch in Arch::ALL {
                for opt in [OptLevel::O0, OptLevel::O1] {
                    let bin = compile_program_with(&program, arch, opt).expect("compile");
                    let sym = bin.symbol_index(&func.name).expect("symbol");
                    if let Ok(f) = extract_function(&bin, sym, DEFAULT_INLINE_BETA) {
                        if f.ast_size >= 5 {
                            variants.push((arch, opt, f));
                        }
                    }
                }
            }
            functions.push((func.name.clone(), variants));
        }
    }

    // Score a pair set: homologous = same function, arch_a@O1 vs arch_b@O0;
    // negatives = different functions under the same regime.
    let score =
        |f1: &asteria::core::ExtractedFunction, f2: &asteria::core::ExtractedFunction| -> f64 {
            let m = exp.asteria.similarity_from_encodings(
                &exp.asteria.encode(&f1.tree),
                &exp.asteria.encode(&f2.tree),
            ) as f64;
            calibrated_similarity(m, f1.callee_count, f2.callee_count)
        };

    let run = |opt_b: OptLevel| -> (f64, f64, usize) {
        let mut scores = Vec::new();
        for (i, (_, variants)) in functions.iter().enumerate() {
            let a = variants
                .iter()
                .find(|(ar, op, _)| *ar == Arch::X64 && *op == OptLevel::O1);
            let b = variants
                .iter()
                .find(|(ar, op, _)| *ar == Arch::Arm && *op == opt_b);
            if let (Some((_, _, fa)), Some((_, _, fb))) = (a, b) {
                scores.push(ScoredPair::new(score(fa, fb), true));
                // Negative: pair with the next function's variant.
                let j = (i + 1) % functions.len();
                if let Some((_, _, fn_other)) = functions[j]
                    .1
                    .iter()
                    .find(|(ar, op, _)| *ar == Arch::Arm && *op == opt_b)
                {
                    scores.push(ScoredPair::new(score(fa, fn_other), false));
                }
            }
        }
        (auc(&scores), tpr_at_fpr(&scores, 0.05), scores.len())
    };

    println!("# Extension — cross-optimization robustness ({scale:?} scale)");
    println!();
    println!("Model trained on O1×O1 cross-architecture pairs; evaluated on");
    println!("x64@O1 vs arm@<level> pairs of *unseen* packages.");
    println!();
    println!("| evaluation regime | AUC | TPR @ 5% FPR | pairs |");
    println!("|-------------------|-----|---------------|-------|");
    let (a1, t1, n1) = run(OptLevel::O1);
    println!("| cross-arch, same opt (O1 vs O1) | {a1:.4} | {t1:.3} | {n1} |");
    let (a0, t0, n0) = run(OptLevel::O0);
    println!("| cross-arch, cross-opt (O1 vs O0) | {a0:.4} | {t0:.3} | {n0} |");
    println!();
    println!(
        "degradation from crossing optimization levels: {:.1} AUC points",
        (a1 - a0) * 100.0
    );
}
