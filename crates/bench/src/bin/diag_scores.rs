//! Diagnostic: per-system score distributions on the test split
//! (positives vs negatives). Not a paper figure — a debugging aid for the
//! evaluation pipeline.

use asteria::eval::Summary;
use asteria_bench::{Experiment, Scale};

fn describe(name: &str, scores: &[asteria::eval::ScoredPair]) {
    let pos: Vec<f64> = scores
        .iter()
        .filter(|s| s.positive)
        .map(|s| s.score)
        .collect();
    let neg: Vec<f64> = scores
        .iter()
        .filter(|s| !s.positive)
        .map(|s| s.score)
        .collect();
    let sp = Summary::of(&pos).expect("positives");
    let sn = Summary::of(&neg).expect("negatives");
    println!(
        "{name:12} pos: mean {:.3} med {:.3} min {:.3} | neg: mean {:.3} med {:.3} max {:.3}",
        sp.mean, sp.median, sp.min, sn.mean, sn.median, sn.max
    );
    let high_neg = neg.iter().filter(|v| **v > sp.median).count();
    println!(
        "{name:12} negatives above positive median: {high_neg}/{} ({:.1}%)",
        neg.len(),
        100.0 * high_neg as f64 / neg.len() as f64
    );
}

fn main() {
    let exp = Experiment::setup(Scale::from_args());
    describe("Asteria", &exp.asteria_scores(&exp.test_set, true));
    describe("Asteria-WOC", &exp.asteria_scores(&exp.test_set, false));
    describe("Gemini", &exp.gemini_scores(&exp.test_set));
    describe("Diaphora", &exp.diaphora_scores(&exp.test_set));
}
