//! Offline-phase throughput: serial vs parallel index build (the cost
//! the paper's Fig. 10 shows dominating end-to-end time) plus the online
//! ranking, with the bit-identity invariant checked on every run.
//!
//! Writes `BENCH_offline.json` to the working directory — the seed of the
//! perf trajectory. Flags: `--scale smoke|mid|paper`, `--threads N`
//! (default: all cores / `ASTERIA_THREADS`), `--quiet` (no stderr).
//!
//! Also measures the observability tax: the same parallel build with the
//! `asteria-obs` recorder recording vs hard-disabled, interleaved
//! min-of-N, asserting the overhead stays under 3% and that recording
//! never perturbs the index bits.

use std::sync::Arc;
use std::time::Instant;

use asteria::compiler::Arch;
use asteria::core::{AsteriaModel, ModelConfig};
use asteria::exec::{resolve_threads, StageClock};
use asteria::vulnsearch::{
    build_firmware_corpus, vulnerability_library, FirmwareConfig, IndexBuilder, IndexCache,
    SearchIndex, SearchSession,
};
use asteria_bench::Scale;

fn parse_threads() -> usize {
    let args: Vec<String> = std::env::args().collect();
    for w in args.windows(2) {
        if w[0] == "--threads" {
            if let Ok(n) = w[1].parse::<usize>() {
                return n;
            }
        }
    }
    0
}

/// Strict bit-level equality of two indexes: order, names, ground truth,
/// encoding bits, and extraction reports.
fn indexes_identical(a: &SearchIndex, b: &SearchIndex) -> bool {
    if a.extraction != b.extraction || a.functions.len() != b.functions.len() {
        return false;
    }
    a.functions.iter().zip(&b.functions).all(|(x, y)| {
        x.image == y.image
            && x.binary == y.binary
            && x.name == y.name
            && x.ground_truth == y.ground_truth
            && x.encoding.callee_count == y.encoding.callee_count
            && x.encoding.vector.len() == y.encoding.vector.len()
            && x.encoding
                .vector
                .iter()
                .zip(&y.encoding.vector)
                .all(|(p, q)| p.to_bits() == q.to_bits())
    })
}

fn main() {
    let scale = Scale::from_args();
    let threads = resolve_threads(parse_threads());
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let library = vulnerability_library();
    let images = match scale {
        Scale::Smoke => 10,
        Scale::Mid => 24,
        Scale::Paper => 60,
    };
    let firmware = build_firmware_corpus(
        &FirmwareConfig {
            images,
            ..Default::default()
        },
        &library,
    );
    let model = Arc::new(AsteriaModel::new(ModelConfig::default()));
    let total_functions: usize = firmware.iter().map(|i| i.function_count()).sum();
    asteria::obs::info!(
        "[bench_offline] {} images, {total_functions} functions, {cores} core(s), \
         {threads} worker thread(s)",
        firmware.len()
    );

    let clock = StageClock::new();

    // Offline phase: serial reference, then parallel.
    let t0 = Instant::now();
    let build_at = |threads: usize| {
        IndexBuilder::new(&model)
            .threads(threads)
            .build(&firmware)
            .expect("in-memory build cannot fail")
            .index
    };
    let serial_index = clock.time("offline-index(serial)", total_functions, 1, || build_at(1));
    let serial_offline = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let parallel_index = clock.time("offline-index(parallel)", total_functions, threads, || {
        build_at(threads)
    });
    let parallel_offline = t1.elapsed().as_secs_f64();

    let identical = indexes_identical(&serial_index, &parallel_index);

    // Incremental phase: a cold cached build populates the ASIX cache,
    // then a warm rebuild must serve every binary from it (zero
    // encodings) and still produce a bit-identical index.
    let mut cache = IndexCache::default();
    let t_cold = Instant::now();
    let (cold_index, cold_stats) = clock.time(
        "offline-index(cached,cold)",
        total_functions,
        threads,
        || {
            IndexBuilder::new(&model)
                .threads(threads)
                .build_into(&firmware, &mut cache)
        },
    );
    let index_cold = t_cold.elapsed().as_secs_f64();

    let t_warm = Instant::now();
    let (warm_index, warm_stats) = clock.time(
        "offline-index(cached,warm)",
        total_functions,
        threads,
        || {
            IndexBuilder::new(&model)
                .threads(threads)
                .build_into(&firmware, &mut cache)
        },
    );
    let index_warm = t_warm.elapsed().as_secs_f64();

    let warm_identical = indexes_identical(&cold_index, &warm_index)
        && indexes_identical(&serial_index, &warm_index);
    let warm_all_hits = warm_stats.misses == 0 && warm_stats.hits == cold_stats.misses;
    let warm_speedup = index_cold / index_warm.max(1e-12);

    // Online phase: rank the whole index against every CVE, serial vs
    // parallel, and require identical rankings. Each side is an online
    // `SearchSession` over its index — the same object `asteria serve`
    // answers from.
    let serial_session = SearchSession::new(Arc::clone(&model), serial_index).threads(1);
    let parallel_session = SearchSession::new(Arc::clone(&model), parallel_index).threads(threads);
    let queries: Vec<_> = library
        .iter()
        .map(|e| {
            serial_session
                .encode_cve(e, Arch::X86)
                .expect("library query encodes")
        })
        .collect();
    let t2 = Instant::now();
    let serial_hits: Vec<_> = queries.iter().map(|q| serial_session.rank(q)).collect();
    let serial_online = t2.elapsed().as_secs_f64();
    clock.record(asteria::exec::StageStats {
        stage: "online-search(serial)".into(),
        items: serial_session.index().len() * queries.len(),
        threads: 1,
        seconds: serial_online,
    });
    let t3 = Instant::now();
    let parallel_hits: Vec<_> = queries.iter().map(|q| parallel_session.rank(q)).collect();
    let parallel_online = t3.elapsed().as_secs_f64();
    clock.record(asteria::exec::StageStats {
        stage: "online-search(parallel)".into(),
        items: parallel_session.index().len() * queries.len(),
        threads,
        seconds: parallel_online,
    });
    let rankings_identical = serial_hits.iter().zip(&parallel_hits).all(|(a, b)| {
        a.len() == b.len()
            && a.iter()
                .zip(b)
                .all(|(x, y)| x.function == y.function && x.score.to_bits() == y.score.to_bits())
    });

    let offline_speedup = serial_offline / parallel_offline.max(1e-12);
    let online_speedup = serial_online / parallel_online.max(1e-12);

    // Observability tax on the offline encode stage: the same parallel
    // build with the recorder recording vs hard-disabled. Rounds are
    // interleaved and each side keeps its minimum, so a transient stall
    // on one round cannot bias either mode.
    const OBS_ROUNDS: usize = 3;
    let collector = asteria::obs::install();
    // A single smoke-scale build is ~0.1 s — too short to resolve a 3%
    // budget against scheduler jitter. Each timed sample repeats the
    // build until it spans ≥ ~0.25 s, and each mode keeps its best
    // sample across interleaved rounds.
    let reps = ((0.25 / parallel_offline.max(1e-9)).ceil() as usize).clamp(1, 64);
    let mut obs_enabled_seconds = f64::INFINITY;
    let mut obs_disabled_seconds = f64::INFINITY;
    for _ in 0..OBS_ROUNDS {
        asteria::obs::set_enabled(true);
        collector.reset();
        let t_on = Instant::now();
        let mut traced_index = None;
        for _ in 0..reps {
            traced_index = Some(build_at(threads));
        }
        obs_enabled_seconds = obs_enabled_seconds.min(t_on.elapsed().as_secs_f64() / reps as f64);
        asteria::obs::set_enabled(false);
        let t_off = Instant::now();
        let mut plain_index = None;
        for _ in 0..reps {
            plain_index = Some(build_at(threads));
        }
        obs_disabled_seconds =
            obs_disabled_seconds.min(t_off.elapsed().as_secs_f64() / reps as f64);
        assert!(
            indexes_identical(
                &traced_index.expect("reps ≥ 1"),
                &plain_index.expect("reps ≥ 1")
            ),
            "recording perturbed the index bits"
        );
    }
    collector.reset();
    let obs_overhead_pct = (obs_enabled_seconds / obs_disabled_seconds.max(1e-12) - 1.0) * 100.0;

    asteria::obs::info!("{}", clock.render().trim_end());
    println!("offline: serial {serial_offline:.3}s, parallel {parallel_offline:.3}s ({offline_speedup:.2}x on {threads} threads)");
    println!("cache:   cold {index_cold:.3}s ({cold_stats}), warm {index_warm:.3}s ({warm_stats}, {warm_speedup:.2}x)");
    println!("online:  serial {serial_online:.3}s, parallel {parallel_online:.3}s ({online_speedup:.2}x)");
    println!(
        "obs:     recording {obs_enabled_seconds:.3}s, disabled {obs_disabled_seconds:.3}s \
         ({obs_overhead_pct:+.2}% overhead, min of {OBS_ROUNDS}x{reps})"
    );
    println!("bit-identical index: {identical}; warm==cold: {warm_identical}; bit-identical rankings: {rankings_identical}");
    assert!(identical, "parallel index diverged from serial");
    assert!(warm_identical, "warm cached index diverged from cold");
    assert!(
        warm_all_hits,
        "warm rebuild re-encoded binaries: {warm_stats}"
    );
    assert!(rankings_identical, "parallel ranking diverged from serial");
    assert!(
        obs_overhead_pct < 3.0,
        "obs recording overhead {obs_overhead_pct:.2}% exceeds the 3% budget \
         (recording {obs_enabled_seconds:.3}s vs disabled {obs_disabled_seconds:.3}s)"
    );

    // Hand-rolled JSON (no serde in the offline workspace).
    let json = format!(
        "{{\n  \"scale\": \"{scale:?}\",\n  \"images\": {},\n  \"functions\": {},\n  \
         \"indexed_functions\": {},\n  \"available_cores\": {cores},\n  \"threads\": {threads},\n  \
         \"offline_serial_seconds\": {serial_offline:.6},\n  \
         \"offline_parallel_seconds\": {parallel_offline:.6},\n  \
         \"offline_speedup\": {offline_speedup:.4},\n  \
         \"index_cold_seconds\": {index_cold:.6},\n  \
         \"index_warm_seconds\": {index_warm:.6},\n  \
         \"index_warm_speedup\": {warm_speedup:.4},\n  \
         \"cache_cold_misses\": {},\n  \
         \"cache_warm_hits\": {},\n  \
         \"cache_warm_misses\": {},\n  \
         \"online_serial_seconds\": {serial_online:.6},\n  \
         \"online_parallel_seconds\": {parallel_online:.6},\n  \
         \"online_speedup\": {online_speedup:.4},\n  \
         \"obs_enabled_seconds\": {obs_enabled_seconds:.6},\n  \
         \"obs_disabled_seconds\": {obs_disabled_seconds:.6},\n  \
         \"obs_overhead_pct\": {obs_overhead_pct:.4},\n  \
         \"bit_identical_index\": {identical},\n  \
         \"bit_identical_rankings\": {rankings_identical}\n}}\n",
        firmware.len(),
        total_functions,
        serial_session.index().len(),
        cold_stats.misses,
        warm_stats.hits,
        warm_stats.misses,
    );
    std::fs::write("BENCH_offline.json", &json).expect("write BENCH_offline.json");
    asteria::obs::info!("[bench_offline] wrote BENCH_offline.json");
}
