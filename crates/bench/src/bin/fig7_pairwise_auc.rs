//! Fig. 7: AUC per pair-wise architecture combination for all four
//! systems.

use asteria::datasets::ARCH_COMBINATIONS;
use asteria::eval::auc;
use asteria_bench::{Experiment, Scale};

fn main() {
    let scale = Scale::from_args();
    let exp = Experiment::setup(scale);

    println!("# Fig. 7 — pair-wise cross-architecture AUC ({scale:?} scale)");
    println!();
    println!("| arch-comb | Asteria | Asteria-WOC | Gemini | Diaphora |");
    println!("|-----------|---------|-------------|--------|----------|");
    for (a, b) in ARCH_COMBINATIONS {
        let subset = exp.test_set.for_combination(&exp.corpus, a, b);
        if subset.is_empty() {
            continue;
        }
        let asteria = auc(&exp.asteria_scores(&subset, true));
        let woc = auc(&exp.asteria_scores(&subset, false));
        let gemini = auc(&exp.gemini_scores(&subset));
        let diaphora = auc(&exp.diaphora_scores(&subset));
        println!("| {a}-{b} | {asteria:.4} | {woc:.4} | {gemini:.4} | {diaphora:.4} |");
    }
}
