//! Fig. 8: model AUC as the node-embedding size sweeps 8 → 128.
//!
//! The paper finds 16 near-optimal with a flat top and a slight decline at
//! 128 (overfitting a 43-label vocabulary).

use asteria::core::{train, AsteriaModel, ModelConfig, TrainOptions};
use asteria::datasets::{build_corpus, build_pairs, to_train_pairs};
use asteria::eval::auc;
use asteria_bench::{asteria_scores, Scale};

fn main() {
    let scale = Scale::from_args();
    let corpus = build_corpus(&scale.corpus_config());
    let pairs = build_pairs(&corpus, &scale.pair_config());
    let (train_set, test_set) = pairs.split(0.8, 5);
    let train_pairs = to_train_pairs(&corpus, &train_set);

    println!("# Fig. 8 — AUC vs embedding size ({scale:?} scale)");
    println!();
    println!("| embedding size | AUC (best epoch) |");
    println!("|----------------|------------------|");
    for embed_dim in [8usize, 16, 32, 64, 128] {
        let mut model = AsteriaModel::new(ModelConfig {
            embed_dim,
            ..Default::default()
        });
        let mut best = f64::NEG_INFINITY;
        {
            let corpus_ref = &corpus;
            let test_ref = &test_set;
            let mut validate = |m: &AsteriaModel| -> f64 {
                let a = auc(&asteria_scores(m, corpus_ref, test_ref, true));
                if a > best {
                    best = a;
                }
                a
            };
            train(
                &mut model,
                &train_pairs,
                &TrainOptions {
                    epochs: scale.epochs(),
                    seed: 7,
                    verbose: false,
                },
                Some(&mut validate),
            );
        }
        println!("| {embed_dim} | {best:.4} |");
        asteria::obs::info!("[fig8] embedding {embed_dim}: {best:.4}");
    }
}
