//! `asteria-bench` — experiment harnesses regenerating every table and
//! figure of the paper, plus Criterion micro-benchmarks for the timing
//! studies.
//!
//! Each table/figure has a dedicated binary (`table1_nodes`, `fig6_roc`,
//! …) that prints the same rows/series the paper reports. All binaries
//! accept `--scale smoke|paper` (default `smoke`): `smoke` finishes on one
//! CPU core in minutes; `paper` raises corpus sizes and epochs toward the
//! paper's scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;

use asteria::baselines::{extract_acfg, train_gemini, Acfg, GeminiConfig, GeminiModel};
use asteria::core::{calibrated_similarity, train, AsteriaModel, ModelConfig, TrainOptions};
use asteria::datasets::{
    build_corpus_with_extra, build_pairs, to_train_pairs, Corpus, CorpusConfig, Pair, PairConfig,
    PairSet,
};
use asteria::eval::{auc, ScoredPair};

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes on one core; what EXPERIMENTS.md records.
    Smoke,
    /// Tens of minutes on one core: a stronger statistical check.
    Mid,
    /// Larger corpora and more epochs, toward the paper's scale (hours).
    Paper,
}

impl Scale {
    /// Parses `--scale …` from argv, defaulting to `Smoke`.
    ///
    /// Also applies the shared bench verbosity flags: `--quiet` silences
    /// all stderr progress lines (they go through `asteria::obs`
    /// events), `--verbose` turns on debug-level lines.
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--quiet") {
            asteria::obs::set_verbosity(asteria::obs::Verbosity::Quiet);
        } else if args.iter().any(|a| a == "--verbose") {
            asteria::obs::set_verbosity(asteria::obs::Verbosity::Verbose);
        }
        for w in args.windows(2) {
            if w[0] == "--scale" {
                match w[1].as_str() {
                    "paper" => return Scale::Paper,
                    "mid" => return Scale::Mid,
                    _ => {}
                }
            }
        }
        if args.iter().any(|a| a == "--paper") {
            return Scale::Paper;
        }
        Scale::Smoke
    }

    /// Corpus configuration at this scale.
    pub fn corpus_config(self) -> CorpusConfig {
        match self {
            Scale::Smoke => CorpusConfig {
                packages: 12,
                functions_per_package: 8,
                seed: 42,
                ..Default::default()
            },
            Scale::Mid => CorpusConfig {
                packages: 24,
                functions_per_package: 10,
                seed: 42,
                ..Default::default()
            },
            Scale::Paper => CorpusConfig {
                packages: 60,
                functions_per_package: 12,
                seed: 42,
                ..Default::default()
            },
        }
    }

    /// Pair-sampling configuration at this scale.
    pub fn pair_config(self) -> PairConfig {
        match self {
            Scale::Smoke => PairConfig {
                positives_per_combination: 60,
                negatives_per_combination: 60,
                seed: 3,
            },
            Scale::Mid => PairConfig {
                positives_per_combination: 150,
                negatives_per_combination: 150,
                seed: 3,
            },
            Scale::Paper => PairConfig {
                positives_per_combination: 400,
                negatives_per_combination: 400,
                seed: 3,
            },
        }
    }

    /// Training epochs at this scale (the paper trains 60).
    pub fn epochs(self) -> usize {
        match self {
            Scale::Smoke => 10,
            Scale::Mid => 16,
            Scale::Paper => 60,
        }
    }
}

/// A ready-to-evaluate experiment context: corpus, split pair sets, and
/// trained Asteria + Gemini models.
pub struct Experiment {
    /// The cross-compiled corpus.
    pub corpus: Corpus,
    /// Training pairs (80%).
    pub train_set: PairSet,
    /// Held-out pairs (20%).
    pub test_set: PairSet,
    /// Trained Asteria model, shared so search sessions can hold it.
    pub asteria: Arc<AsteriaModel>,
    /// Trained Gemini model.
    pub gemini: GeminiModel,
    /// ACFGs for every corpus instance (aligned with `corpus.instances`).
    pub acfgs: Vec<Acfg>,
}

/// Extracts the ACFG of every corpus instance.
pub fn corpus_acfgs(corpus: &Corpus) -> Vec<Acfg> {
    corpus
        .instances
        .iter()
        .map(|inst| {
            let cb = corpus
                .binaries
                .iter()
                .find(|b| b.package == inst.package && b.arch == inst.arch)
                .expect("binary for instance");
            let sym = cb
                .binary
                .symbol_index(&inst.name)
                .expect("symbol for instance");
            extract_acfg(&cb.binary, sym).expect("acfg extraction")
        })
        .collect()
}

impl Experiment {
    /// Builds corpus + pairs and trains both models. Progress is logged to
    /// stderr because training takes a minute or two at smoke scale.
    pub fn setup(scale: Scale) -> Experiment {
        Self::setup_with_model(scale, ModelConfig::default())
    }

    /// Like [`Experiment::setup`] but with a custom Asteria configuration
    /// (used by the Fig. 8/9 ablation binaries).
    pub fn setup_with_model(scale: Scale, model_config: ModelConfig) -> Experiment {
        asteria::obs::info!("[setup] building corpus…");
        // Mirror the paper's Buildroot setup: the training corpus contains
        // library code of the same style later searched for vulnerabilities
        // (the *patched* CVE variants — never the vulnerable queries).
        let library_pkg: Vec<(String, String)> = asteria::vulnsearch::vulnerability_library()
            .iter()
            .map(|e| (format!("lib_{}", e.software), e.patched_source.clone()))
            .enumerate()
            .map(|(i, (n, s))| (format!("{n}{i}"), s))
            .collect();
        let corpus = build_corpus_with_extra(&scale.corpus_config(), &library_pkg);
        asteria::obs::info!(
            "[setup] corpus: {} binaries, {} function instances",
            corpus.binaries.len(),
            corpus.instances.len()
        );
        let pairs = build_pairs(&corpus, &scale.pair_config());
        let (train_set, test_set) = pairs.split(0.8, 5);
        asteria::obs::info!(
            "[setup] pairs: {} train / {} test",
            train_set.len(),
            test_set.len()
        );

        asteria::obs::info!("[setup] training Asteria ({} epochs)…", scale.epochs());
        let mut asteria = AsteriaModel::new(model_config);
        let train_pairs = to_train_pairs(&corpus, &train_set);
        {
            let corpus_ref = &corpus;
            let test_ref = &test_set;
            let mut validate =
                |m: &AsteriaModel| -> f64 { auc(&asteria_scores(m, corpus_ref, test_ref, true)) };
            train(
                &mut asteria,
                &train_pairs,
                &TrainOptions {
                    epochs: scale.epochs(),
                    seed: 7,
                    verbose: false,
                },
                Some(&mut validate),
            );
        }

        asteria::obs::info!("[setup] extracting ACFGs…");
        let acfgs = corpus_acfgs(&corpus);
        asteria::obs::info!("[setup] training Gemini ({} epochs)…", scale.epochs());
        let mut gemini = GeminiModel::new(GeminiConfig::default());
        let gemini_pairs: Vec<(Acfg, Acfg, bool)> = train_set
            .pairs
            .iter()
            .map(|p| (acfgs[p.a].clone(), acfgs[p.b].clone(), p.homologous))
            .collect();
        {
            let acfgs_ref = &acfgs;
            let test_ref = &test_set;
            let mut validate =
                |m: &GeminiModel| -> f64 { auc(&gemini_scores_with(m, acfgs_ref, test_ref)) };
            train_gemini(
                &mut gemini,
                &gemini_pairs,
                scale.epochs(),
                9,
                Some(&mut validate),
            );
        }
        asteria::obs::info!("[setup] done.");
        Experiment {
            corpus,
            train_set,
            test_set,
            asteria: Arc::new(asteria),
            gemini,
            acfgs,
        }
    }

    /// Scored test pairs for Asteria (with or without calibration —
    /// "Asteria" vs "Asteria-WOC" in Figs. 6–7).
    pub fn asteria_scores(&self, set: &PairSet, calibrate: bool) -> Vec<ScoredPair> {
        asteria_scores(&self.asteria, &self.corpus, set, calibrate)
    }

    /// Scored test pairs for Gemini.
    pub fn gemini_scores(&self, set: &PairSet) -> Vec<ScoredPair> {
        gemini_scores_with(&self.gemini, &self.acfgs, set)
    }

    /// Scored test pairs for Diaphora.
    pub fn diaphora_scores(&self, set: &PairSet) -> Vec<ScoredPair> {
        use asteria::baselines::{diaphora_similarity, hash_ast, DiaphoraHash};
        use asteria::core::digitalize;
        let mut hashes: Vec<Option<DiaphoraHash>> = vec![None; self.corpus.instances.len()];
        let corpus = &self.corpus;
        let mut hash_of = |i: usize| {
            if hashes[i].is_none() {
                let inst = &corpus.instances[i];
                let cb = corpus
                    .binaries
                    .iter()
                    .find(|b| b.package == inst.package && b.arch == inst.arch)
                    .expect("binary");
                let sym = cb.binary.symbol_index(&inst.name).expect("symbol");
                let df =
                    asteria::decompiler::decompile_function(&cb.binary, sym).expect("decompile");
                hashes[i] = Some(hash_ast(&digitalize(&df)));
            }
            hashes[i].clone().expect("just computed")
        };
        set.pairs
            .iter()
            .map(|p| {
                let ha = hash_of(p.a);
                let hb = hash_of(p.b);
                ScoredPair::new(diaphora_similarity(&ha, &hb), p.homologous)
            })
            .collect()
    }
}

/// Asteria scores over a pair set (standalone so validation closures can
/// use it during training).
pub fn asteria_scores(
    model: &AsteriaModel,
    corpus: &Corpus,
    set: &PairSet,
    calibrate: bool,
) -> Vec<ScoredPair> {
    // Encode each referenced instance once, fanning the Tree-LSTM passes
    // (the expensive part) out over the worker pool; the fan-out is
    // order-preserving so scores match a serial scan bit for bit.
    let mut needed: Vec<usize> = set.pairs.iter().flat_map(|p| [p.a, p.b]).collect();
    needed.sort_unstable();
    needed.dedup();
    let encoded = asteria::exec::par_map(&needed, |&i| {
        model.encode(&corpus.instances[i].extracted.tree)
    });
    let mut enc: Vec<Option<Vec<f32>>> = vec![None; corpus.instances.len()];
    for (i, v) in needed.into_iter().zip(encoded) {
        enc[i] = Some(v);
    }
    let encoding = |i: usize| enc[i].as_deref().expect("encoded above");
    set.pairs
        .iter()
        .map(|p: &Pair| {
            let va = encoding(p.a);
            let vb = encoding(p.b);
            let m = model.similarity_from_encodings(va, vb) as f64;
            let score = if calibrate {
                calibrated_similarity(
                    m,
                    corpus.instances[p.a].extracted.callee_count,
                    corpus.instances[p.b].extracted.callee_count,
                )
            } else {
                m
            };
            ScoredPair::new(score, p.homologous)
        })
        .collect()
}

/// Gemini scores over a pair set.
pub fn gemini_scores_with(model: &GeminiModel, acfgs: &[Acfg], set: &PairSet) -> Vec<ScoredPair> {
    let mut emb: Vec<Option<Vec<f32>>> = vec![None; acfgs.len()];
    let mut embed = |i: usize| {
        if emb[i].is_none() {
            emb[i] = Some(model.embed(&acfgs[i]));
        }
        emb[i].clone().expect("just computed")
    };
    set.pairs
        .iter()
        .map(|p| {
            let ea = embed(p.a);
            let eb = embed(p.b);
            let s = GeminiModel::similarity_from_embeddings(&ea, &eb) as f64;
            ScoredPair::new(s, p.homologous)
        })
        .collect()
}

/// Prints a markdown-ish table row.
pub fn print_row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}
