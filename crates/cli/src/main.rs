//! `asteria-cli` — a command-line front end over the whole reproduction.
//!
//! ```text
//! asteria-cli compile   <src.mc> --arch x86|x64|arm|ppc -o <out.sbf>
//! asteria-cli info      <bin.sbf>
//! asteria-cli disasm    <bin.sbf> [--function NAME]
//! asteria-cli decompile <bin.sbf> [--function NAME]
//! asteria-cli run       <bin.sbf> <function> [int args…]
//! asteria-cli strip     <bin.sbf> -o <out.sbf>
//! asteria-cli train     -o <model.bin> [--packages N] [--epochs E]
//! asteria-cli similarity <a.sbf>:<func> <b.sbf>:<func> [--model model.bin]
//! asteria-cli index build -o <index.asix> [--model model.bin] [--images N] [--seed S] [--threads N]
//! asteria-cli index info  <index.asix>
//! asteria-cli serve     --listen ADDR | --stdio [--model M] [--index I.asix] [--images N] [--seed S]
//! ```

use std::fs;
use std::io::Write as _;
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;

use asteria::compiler::{compile_program, decode_function, Arch, Binary, SymbolKind, Vm};
use asteria::core::{
    extract_function, function_similarity, train, AsteriaModel, ModelConfig, TrainOptions,
    DEFAULT_INLINE_BETA,
};
use asteria::datasets::{build_corpus, build_pairs, to_train_pairs, CorpusConfig, PairConfig};
use asteria::decompiler::{decompile_function, render_function};
use asteria::serve::{self, ServeConfig};
use asteria::vulnsearch::{
    build_firmware_corpus, vulnerability_library, FirmwareConfig, IndexBuilder, IndexCache,
    SearchSession, ASIX_VERSION,
};

/// A CLI failure, split by who got it wrong: the invocation (exit code
/// 2, like the conventional shell usage-error code) or the input data
/// (exit code 1 — unparsable binaries, decode/decompile failures, I/O).
enum CliError {
    /// The command line itself is malformed.
    Usage(String),
    /// The inputs failed to load, decode, decompile or execute.
    Data(String),
}

impl CliError {
    fn usage(msg: impl Into<String>) -> CliError {
        CliError::Usage(msg.into())
    }
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Data(msg)
    }
}

impl From<&str> for CliError {
    fn from(msg: &str) -> Self {
        CliError::Data(msg.to_string())
    }
}

/// Global observability flags, valid on any command: `--quiet` /
/// `--verbose` set the stderr verbosity, `--trace FILE` writes a JSONL
/// span/event log, `--metrics-out FILE` writes a Prometheus-style text
/// exposition. Recording is only enabled when an output is requested, so
/// plain runs keep the zero-cost no-op path.
struct GlobalFlags {
    trace: Option<String>,
    metrics_out: Option<String>,
}

impl GlobalFlags {
    fn wants_recording(&self) -> bool {
        self.trace.is_some() || self.metrics_out.is_some()
    }
}

/// Strips the global flags out of the raw argument list (they may appear
/// anywhere) so the per-command positional parsing never sees them.
///
/// Returns the flags parsed so far even on a usage error, so the one
/// teardown path can still flush whatever artifacts *were* requested.
fn extract_global_flags(args: Vec<String>) -> (GlobalFlags, Vec<String>, Option<CliError>) {
    let mut flags = GlobalFlags {
        trace: None,
        metrics_out: None,
    };
    let mut rest = Vec::with_capacity(args.len());
    let mut err = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quiet" => asteria::obs::set_verbosity(asteria::obs::Verbosity::Quiet),
            "--verbose" => asteria::obs::set_verbosity(asteria::obs::Verbosity::Verbose),
            "--trace" => match it.next() {
                Some(v) => flags.trace = Some(v),
                None => err = err.or_else(|| Some(CliError::usage("missing --trace FILE"))),
            },
            "--metrics-out" => match it.next() {
                Some(v) => flags.metrics_out = Some(v),
                None => err = err.or_else(|| Some(CliError::usage("missing --metrics-out FILE"))),
            },
            _ => rest.push(a),
        }
    }
    (flags, rest, err)
}

/// Writes the requested observability artifacts from the global
/// collector. Metrics carry wall-clock timings, so these files are the
/// only outputs allowed to differ between otherwise identical runs.
fn write_obs_outputs(flags: &GlobalFlags) -> Result<(), String> {
    let Some(c) = asteria::obs::collector() else {
        return Ok(());
    };
    if let Some(path) = &flags.metrics_out {
        fs::write(path, c.render_prometheus()).map_err(|e| format!("{path}: {e}"))?;
    }
    if let Some(path) = &flags.trace {
        fs::write(path, c.render_trace_jsonl()).map_err(|e| format!("{path}: {e}"))?;
    }
    if asteria::obs::verbosity() == asteria::obs::Verbosity::Verbose {
        eprint!("{}", c.render_summary());
    }
    Ok(())
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (flags, args, flag_err) = extract_global_flags(raw);
    if flags.wants_recording() {
        asteria::obs::install().reset();
    }
    let result = match flag_err {
        Some(e) => Err(e),
        None => match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| dispatch(&args))) {
            Ok(result) => result,
            Err(payload) => {
                // A panic exits through the same teardown as every other
                // path: flush whatever was recorded, then re-raise.
                let _ = write_obs_outputs(&flags);
                std::panic::resume_unwind(payload);
            }
        },
    };
    teardown(&flags, result)
}

fn dispatch(args: &[String]) -> Result<(), CliError> {
    match args.first().map(String::as_str) {
        Some("compile") => cmd_compile(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("disasm") => cmd_disasm(&args[1..]),
        Some("decompile") => cmd_decompile(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("strip") => cmd_strip(&args[1..]),
        Some("train") => cmd_train(&args[1..]),
        Some("similarity") => cmd_similarity(&args[1..]),
        Some("index") => cmd_index(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("help") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(CliError::usage(format!(
            "unknown command `{other}` (try `asteria-cli help`)"
        ))),
    }
}

/// The single exit path: every outcome — success, data error, usage
/// error, even a bad global flag — flushes `--metrics-out`/`--trace`
/// before the exit code is chosen. A partial trace is exactly what a
/// failure post-mortem needs.
fn teardown(flags: &GlobalFlags, result: Result<(), CliError>) -> ExitCode {
    let wrote = write_obs_outputs(flags);
    match (result, wrote) {
        (Ok(()), Ok(())) => ExitCode::SUCCESS,
        (Ok(()), Err(e)) | (Err(CliError::Data(e)), _) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
        (Err(CliError::Usage(e)), _) => {
            eprintln!("usage error: {e}");
            ExitCode::from(2)
        }
    }
}

fn print_usage() {
    eprintln!(
        "asteria-cli — cross-platform binary code similarity toolkit\n\n\
         commands:\n\
         \x20 compile   <src.mc> --arch x86|x64|arm|ppc -o <out.sbf>\n\
         \x20 info      <bin.sbf>\n\
         \x20 disasm    <bin.sbf> [--function NAME]\n\
         \x20 decompile <bin.sbf> [--function NAME]\n\
         \x20 run       <bin.sbf> <function> [int args…]\n\
         \x20 strip     <bin.sbf> -o <out.sbf>\n\
         \x20 train     -o <model.bin> [--packages N] [--epochs E]\n\
         \x20 similarity <a.sbf>:<func> <b.sbf>:<func> [--model model.bin]\n\
         \x20 index build -o <index.asix> [--model model.bin] [--images N] [--seed S] [--threads N]\n\
         \x20 index info  <index.asix>\n\
         \x20 serve     --listen ADDR | --stdio [--model M] [--index I.asix] [--images N] [--seed S]\n\
         \x20           [--threads N] [--batch-size N] [--batch-wait-ms MS] [--queue-capacity N]\n\
         \x20           [--deadline-ms MS] [--max-request-bytes N]\n\n\
         global flags (any command):\n\
         \x20 --quiet | --verbose      stderr verbosity\n\
         \x20 --metrics-out FILE       write Prometheus-style metrics\n\
         \x20 --trace FILE             write a JSONL span/event trace"
    );
}

/// Fetches the value following a `--flag` (or `-o`) option.
fn opt_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.windows(2)
        .find(|w| w[0] == flag)
        .map(|w| w[1].as_str())
}

/// Positional arguments: everything not part of a flag pair.
fn positionals(args: &[String]) -> Vec<&str> {
    let mut out = Vec::new();
    let mut skip = false;
    for (i, a) in args.iter().enumerate() {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with('-') {
            // Flags take a value except boolean-style ones (none today).
            skip = i + 1 < args.len();
            continue;
        }
        out.push(a.as_str());
    }
    out
}

fn load_binary(path: &str) -> Result<Binary, String> {
    let bytes = fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Binary::load(bytes.as_slice()).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn cmd_compile(args: &[String]) -> Result<(), CliError> {
    let pos = positionals(args);
    let src_path = pos
        .first()
        .ok_or_else(|| CliError::usage("usage: compile <src.mc> --arch A -o OUT"))?;
    let arch_name = opt_value(args, "--arch").unwrap_or("x86");
    let arch = Arch::from_name(arch_name)
        .ok_or_else(|| CliError::usage(format!("unknown architecture {arch_name}")))?;
    let out = opt_value(args, "-o")
        .or(opt_value(args, "--out"))
        .ok_or_else(|| CliError::usage("missing -o OUT"))?;
    let src = fs::read_to_string(src_path).map_err(|e| format!("{src_path}: {e}"))?;
    let program = asteria::lang::parse(&src).map_err(|e| e.to_string())?;
    let binary = compile_program(&program, arch).map_err(|e| e.to_string())?;
    let mut buf = Vec::new();
    binary.save(&mut buf).map_err(|e| e.to_string())?;
    fs::write(out, buf).map_err(|e| format!("{out}: {e}"))?;
    println!(
        "compiled {} functions for {} → {} ({} bytes of code)",
        binary.function_indices().len(),
        arch,
        out,
        binary.code_size()
    );
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), CliError> {
    let pos = positionals(args);
    let path = pos
        .first()
        .ok_or_else(|| CliError::usage("usage: info <bin.sbf>"))?;
    let b = load_binary(path)?;
    println!("{b}");
    println!(
        "{:<6} {:<10} {:<28} {:>8} {:>7} {:>7}",
        "idx", "kind", "name", "offset", "bytes", "params"
    );
    for (i, s) in b.symbols.iter().enumerate() {
        println!(
            "{:<6} {:<10} {:<28} {:>8x} {:>7} {:>7}",
            i,
            match s.kind {
                SymbolKind::Function => "function",
                SymbolKind::External => "external",
            },
            s.display_name(),
            s.offset,
            s.code.len(),
            s.param_count
        );
    }
    Ok(())
}

fn resolve_function(b: &Binary, name: Option<&str>) -> Result<Vec<usize>, String> {
    match name {
        Some(n) => {
            let idx = b
                .symbols
                .iter()
                .position(|s| s.display_name() == n)
                .ok_or_else(|| format!("no function named {n}"))?;
            Ok(vec![idx])
        }
        None => Ok(b.function_indices()),
    }
}

fn cmd_disasm(args: &[String]) -> Result<(), CliError> {
    let pos = positionals(args);
    let path = pos
        .first()
        .ok_or_else(|| CliError::usage("usage: disasm <bin.sbf> [--function NAME]"))?;
    let b = load_binary(path)?;
    for idx in resolve_function(&b, opt_value(args, "--function"))? {
        let s = &b.symbols[idx];
        if s.kind != SymbolKind::Function {
            continue;
        }
        println!("{} <{}>:", b.arch, s.display_name());
        let insts = decode_function(&s.code, b.arch).map_err(|e| e.to_string())?;
        for (i, inst) in insts.iter().enumerate() {
            println!("  {i:>4}: {inst}");
        }
        println!();
    }
    Ok(())
}

fn cmd_decompile(args: &[String]) -> Result<(), CliError> {
    let pos = positionals(args);
    let path = pos
        .first()
        .ok_or_else(|| CliError::usage("usage: decompile <bin.sbf> [--function NAME]"))?;
    let b = load_binary(path)?;
    for idx in resolve_function(&b, opt_value(args, "--function"))? {
        if b.symbols[idx].kind != SymbolKind::Function {
            continue;
        }
        let f = decompile_function(&b, idx).map_err(|e| e.to_string())?;
        print!("{}", render_function(&f, &b));
        println!();
    }
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), CliError> {
    let pos = positionals(args);
    if pos.len() < 2 {
        return Err(CliError::usage(
            "usage: run <bin.sbf> <function> [int args…]",
        ));
    }
    let b = load_binary(pos[0])?;
    let sym = b
        .symbols
        .iter()
        .position(|s| s.display_name() == pos[1])
        .ok_or_else(|| format!("no function named {}", pos[1]))?;
    let call_args: Result<Vec<i64>, _> = pos[2..].iter().map(|a| a.parse::<i64>()).collect();
    let call_args = call_args.map_err(|e| CliError::usage(format!("bad argument: {e}")))?;
    let result = Vm::new(&b)
        .call(sym, &call_args)
        .map_err(|e| e.to_string())?;
    println!("{result}");
    Ok(())
}

fn cmd_strip(args: &[String]) -> Result<(), CliError> {
    let pos = positionals(args);
    let path = pos
        .first()
        .ok_or_else(|| CliError::usage("usage: strip <bin.sbf> -o OUT"))?;
    let out = opt_value(args, "-o")
        .or(opt_value(args, "--out"))
        .ok_or_else(|| CliError::usage("missing -o OUT"))?;
    let mut b = load_binary(path)?;
    b.strip();
    let mut buf = Vec::new();
    b.save(&mut buf).map_err(|e| e.to_string())?;
    fs::write(out, buf).map_err(|e| format!("{out}: {e}"))?;
    println!("stripped → {out}");
    Ok(())
}

fn cmd_train(args: &[String]) -> Result<(), CliError> {
    let out = opt_value(args, "-o")
        .or(opt_value(args, "--out"))
        .ok_or_else(|| CliError::usage("missing -o MODEL"))?;
    let packages: usize = opt_value(args, "--packages")
        .unwrap_or("8")
        .parse()
        .map_err(|_| CliError::usage("bad --packages"))?;
    let epochs: usize = opt_value(args, "--epochs")
        .unwrap_or("8")
        .parse()
        .map_err(|_| CliError::usage("bad --epochs"))?;
    asteria::obs::info!("building corpus ({packages} packages × 4 ISAs)…");
    let corpus = build_corpus(&CorpusConfig {
        packages,
        ..Default::default()
    });
    let pairs = build_pairs(&corpus, &PairConfig::default());
    let (train_set, _) = pairs.split(0.8, 5);
    asteria::obs::info!("training on {} pairs for {epochs} epochs…", train_set.len());
    let mut model = AsteriaModel::new(ModelConfig::default());
    let stats = train(
        &mut model,
        &to_train_pairs(&corpus, &train_set),
        &TrainOptions {
            epochs,
            seed: 7,
            verbose: true,
        },
        None,
    );
    fs::write(out, model.snapshot()).map_err(|e| format!("{out}: {e}"))?;
    println!(
        "saved model to {out} (final loss {:.4})",
        stats.last().map(|s| s.mean_loss).unwrap_or(f32::NAN)
    );
    Ok(())
}

/// `index build` / `index info`: the persistent ASIX embedding cache.
fn cmd_index(args: &[String]) -> Result<(), CliError> {
    match args.first().map(String::as_str) {
        Some("build") => cmd_index_build(&args[1..]),
        Some("info") => cmd_index_info(&args[1..]),
        other => Err(CliError::usage(format!(
            "usage: index build|info …, got {:?}",
            other.unwrap_or("nothing")
        ))),
    }
}

/// Loads model weights from a file into a default-config model,
/// surfacing mismatched or corrupt weights as a data error (exit 1),
/// never a panic.
fn load_model(path: Option<&str>) -> Result<AsteriaModel, CliError> {
    let mut model = AsteriaModel::new(ModelConfig::default());
    if let Some(m) = path {
        let bytes = fs::read(m).map_err(|e| format!("{m}: {e}"))?;
        model
            .restore(&bytes)
            .map_err(|e| format!("{m}: not a loadable model: {e}"))?;
    }
    Ok(model)
}

fn cmd_index_build(args: &[String]) -> Result<(), CliError> {
    let out = opt_value(args, "-o")
        .or(opt_value(args, "--out"))
        .ok_or_else(|| CliError::usage("missing -o INDEX"))?;
    let images: usize = opt_value(args, "--images")
        .unwrap_or("6")
        .parse()
        .map_err(|_| CliError::usage("bad --images"))?;
    let seed: u64 = opt_value(args, "--seed")
        .unwrap_or("77")
        .parse()
        .map_err(|_| CliError::usage("bad --seed"))?;
    let threads: usize = opt_value(args, "--threads")
        .unwrap_or("0")
        .parse()
        .map_err(|_| CliError::usage("bad --threads"))?;
    let model = load_model(opt_value(args, "--model"))?;

    let firmware = build_firmware_corpus(
        &FirmwareConfig {
            images,
            seed,
            ..Default::default()
        },
        &vulnerability_library(),
    );
    // `.cache(out)` seeds the incremental build from an existing index at
    // the output path (a corrupt one costs a cold rebuild, never the
    // run) and persists the refreshed cache back when the build is done.
    let build = IndexBuilder::new(&model)
        .threads(threads)
        .cache(out)
        .build(&firmware)
        .map_err(|e| e.to_string())?;
    println!(
        "indexed {} functions from {} images ({})",
        build.index.len(),
        firmware.len(),
        build.index.extraction
    );
    println!("embedding cache: {}", build.stats);
    println!(
        "wrote {out}: {} cached binaries, {} cached functions",
        build.cache.len(),
        build.cache.function_count()
    );
    Ok(())
}

fn cmd_index_info(args: &[String]) -> Result<(), CliError> {
    let pos = positionals(args);
    let path = pos
        .first()
        .ok_or_else(|| CliError::usage("usage: index info <index.asix>"))?;
    let bytes = fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let cache = IndexCache::load(bytes.as_slice()).map_err(|e| format!("{path}: {e}"))?;
    println!("ASIX index {path} (format v{ASIX_VERSION})");
    println!("model weights digest:  {:#018x}", cache.model_digest);
    println!("extraction params:     {:#018x}", cache.params_digest);
    println!("cached binaries:       {}", cache.len());
    println!("cached functions:      {}", cache.function_count());
    Ok(())
}

fn parse_target(spec: &str) -> Result<(&str, &str), CliError> {
    spec.split_once(':')
        .ok_or_else(|| CliError::usage(format!("expected <file.sbf>:<function>, got {spec}")))
}

fn cmd_similarity(args: &[String]) -> Result<(), CliError> {
    let pos = positionals(args);
    if pos.len() < 2 {
        return Err(CliError::usage(
            "usage: similarity <a.sbf>:<func> <b.sbf>:<func> [--model M]",
        ));
    }
    let (path_a, func_a) = parse_target(pos[0])?;
    let (path_b, func_b) = parse_target(pos[1])?;
    let ba = load_binary(path_a)?;
    let bb = load_binary(path_b)?;
    let sym_a = ba
        .symbols
        .iter()
        .position(|s| s.display_name() == func_a)
        .ok_or_else(|| format!("{path_a}: no function {func_a}"))?;
    let sym_b = bb
        .symbols
        .iter()
        .position(|s| s.display_name() == func_b)
        .ok_or_else(|| format!("{path_b}: no function {func_b}"))?;

    let mut model = AsteriaModel::new(ModelConfig::default());
    match opt_value(args, "--model") {
        Some(m) => {
            let bytes = fs::read(m).map_err(|e| format!("{m}: {e}"))?;
            model
                .load(bytes.as_slice())
                .map_err(|e| format!("{m}: {e}"))?;
        }
        None => {
            asteria::obs::info!(
                "note: scoring with untrained weights (pass --model for a trained one)"
            )
        }
    }

    let fa = extract_function(&ba, sym_a, DEFAULT_INLINE_BETA).map_err(|e| e.to_string())?;
    let fb = extract_function(&bb, sym_b, DEFAULT_INLINE_BETA).map_err(|e| e.to_string())?;
    let ea = asteria::core::encode_function(&model, &fa);
    let eb = asteria::core::encode_function(&model, &fb);
    let m = model.similarity_from_encodings(&ea.vector, &eb.vector);
    let f = function_similarity(&model, &ea, &eb);
    println!(
        "{func_a} [{}; {} nodes]  vs  {func_b} [{}; {} nodes]",
        ba.arch, fa.ast_size, bb.arch, fb.ast_size
    );
    println!("AST similarity M(T1,T2)       = {m:.4}");
    println!(
        "calibrated similarity F(F1,F2) = {f:.4}  (callees {} vs {})",
        fa.callee_count, fb.callee_count
    );
    Ok(())
}

/// Parses a numeric `--flag N`, falling back to `default` when absent.
fn num_opt<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Result<T, CliError> {
    match opt_value(args, flag) {
        Some(v) => v
            .parse()
            .map_err(|_| CliError::usage(format!("bad {flag}: {v}"))),
        None => Ok(default),
    }
}

/// `serve`: the long-running similarity-query daemon. Loads the model
/// and builds (or restores, with `--index`) the search index **once**,
/// then answers line-delimited JSON queries over TCP (`--listen ADDR`)
/// or stdin/stdout (`--stdio`) until EOF, a `shutdown` op, or
/// SIGINT/SIGTERM — at which point it drains in-flight requests before
/// exiting, so the usual teardown still flushes `--metrics-out`/`--trace`.
fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    let stdio = args.iter().any(|a| a == "--stdio");
    let listen = opt_value(args, "--listen");
    if stdio == listen.is_some() {
        return Err(CliError::usage(
            "serve needs exactly one of --listen ADDR or --stdio",
        ));
    }
    let defaults = ServeConfig::default();
    let config = ServeConfig {
        batch_size: num_opt(args, "--batch-size", defaults.batch_size)?,
        batch_wait_ms: num_opt(args, "--batch-wait-ms", defaults.batch_wait_ms)?,
        queue_capacity: num_opt(args, "--queue-capacity", defaults.queue_capacity)?,
        default_deadline_ms: num_opt(args, "--deadline-ms", defaults.default_deadline_ms)?,
        max_request_bytes: num_opt(args, "--max-request-bytes", defaults.max_request_bytes)?,
        // Undocumented test/bench knob: pad per-batch latency to force
        // queueing so backpressure paths can be exercised deterministically.
        process_delay_ms: num_opt(args, "--process-delay-ms", defaults.process_delay_ms)?,
    };
    let images: usize = num_opt(args, "--images", 6)?;
    let seed: u64 = num_opt(args, "--seed", 77)?;
    let threads: usize = num_opt(args, "--threads", 0)?;

    let model = load_model(opt_value(args, "--model"))?;
    let firmware = build_firmware_corpus(
        &FirmwareConfig {
            images,
            seed,
            ..Default::default()
        },
        &vulnerability_library(),
    );
    let mut builder = IndexBuilder::new(&model).threads(threads);
    if let Some(path) = opt_value(args, "--index") {
        builder = builder.cache(path);
    }
    let build = builder.build(&firmware).map_err(|e| e.to_string())?;
    asteria::obs::info!(
        "index ready: {} functions from {} images ({})",
        build.index.len(),
        firmware.len(),
        build.stats
    );
    let session = Arc::new(SearchSession::new(model, build.index).threads(threads));

    serve::signal::install_handlers();
    let stats = if stdio {
        // Responses own stdout in stdio mode; status goes to stderr.
        serve::run_stdio(session, config, std::io::stdin().lock(), std::io::stdout())
    } else {
        let addr = listen.expect("checked above");
        let listener =
            TcpListener::bind(addr).map_err(|e| format!("cannot listen on {addr}: {e}"))?;
        let handle = serve::start_tcp(session, config, listener).map_err(|e| e.to_string())?;
        // Announce the bound address on stdout (and flush past any block
        // buffering) so `--listen 127.0.0.1:0` callers can discover the
        // kernel-assigned port.
        println!("listening on {}", handle.local_addr());
        let _ = std::io::stdout().flush();
        handle.wait()
    };
    asteria::obs::info!(
        "serve: {} responses ({} ok, {} query errors, {} malformed, {} oversized, \
         {} overloaded, {} deadline exceeded, {} refused in shutdown)",
        stats.total(),
        stats.ok,
        stats.query_errors,
        stats.malformed,
        stats.oversized,
        stats.overloaded,
        stats.deadline_exceeded,
        stats.shutting_down
    );
    Ok(())
}
