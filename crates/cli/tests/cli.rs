//! End-to-end tests of the command-line tool, driving the real binary.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_asteria-cli"))
}

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("asteria_cli_test_{}_{name}", std::process::id()));
    p
}

const DEMO: &str = "int double_it(int x) { return x * 2; }\n\
                    int saturate(int x) { if (x > 100) { return 100; } return x; }\n";

fn write_demo() -> PathBuf {
    let src = temp_path("demo.mc");
    std::fs::write(&src, DEMO).expect("write source");
    src
}

#[test]
fn compile_info_run_roundtrip() {
    let src = write_demo();
    let out = temp_path("demo_arm.sbf");

    let s = cli()
        .args([
            "compile",
            src.to_str().unwrap(),
            "--arch",
            "arm",
            "-o",
            out.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(s.status.success(), "{}", String::from_utf8_lossy(&s.stderr));

    let info = cli()
        .args(["info", out.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(info.status.success());
    let text = String::from_utf8_lossy(&info.stdout);
    assert!(text.contains("double_it"), "{text}");
    assert!(text.contains("saturate"), "{text}");

    let run = cli()
        .args(["run", out.to_str().unwrap(), "double_it", "21"])
        .output()
        .expect("spawn");
    assert!(run.status.success());
    assert_eq!(String::from_utf8_lossy(&run.stdout).trim(), "42");

    let run2 = cli()
        .args(["run", out.to_str().unwrap(), "saturate", "1000"])
        .output()
        .expect("spawn");
    assert_eq!(String::from_utf8_lossy(&run2.stdout).trim(), "100");
}

#[test]
fn decompile_and_disasm_render() {
    let src = write_demo();
    let out = temp_path("demo_x64.sbf");
    assert!(cli()
        .args([
            "compile",
            src.to_str().unwrap(),
            "--arch",
            "x64",
            "-o",
            out.to_str().unwrap()
        ])
        .status()
        .expect("spawn")
        .success());

    let dec = cli()
        .args(["decompile", out.to_str().unwrap(), "--function", "saturate"])
        .output()
        .expect("spawn");
    let text = String::from_utf8_lossy(&dec.stdout);
    assert!(text.contains("int saturate(int a0)"), "{text}");
    assert!(text.contains("return 100;"), "{text}");

    let dis = cli()
        .args(["disasm", out.to_str().unwrap()])
        .output()
        .expect("spawn");
    let text = String::from_utf8_lossy(&dis.stdout);
    assert!(text.contains("x64 <double_it>:"), "{text}");
    assert!(text.contains("ret"), "{text}");
}

#[test]
fn strip_removes_names_and_similarity_scores() {
    let src = write_demo();
    let arm = temp_path("sim_arm.sbf");
    let x86 = temp_path("sim_x86.sbf");
    for (arch, out) in [("arm", &arm), ("x86", &x86)] {
        assert!(cli()
            .args([
                "compile",
                src.to_str().unwrap(),
                "--arch",
                arch,
                "-o",
                out.to_str().unwrap()
            ])
            .status()
            .expect("spawn")
            .success());
    }

    let stripped = temp_path("stripped.sbf");
    assert!(cli()
        .args([
            "strip",
            arm.to_str().unwrap(),
            "-o",
            stripped.to_str().unwrap()
        ])
        .status()
        .expect("spawn")
        .success());
    let info = cli()
        .args(["info", stripped.to_str().unwrap()])
        .output()
        .expect("spawn");
    let text = String::from_utf8_lossy(&info.stdout);
    assert!(text.contains("sub_"), "{text}");
    assert!(!text.contains("double_it"), "{text}");

    let sim = cli()
        .args([
            "similarity",
            &format!("{}:saturate", arm.display()),
            &format!("{}:saturate", x86.display()),
        ])
        .output()
        .expect("spawn");
    assert!(
        sim.status.success(),
        "{}",
        String::from_utf8_lossy(&sim.stderr)
    );
    let text = String::from_utf8_lossy(&sim.stdout);
    assert!(text.contains("calibrated similarity"), "{text}");
}

#[test]
fn unknown_command_fails_gracefully() {
    let out = cli().args(["frobnicate"]).output().expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn missing_file_reports_error() {
    let out = cli()
        .args(["info", "/nonexistent/file.sbf"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn usage_errors_exit_with_code_2() {
    // Missing positional argument.
    let out = cli().args(["disasm"]).output().expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
    // Bad flag value.
    let src = write_demo();
    let out = cli()
        .args([
            "compile",
            src.to_str().unwrap(),
            "--arch",
            "mips",
            "-o",
            "/tmp/never.sbf",
        ])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown architecture"));
    // Non-integer run argument.
    let bin = temp_path("usage_arm.sbf");
    assert!(cli()
        .args([
            "compile",
            src.to_str().unwrap(),
            "--arch",
            "arm",
            "-o",
            bin.to_str().unwrap()
        ])
        .status()
        .expect("spawn")
        .success());
    let out = cli()
        .args(["run", bin.to_str().unwrap(), "double_it", "not-a-number"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn malformed_sbf_exits_with_code_1_not_a_panic() {
    let junk = temp_path("junk.sbf");
    std::fs::write(&junk, b"not an sbf file at all").expect("write junk");
    for cmd in ["info", "disasm", "decompile"] {
        let out = cli()
            .args([cmd, junk.to_str().unwrap()])
            .output()
            .expect("spawn");
        assert_eq!(out.status.code(), Some(1), "{cmd}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("cannot parse"), "{cmd}: {err}");
        assert!(!err.contains("panicked"), "{cmd}: {err}");
    }
}

#[test]
fn index_build_then_warm_rebuild_serves_every_binary_from_cache() {
    let idx = temp_path("cache.asix");
    let _ = std::fs::remove_file(&idx);

    let cold = cli()
        .args([
            "index",
            "build",
            "-o",
            idx.to_str().unwrap(),
            "--images",
            "2",
        ])
        .output()
        .expect("spawn");
    assert!(
        cold.status.success(),
        "{}",
        String::from_utf8_lossy(&cold.stderr)
    );
    let text = String::from_utf8_lossy(&cold.stdout);
    assert!(text.contains("embedding cache: 0 hits"), "{text}");
    assert!(text.contains("cached binaries"), "{text}");

    let warm = cli()
        .args([
            "index",
            "build",
            "-o",
            idx.to_str().unwrap(),
            "--images",
            "2",
        ])
        .output()
        .expect("spawn");
    assert!(warm.status.success());
    let text = String::from_utf8_lossy(&warm.stdout);
    assert!(text.contains("0 misses"), "warm rebuild re-encoded: {text}");
    assert!(!text.contains("embedding cache: 0 hits"), "{text}");

    let info = cli()
        .args(["index", "info", idx.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(info.status.success());
    let text = String::from_utf8_lossy(&info.stdout);
    assert!(text.contains("format v1"), "{text}");
    assert!(text.contains("model weights digest"), "{text}");
    assert!(text.contains("cached binaries"), "{text}");
}

#[test]
fn corrupt_index_file_is_a_typed_error_not_a_panic() {
    let idx = temp_path("corrupt.asix");
    std::fs::write(&idx, b"XSIA definitely not an index").expect("write junk");

    // `index info` must fail loudly with the typed error.
    let out = cli()
        .args(["index", "info", idx.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(!err.contains("panicked"), "{err}");
    assert!(err.contains("bad magic"), "{err}");

    // `index build` must warn, discard the junk, and rebuild cold.
    let out = cli()
        .args([
            "index",
            "build",
            "-o",
            idx.to_str().unwrap(),
            "--images",
            "2",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("ignoring unusable index cache"), "{err}");
    assert!(cli()
        .args(["index", "info", idx.to_str().unwrap()])
        .status()
        .expect("spawn")
        .success());
}

#[test]
fn index_build_rejects_bad_model_file_with_exit_1() {
    let junk_model = temp_path("junk_model.bin");
    std::fs::write(&junk_model, b"not a model snapshot").expect("write junk");
    let idx = temp_path("never.asix");
    let out = cli()
        .args([
            "index",
            "build",
            "-o",
            idx.to_str().unwrap(),
            "--model",
            junk_model.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(!err.contains("panicked"), "{err}");
    assert!(err.contains("not a loadable model"), "{err}");
}

#[test]
fn index_usage_errors_exit_with_code_2() {
    // No subcommand.
    let out = cli().args(["index"]).output().expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    // Missing -o.
    let out = cli().args(["index", "build"]).output().expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing -o"));
}

#[test]
fn obs_flags_write_metrics_and_trace_quietly() {
    let idx = temp_path("obs.asix");
    let _ = std::fs::remove_file(&idx);
    let prom = temp_path("obs.prom");
    let trace = temp_path("obs.jsonl");

    let out = cli()
        .args([
            "index",
            "build",
            "-o",
            idx.to_str().unwrap(),
            "--images",
            "2",
            "--quiet",
            "--metrics-out",
            prom.to_str().unwrap(),
            "--trace",
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // --quiet: not a byte on stderr — yet both artifacts are written.
    assert!(
        out.stderr.is_empty(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let prom_text = std::fs::read_to_string(&prom).expect("metrics file");
    assert!(
        prom_text.contains("# TYPE asteria_functions_indexed_total counter"),
        "{prom_text}"
    );
    assert!(
        prom_text.contains("asteria_cache_misses_total"),
        "{prom_text}"
    );
    assert!(
        prom_text.contains("asteria_decompile_lift_seconds_bucket"),
        "{prom_text}"
    );
    assert!(
        prom_text.contains("asteria_span_count{path=\"index-build/encode-binary\"}"),
        "{prom_text}"
    );

    let trace_text = std::fs::read_to_string(&trace).expect("trace file");
    for line in trace_text.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "not a JSON object line: {line}"
        );
    }
    assert!(
        trace_text.contains("\"path\":\"index-build\""),
        "{trace_text}"
    );
    assert!(
        trace_text.contains("\"path\":\"index-build/encode-binary\""),
        "{trace_text}"
    );
}

#[test]
fn obs_flags_missing_value_is_a_usage_error() {
    for flag in ["--metrics-out", "--trace"] {
        let out = cli().args(["index", "info", flag]).output().expect("spawn");
        assert_eq!(out.status.code(), Some(2), "{flag}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("usage error"),
            "{flag}"
        );
    }
}

#[test]
fn corrupt_code_reports_decode_offset() {
    // Compile a good binary, then scribble over the first symbol's code
    // so disassembly hits a bad opcode; stderr must name the byte offset.
    let src = write_demo();
    let bin = temp_path("corrupt_arm.sbf");
    assert!(cli()
        .args([
            "compile",
            src.to_str().unwrap(),
            "--arch",
            "arm",
            "-o",
            bin.to_str().unwrap()
        ])
        .status()
        .expect("spawn")
        .success());
    let bytes = std::fs::read(&bin).expect("read sbf");
    let mut b = asteria::compiler::Binary::load(bytes.as_slice()).expect("parse sbf");
    b.symbols[0].code = vec![0xff; 8]; // 0xff is an invalid ARM opcode
    let mut buf = Vec::new();
    b.save(&mut buf).expect("re-save");
    std::fs::write(&bin, &buf).expect("write corrupted");
    let out = cli()
        .args(["disasm", bin.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(!err.contains("panicked"), "{err}");
    assert!(
        err.contains("bad opcode") && err.contains("at byte 0"),
        "{err}"
    );
}
