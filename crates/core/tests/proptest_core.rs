//! Property-based tests on the core data structures: binarization
//! invariants over arbitrary trees and encoder totality/determinism.

use proptest::prelude::*;

use asteria_core::nodes::AstTree;
use asteria_core::{binarize, AsteriaModel, ModelConfig, NodeType};

/// Builds a random tree from a parent-pointer list (index i attaches to
/// some earlier node) plus per-node label picks.
fn arb_tree() -> impl Strategy<Value = AstTree> {
    proptest::collection::vec((0usize..10_000, 0usize..NodeType::VOCAB), 0..40).prop_map(|nodes| {
        let all = NodeType::all();
        let mut t = AstTree::with_root(NodeType::Block);
        for (parent_seed, label_idx) in nodes {
            let parent = (parent_seed % t.size()) as u32;
            t.add(parent, all[label_idx]);
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// LCRS binarization preserves node count and the label multiset.
    #[test]
    fn binarize_preserves_nodes(t in arb_tree()) {
        let b = binarize(&t);
        prop_assert_eq!(b.size(), t.size());
        let mut la: Vec<u16> = (0..t.size() as u32).map(|i| t.label(i)).collect();
        let mut lb: Vec<u16> = (0..b.size() as u32).map(|i| b.label(i)).collect();
        la.sort_unstable();
        lb.sort_unstable();
        prop_assert_eq!(la, lb);
    }

    /// The binary tree reaches every node exactly once in post-order,
    /// children always before parents.
    #[test]
    fn postorder_is_a_valid_schedule(t in arb_tree()) {
        let b = binarize(&t);
        let order = b.postorder();
        prop_assert_eq!(order.len(), b.size());
        let mut seen = vec![false; b.size()];
        for &n in &order {
            if let Some(l) = b.left(n) {
                prop_assert!(seen[l as usize], "left child after parent");
            }
            if let Some(r) = b.right(n) {
                prop_assert!(seen[r as usize], "right child after parent");
            }
            prop_assert!(!seen[n as usize], "node visited twice");
            seen[n as usize] = true;
        }
    }

    /// Depth never exceeds node count and LCRS never shrinks depth.
    #[test]
    fn binarize_depth_bounds(t in arb_tree()) {
        let b = binarize(&t);
        prop_assert!(b.depth() <= b.size());
        prop_assert!(b.depth() >= t.depth());
    }
}

proptest! {
    // The encoder cases are slower; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Encoding is total, finite, and deterministic on arbitrary trees.
    #[test]
    fn encoder_is_total_and_deterministic(t in arb_tree()) {
        let model = AsteriaModel::new(ModelConfig {
            embed_dim: 8,
            hidden_dim: 12,
            ..Default::default()
        });
        let b = binarize(&t);
        let v1 = model.encode(&b);
        let v2 = model.encode(&b);
        prop_assert_eq!(&v1, &v2);
        prop_assert!(v1.iter().all(|x| x.is_finite()));
        // Self-similarity of any tree is a valid probability.
        let s = model.similarity_from_encodings(&v1, &v2);
        prop_assert!((0.0..=1.0).contains(&s));
    }
}
