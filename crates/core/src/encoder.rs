//! The Binary Tree-LSTM AST encoder (paper §III-B, equations 1–7).

use rand::Rng;

use asteria_nn::{Embedding, Graph, NodeId, ParamId, ParamStore, Tensor};

use crate::binarize::BinTree;

/// Initialization of the (absent) child states of leaf nodes — the paper's
/// Fig. 9 "Leaf-0 vs Leaf-1" ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeafInit {
    /// All-zeros hidden/cell states (the paper's default, and winner).
    Zeros,
    /// All-ones hidden/cell states.
    Ones,
}

/// The Binary Tree-LSTM network 𝒩(·).
///
/// One set of weights encodes any tree bottom-up: for every node the two
/// forget gates (eq. 1–2), input and output gates (eq. 3–4) and the cached
/// state (eq. 5) combine the node's embedding with its children's hidden
/// states; the cell and hidden states (eq. 6–7) then propagate upward. The
/// hidden state of the root is the encoding of the AST.
#[derive(Debug, Clone, Copy)]
pub struct TreeLstm {
    emb: Embedding,
    // Forget gates (shared W and bias, four U matrices — eq. 1–2).
    w_f: ParamId,
    u_f_ll: ParamId,
    u_f_lr: ParamId,
    u_f_rl: ParamId,
    u_f_rr: ParamId,
    b_f: ParamId,
    // Input gate (eq. 3).
    w_i: ParamId,
    u_i_l: ParamId,
    u_i_r: ParamId,
    b_i: ParamId,
    // Output gate (eq. 4).
    w_o: ParamId,
    u_o_l: ParamId,
    u_o_r: ParamId,
    b_o: ParamId,
    // Cached state (eq. 5).
    w_u: ParamId,
    u_u_l: ParamId,
    u_u_r: ParamId,
    b_u: ParamId,
    hidden: usize,
    leaf_init: LeafInit,
}

impl TreeLstm {
    /// Registers all Tree-LSTM parameters in `store`.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        vocab: usize,
        embed_dim: usize,
        hidden_dim: usize,
        leaf_init: LeafInit,
        rng: &mut R,
    ) -> Self {
        let emb = Embedding::new(store, "tlstm.emb", vocab, embed_dim, rng);
        let w = |store: &mut ParamStore, name: &str, rng: &mut R| {
            store.add(name, Tensor::xavier(hidden_dim, embed_dim, rng))
        };
        let u = |store: &mut ParamStore, name: &str, rng: &mut R| {
            store.add(name, Tensor::xavier(hidden_dim, hidden_dim, rng))
        };
        let b = |store: &mut ParamStore, name: &str| store.add(name, Tensor::zeros(hidden_dim, 1));
        TreeLstm {
            emb,
            w_f: w(store, "tlstm.w_f", rng),
            u_f_ll: u(store, "tlstm.u_f_ll", rng),
            u_f_lr: u(store, "tlstm.u_f_lr", rng),
            u_f_rl: u(store, "tlstm.u_f_rl", rng),
            u_f_rr: u(store, "tlstm.u_f_rr", rng),
            b_f: b(store, "tlstm.b_f"),
            w_i: w(store, "tlstm.w_i", rng),
            u_i_l: u(store, "tlstm.u_i_l", rng),
            u_i_r: u(store, "tlstm.u_i_r", rng),
            b_i: b(store, "tlstm.b_i"),
            w_o: w(store, "tlstm.w_o", rng),
            u_o_l: u(store, "tlstm.u_o_l", rng),
            u_o_r: u(store, "tlstm.u_o_r", rng),
            b_o: b(store, "tlstm.b_o"),
            w_u: w(store, "tlstm.w_u", rng),
            u_u_l: u(store, "tlstm.u_u_l", rng),
            u_u_r: u(store, "tlstm.u_u_r", rng),
            b_u: b(store, "tlstm.b_u"),
            hidden: hidden_dim,
            leaf_init,
        }
    }

    /// Hidden (encoding) dimension.
    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    /// Embedding dimension.
    pub fn embed_dim(&self) -> usize {
        self.emb.dim()
    }

    /// Encodes a binarized AST, returning the root's hidden-state node.
    ///
    /// Evaluation is an explicit post-order loop (batch size is inherently
    /// 1, as the paper notes — the computation shape follows the tree).
    pub fn encode(&self, g: &mut Graph, store: &ParamStore, tree: &BinTree) -> NodeId {
        // Hoist parameter reads so each weight appears once on the tape.
        let w_f = g.param(store, self.w_f);
        let u_f_ll = g.param(store, self.u_f_ll);
        let u_f_lr = g.param(store, self.u_f_lr);
        let u_f_rl = g.param(store, self.u_f_rl);
        let u_f_rr = g.param(store, self.u_f_rr);
        let b_f = g.param(store, self.b_f);
        let w_i = g.param(store, self.w_i);
        let u_i_l = g.param(store, self.u_i_l);
        let u_i_r = g.param(store, self.u_i_r);
        let b_i = g.param(store, self.b_i);
        let w_o = g.param(store, self.w_o);
        let u_o_l = g.param(store, self.u_o_l);
        let u_o_r = g.param(store, self.u_o_r);
        let b_o = g.param(store, self.b_o);
        let w_u = g.param(store, self.w_u);
        let u_u_l = g.param(store, self.u_u_l);
        let u_u_r = g.param(store, self.u_u_r);
        let b_u = g.param(store, self.b_u);

        let init = match self.leaf_init {
            LeafInit::Zeros => g.input(Tensor::zeros(self.hidden, 1)),
            LeafInit::Ones => g.input(Tensor::ones(self.hidden, 1)),
        };

        let mut states: Vec<Option<(NodeId, NodeId)>> = vec![None; tree.size()];
        for k in tree.postorder() {
            let (h_l, c_l) = tree
                .left(k)
                .map(|c| states[c as usize].expect("postorder"))
                .unwrap_or((init, init));
            let (h_r, c_r) = tree
                .right(k)
                .map(|c| states[c as usize].expect("postorder"))
                .unwrap_or((init, init));
            let e_k = self.emb.lookup(g, store, tree.label(k) as usize);

            // Shared affine pieces.
            let wf_e = g.matvec(w_f, e_k);
            // f_kl = σ(W^f e + U_ll h_l + U_lr h_r + b)      (eq. 1)
            let f_l = {
                let t1 = g.matvec(u_f_ll, h_l);
                let t2 = g.matvec(u_f_lr, h_r);
                let s = g.add3(wf_e, t1, t2);
                let s = g.add(s, b_f);
                g.sigmoid(s)
            };
            // f_kr = σ(W^f e + U_rl h_l + U_rr h_r + b)      (eq. 2)
            let f_r = {
                let t1 = g.matvec(u_f_rl, h_l);
                let t2 = g.matvec(u_f_rr, h_r);
                let s = g.add3(wf_e, t1, t2);
                let s = g.add(s, b_f);
                g.sigmoid(s)
            };
            // i_k (eq. 3)
            let i_k = {
                let we = g.matvec(w_i, e_k);
                let t1 = g.matvec(u_i_l, h_l);
                let t2 = g.matvec(u_i_r, h_r);
                let s = g.add3(we, t1, t2);
                let s = g.add(s, b_i);
                g.sigmoid(s)
            };
            // o_k (eq. 4)
            let o_k = {
                let we = g.matvec(w_o, e_k);
                let t1 = g.matvec(u_o_l, h_l);
                let t2 = g.matvec(u_o_r, h_r);
                let s = g.add3(we, t1, t2);
                let s = g.add(s, b_o);
                g.sigmoid(s)
            };
            // u_k (eq. 5) — tanh to retain signed information.
            let u_k = {
                let we = g.matvec(w_u, e_k);
                let t1 = g.matvec(u_u_l, h_l);
                let t2 = g.matvec(u_u_r, h_r);
                let s = g.add3(we, t1, t2);
                let s = g.add(s, b_u);
                g.tanh(s)
            };
            // c_k = i⊙u + c_l⊙f_l + c_r⊙f_r (eq. 6)
            let c_k = {
                let a = g.hadamard(i_k, u_k);
                let bterm = g.hadamard(c_l, f_l);
                let cterm = g.hadamard(c_r, f_r);
                g.add3(a, bterm, cterm)
            };
            // h_k = o ⊙ tanh(c) (eq. 7)
            let h_k = {
                let t = g.tanh(c_k);
                g.hadamard(o_k, t)
            };
            states[k as usize] = Some((h_k, c_k));
        }
        states[tree.root() as usize].expect("root encoded").0
    }

    /// Convenience: encodes a tree and returns the raw vector (no tape
    /// retained) — the paper's offline embedding step.
    ///
    /// Only this offline path is instrumented; the graph-mode
    /// [`TreeLstm::encode`] used inside training loops stays bare so
    /// per-cell counters cannot slow the hot path down.
    pub fn encode_to_vec(&self, store: &ParamStore, tree: &BinTree) -> Vec<f32> {
        let timer = asteria_obs::timer();
        let mut g = Graph::new();
        let h = self.encode(&mut g, store, tree);
        let out = g.value(h).as_slice().to_vec();
        timer.observe_seconds("asteria_encode_seconds", &[]);
        asteria_obs::counter_add("asteria_treelstm_cells_total", &[], tree.size() as u64);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binarize::binarize;
    use crate::nodes::{AstTree, NodeType};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(leaf: LeafInit) -> (ParamStore, TreeLstm) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(11);
        let t = TreeLstm::new(&mut store, NodeType::VOCAB, 8, 12, leaf, &mut rng);
        (store, t)
    }

    fn small_tree() -> BinTree {
        let mut t = AstTree::with_root(NodeType::Block);
        let r = t.root();
        let i = t.add(r, NodeType::If);
        t.add(i, NodeType::CmpGt);
        t.add(i, NodeType::Block);
        t.add(r, NodeType::Return);
        binarize(&t)
    }

    #[test]
    fn encoding_has_hidden_dim() {
        let (store, tl) = setup(LeafInit::Zeros);
        let v = tl.encode_to_vec(&store, &small_tree());
        assert_eq!(v.len(), 12);
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn encoding_is_deterministic() {
        let (store, tl) = setup(LeafInit::Zeros);
        let a = tl.encode_to_vec(&store, &small_tree());
        let b = tl.encode_to_vec(&store, &small_tree());
        assert_eq!(a, b);
    }

    #[test]
    fn different_trees_encode_differently() {
        let (store, tl) = setup(LeafInit::Zeros);
        let a = tl.encode_to_vec(&store, &small_tree());
        let mut t2 = AstTree::with_root(NodeType::Block);
        let r = t2.root();
        t2.add(r, NodeType::While);
        let b = tl.encode_to_vec(&store, &binarize(&t2));
        assert_ne!(a, b);
    }

    #[test]
    fn leaf_init_changes_encoding() {
        let (store_z, tl_z) = setup(LeafInit::Zeros);
        let (store_o, tl_o) = setup(LeafInit::Ones);
        // Same seed → same weights; only the leaf init differs.
        let a = tl_z.encode_to_vec(&store_z, &small_tree());
        let b = tl_o.encode_to_vec(&store_o, &small_tree());
        assert_ne!(a, b);
    }

    #[test]
    fn node_order_matters() {
        // Binary Tree-LSTM (unlike Child-Sum) distinguishes child order —
        // the reason the paper picks it (§II-C).
        let mut t1 = AstTree::with_root(NodeType::Block);
        let r1 = t1.root();
        t1.add(r1, NodeType::If);
        t1.add(r1, NodeType::Return);
        let mut t2 = AstTree::with_root(NodeType::Block);
        let r2 = t2.root();
        t2.add(r2, NodeType::Return);
        t2.add(r2, NodeType::If);
        let (store, tl) = setup(LeafInit::Zeros);
        let a = tl.encode_to_vec(&store, &binarize(&t1));
        let b = tl.encode_to_vec(&store, &binarize(&t2));
        assert_ne!(a, b, "sibling order must affect the encoding");
    }

    #[test]
    fn gradients_flow_to_all_parameters() {
        let (mut store, tl) = setup(LeafInit::Zeros);
        let tree = small_tree();
        let mut g = Graph::new();
        let h = tl.encode(&mut g, &store, &tree);
        let loss = g.mse_loss(h, Tensor::zeros(12, 1));
        g.backward(loss, &mut store);
        let mut nonzero = 0;
        for id in store.ids().collect::<Vec<_>>() {
            if store.grad(id).as_slice().iter().any(|v| *v != 0.0) {
                nonzero += 1;
            }
        }
        // Every Tree-LSTM parameter should receive gradient (the embedding
        // table only at used rows, still nonzero overall).
        assert!(nonzero >= 18, "only {nonzero} params got gradients");
    }

    #[test]
    fn gradcheck_on_tiny_tree() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let tl = TreeLstm::new(&mut store, 6, 3, 4, LeafInit::Zeros, &mut rng);
        let mut t = AstTree::with_root(NodeType::Block);
        let r = t.root();
        t.add(r, NodeType::If);
        let tree = binarize(&t);
        asteria_nn::gradcheck::check_gradients(&mut store, 1e-2, 5e-2, |store, g| {
            let h = tl.encode(g, store, &tree);
            g.mse_loss(h, Tensor::full(4, 1, 0.3))
        });
    }
}
