//! The Siamese similarity head (paper §III-B, eq. 8) and the regression
//! (cosine) variant used in the Fig. 9 ablation.

use rand::Rng;

use asteria_nn::{Graph, NodeId, ParamId, ParamStore, Tensor};

/// Which similarity head the Siamese network uses — the paper's Fig. 9
/// "Classification vs Regression" ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiameseKind {
    /// Eq. 8: `softmax(σ(cat(|h1−h2|, h1⊙h2) × W))`, trained with BCE
    /// against `[dissimilar, similar]` one-hot targets. The paper's choice.
    Classification,
    /// Cosine-distance regression trained with MSE toward ±1.
    Regression,
}

/// The trainable part of the Siamese network above the two (shared)
/// Tree-LSTM towers.
#[derive(Debug, Clone, Copy)]
pub struct SiameseHead {
    kind: SiameseKind,
    /// `2 × 2h` weight (classification only).
    w: Option<ParamId>,
    hidden: usize,
}

impl SiameseHead {
    /// Registers head parameters.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        kind: SiameseKind,
        hidden_dim: usize,
        rng: &mut R,
    ) -> Self {
        let w = match kind {
            SiameseKind::Classification => {
                Some(store.add("siamese.w", Tensor::xavier(2, 2 * hidden_dim, rng)))
            }
            SiameseKind::Regression => None,
        };
        SiameseHead {
            kind,
            w,
            hidden: hidden_dim,
        }
    }

    /// Head flavour.
    pub fn kind(&self) -> SiameseKind {
        self.kind
    }

    /// Builds the similarity output on the tape.
    ///
    /// Returns a node holding `[dissimilarity, similarity]` (classification)
    /// or a 1×1 similarity in `[0, 1]` (regression).
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, h1: NodeId, h2: NodeId) -> NodeId {
        match self.kind {
            SiameseKind::Classification => {
                // Eq. 8 without the inner sigmoid: the paper's formula as
                // written would cap the similarity at e/(e+1) ≈ 0.73,
                // contradicting §V where confirmed matches score exactly 1.
                // Softmax over raw logits matches the evaluation semantics
                // (deviation recorded in DESIGN.md).
                let d = g.sub(h1, h2);
                let ad = g.abs(d);
                let m = g.hadamard(h1, h2);
                let cat = g.concat(ad, m);
                let w = g.param(store, self.w.expect("classification head"));
                let logits = g.matvec(w, cat);
                g.softmax(logits)
            }
            SiameseKind::Regression => {
                let cos = g.cosine(h1, h2);
                // Map [-1, 1] → [0, 1].
                let half = g.scalar_mul(cos, 0.5);
                let bias = g.input(Tensor::scalar(0.5));
                g.add(half, bias)
            }
        }
    }

    /// Loss for a labelled pair; `homologous` selects the target.
    pub fn loss(&self, g: &mut Graph, output: NodeId, homologous: bool) -> NodeId {
        match self.kind {
            SiameseKind::Classification => {
                // Label vectors per the paper: [0,1] homologous, [1,0] not.
                let target = if homologous {
                    Tensor::column(&[0.0, 1.0])
                } else {
                    Tensor::column(&[1.0, 0.0])
                };
                g.bce_loss(output, target)
            }
            SiameseKind::Regression => {
                let target = Tensor::scalar(if homologous { 1.0 } else { 0.0 });
                g.mse_loss(output, target)
            }
        }
    }

    /// Extracts the scalar similarity from [`SiameseHead::forward`] output.
    pub fn similarity(&self, g: &Graph, output: NodeId) -> f32 {
        match self.kind {
            SiameseKind::Classification => g.value(output).as_slice()[1],
            SiameseKind::Regression => g.value(output).item(),
        }
    }

    /// Tape-free similarity from two cached encoding vectors — the online
    /// phase the paper measures at ~10⁻⁹ s/pair (Fig. 10c). For the
    /// classification head this is `softmax(σ(W·cat(|a−b|, a⊙b)))[1]`.
    ///
    /// # Panics
    ///
    /// Panics if the vectors do not match the configured hidden size.
    pub fn similarity_from_vecs(&self, store: &ParamStore, a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), self.hidden, "encoding size mismatch");
        assert_eq!(b.len(), self.hidden, "encoding size mismatch");
        match self.kind {
            SiameseKind::Classification => {
                let w = store.value(self.w.expect("classification head"));
                let ws = w.as_slice();
                let h = self.hidden;
                // logits = W · cat(|a-b|, a⊙b) without materializing cat;
                // slice iteration keeps this in the nanosecond regime the
                // paper reports for its online phase.
                let mut logits = [0.0f32; 2];
                for (r, logit) in logits.iter_mut().enumerate() {
                    let (wa, wm) = ws[r * 2 * h..(r + 1) * 2 * h].split_at(h);
                    let mut acc = 0.0f32;
                    for i in 0..h {
                        acc += wa[i] * (a[i] - b[i]).abs() + wm[i] * a[i] * b[i];
                    }
                    *logit = acc;
                }
                let m = logits[0].max(logits[1]);
                let e0 = (logits[0] - m).exp();
                let e1 = (logits[1] - m).exp();
                e1 / (e0 + e1)
            }
            SiameseKind::Regression => {
                let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
                let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
                let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
                let cos = dot / (na * nb).max(1e-7);
                0.5 * cos + 0.5
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(kind: SiameseKind) -> (ParamStore, SiameseHead) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        let head = SiameseHead::new(&mut store, kind, 6, &mut rng);
        (store, head)
    }

    #[test]
    fn classification_outputs_probability_pair() {
        let (store, head) = setup(SiameseKind::Classification);
        let mut g = Graph::new();
        let a = g.input(Tensor::column(&[0.1, -0.2, 0.3, 0.0, 0.5, -0.4]));
        let b = g.input(Tensor::column(&[0.1, -0.2, 0.3, 0.0, 0.5, -0.4]));
        let out = head.forward(&mut g, &store, a, b);
        let v = g.value(out).as_slice().to_vec();
        assert_eq!(v.len(), 2);
        assert!((v[0] + v[1] - 1.0).abs() < 1e-6);
        let sim = head.similarity(&g, out);
        assert!((0.0..=1.0).contains(&sim));
    }

    #[test]
    fn regression_is_cosine_based() {
        let (store, head) = setup(SiameseKind::Regression);
        let mut g = Graph::new();
        let a = g.input(Tensor::column(&[1.0, 0.0, 0.0, 0.0, 0.0, 0.0]));
        let b = g.input(Tensor::column(&[1.0, 0.0, 0.0, 0.0, 0.0, 0.0]));
        let out = head.forward(&mut g, &store, a, b);
        assert!((head.similarity(&g, out) - 1.0).abs() < 1e-5);

        let mut g2 = Graph::new();
        let a2 = g2.input(Tensor::column(&[1.0, 0.0, 0.0, 0.0, 0.0, 0.0]));
        let b2 = g2.input(Tensor::column(&[-1.0, 0.0, 0.0, 0.0, 0.0, 0.0]));
        let out2 = head.forward(&mut g2, &store, a2, b2);
        assert!(head.similarity(&g2, out2) < 1e-5);
    }

    #[test]
    fn fast_path_matches_tape_path() {
        for kind in [SiameseKind::Classification, SiameseKind::Regression] {
            let (store, head) = setup(kind);
            let va = [0.3f32, -0.1, 0.7, 0.2, -0.5, 0.9];
            let vb = [0.1f32, 0.4, -0.2, 0.6, 0.0, -0.3];
            let mut g = Graph::new();
            let a = g.input(Tensor::column(&va));
            let b = g.input(Tensor::column(&vb));
            let out = head.forward(&mut g, &store, a, b);
            let slow = head.similarity(&g, out);
            let fast = head.similarity_from_vecs(&store, &va, &vb);
            assert!((slow - fast).abs() < 1e-5, "{kind:?}: {slow} vs {fast}");
        }
    }

    #[test]
    fn bce_loss_decreases_with_training_direction() {
        let (mut store, head) = setup(SiameseKind::Classification);
        let va = [0.3f32, -0.1, 0.7, 0.2, -0.5, 0.9];
        let vb = [0.1f32, 0.4, -0.2, 0.6, 0.0, -0.3];
        let mut loss_before = 0.0;
        let mut opt = asteria_nn::AdaGrad::new(0.1);
        use asteria_nn::Optimizer;
        for step in 0..30 {
            store.zero_grads();
            let mut g = Graph::new();
            let a = g.input(Tensor::column(&va));
            let b = g.input(Tensor::column(&vb));
            let out = head.forward(&mut g, &store, a, b);
            let loss = head.loss(&mut g, out, true);
            let lv = g.value(loss).item();
            if step == 0 {
                loss_before = lv;
            }
            g.backward(loss, &mut store);
            opt.step(&mut store);
        }
        let fast = head.similarity_from_vecs(&store, &va, &vb);
        assert!(
            fast > 0.8,
            "similarity after training toward homologous: {fast}"
        );
        assert!(loss_before > 0.0);
    }

    #[test]
    #[should_panic(expected = "encoding size mismatch")]
    fn fast_path_checks_dims() {
        let (store, head) = setup(SiameseKind::Classification);
        head.similarity_from_vecs(&store, &[0.0; 3], &[0.0; 6]);
    }
}
