//! Training loop for the Siamese Tree-LSTM (paper §IV-A).
//!
//! The paper trains with BCELoss + AdaGrad at batch size 1 (tree-shaped
//! computation cannot batch), for 60 epochs, keeping the weights of the
//! best-performing epoch. This module reproduces that protocol with
//! configurable scale.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::binarize::BinTree;
use crate::model::AsteriaModel;

/// One labelled training example: two ASTs and whether they are
/// homologous.
#[derive(Debug, Clone)]
pub struct TrainPair {
    /// First AST.
    pub a: BinTree,
    /// Second AST.
    pub b: BinTree,
    /// Ground-truth label (+1 homologous / −1 non-homologous in the
    /// paper's notation).
    pub homologous: bool,
}

/// Training options.
#[derive(Debug, Clone)]
pub struct TrainOptions {
    /// Number of passes over the training pairs.
    pub epochs: usize,
    /// Shuffling seed.
    pub seed: u64,
    /// When true, logs each epoch's mean loss (and validation score, if
    /// a validator is supplied) to stderr.
    pub verbose: bool,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            epochs: 10,
            seed: 7,
            verbose: false,
        }
    }
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean pair loss.
    pub mean_loss: f32,
}

/// Runs one epoch over (shuffled) pairs; returns the mean loss.
pub fn train_epoch(model: &mut AsteriaModel, pairs: &[TrainPair], rng: &mut StdRng) -> f32 {
    let mut order: Vec<usize> = (0..pairs.len()).collect();
    order.shuffle(rng);
    let mut total = 0.0f64;
    for idx in order {
        let p = &pairs[idx];
        total += model.train_pair(&p.a, &p.b, p.homologous) as f64;
    }
    (total / pairs.len().max(1) as f64) as f32
}

/// Trains a model, optionally validating after each epoch and restoring
/// the best-validation weights at the end (the paper's "optimal model
/// weights" protocol, §IV-B).
///
/// `validate` maps the current model to a score where larger is better
/// (typically AUC on a held-out split). Pass `None` to keep final-epoch
/// weights.
pub fn train(
    model: &mut AsteriaModel,
    pairs: &[TrainPair],
    options: &TrainOptions,
    mut validate: Option<&mut dyn FnMut(&AsteriaModel) -> f64>,
) -> Vec<EpochStats> {
    let mut rng = StdRng::seed_from_u64(options.seed);
    let mut stats = Vec::with_capacity(options.epochs);
    let mut best_score = f64::NEG_INFINITY;
    let mut best_weights: Option<Vec<u8>> = None;
    for epoch in 0..options.epochs {
        let mean_loss = train_epoch(model, pairs, &mut rng);
        asteria_obs::gauge_set("asteria_train_epoch", &[], epoch as f64);
        asteria_obs::gauge_set("asteria_train_loss", &[], mean_loss as f64);
        if options.verbose {
            asteria_obs::info!("epoch {epoch}: loss {mean_loss:.4}");
        }
        if let Some(validate) = validate.as_deref_mut() {
            let score = validate(model);
            asteria_obs::gauge_set("asteria_train_validation", &[], score);
            if options.verbose {
                asteria_obs::info!("epoch {epoch}: validation {score:.4}");
            }
            if score > best_score {
                best_score = score;
                best_weights = Some(model.snapshot());
            }
        }
        stats.push(EpochStats { epoch, mean_loss });
    }
    if let Some(w) = best_weights {
        // This snapshot came from the same model instance, so a mismatch
        // is impossible (unlike weights loaded from disk).
        model.restore(&w).expect("own snapshot matches");
    }
    stats
}

/// Scores every validation pair with the current model, fanning the
/// forward passes out over `threads` workers (`0` = auto). Returns
/// `(similarity, homologous)` rows in input order — feed them to any
/// metric (the benches use `asteria-eval`'s AUC). Scoring is read-only
/// on the model, so the fan-out is bit-identical to a serial scan; the
/// SGD update loop itself stays sequential, matching the paper's
/// batch-size-1 protocol.
pub fn validation_scores(
    model: &AsteriaModel,
    pairs: &[TrainPair],
    threads: usize,
) -> Vec<(f32, bool)> {
    asteria_exec::par_map_threads(threads, pairs, |p| {
        (model.similarity(&p.a, &p.b), p.homologous)
    })
}

/// [`train`] with a built-in parallel validation path: after each epoch,
/// `validation` pairs are scored via [`validation_scores`] over `threads`
/// workers and reduced to a scalar by `metric` (larger is better); the
/// best-epoch weights are restored at the end. Only validation fans out —
/// the SGD update loop is sequential by protocol.
pub fn train_with_validation(
    model: &mut AsteriaModel,
    pairs: &[TrainPair],
    validation: &[TrainPair],
    options: &TrainOptions,
    threads: usize,
    metric: impl Fn(&[(f32, bool)]) -> f64,
) -> Vec<EpochStats> {
    let mut validate =
        |m: &AsteriaModel| -> f64 { metric(&validation_scores(m, validation, threads)) };
    train(model, pairs, options, Some(&mut validate))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binarize::binarize;
    use crate::model::ModelConfig;
    use crate::nodes::{AstTree, NodeType};

    fn tree(kinds: &[NodeType]) -> BinTree {
        let mut t = AstTree::with_root(NodeType::Block);
        let r = t.root();
        for k in kinds {
            let n = t.add(r, *k);
            t.add(n, NodeType::Var);
        }
        binarize(&t)
    }

    fn toy_pairs() -> Vec<TrainPair> {
        let family_a = [
            tree(&[NodeType::If, NodeType::Return]),
            tree(&[NodeType::If, NodeType::Return]),
        ];
        let family_b = [
            tree(&[NodeType::While, NodeType::AsgAdd, NodeType::Call]),
            tree(&[NodeType::While, NodeType::AsgAdd, NodeType::Call]),
        ];
        vec![
            TrainPair {
                a: family_a[0].clone(),
                b: family_a[1].clone(),
                homologous: true,
            },
            TrainPair {
                a: family_b[0].clone(),
                b: family_b[1].clone(),
                homologous: true,
            },
            TrainPair {
                a: family_a[0].clone(),
                b: family_b[0].clone(),
                homologous: false,
            },
            TrainPair {
                a: family_a[1].clone(),
                b: family_b[1].clone(),
                homologous: false,
            },
        ]
    }

    fn small_model() -> AsteriaModel {
        AsteriaModel::new(ModelConfig {
            embed_dim: 8,
            hidden_dim: 12,
            learning_rate: 0.1,
            ..Default::default()
        })
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let mut m = small_model();
        let pairs = toy_pairs();
        let stats = train(
            &mut m,
            &pairs,
            &TrainOptions {
                epochs: 25,
                ..Default::default()
            },
            None,
        );
        assert_eq!(stats.len(), 25);
        let first = stats.first().unwrap().mean_loss;
        let last = stats.last().unwrap().mean_loss;
        assert!(last < first * 0.7, "loss did not drop: {first} → {last}");
    }

    #[test]
    fn best_weights_are_restored() {
        let mut m = small_model();
        let pairs = toy_pairs();
        // A validation score that peaks at epoch 2 and then degrades
        // forces restoration of the epoch-2 snapshot.
        let mut call = 0usize;
        let mut scores = vec![0.1, 0.5, 0.9, 0.2, 0.1].into_iter();
        let mut snapshots: Vec<Vec<u8>> = Vec::new();
        let mut validate = |m: &AsteriaModel| -> f64 {
            call += 1;
            snapshots.push(m.snapshot());
            scores.next().unwrap_or(0.0)
        };
        train(
            &mut m,
            &pairs,
            &TrainOptions {
                epochs: 5,
                ..Default::default()
            },
            Some(&mut validate),
        );
        assert_eq!(call, 5);
        // Final weights must equal the epoch-3 (index 2) snapshot.
        assert_eq!(m.snapshot(), snapshots[2]);
    }

    #[test]
    fn validation_scores_are_thread_count_invariant() {
        let m = small_model();
        let pairs = toy_pairs();
        let serial = validation_scores(&m, &pairs, 1);
        assert_eq!(serial.len(), pairs.len());
        for threads in [2, 8] {
            let par = validation_scores(&m, &pairs, threads);
            // Bit-identical, not approximately equal.
            let serial_bits: Vec<(u32, bool)> =
                serial.iter().map(|(s, h)| (s.to_bits(), *h)).collect();
            let par_bits: Vec<(u32, bool)> = par.iter().map(|(s, h)| (s.to_bits(), *h)).collect();
            assert_eq!(par_bits, serial_bits, "{threads} threads");
        }
    }

    #[test]
    fn train_with_validation_restores_best_weights() {
        let pairs = toy_pairs();
        // Mean positive-pair score as the metric: deterministic, and the
        // parallel path must reproduce the callback path exactly.
        let metric = |scores: &[(f32, bool)]| -> f64 {
            let pos: Vec<f32> = scores.iter().filter(|(_, h)| *h).map(|(s, _)| *s).collect();
            pos.iter().map(|s| *s as f64).sum::<f64>() / pos.len().max(1) as f64
        };
        let options = TrainOptions {
            epochs: 6,
            ..Default::default()
        };
        let mut parallel = small_model();
        let stats = train_with_validation(&mut parallel, &pairs, &pairs, &options, 4, metric);
        assert_eq!(stats.len(), 6);
        // Reference run through the plain callback API.
        let mut reference = small_model();
        let mut validate = |m: &AsteriaModel| -> f64 { metric(&validation_scores(m, &pairs, 1)) };
        train(&mut reference, &pairs, &options, Some(&mut validate));
        assert_eq!(parallel.snapshot(), reference.snapshot());
    }

    #[test]
    fn trained_model_classifies_families() {
        let mut m = small_model();
        let pairs = toy_pairs();
        train(
            &mut m,
            &pairs,
            &TrainOptions {
                epochs: 40,
                ..Default::default()
            },
            None,
        );
        let pos = m.similarity(&pairs[0].a, &pairs[0].b);
        let neg = m.similarity(&pairs[2].a, &pairs[2].b);
        assert!(pos > neg, "pos={pos} neg={neg}");
    }
}
