//! Left-child right-sibling binarization (Fig. 3 step 2, second half).
//!
//! The Binary Tree-LSTM consumes binary trees, so the digitalized n-ary
//! AST is converted with the classic LCRS transform: a node's first child
//! becomes its left child, and its next sibling becomes its right child.

use crate::nodes::AstTree;

/// A binary tree over the same label space as [`AstTree`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinTree {
    labels: Vec<u16>,
    left: Vec<Option<u32>>,
    right: Vec<Option<u32>>,
    root: u32,
}

impl BinTree {
    /// Number of nodes (identical to the source AST's size).
    pub fn size(&self) -> usize {
        self.labels.len()
    }

    /// Root node index.
    pub fn root(&self) -> u32 {
        self.root
    }

    /// Label of a node.
    pub fn label(&self, n: u32) -> u16 {
        self.labels[n as usize]
    }

    /// Left child (first child in the n-ary tree).
    pub fn left(&self, n: u32) -> Option<u32> {
        self.left[n as usize]
    }

    /// Right child (next sibling in the n-ary tree).
    pub fn right(&self, n: u32) -> Option<u32> {
        self.right[n as usize]
    }

    /// Maximum depth (root = 1); bounds the recursion of the encoder.
    pub fn depth(&self) -> usize {
        // Iterative post-order to avoid stack overflow on long sibling
        // chains (LCRS turns wide trees into deep ones).
        let mut depth = vec![0usize; self.labels.len()];
        let order = self.postorder();
        for &n in &order {
            let l = self.left(n).map_or(0, |c| depth[c as usize]);
            let r = self.right(n).map_or(0, |c| depth[c as usize]);
            depth[n as usize] = 1 + l.max(r);
        }
        depth[self.root as usize]
    }

    /// Nodes in post-order (children before parents) — the evaluation
    /// order of the bottom-up Tree-LSTM.
    pub fn postorder(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.labels.len());
        let mut stack: Vec<(u32, u8)> = vec![(self.root, 0)];
        while let Some((n, phase)) = stack.pop() {
            match phase {
                0 => {
                    stack.push((n, 1));
                    if let Some(l) = self.left(n) {
                        stack.push((l, 0));
                    }
                }
                1 => {
                    stack.push((n, 2));
                    if let Some(r) = self.right(n) {
                        stack.push((r, 0));
                    }
                }
                _ => out.push(n),
            }
        }
        out
    }
}

/// Converts an n-ary digitalized AST to left-child right-sibling form.
///
/// # Examples
///
/// ```
/// use asteria_core::{digitalize, binarize, NodeType};
/// use asteria_core::nodes::AstTree;
///
/// let mut t = AstTree::with_root(NodeType::Block);
/// let r = t.root();
/// t.add(r, NodeType::Return);
/// t.add(r, NodeType::Break);
/// let b = binarize(&t);
/// assert_eq!(b.size(), 3);
/// // First child of the root becomes its left child…
/// let ret = b.left(b.root()).unwrap();
/// assert_eq!(b.label(ret), NodeType::Return.label());
/// // …and the sibling hangs off the right of that child.
/// assert_eq!(b.label(b.right(ret).unwrap()), NodeType::Break.label());
/// ```
pub fn binarize(t: &AstTree) -> BinTree {
    let n = t.size();
    let mut out = BinTree {
        labels: vec![0; n],
        left: vec![None; n],
        right: vec![None; n],
        root: t.root(),
    };
    // Node ids are preserved 1:1; only the edges change.
    let mut stack = vec![t.root()];
    while let Some(node) = stack.pop() {
        out.labels[node as usize] = t.label(node);
        let kids = t.children(node);
        if let Some(first) = kids.first() {
            out.left[node as usize] = Some(*first);
        }
        for w in kids.windows(2) {
            out.right[w[0] as usize] = Some(w[1]);
        }
        for k in kids {
            stack.push(*k);
        }
    }
    out
}

/// Alternative binarization for the DESIGN.md ablation: keeps only each
/// node's first two children (truncation) instead of the LCRS transform.
/// Lossy by construction — sibling statements beyond the second disappear —
/// which is exactly what the ablation demonstrates.
pub fn binarize_truncated(t: &AstTree) -> BinTree {
    let n = t.size();
    let mut out = BinTree {
        labels: vec![0; n],
        left: vec![None; n],
        right: vec![None; n],
        root: t.root(),
    };
    let mut stack = vec![t.root()];
    while let Some(node) = stack.pop() {
        out.labels[node as usize] = t.label(node);
        let kids = t.children(node);
        if let Some(first) = kids.first() {
            out.left[node as usize] = Some(*first);
            stack.push(*first);
        }
        if let Some(second) = kids.get(1) {
            out.right[node as usize] = Some(*second);
            stack.push(*second);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nodes::{AstTree, NodeType};

    fn wide_tree(n_children: usize) -> AstTree {
        let mut t = AstTree::with_root(NodeType::Block);
        let r = t.root();
        for _ in 0..n_children {
            t.add(r, NodeType::Num);
        }
        t
    }

    #[test]
    fn preserves_node_count_and_labels() {
        let t = wide_tree(10);
        let b = binarize(&t);
        assert_eq!(b.size(), t.size());
        let mut labels: Vec<u16> = (0..b.size() as u32).map(|i| b.label(i)).collect();
        labels.sort_unstable();
        let mut expected: Vec<u16> = (0..t.size() as u32).map(|i| t.label(i)).collect();
        expected.sort_unstable();
        assert_eq!(labels, expected);
    }

    #[test]
    fn wide_becomes_deep() {
        let t = wide_tree(10);
        assert_eq!(t.depth(), 2);
        let b = binarize(&t);
        // Sibling chain: root → c1 → c2 → … → c10 along right edges.
        assert_eq!(b.depth(), 11);
    }

    #[test]
    fn sibling_chain_follows_source_order() {
        let mut t = AstTree::with_root(NodeType::Block);
        let r = t.root();
        t.add(r, NodeType::If);
        t.add(r, NodeType::While);
        t.add(r, NodeType::Return);
        let b = binarize(&t);
        let c1 = b.left(b.root()).unwrap();
        let c2 = b.right(c1).unwrap();
        let c3 = b.right(c2).unwrap();
        assert_eq!(b.label(c1), NodeType::If.label());
        assert_eq!(b.label(c2), NodeType::While.label());
        assert_eq!(b.label(c3), NodeType::Return.label());
        assert_eq!(b.right(c3), None);
    }

    #[test]
    fn postorder_visits_children_first() {
        let mut t = AstTree::with_root(NodeType::Block);
        let r = t.root();
        let ifn = t.add(r, NodeType::If);
        t.add(ifn, NodeType::Var);
        let b = binarize(&t);
        let order = b.postorder();
        assert_eq!(order.len(), 3);
        assert_eq!(*order.last().unwrap(), b.root());
        // Every child appears before its parent.
        let pos = |n: u32| order.iter().position(|x| *x == n).expect("node in order");
        for n in 0..b.size() as u32 {
            if let Some(l) = b.left(n) {
                assert!(pos(l) < pos(n));
            }
            if let Some(rr) = b.right(n) {
                assert!(pos(rr) < pos(n));
            }
        }
    }

    #[test]
    fn single_node_tree() {
        let t = AstTree::with_root(NodeType::Block);
        let b = binarize(&t);
        assert_eq!(b.size(), 1);
        assert_eq!(b.depth(), 1);
        assert_eq!(b.left(0), None);
        assert_eq!(b.right(0), None);
    }

    #[test]
    fn truncated_binarization_drops_extra_children() {
        let t = wide_tree(5);
        let full = binarize(&t);
        let trunc = binarize_truncated(&t);
        assert_eq!(full.size(), 6);
        // Truncated tree reaches only root + 2 children via edges.
        let reachable = trunc.postorder().len();
        assert_eq!(reachable, 3);
    }

    #[test]
    fn deep_tree_does_not_overflow() {
        // 20k-node sibling chain: recursion here would blow the stack.
        let t = wide_tree(20_000);
        let b = binarize(&t);
        assert_eq!(b.depth(), 20_001);
        assert_eq!(b.postorder().len(), 20_001);
    }
}
