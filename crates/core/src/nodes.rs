//! Table I: the AST node-type vocabulary and digitalization.
//!
//! The paper maps every decompiled AST node to a small integer label
//! before embedding (§III-A, Table I). This module defines the label
//! space — statements first, then assignment/compare/arith expression
//! groups, then "other" leaf kinds — and converts decompiled functions
//! ([`asteria_decompiler::DFunction`]) into labelled n-ary [`AstTree`]s.

use asteria_decompiler::{DAssignOp, DExpr, DFunction, DPlace, DStmt};
use asteria_lang::{BinOp, UnOp};

/// One node type of Table I. The discriminant is the digitalized label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
#[allow(missing_docs)] // variant names mirror Table I rows
pub enum NodeType {
    // --- statements -------------------------------------------------
    Block = 0,
    If = 1,
    For = 2,
    While = 3,
    DoWhile = 4,
    Switch = 5,
    Case = 6,
    Return = 7,
    Goto = 8,
    LabelStmt = 9,
    Continue = 10,
    Break = 11,
    // --- assignments (paper rows "asgs") -----------------------------
    Asg = 12,
    AsgAdd = 13,
    AsgSub = 14,
    AsgMul = 15,
    AsgDiv = 16,
    AsgAnd = 17,
    AsgOr = 18,
    AsgXor = 19,
    // --- comparisons (paper rows "cmps") ------------------------------
    CmpEq = 20,
    CmpNe = 21,
    CmpLt = 22,
    CmpLe = 23,
    CmpGt = 24,
    CmpGe = 25,
    // --- arithmetic / bit operations (paper rows "ariths") ------------
    Add = 26,
    Sub = 27,
    Mul = 28,
    Div = 29,
    Mod = 30,
    BitAnd = 31,
    BitOr = 32,
    BitXor = 33,
    Shl = 34,
    Shr = 35,
    Neg = 36,
    LogNot = 37,
    BitNot = 38,
    PostInc = 39,
    PostDec = 40,
    PreInc = 41,
    PreDec = 42,
    // --- other ---------------------------------------------------------
    Index = 43,
    Var = 44,
    Num = 45,
    Call = 46,
    Str = 47,
    Ternary = 48,
    Asm = 49,
    Cast = 50,
}

impl NodeType {
    /// The digitalized label (row of the embedding table).
    pub fn label(self) -> u16 {
        self as u16
    }

    /// Size of the label space (embedding vocabulary).
    pub const VOCAB: usize = 51;

    /// Human-readable name (for Table I regeneration).
    pub fn name(self) -> &'static str {
        match self {
            NodeType::Block => "block",
            NodeType::If => "if",
            NodeType::For => "for",
            NodeType::While => "while",
            NodeType::DoWhile => "do-while",
            NodeType::Switch => "switch",
            NodeType::Case => "case",
            NodeType::Return => "return",
            NodeType::Goto => "goto",
            NodeType::LabelStmt => "label",
            NodeType::Continue => "continue",
            NodeType::Break => "break",
            NodeType::Asg => "asg",
            NodeType::AsgAdd => "asgadd",
            NodeType::AsgSub => "asgsub",
            NodeType::AsgMul => "asgmul",
            NodeType::AsgDiv => "asgdiv",
            NodeType::AsgAnd => "asgand",
            NodeType::AsgOr => "asgor",
            NodeType::AsgXor => "asgxor",
            NodeType::CmpEq => "eq",
            NodeType::CmpNe => "ne",
            NodeType::CmpLt => "lt",
            NodeType::CmpLe => "le",
            NodeType::CmpGt => "gt",
            NodeType::CmpGe => "ge",
            NodeType::Add => "add",
            NodeType::Sub => "sub",
            NodeType::Mul => "mul",
            NodeType::Div => "div",
            NodeType::Mod => "mod",
            NodeType::BitAnd => "band",
            NodeType::BitOr => "bor",
            NodeType::BitXor => "bxor",
            NodeType::Shl => "shl",
            NodeType::Shr => "shr",
            NodeType::Neg => "neg",
            NodeType::LogNot => "lnot",
            NodeType::BitNot => "bnot",
            NodeType::PostInc => "postinc",
            NodeType::PostDec => "postdec",
            NodeType::PreInc => "preinc",
            NodeType::PreDec => "predec",
            NodeType::Index => "index",
            NodeType::Var => "var",
            NodeType::Num => "num",
            NodeType::Call => "call",
            NodeType::Str => "str",
            NodeType::Ternary => "ternary",
            NodeType::Asm => "asm",
            NodeType::Cast => "cast",
        }
    }

    /// Statement/expression class, for Table I's grouping column.
    pub fn class(self) -> &'static str {
        use NodeType::*;
        match self {
            Block | If | For | While | DoWhile | Switch | Case | Return | Goto | LabelStmt
            | Continue | Break => "statement",
            Asg | AsgAdd | AsgSub | AsgMul | AsgDiv | AsgAnd | AsgOr | AsgXor => "asgs",
            CmpEq | CmpNe | CmpLt | CmpLe | CmpGt | CmpGe => "cmps",
            Add | Sub | Mul | Div | Mod | BitAnd | BitOr | BitXor | Shl | Shr | Neg | LogNot
            | BitNot | PostInc | PostDec | PreInc | PreDec => "ariths",
            Index | Var | Num | Call | Str | Ternary | Asm | Cast => "other",
        }
    }

    /// Every node type, in label order.
    pub fn all() -> Vec<NodeType> {
        use NodeType::*;
        vec![
            Block, If, For, While, DoWhile, Switch, Case, Return, Goto, LabelStmt, Continue, Break,
            Asg, AsgAdd, AsgSub, AsgMul, AsgDiv, AsgAnd, AsgOr, AsgXor, CmpEq, CmpNe, CmpLt, CmpLe,
            CmpGt, CmpGe, Add, Sub, Mul, Div, Mod, BitAnd, BitOr, BitXor, Shl, Shr, Neg, LogNot,
            BitNot, PostInc, PostDec, PreInc, PreDec, Index, Var, Num, Call, Str, Ternary, Asm,
            Cast,
        ]
    }
}

fn binop_type(op: BinOp) -> NodeType {
    match op {
        BinOp::Add => NodeType::Add,
        BinOp::Sub => NodeType::Sub,
        BinOp::Mul => NodeType::Mul,
        BinOp::Div => NodeType::Div,
        BinOp::Mod => NodeType::Mod,
        BinOp::And => NodeType::BitAnd,
        BinOp::Or => NodeType::BitOr,
        BinOp::Xor => NodeType::BitXor,
        BinOp::Shl => NodeType::Shl,
        BinOp::Shr => NodeType::Shr,
        BinOp::Eq => NodeType::CmpEq,
        BinOp::Ne => NodeType::CmpNe,
        BinOp::Lt => NodeType::CmpLt,
        BinOp::Le => NodeType::CmpLe,
        BinOp::Gt => NodeType::CmpGt,
        BinOp::Ge => NodeType::CmpGe,
        // The decompiler never produces short-circuit operators (they come
        // back as control flow); treat defensively as bit ops.
        BinOp::LogAnd => NodeType::BitAnd,
        BinOp::LogOr => NodeType::BitOr,
    }
}

fn assign_type(op: DAssignOp) -> NodeType {
    match op {
        DAssignOp::Assign => NodeType::Asg,
        DAssignOp::Compound(b) => match b {
            BinOp::Add => NodeType::AsgAdd,
            BinOp::Sub => NodeType::AsgSub,
            BinOp::Mul => NodeType::AsgMul,
            BinOp::Div => NodeType::AsgDiv,
            BinOp::And => NodeType::AsgAnd,
            BinOp::Or => NodeType::AsgOr,
            BinOp::Xor => NodeType::AsgXor,
            _ => NodeType::Asg,
        },
    }
}

/// An n-ary labelled tree — the digitalized AST.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AstTree {
    labels: Vec<u16>,
    children: Vec<Vec<u32>>,
    root: u32,
}

impl AstTree {
    /// Creates a tree with a single root node.
    pub fn with_root(label: NodeType) -> Self {
        AstTree {
            labels: vec![label.label()],
            children: vec![Vec::new()],
            root: 0,
        }
    }

    /// Adds a node under `parent`, returning the new node index.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is out of range.
    pub fn add(&mut self, parent: u32, label: NodeType) -> u32 {
        assert!((parent as usize) < self.labels.len(), "bad parent");
        let id = self.labels.len() as u32;
        self.labels.push(label.label());
        self.children.push(Vec::new());
        self.children[parent as usize].push(id);
        id
    }

    /// Number of nodes.
    pub fn size(&self) -> usize {
        self.labels.len()
    }

    /// The root node index.
    pub fn root(&self) -> u32 {
        self.root
    }

    /// Label of a node.
    pub fn label(&self, node: u32) -> u16 {
        self.labels[node as usize]
    }

    /// Children of a node, in syntactic order.
    pub fn children(&self, node: u32) -> &[u32] {
        &self.children[node as usize]
    }

    /// Depth of the tree (root = 1).
    pub fn depth(&self) -> usize {
        fn go(t: &AstTree, n: u32) -> usize {
            1 + t.children(n).iter().map(|c| go(t, *c)).max().unwrap_or(0)
        }
        go(self, self.root)
    }

    /// Histogram of node labels (for Table I statistics).
    pub fn label_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; NodeType::VOCAB];
        for l in &self.labels {
            h[*l as usize] += 1;
        }
        h
    }
}

fn add_expr(t: &mut AstTree, parent: u32, e: &DExpr) {
    match e {
        DExpr::Num(_) => {
            // Constants are digitalized without their value (§VII: the
            // paper removes constant values and strings).
            t.add(parent, NodeType::Num);
        }
        DExpr::Str(_) => {
            t.add(parent, NodeType::Str);
        }
        DExpr::Var(_) => {
            t.add(parent, NodeType::Var);
        }
        DExpr::Index(_, idx) => {
            let n = t.add(parent, NodeType::Index);
            t.add(n, NodeType::Var);
            add_expr(t, n, idx);
        }
        DExpr::Call { args, .. } => {
            let n = t.add(parent, NodeType::Call);
            for a in args {
                add_expr(t, n, a);
            }
        }
        DExpr::Un(op, inner) => {
            let ty = match op {
                UnOp::Neg => NodeType::Neg,
                UnOp::Not => NodeType::LogNot,
                UnOp::BitNot => NodeType::BitNot,
            };
            let n = t.add(parent, ty);
            add_expr(t, n, inner);
        }
        DExpr::Bin(op, a, b) => {
            let n = t.add(parent, binop_type(*op));
            add_expr(t, n, a);
            add_expr(t, n, b);
        }
        DExpr::Select(c, a, b) => {
            let n = t.add(parent, NodeType::Ternary);
            add_expr(t, n, c);
            add_expr(t, n, a);
            add_expr(t, n, b);
        }
        DExpr::Cast(inner) => {
            let n = t.add(parent, NodeType::Cast);
            add_expr(t, n, inner);
        }
    }
}

fn add_place(t: &mut AstTree, parent: u32, p: &DPlace) {
    match p {
        DPlace::Var(_) => {
            t.add(parent, NodeType::Var);
        }
        DPlace::Index(_, idx) => {
            let n = t.add(parent, NodeType::Index);
            t.add(n, NodeType::Var);
            add_expr(t, n, idx);
        }
    }
}

fn add_block(t: &mut AstTree, parent: u32, stmts: &[DStmt]) {
    let block = t.add(parent, NodeType::Block);
    for s in stmts {
        add_stmt(t, block, s);
    }
}

fn add_stmt(t: &mut AstTree, parent: u32, s: &DStmt) {
    match s {
        DStmt::Assign(op, place, e) => {
            let n = t.add(parent, assign_type(*op));
            add_place(t, n, place);
            add_expr(t, n, e);
        }
        DStmt::Expr(e) => add_expr(t, parent, e),
        DStmt::If(c, then_body, else_body) => {
            let n = t.add(parent, NodeType::If);
            add_expr(t, n, c);
            add_block(t, n, then_body);
            if !else_body.is_empty() {
                add_block(t, n, else_body);
            }
        }
        DStmt::While(c, body) => {
            let n = t.add(parent, NodeType::While);
            add_expr(t, n, c);
            add_block(t, n, body);
        }
        DStmt::DoWhile(body, c) => {
            let n = t.add(parent, NodeType::DoWhile);
            add_block(t, n, body);
            add_expr(t, n, c);
        }
        DStmt::Switch(scrut, cases) => {
            let n = t.add(parent, NodeType::Switch);
            add_expr(t, n, scrut);
            for case in cases {
                let c = t.add(n, NodeType::Case);
                if case.value.is_some() {
                    t.add(c, NodeType::Num);
                }
                add_block(t, c, &case.body);
            }
        }
        DStmt::Return(e) => {
            let n = t.add(parent, NodeType::Return);
            if let Some(e) = e {
                add_expr(t, n, e);
            }
        }
        DStmt::Break => {
            t.add(parent, NodeType::Break);
        }
        DStmt::Continue => {
            t.add(parent, NodeType::Continue);
        }
        DStmt::Goto(_) => {
            t.add(parent, NodeType::Goto);
        }
        DStmt::Label(_) => {
            t.add(parent, NodeType::LabelStmt);
        }
    }
}

/// Digitalizes a decompiled function into a labelled AST (Fig. 3 step 2,
/// first half). Variable names, constant values and strings are dropped;
/// only node types remain, exactly as the paper prescribes.
pub fn digitalize(func: &DFunction) -> AstTree {
    let mut t = AstTree::with_root(NodeType::Block);
    let root = t.root();
    for s in &func.body {
        add_stmt(&mut t, root, s);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use asteria_compiler::{compile_program, Arch};
    use asteria_decompiler::decompile_function;
    use asteria_lang::parse;

    fn tree_of(src: &str, arch: Arch) -> AstTree {
        let p = parse(src).unwrap();
        let b = compile_program(&p, arch).unwrap();
        digitalize(&decompile_function(&b, 0).unwrap())
    }

    #[test]
    fn vocab_is_consistent() {
        let all = NodeType::all();
        assert_eq!(all.len(), NodeType::VOCAB);
        for (i, t) in all.iter().enumerate() {
            assert_eq!(t.label() as usize, i, "{t:?} out of order");
        }
    }

    #[test]
    fn simple_function_digitalizes() {
        // ARM output nests fully: block → return → add → (var, num).
        let t = tree_of("int f(int a) { return a + 1; }", Arch::Arm);
        assert_eq!(t.size(), 5);
        assert_eq!(t.label(t.root()), NodeType::Block.label());
        assert_eq!(t.depth(), 4);
        // Terminator expressions fold on every ISA, so the simple return
        // is identical on x86 too…
        let tx = tree_of("int f(int a) { return a + 1; }", Arch::X86);
        assert_eq!(tx.size(), t.size());
        // …but statement-level temporaries survive on x86 only.
        let src = "int g = 0; int f(int a) { g = a * 2 + 1; g = g + a; return g; }";
        let sx = tree_of(src, Arch::X86).size();
        let sa = tree_of(src, Arch::Arm).size();
        assert!(sx > sa, "x86 {sx} vs arm {sa}");
    }

    #[test]
    fn constants_and_names_are_dropped() {
        let a = tree_of("int f(int a) { return a + 12345; }", Arch::X64);
        let b = tree_of("int g(int zz) { return zz + 9; }", Arch::X64);
        assert_eq!(a, b, "digitalization must ignore names and constant values");
    }

    #[test]
    fn control_flow_nodes_appear() {
        let t = tree_of(
            "int f(int n) { int s = 0; while (n > 0) { if (n % 2 == 0) { s += ext(n); } \
             n -= 1; } return s; }",
            Arch::Ppc,
        );
        let h = t.label_histogram();
        // PPC rotates loops, so the while comes back as a guarded do-while.
        assert!(h[NodeType::While.label() as usize] + h[NodeType::DoWhile.label() as usize] >= 1);
        assert!(h[NodeType::If.label() as usize] >= 1);
        assert!(h[NodeType::Return.label() as usize] == 1);
        assert!(h[NodeType::Call.label() as usize] >= 1);
    }

    #[test]
    fn compound_assign_only_on_two_address_arches() {
        // x64 (full inlining + two-address ALU) recovers `g += a`; ARM's
        // three-address form decompiles to plain `g = g + a`.
        let src = "int g = 0; int f(int a) { g = g + a; g = g + 1; g = g + 2; return g; }";
        let x64 = tree_of(src, Arch::X64);
        let arm = tree_of(src, Arch::Arm);
        let hx = x64.label_histogram();
        let ha = arm.label_histogram();
        assert!(
            hx[NodeType::AsgAdd.label() as usize] >= 1,
            "x64 should show asgadd"
        );
        assert_eq!(ha[NodeType::AsgAdd.label() as usize], 0, "arm should not");
    }

    #[test]
    fn cross_arch_trees_are_similar_but_not_identical_overall() {
        let src = "int f(int n) { int s = 0; for (int i = 0; i < n; i++) { \
                   if (i % 3 == 0) { s += ext(i); } else { s -= 1; } } return s; }";
        let trees: Vec<AstTree> = Arch::ALL.iter().map(|a| tree_of(src, *a)).collect();
        let sizes: Vec<usize> = trees.iter().map(AstTree::size).collect();
        let min = *sizes.iter().min().unwrap() as f64;
        let max = *sizes.iter().max().unwrap() as f64;
        // The x86 temp artifact makes the spread real but bounded.
        assert!(max / min < 2.3, "sizes too divergent: {sizes:?}");
    }

    #[test]
    fn switch_digitalizes_with_cases() {
        let t = tree_of(
            "int f(int x) { switch (x) { case 1: return 1; case 2: return 4; case 3: return 9; \
             default: return 0; } }",
            Arch::X64,
        );
        let h = t.label_histogram();
        assert_eq!(h[NodeType::Switch.label() as usize], 1, "{t:?}");
        assert_eq!(h[NodeType::Case.label() as usize], 4);
    }

    #[test]
    fn ternary_appears_on_arm_only() {
        let src = "int f(int a, int b) { int x = 0; if (a > b) { x = a; } else { x = b; } \
                   return x; }";
        let arm = tree_of(src, Arch::Arm);
        let x64 = tree_of(src, Arch::X64);
        assert!(arm.label_histogram()[NodeType::Ternary.label() as usize] >= 1);
        assert_eq!(x64.label_histogram()[NodeType::Ternary.label() as usize], 0);
    }
}
