//! End-to-end extraction: binary → decompiled AST → digitalized,
//! binarized tree + calibration features (Fig. 3 steps 1–2).

use std::fmt;

use asteria_compiler::Binary;
use asteria_decompiler::{
    callee_count, decompile_function_with, BudgetKind, DecompileError, DecompileLimits,
};

use crate::binarize::{binarize, BinTree};
use crate::model::{calibrated_similarity, AsteriaModel};
use crate::nodes::digitalize;

/// Default inline filter β: callees with fewer machine instructions than
/// this are considered inlining candidates and excluded from the callee
/// count (paper §III-C).
pub const DEFAULT_INLINE_BETA: usize = 6;

/// Everything Asteria needs to know about one binary function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractedFunction {
    /// Display name (symbol or `sub_<offset>`).
    pub name: String,
    /// Digitalized, binarized AST.
    pub tree: BinTree,
    /// Calibration feature C: filtered callee count.
    pub callee_count: usize,
    /// AST size in nodes (the paper filters sizes < 5).
    pub ast_size: usize,
    /// Machine instructions in the function body.
    pub inst_count: usize,
    /// Basic blocks in the machine CFG (used by the Gemini comparison).
    pub block_count: usize,
}

/// Extracts one function.
///
/// # Errors
///
/// Propagates decompilation failures.
pub fn extract_function(
    binary: &Binary,
    sym: usize,
    beta: usize,
) -> Result<ExtractedFunction, DecompileError> {
    extract_function_with(binary, sym, beta, &DecompileLimits::default())
}

/// Extracts one function under an explicit decompilation budget.
///
/// # Errors
///
/// Propagates decompilation failures, including
/// [`DecompileError::BudgetExceeded`].
pub fn extract_function_with(
    binary: &Binary,
    sym: usize,
    beta: usize,
    limits: &DecompileLimits,
) -> Result<ExtractedFunction, DecompileError> {
    let timer = asteria_obs::timer();
    let df = decompile_function_with(binary, sym, limits)?;
    let tree = digitalize(&df);
    let ntree = binarize(&tree);
    timer.observe_seconds("asteria_extract_seconds", &[]);
    asteria_obs::counter_add("asteria_functions_extracted_total", &[], 1);
    asteria_obs::counter_add("asteria_nodes_digitalized_total", &[], ntree.size() as u64);
    Ok(ExtractedFunction {
        callee_count: callee_count(binary, &df, beta),
        ast_size: ntree.size(),
        inst_count: df.inst_count,
        block_count: df.block_count,
        name: df.name,
        tree: ntree,
    })
}

/// Extracts every defined function of a binary.
///
/// # Errors
///
/// Fails on the first function that cannot be decompiled. Corpus-scale
/// callers should prefer [`extract_binary_resilient`], which degrades
/// per function instead of aborting the whole binary.
pub fn extract_binary(
    binary: &Binary,
    beta: usize,
) -> Result<Vec<ExtractedFunction>, DecompileError> {
    binary
        .function_indices()
        .into_iter()
        .map(|i| extract_function(binary, i, beta))
        .collect()
}

/// The outcome of extracting one function during a resilient run.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionOutcome {
    /// Symbol index within the binary.
    pub sym: usize,
    /// Display name from the symbol table (available even on failure).
    pub name: String,
    /// The extracted function, or why it was skipped.
    pub result: Result<ExtractedFunction, DecompileError>,
}

/// Aggregate counts from a resilient extraction: how many functions were
/// extracted and the taxonomy of every failure.
///
/// This is the ledger the paper's IDA-based pipeline never shows — Hex-Rays
/// silently drops functions it cannot decompile; here every skip is
/// accounted for.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExtractionReport {
    /// Defined functions seen in the binary.
    pub total: usize,
    /// Successfully extracted.
    pub extracted: usize,
    /// Skipped for any reason (`total - extracted`).
    pub skipped: usize,
    /// Skipped because a [`DecompileLimits`] budget fired.
    pub over_budget: usize,
    /// Skipped because disassembly failed.
    pub decode_errors: usize,
    /// Skipped because the function body was empty.
    pub empty_functions: usize,
    /// Skipped for any other reason (bad symbol entries).
    pub other_errors: usize,
}

impl ExtractionReport {
    fn record(&mut self, err: &DecompileError) {
        self.skipped += 1;
        match err {
            DecompileError::BudgetExceeded { .. } => self.over_budget += 1,
            DecompileError::Decode(_) => self.decode_errors += 1,
            DecompileError::EmptyFunction(_) => self.empty_functions += 1,
            DecompileError::NotAFunction(_) => self.other_errors += 1,
        }
    }

    /// Merges another report's counts into this one (corpus totals).
    pub fn absorb(&mut self, other: &ExtractionReport) {
        self.total += other.total;
        self.extracted += other.extracted;
        self.skipped += other.skipped;
        self.over_budget += other.over_budget;
        self.decode_errors += other.decode_errors;
        self.empty_functions += other.empty_functions;
        self.other_errors += other.other_errors;
    }
}

impl fmt::Display for ExtractionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} functions: {} extracted, {} skipped",
            self.total, self.extracted, self.skipped
        )?;
        if self.skipped > 0 {
            write!(
                f,
                " ({} over budget, {} decode errors, {} empty, {} other)",
                self.over_budget, self.decode_errors, self.empty_functions, self.other_errors
            )?;
        }
        Ok(())
    }
}

/// The result of a resilient whole-binary extraction: every per-function
/// outcome plus the aggregate report.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilientExtraction {
    /// One outcome per defined function, in symbol order.
    pub outcomes: Vec<FunctionOutcome>,
    /// Aggregate counts and failure taxonomy.
    pub report: ExtractionReport,
}

impl ResilientExtraction {
    /// The successfully extracted functions.
    pub fn successes(&self) -> impl Iterator<Item = &ExtractedFunction> {
        self.outcomes.iter().filter_map(|o| o.result.as_ref().ok())
    }

    /// The skipped functions with their errors.
    pub fn failures(&self) -> impl Iterator<Item = (&str, &DecompileError)> {
        self.outcomes
            .iter()
            .filter_map(|o| o.result.as_ref().err().map(|e| (o.name.as_str(), e)))
    }

    /// Consumes the run, keeping only the extracted functions.
    pub fn into_functions(self) -> Vec<ExtractedFunction> {
        self.outcomes
            .into_iter()
            .filter_map(|o| o.result.ok())
            .collect()
    }

    /// How many skips were due to a specific budget kind.
    pub fn budget_skips(&self, kind: BudgetKind) -> usize {
        self.outcomes
            .iter()
            .filter(|o| {
                matches!(
                    &o.result,
                    Err(DecompileError::BudgetExceeded { kind: k, .. }) if *k == kind
                )
            })
            .count()
    }
}

/// Extracts every defined function of a binary, degrading per function:
/// a function that fails to decompile is recorded as a skip instead of
/// aborting the binary. Never fails at the binary level.
pub fn extract_binary_resilient(binary: &Binary, beta: usize) -> ResilientExtraction {
    extract_binary_resilient_with(binary, beta, &DecompileLimits::default())
}

/// [`extract_binary_resilient`] with an explicit decompilation budget.
pub fn extract_binary_resilient_with(
    binary: &Binary,
    beta: usize,
    limits: &DecompileLimits,
) -> ResilientExtraction {
    let mut outcomes = Vec::new();
    let mut report = ExtractionReport::default();
    for sym in binary.function_indices() {
        let name = binary
            .symbols
            .get(sym)
            .map(|s| s.display_name())
            .unwrap_or_else(|| format!("sym_{sym}"));
        let result = extract_function_with(binary, sym, beta, limits);
        report.total += 1;
        match &result {
            Ok(_) => report.extracted += 1,
            Err(e) => report.record(e),
        }
        outcomes.push(FunctionOutcome { sym, name, result });
    }
    ResilientExtraction { outcomes, report }
}

/// A cached function encoding: the offline product the paper stores for
/// every firmware function (encoding vector + callee count).
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionEncoding {
    /// Function display name.
    pub name: String,
    /// Tree-LSTM encoding of the AST.
    pub vector: Vec<f32>,
    /// Calibration feature C.
    pub callee_count: usize,
}

/// Encodes an extracted function with a trained model.
pub fn encode_function(model: &AsteriaModel, f: &ExtractedFunction) -> FunctionEncoding {
    let enc = FunctionEncoding {
        name: f.name.clone(),
        vector: model.encode(&f.tree),
        callee_count: f.callee_count,
    };
    asteria_obs::counter_add("asteria_functions_encoded_total", &[], 1);
    enc
}

/// The final calibrated similarity ℱ(F₁, F₂) between two cached encodings
/// (paper eq. 10): Siamese similarity times the callee-count calibration.
pub fn function_similarity(
    model: &AsteriaModel,
    a: &FunctionEncoding,
    b: &FunctionEncoding,
) -> f64 {
    let m = model.similarity_from_encodings(&a.vector, &b.vector) as f64;
    calibrated_similarity(m, a.callee_count, b.callee_count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelConfig;
    use asteria_compiler::{compile_program, Arch};
    use asteria_lang::parse;

    const SRC: &str = "int helper(int x) { int s = 0; for (int i = 0; i < x; i++) \
                       { s += i * x; } return s; } \
                       int f(int a) { if (a > 0) { return helper(a) + ext_io(a); } \
                       return helper(0 - a); }";

    #[test]
    fn extraction_works_on_all_arches() {
        let p = parse(SRC).unwrap();
        for arch in Arch::ALL {
            let b = compile_program(&p, arch).unwrap();
            let fns = extract_binary(&b, DEFAULT_INLINE_BETA).unwrap();
            assert_eq!(fns.len(), 2, "{arch}");
            for f in &fns {
                assert!(f.ast_size >= 5, "{arch}: {} too small", f.name);
                assert_eq!(f.ast_size, f.tree.size());
            }
        }
    }

    #[test]
    fn homologous_functions_have_bounded_tree_divergence() {
        let p = parse(SRC).unwrap();
        let mut sizes = Vec::new();
        for arch in Arch::ALL {
            let b = compile_program(&p, arch).unwrap();
            let fns = extract_binary(&b, DEFAULT_INLINE_BETA).unwrap();
            let f = fns.iter().find(|f| f.name == "f").unwrap();
            sizes.push(f.ast_size);
        }
        let min = *sizes.iter().min().unwrap() as f64;
        let max = *sizes.iter().max().unwrap() as f64;
        // Cross-architecture ASTs differ (x86 temps, loop rotation) but
        // remain the same order of magnitude — the regime the Tree-LSTM
        // must bridge.
        assert!(max / min < 2.5, "{sizes:?}");
    }

    #[test]
    fn callee_counts_are_architecture_independent() {
        // The paper's premise for the calibration feature.
        let p = parse(SRC).unwrap();
        let counts: Vec<usize> = Arch::ALL
            .iter()
            .map(|arch| {
                let b = compile_program(&p, *arch).unwrap();
                extract_function(&b, b.symbol_index("f").unwrap(), DEFAULT_INLINE_BETA)
                    .unwrap()
                    .callee_count
            })
            .collect();
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
    }

    #[test]
    fn resilient_extraction_matches_strict_on_clean_binaries() {
        let p = parse(SRC).unwrap();
        for arch in Arch::ALL {
            let b = compile_program(&p, arch).unwrap();
            let strict = extract_binary(&b, DEFAULT_INLINE_BETA).unwrap();
            let resilient = extract_binary_resilient(&b, DEFAULT_INLINE_BETA);
            assert_eq!(resilient.report.total, 2, "{arch}");
            assert_eq!(resilient.report.extracted, 2, "{arch}");
            assert_eq!(resilient.report.skipped, 0, "{arch}");
            assert_eq!(resilient.into_functions(), strict, "{arch}");
        }
    }

    #[test]
    fn resilient_extraction_skips_bad_functions_and_keeps_good_ones() {
        let p = parse(SRC).unwrap();
        let mut b = compile_program(&p, Arch::Arm).unwrap();
        // Corrupt one function's code so it cannot decode.
        let idx = b.symbol_index("helper").unwrap();
        b.symbols[idx].code = vec![0xff; 7];
        let run = extract_binary_resilient(&b, DEFAULT_INLINE_BETA);
        assert_eq!(run.report.total, 2);
        assert_eq!(run.report.extracted, 1);
        assert_eq!(run.report.skipped, 1);
        assert_eq!(run.report.decode_errors, 1);
        let (name, err) = run.failures().next().unwrap();
        assert_eq!(name, "helper");
        assert!(matches!(err, DecompileError::Decode(_)), "{err:?}");
        assert_eq!(run.successes().count(), 1);
    }

    #[test]
    fn resilient_extraction_reports_budget_skips() {
        let p = parse(SRC).unwrap();
        let b = compile_program(&p, Arch::Arm).unwrap();
        let limits = DecompileLimits {
            max_instructions: 1,
            ..DecompileLimits::default()
        };
        let run = extract_binary_resilient_with(&b, DEFAULT_INLINE_BETA, &limits);
        assert_eq!(run.report.over_budget, 2);
        assert_eq!(run.budget_skips(BudgetKind::Instructions), 2);
        assert_eq!(run.budget_skips(BudgetKind::AstNodes), 0);
        let rendered = run.report.to_string();
        assert!(rendered.contains("2 skipped"), "{rendered}");
        assert!(rendered.contains("2 over budget"), "{rendered}");
    }

    #[test]
    fn corpus_reports_absorb() {
        let p = parse(SRC).unwrap();
        let b = compile_program(&p, Arch::X64).unwrap();
        let a = extract_binary_resilient(&b, DEFAULT_INLINE_BETA).report;
        let mut total = ExtractionReport::default();
        total.absorb(&a);
        total.absorb(&a);
        assert_eq!(total.total, 2 * a.total);
        assert_eq!(total.extracted, 2 * a.extracted);
    }

    #[test]
    fn end_to_end_similarity_pipeline() {
        let p = parse(SRC).unwrap();
        let model = AsteriaModel::new(ModelConfig {
            hidden_dim: 12,
            embed_dim: 8,
            ..Default::default()
        });
        let bx = compile_program(&p, Arch::X86).unwrap();
        let ba = compile_program(&p, Arch::Arm).unwrap();
        let fx = extract_function(&bx, bx.symbol_index("f").unwrap(), DEFAULT_INLINE_BETA).unwrap();
        let fa = extract_function(&ba, ba.symbol_index("f").unwrap(), DEFAULT_INLINE_BETA).unwrap();
        let ex = encode_function(&model, &fx);
        let ea = encode_function(&model, &fa);
        let sim = function_similarity(&model, &ex, &ea);
        assert!((0.0..=1.0).contains(&sim), "{sim}");
        // Same callee counts → calibration factor 1, so the calibrated
        // similarity equals the raw model similarity.
        assert_eq!(ex.callee_count, ea.callee_count);
        let raw = model.similarity_from_encodings(&ex.vector, &ea.vector) as f64;
        assert!((sim - raw).abs() < 1e-9);
    }
}
