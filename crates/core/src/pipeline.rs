//! End-to-end extraction: binary → decompiled AST → digitalized,
//! binarized tree + calibration features (Fig. 3 steps 1–2).

use asteria_compiler::Binary;
use asteria_decompiler::{callee_count, decompile_function, DecompileError};

use crate::binarize::{binarize, BinTree};
use crate::model::{calibrated_similarity, AsteriaModel};
use crate::nodes::digitalize;

/// Default inline filter β: callees with fewer machine instructions than
/// this are considered inlining candidates and excluded from the callee
/// count (paper §III-C).
pub const DEFAULT_INLINE_BETA: usize = 6;

/// Everything Asteria needs to know about one binary function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractedFunction {
    /// Display name (symbol or `sub_<offset>`).
    pub name: String,
    /// Digitalized, binarized AST.
    pub tree: BinTree,
    /// Calibration feature C: filtered callee count.
    pub callee_count: usize,
    /// AST size in nodes (the paper filters sizes < 5).
    pub ast_size: usize,
    /// Machine instructions in the function body.
    pub inst_count: usize,
    /// Basic blocks in the machine CFG (used by the Gemini comparison).
    pub block_count: usize,
}

/// Extracts one function.
///
/// # Errors
///
/// Propagates decompilation failures.
pub fn extract_function(
    binary: &Binary,
    sym: usize,
    beta: usize,
) -> Result<ExtractedFunction, DecompileError> {
    let df = decompile_function(binary, sym)?;
    let tree = digitalize(&df);
    let ntree = binarize(&tree);
    Ok(ExtractedFunction {
        callee_count: callee_count(binary, &df, beta),
        ast_size: ntree.size(),
        inst_count: df.inst_count,
        block_count: df.block_count,
        name: df.name,
        tree: ntree,
    })
}

/// Extracts every defined function of a binary.
///
/// # Errors
///
/// Fails on the first function that cannot be decompiled.
pub fn extract_binary(
    binary: &Binary,
    beta: usize,
) -> Result<Vec<ExtractedFunction>, DecompileError> {
    binary
        .function_indices()
        .into_iter()
        .map(|i| extract_function(binary, i, beta))
        .collect()
}

/// A cached function encoding: the offline product the paper stores for
/// every firmware function (encoding vector + callee count).
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionEncoding {
    /// Function display name.
    pub name: String,
    /// Tree-LSTM encoding of the AST.
    pub vector: Vec<f32>,
    /// Calibration feature C.
    pub callee_count: usize,
}

/// Encodes an extracted function with a trained model.
pub fn encode_function(model: &AsteriaModel, f: &ExtractedFunction) -> FunctionEncoding {
    FunctionEncoding {
        name: f.name.clone(),
        vector: model.encode(&f.tree),
        callee_count: f.callee_count,
    }
}

/// The final calibrated similarity ℱ(F₁, F₂) between two cached encodings
/// (paper eq. 10): Siamese similarity times the callee-count calibration.
pub fn function_similarity(
    model: &AsteriaModel,
    a: &FunctionEncoding,
    b: &FunctionEncoding,
) -> f64 {
    let m = model.similarity_from_encodings(&a.vector, &b.vector) as f64;
    calibrated_similarity(m, a.callee_count, b.callee_count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelConfig;
    use asteria_compiler::{compile_program, Arch};
    use asteria_lang::parse;

    const SRC: &str = "int helper(int x) { int s = 0; for (int i = 0; i < x; i++) \
                       { s += i * x; } return s; } \
                       int f(int a) { if (a > 0) { return helper(a) + ext_io(a); } \
                       return helper(0 - a); }";

    #[test]
    fn extraction_works_on_all_arches() {
        let p = parse(SRC).unwrap();
        for arch in Arch::ALL {
            let b = compile_program(&p, arch).unwrap();
            let fns = extract_binary(&b, DEFAULT_INLINE_BETA).unwrap();
            assert_eq!(fns.len(), 2, "{arch}");
            for f in &fns {
                assert!(f.ast_size >= 5, "{arch}: {} too small", f.name);
                assert_eq!(f.ast_size, f.tree.size());
            }
        }
    }

    #[test]
    fn homologous_functions_have_bounded_tree_divergence() {
        let p = parse(SRC).unwrap();
        let mut sizes = Vec::new();
        for arch in Arch::ALL {
            let b = compile_program(&p, arch).unwrap();
            let fns = extract_binary(&b, DEFAULT_INLINE_BETA).unwrap();
            let f = fns.iter().find(|f| f.name == "f").unwrap();
            sizes.push(f.ast_size);
        }
        let min = *sizes.iter().min().unwrap() as f64;
        let max = *sizes.iter().max().unwrap() as f64;
        // Cross-architecture ASTs differ (x86 temps, loop rotation) but
        // remain the same order of magnitude — the regime the Tree-LSTM
        // must bridge.
        assert!(max / min < 2.5, "{sizes:?}");
    }

    #[test]
    fn callee_counts_are_architecture_independent() {
        // The paper's premise for the calibration feature.
        let p = parse(SRC).unwrap();
        let counts: Vec<usize> = Arch::ALL
            .iter()
            .map(|arch| {
                let b = compile_program(&p, *arch).unwrap();
                extract_function(&b, b.symbol_index("f").unwrap(), DEFAULT_INLINE_BETA)
                    .unwrap()
                    .callee_count
            })
            .collect();
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
    }

    #[test]
    fn end_to_end_similarity_pipeline() {
        let p = parse(SRC).unwrap();
        let model = AsteriaModel::new(ModelConfig {
            hidden_dim: 12,
            embed_dim: 8,
            ..Default::default()
        });
        let bx = compile_program(&p, Arch::X86).unwrap();
        let ba = compile_program(&p, Arch::Arm).unwrap();
        let fx = extract_function(&bx, bx.symbol_index("f").unwrap(), DEFAULT_INLINE_BETA).unwrap();
        let fa = extract_function(&ba, ba.symbol_index("f").unwrap(), DEFAULT_INLINE_BETA).unwrap();
        let ex = encode_function(&model, &fx);
        let ea = encode_function(&model, &fa);
        let sim = function_similarity(&model, &ex, &ea);
        assert!((0.0..=1.0).contains(&sim), "{sim}");
        // Same callee counts → calibration factor 1, so the calibrated
        // similarity equals the raw model similarity.
        assert_eq!(ex.callee_count, ea.callee_count);
        let raw = model.similarity_from_encodings(&ex.vector, &ea.vector) as f64;
        assert!((sim - raw).abs() < 1e-9);
    }
}
