//! `asteria-core` — the paper's contribution: deep learning-based
//! AST-encoding for cross-platform binary code similarity detection.
//!
//! The pipeline follows the paper's Fig. 3 exactly:
//!
//! 1. **AST extraction** — [`pipeline::extract_function`] decompiles a
//!    binary function (via `asteria-decompiler`) into an AST;
//! 2. **preprocessing** — [`digitalize`] maps each node to its Table I
//!    label and [`binarize`] applies the left-child right-sibling
//!    transform;
//! 3. **encoding** — the Binary [`TreeLstm`] (eq. 1–7) encodes the tree
//!    bottom-up into a semantic vector;
//! 4. **similarity** — the [`SiameseHead`] (eq. 8) turns two encodings
//!    into a similarity score;
//! 5. **calibration** — [`calibrated_similarity`] (eq. 9–10) multiplies in
//!    the callee-count feature.
//!
//! Training ([`train`]) uses BCELoss + AdaGrad at batch size 1, keeping
//! best-validation weights, as in §IV-A.
//!
//! # Examples
//!
//! ```
//! use asteria_compiler::{compile_program, Arch};
//! use asteria_core::{extract_function, AsteriaModel, ModelConfig, DEFAULT_INLINE_BETA};
//!
//! let program = asteria_lang::parse(
//!     "int f(int n) { int s = 0; while (n > 0) { s += n; n -= 1; } return s; }",
//! )?;
//! let model = AsteriaModel::new(ModelConfig::default());
//! let arm = compile_program(&program, Arch::Arm)?;
//! let x86 = compile_program(&program, Arch::X86)?;
//! let fa = extract_function(&arm, 0, DEFAULT_INLINE_BETA)?;
//! let fx = extract_function(&x86, 0, DEFAULT_INLINE_BETA)?;
//! let sim = model.similarity(&fa.tree, &fx.tree);
//! assert!((0.0..=1.0).contains(&sim));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binarize;
pub mod encoder;
pub mod model;
pub mod nodes;
pub mod pipeline;
pub mod siamese;
pub mod train;

pub use binarize::{binarize, binarize_truncated, BinTree};
pub use encoder::{LeafInit, TreeLstm};
pub use model::{calibrated_similarity, callee_similarity, AsteriaModel, ModelConfig};
pub use nodes::{digitalize, AstTree, NodeType};
pub use pipeline::{
    encode_function, extract_binary, extract_binary_resilient, extract_binary_resilient_with,
    extract_function, extract_function_with, function_similarity, ExtractedFunction,
    ExtractionReport, FunctionEncoding, FunctionOutcome, ResilientExtraction, DEFAULT_INLINE_BETA,
};
pub use siamese::{SiameseHead, SiameseKind};
pub use train::{
    train, train_epoch, train_with_validation, validation_scores, EpochStats, TrainOptions,
    TrainPair,
};
