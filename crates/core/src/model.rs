//! The complete Asteria model: shared Tree-LSTM towers + Siamese head +
//! callee-count calibration (paper §III, eq. 9–10).

use std::io::{self, Read, Write};

use rand::rngs::StdRng;
use rand::SeedableRng;

use asteria_nn::{AdaGrad, Graph, Optimizer, ParamStore};

use crate::binarize::BinTree;
use crate::encoder::{LeafInit, TreeLstm};
use crate::nodes::NodeType;
use crate::siamese::{SiameseHead, SiameseKind};

/// Model hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelConfig {
    /// Node-embedding dimension (paper default: 16).
    pub embed_dim: usize,
    /// Tree-LSTM hidden/encoding dimension.
    pub hidden_dim: usize,
    /// Leaf child-state initialization (Fig. 9 ablation).
    pub leaf_init: LeafInit,
    /// Siamese head flavour (Fig. 9 ablation).
    pub head: SiameseKind,
    /// Embedding vocabulary (Table I label count).
    pub vocab: usize,
    /// Weight-initialization seed.
    pub seed: u64,
    /// AdaGrad learning rate (the paper's optimizer, §IV-A).
    pub learning_rate: f32,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            embed_dim: 16,
            hidden_dim: 32,
            leaf_init: LeafInit::Zeros,
            head: SiameseKind::Classification,
            vocab: NodeType::VOCAB,
            seed: 0xA57E51A,
            learning_rate: 0.05,
        }
    }
}

/// The trainable Asteria model 𝓜(T₁, T₂).
///
/// # Examples
///
/// ```
/// use asteria_core::{AsteriaModel, ModelConfig};
/// use asteria_core::nodes::{AstTree, NodeType};
/// use asteria_core::binarize::binarize;
///
/// let model = AsteriaModel::new(ModelConfig::default());
/// let tree = binarize(&AstTree::with_root(NodeType::Block));
/// let sim = model.similarity(&tree, &tree);
/// assert!((0.0..=1.0).contains(&sim));
/// ```
pub struct AsteriaModel {
    config: ModelConfig,
    store: ParamStore,
    tree_lstm: TreeLstm,
    head: SiameseHead,
    optimizer: AdaGrad,
}

impl std::fmt::Debug for AsteriaModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "AsteriaModel(embed={}, hidden={}, {:?}, {} weights)",
            self.config.embed_dim,
            self.config.hidden_dim,
            self.head.kind(),
            self.store.num_weights()
        )
    }
}

impl AsteriaModel {
    /// Builds a model with freshly initialized weights.
    pub fn new(config: ModelConfig) -> Self {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let tree_lstm = TreeLstm::new(
            &mut store,
            config.vocab,
            config.embed_dim,
            config.hidden_dim,
            config.leaf_init,
            &mut rng,
        );
        let head = SiameseHead::new(&mut store, config.head, config.hidden_dim, &mut rng);
        let optimizer = AdaGrad::new(config.learning_rate);
        AsteriaModel {
            config,
            store,
            tree_lstm,
            head,
            optimizer,
        }
    }

    /// The configuration the model was built with.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Total number of scalar weights.
    pub fn num_weights(&self) -> usize {
        self.store.num_weights()
    }

    /// Encodes an AST into its semantic vector (the offline phase).
    pub fn encode(&self, tree: &BinTree) -> Vec<f32> {
        self.tree_lstm.encode_to_vec(&self.store, tree)
    }

    /// Full-pipeline similarity 𝓜(T₁, T₂) of two ASTs.
    pub fn similarity(&self, t1: &BinTree, t2: &BinTree) -> f32 {
        let mut g = Graph::new();
        let h1 = self.tree_lstm.encode(&mut g, &self.store, t1);
        let h2 = self.tree_lstm.encode(&mut g, &self.store, t2);
        let out = self.head.forward(&mut g, &self.store, h1, h2);
        self.head.similarity(&g, out)
    }

    /// Online-phase similarity from two cached encodings (Fig. 10c).
    pub fn similarity_from_encodings(&self, a: &[f32], b: &[f32]) -> f32 {
        self.head.similarity_from_vecs(&self.store, a, b)
    }

    /// One SGD step on a labelled AST pair; returns the loss.
    ///
    /// Both towers share one parameter set (the Siamese property), so the
    /// backward pass accumulates gradients from both trees automatically.
    pub fn train_pair(&mut self, t1: &BinTree, t2: &BinTree, homologous: bool) -> f32 {
        self.store.zero_grads();
        let mut g = Graph::new();
        let h1 = self.tree_lstm.encode(&mut g, &self.store, t1);
        let h2 = self.tree_lstm.encode(&mut g, &self.store, t2);
        let out = self.head.forward(&mut g, &self.store, h1, h2);
        let loss = self.head.loss(&mut g, out, homologous);
        let loss_value = g.value(loss).item();
        g.backward(loss, &mut self.store);
        self.store.clip_grad_norm(5.0);
        self.optimizer.step(&mut self.store);
        loss_value
    }

    /// Serializes the weights.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn save<W: Write>(&self, w: W) -> io::Result<()> {
        self.store.save(w)
    }

    /// Restores weights previously written by [`AsteriaModel::save`] into a
    /// model of identical configuration.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` when shapes or names do not match.
    pub fn load<R: Read>(&mut self, r: R) -> io::Result<()> {
        self.store.load(r)
    }

    /// Snapshot of the weights as bytes (for best-epoch checkpointing).
    pub fn snapshot(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.save(&mut buf).expect("in-memory save cannot fail");
        buf
    }

    /// Restores a snapshot created by [`AsteriaModel::snapshot`].
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` when the snapshot does not match the model
    /// configuration (wrong encoder shapes, unknown parameter names) —
    /// weights loaded from disk are untrusted input, so a mismatch must
    /// surface as a typed error, never a panic.
    pub fn restore(&mut self, snapshot: &[u8]) -> io::Result<()> {
        self.load(snapshot)
    }

    /// Content digest of the current weights (names, shapes, exact f32
    /// bits). Any training step, reconfiguration, or weight edit changes
    /// it, so it is the invalidation key for persisted artifacts derived
    /// from this model — notably the on-disk embedding index.
    pub fn weights_digest(&self) -> u64 {
        self.store.digest()
    }
}

/// The calibration function 𝒮(C₁, C₂) = e^(−|C₁−C₂|) (paper eq. 9).
pub fn callee_similarity(c1: usize, c2: usize) -> f64 {
    let d = c1.abs_diff(c2) as f64;
    (-d).exp()
}

/// The final function similarity ℱ = 𝓜(T₁,T₂) × 𝒮(C₁,C₂) (paper eq. 10).
pub fn calibrated_similarity(ast_similarity: f64, c1: usize, c2: usize) -> f64 {
    ast_similarity * callee_similarity(c1, c2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binarize::binarize;
    use crate::nodes::{AstTree, NodeType};

    fn tree(kinds: &[NodeType]) -> BinTree {
        let mut t = AstTree::with_root(NodeType::Block);
        let r = t.root();
        for k in kinds {
            t.add(r, *k);
        }
        binarize(&t)
    }

    #[test]
    fn similarity_in_unit_interval() {
        let m = AsteriaModel::new(ModelConfig::default());
        let a = tree(&[NodeType::If, NodeType::Return]);
        let b = tree(&[NodeType::While, NodeType::Break]);
        let s = m.similarity(&a, &b);
        assert!((0.0..=1.0).contains(&s), "{s}");
    }

    #[test]
    fn training_separates_pairs() {
        let mut config = ModelConfig {
            hidden_dim: 16,
            embed_dim: 8,
            ..Default::default()
        };
        config.learning_rate = 0.1;
        let mut m = AsteriaModel::new(config);
        let a1 = tree(&[NodeType::If, NodeType::Return, NodeType::While]);
        let a2 = tree(&[NodeType::If, NodeType::Return, NodeType::While]);
        let b = tree(&[
            NodeType::Switch,
            NodeType::Goto,
            NodeType::Num,
            NodeType::Call,
        ]);
        for _ in 0..40 {
            m.train_pair(&a1, &a2, true);
            m.train_pair(&a1, &b, false);
        }
        let sim_pos = m.similarity(&a1, &a2);
        let sim_neg = m.similarity(&a1, &b);
        assert!(
            sim_pos > sim_neg + 0.3,
            "training failed to separate: pos={sim_pos} neg={sim_neg}"
        );
    }

    #[test]
    fn encodings_reproduce_full_similarity() {
        let m = AsteriaModel::new(ModelConfig::default());
        let a = tree(&[NodeType::If, NodeType::Return]);
        let b = tree(&[NodeType::While]);
        let full = m.similarity(&a, &b);
        let fast = m.similarity_from_encodings(&m.encode(&a), &m.encode(&b));
        assert!((full - fast).abs() < 1e-5);
    }

    #[test]
    fn save_load_roundtrip_preserves_outputs() {
        let mut m1 = AsteriaModel::new(ModelConfig::default());
        let a = tree(&[NodeType::If]);
        let b = tree(&[NodeType::While]);
        m1.train_pair(&a, &b, false);
        let snapshot = m1.snapshot();
        let mut m2 = AsteriaModel::new(ModelConfig::default());
        m2.restore(&snapshot).unwrap();
        assert_eq!(m1.similarity(&a, &b), m2.similarity(&a, &b));
        assert_eq!(m1.weights_digest(), m2.weights_digest());
    }

    #[test]
    fn restore_rejects_mismatched_configuration() {
        // A snapshot from a differently-shaped encoder is a typed error,
        // not a panic: on-disk weights are untrusted input.
        let small = AsteriaModel::new(ModelConfig {
            hidden_dim: 8,
            embed_dim: 4,
            ..Default::default()
        });
        let mut big = AsteriaModel::new(ModelConfig::default());
        let err = big.restore(&small.snapshot()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn weights_digest_tracks_training() {
        let mut m = AsteriaModel::new(ModelConfig {
            hidden_dim: 8,
            embed_dim: 4,
            ..Default::default()
        });
        let d0 = m.weights_digest();
        assert_eq!(d0, m.weights_digest());
        let a = tree(&[NodeType::If]);
        let b = tree(&[NodeType::While]);
        m.train_pair(&a, &b, false);
        assert_ne!(
            d0,
            m.weights_digest(),
            "a train step must change the digest"
        );
    }

    #[test]
    fn calibration_matches_paper_equation() {
        assert!((callee_similarity(3, 3) - 1.0).abs() < 1e-12);
        assert!((callee_similarity(3, 4) - (-1.0f64).exp()).abs() < 1e-12);
        assert!((callee_similarity(0, 5) - (-5.0f64).exp()).abs() < 1e-12);
        let f = calibrated_similarity(0.9, 2, 4);
        assert!((f - 0.9 * (-2.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn regression_head_also_trains() {
        let config = ModelConfig {
            head: SiameseKind::Regression,
            hidden_dim: 16,
            embed_dim: 8,
            learning_rate: 0.1,
            ..Default::default()
        };
        let mut m = AsteriaModel::new(config);
        let a = tree(&[NodeType::If, NodeType::Return]);
        let b = tree(&[NodeType::Switch, NodeType::Num]);
        let mut last = f32::INFINITY;
        for _ in 0..20 {
            last = m.train_pair(&a, &b, false);
        }
        assert!(last < 0.5, "regression loss did not drop: {last}");
    }
}
