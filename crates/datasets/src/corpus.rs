//! Corpus construction: packages → cross-compiled binaries → extracted
//! function instances (the reproduction's Buildroot/OpenSSL datasets).

use asteria_compiler::{compile_program, Arch, Binary};
use asteria_core::{extract_binary, ExtractedFunction, DEFAULT_INLINE_BETA};

use crate::gen::{generate_package, GenConfig};

/// Corpus construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct CorpusConfig {
    /// Number of packages ("open-source projects").
    pub packages: usize,
    /// Functions per package.
    pub functions_per_package: usize,
    /// Master seed.
    pub seed: u64,
    /// Inline filter β for callee counting.
    pub beta: usize,
    /// Minimum AST size; the paper drops ASTs with fewer than 5 nodes.
    pub min_ast_size: usize,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            packages: 10,
            functions_per_package: 8,
            seed: 42,
            beta: DEFAULT_INLINE_BETA,
            min_ast_size: 5,
        }
    }
}

/// One function instance: a specific function of a specific package
/// compiled for a specific architecture.
#[derive(Debug, Clone)]
pub struct FunctionInstance {
    /// Package name.
    pub package: String,
    /// Function symbol name (ground-truth identity within the package).
    pub name: String,
    /// Architecture this instance was compiled for.
    pub arch: Arch,
    /// Extracted AST + calibration features.
    pub extracted: ExtractedFunction,
}

impl FunctionInstance {
    /// Ground-truth identity key: two instances are homologous iff their
    /// keys are equal (same package, same function name).
    pub fn identity(&self) -> (&str, &str) {
        (&self.package, &self.name)
    }
}

/// A compiled binary with provenance.
#[derive(Debug, Clone)]
pub struct CorpusBinary {
    /// Package name.
    pub package: String,
    /// Architecture.
    pub arch: Arch,
    /// The binary image.
    pub binary: Binary,
}

/// A cross-compiled corpus of packages.
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    /// All binaries (packages × architectures).
    pub binaries: Vec<CorpusBinary>,
    /// All extracted function instances that pass the AST-size filter.
    pub instances: Vec<FunctionInstance>,
    /// Number of instances dropped by the AST-size filter.
    pub filtered_out: usize,
}

impl Corpus {
    /// Instances compiled for one architecture.
    pub fn instances_for(&self, arch: Arch) -> Vec<usize> {
        (0..self.instances.len())
            .filter(|i| self.instances[*i].arch == arch)
            .collect()
    }

    /// Per-architecture `(binaries, functions)` counts — Table II's rows.
    pub fn arch_stats(&self) -> Vec<(Arch, usize, usize)> {
        Arch::ALL
            .iter()
            .map(|a| {
                let bins = self.binaries.iter().filter(|b| b.arch == *a).count();
                let funcs = self.instances.iter().filter(|i| i.arch == *a).count();
                (*a, bins, funcs)
            })
            .collect()
    }
}

/// Builds a corpus by generating `packages` MiniC packages and compiling
/// each for all four architectures, extracting every function's AST.
///
/// Packages are named after real IoT-adjacent projects purely for
/// readability; their contents are synthetic.
///
/// # Panics
///
/// Panics if generation, compilation, or extraction fails — all of which
/// indicate bugs covered by lower-level tests.
pub fn build_corpus(config: &CorpusConfig) -> Corpus {
    build_corpus_with_extra(config, &[])
}

/// Like [`build_corpus`], with additional hand-written packages given as
/// `(package_name, minic_source)`. The paper's Buildroot training corpus
/// contains the very libraries (OpenSSL, curl, …) later searched for
/// vulnerabilities; callers use this hook to include library-style code
/// (e.g. patched CVE functions) in training the same way.
///
/// # Panics
///
/// Panics if an extra source fails to parse or compile.
pub fn build_corpus_with_extra(config: &CorpusConfig, extra: &[(String, String)]) -> Corpus {
    const NAMES: &[&str] = &[
        "busybox", "openssl", "zlib", "curl", "dropbear", "dnsmasq", "lighttpd", "mbedtls",
        "uclibc", "wget", "vsftpd", "iptables", "hostapd", "ntpd", "upnp", "telnetd", "tinylog",
        "jsonp", "mqttc", "coapd",
    ];
    let gen_cfg = GenConfig {
        functions: config.functions_per_package,
        max_depth: 3,
        seed: config.seed,
    };
    let mut corpus = Corpus::default();
    let mut sources: Vec<(String, asteria_lang::Program)> = Vec::new();
    let package_names = (0..config.packages).map(|p| match NAMES.get(p) {
        Some(n) => n.to_string(),
        None => format!("pkg{p}"),
    });
    for package in package_names {
        let (_, program) = generate_package(&package, &gen_cfg);
        sources.push((package, program));
    }
    for (name, src) in extra {
        let program =
            asteria_lang::parse(src).unwrap_or_else(|e| panic!("extra package {name}: {e}"));
        sources.push((name.clone(), program));
    }
    for (package, program) in sources {
        for arch in Arch::ALL {
            let binary = compile_program(&program, arch)
                .unwrap_or_else(|e| panic!("{package}/{arch}: compile failed: {e}"));
            let extracted = extract_binary(&binary, config.beta)
                .unwrap_or_else(|e| panic!("{package}/{arch}: extraction failed: {e}"));
            for f in extracted {
                if f.ast_size < config.min_ast_size {
                    corpus.filtered_out += 1;
                    continue;
                }
                corpus.instances.push(FunctionInstance {
                    package: package.clone(),
                    name: f.name.clone(),
                    arch,
                    extracted: f,
                });
            }
            corpus.binaries.push(CorpusBinary {
                package: package.clone(),
                arch,
                binary,
            });
        }
    }
    corpus
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Corpus {
        build_corpus(&CorpusConfig {
            packages: 3,
            functions_per_package: 4,
            seed: 9,
            ..Default::default()
        })
    }

    #[test]
    fn corpus_has_all_arch_variants() {
        let c = small();
        assert_eq!(c.binaries.len(), 12); // 3 packages × 4 arches
        for (arch, bins, funcs) in c.arch_stats() {
            assert_eq!(bins, 3, "{arch}");
            assert!(funcs > 0, "{arch}");
        }
    }

    #[test]
    fn homologous_instances_exist_across_arches() {
        let c = small();
        let first = &c.instances[0];
        let variants: Vec<&FunctionInstance> = c
            .instances
            .iter()
            .filter(|i| i.identity() == first.identity())
            .collect();
        assert_eq!(variants.len(), 4, "one variant per architecture");
        let arches: Vec<Arch> = variants.iter().map(|v| v.arch).collect();
        for a in Arch::ALL {
            assert!(arches.contains(&a));
        }
    }

    #[test]
    fn ast_size_filter_applies() {
        let c = build_corpus(&CorpusConfig {
            packages: 2,
            functions_per_package: 4,
            seed: 10,
            min_ast_size: 10_000, // absurd: everything filtered
            ..Default::default()
        });
        assert!(c.instances.is_empty());
        assert!(c.filtered_out > 0);
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.instances.len(), b.instances.len());
        for (x, y) in a.instances.iter().zip(&b.instances) {
            assert_eq!(x.identity(), y.identity());
            assert_eq!(x.extracted.tree, y.extracted.tree);
        }
    }
}
