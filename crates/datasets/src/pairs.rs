//! Function-pair construction and train/test splitting (paper §IV-B).
//!
//! Homologous pairs are cross-architecture variants of the same
//! `(package, function)` identity; non-homologous pairs mix different
//! identities. The six architecture combinations of Table III are all
//! supported, both for the pair-wise experiments (Fig. 7) and the mixed
//! experiment (Fig. 6).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use asteria_compiler::Arch;

use crate::corpus::Corpus;

/// A labelled function pair (indices into [`Corpus::instances`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pair {
    /// First instance index.
    pub a: usize,
    /// Second instance index.
    pub b: usize,
    /// Ground truth: +1 (homologous) or −1 in the paper's notation.
    pub homologous: bool,
}

/// The six cross-architecture combinations of Table III.
pub const ARCH_COMBINATIONS: [(Arch, Arch); 6] = [
    (Arch::X86, Arch::Arm),
    (Arch::X86, Arch::Ppc),
    (Arch::X86, Arch::X64),
    (Arch::Arm, Arch::Ppc),
    (Arch::Arm, Arch::X64),
    (Arch::Ppc, Arch::X64),
];

/// Pair-sampling configuration.
#[derive(Debug, Clone, Copy)]
pub struct PairConfig {
    /// Homologous pairs to sample per architecture combination.
    pub positives_per_combination: usize,
    /// Non-homologous pairs per architecture combination.
    pub negatives_per_combination: usize,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for PairConfig {
    fn default() -> Self {
        PairConfig {
            positives_per_combination: 50,
            negatives_per_combination: 50,
            seed: 3,
        }
    }
}

/// A labelled pair set with provenance.
#[derive(Debug, Clone, Default)]
pub struct PairSet {
    /// The pairs.
    pub pairs: Vec<Pair>,
}

impl PairSet {
    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Pairs restricted to one architecture combination (order-free).
    pub fn for_combination(&self, corpus: &Corpus, a: Arch, b: Arch) -> PairSet {
        let pairs = self
            .pairs
            .iter()
            .filter(|p| {
                let (x, y) = (corpus.instances[p.a].arch, corpus.instances[p.b].arch);
                (x == a && y == b) || (x == b && y == a)
            })
            .copied()
            .collect();
        PairSet { pairs }
    }

    /// Splits into train/test by ratio (the paper uses 8:2), shuffled.
    pub fn split(&self, train_ratio: f64, seed: u64) -> (PairSet, PairSet) {
        let mut pairs = self.pairs.clone();
        let mut rng = StdRng::seed_from_u64(seed);
        pairs.shuffle(&mut rng);
        let cut = ((pairs.len() as f64) * train_ratio).round() as usize;
        let test = pairs.split_off(cut.min(pairs.len()));
        (PairSet { pairs }, PairSet { pairs: test })
    }

    /// Per-combination pair counts (Table III's rows).
    pub fn combination_counts(&self, corpus: &Corpus) -> Vec<((Arch, Arch), usize)> {
        ARCH_COMBINATIONS
            .iter()
            .map(|(a, b)| ((*a, *b), self.for_combination(corpus, *a, *b).len()))
            .collect()
    }
}

/// Samples labelled cross-architecture pairs from a corpus.
///
/// For every one of the six architecture combinations: homologous pairs
/// are drawn by picking an identity present on both architectures;
/// non-homologous pairs pick two *different* identities. Sampling without
/// replacement where possible.
pub fn build_pairs(corpus: &Corpus, config: &PairConfig) -> PairSet {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut out = Vec::new();
    for (arch_a, arch_b) in ARCH_COMBINATIONS {
        let xs = corpus.instances_for(arch_a);
        let ys = corpus.instances_for(arch_b);
        if xs.is_empty() || ys.is_empty() {
            continue;
        }
        // Positive pairs: identities present on both sides.
        let mut positives: Vec<(usize, usize)> = Vec::new();
        for &x in &xs {
            let idx = corpus.instances[x].identity();
            if let Some(&y) = ys.iter().find(|&&y| corpus.instances[y].identity() == idx) {
                positives.push((x, y));
            }
        }
        positives.shuffle(&mut rng);
        positives.truncate(config.positives_per_combination);
        for (a, b) in &positives {
            out.push(Pair {
                a: *a,
                b: *b,
                homologous: true,
            });
        }
        // Negative pairs: different identities, sampled randomly.
        let mut negatives = 0usize;
        let mut guard = 0usize;
        while negatives < config.negatives_per_combination && guard < 100_000 {
            guard += 1;
            let x = xs[rng.gen_range(0..xs.len())];
            let y = ys[rng.gen_range(0..ys.len())];
            if corpus.instances[x].identity() == corpus.instances[y].identity() {
                continue;
            }
            out.push(Pair {
                a: x,
                b: y,
                homologous: false,
            });
            negatives += 1;
        }
    }
    PairSet { pairs: out }
}

/// Converts pairs into the core crate's training examples.
pub fn to_train_pairs(corpus: &Corpus, set: &PairSet) -> Vec<asteria_core::TrainPair> {
    set.pairs
        .iter()
        .map(|p| asteria_core::TrainPair {
            a: corpus.instances[p.a].extracted.tree.clone(),
            b: corpus.instances[p.b].extracted.tree.clone(),
            homologous: p.homologous,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{build_corpus, CorpusConfig};

    fn fixture() -> (Corpus, PairSet) {
        let corpus = build_corpus(&CorpusConfig {
            packages: 3,
            functions_per_package: 5,
            seed: 11,
            ..Default::default()
        });
        let pairs = build_pairs(
            &corpus,
            &PairConfig {
                positives_per_combination: 10,
                negatives_per_combination: 10,
                seed: 1,
            },
        );
        (corpus, pairs)
    }

    #[test]
    fn pairs_cover_all_combinations() {
        let (corpus, pairs) = fixture();
        for ((a, b), n) in pairs.combination_counts(&corpus) {
            assert!(n >= 10, "{a}-{b}: only {n} pairs");
        }
    }

    #[test]
    fn labels_match_identity() {
        let (corpus, pairs) = fixture();
        for p in &pairs.pairs {
            let same = corpus.instances[p.a].identity() == corpus.instances[p.b].identity();
            assert_eq!(same, p.homologous);
            assert_ne!(corpus.instances[p.a].arch, corpus.instances[p.b].arch);
        }
    }

    #[test]
    fn split_is_disjoint_and_complete() {
        let (_, pairs) = fixture();
        let (train, test) = pairs.split(0.8, 5);
        assert_eq!(train.len() + test.len(), pairs.len());
        let ratio = train.len() as f64 / pairs.len() as f64;
        assert!((ratio - 0.8).abs() < 0.05, "{ratio}");
    }

    #[test]
    fn split_is_deterministic() {
        let (_, pairs) = fixture();
        let (t1, _) = pairs.split(0.8, 5);
        let (t2, _) = pairs.split(0.8, 5);
        assert_eq!(t1.pairs, t2.pairs);
    }

    #[test]
    fn combination_filter_selects_arches() {
        let (corpus, pairs) = fixture();
        let sub = pairs.for_combination(&corpus, Arch::X86, Arch::Arm);
        assert!(!sub.is_empty());
        for p in &sub.pairs {
            let (x, y) = (corpus.instances[p.a].arch, corpus.instances[p.b].arch);
            assert!((x == Arch::X86 && y == Arch::Arm) || (x == Arch::Arm && y == Arch::X86));
        }
    }

    #[test]
    fn to_train_pairs_preserves_labels() {
        let (corpus, pairs) = fixture();
        let tps = to_train_pairs(&corpus, &pairs);
        assert_eq!(tps.len(), pairs.len());
        for (tp, p) in tps.iter().zip(&pairs.pairs) {
            assert_eq!(tp.homologous, p.homologous);
        }
    }
}
