//! Seeded random MiniC package generation.
//!
//! The paper cross-compiles 260 open-source packages; this module is the
//! corpus source the reproduction substitutes. Each "package" is a MiniC
//! program whose functions mix instantiated idiom templates (checksums,
//! clamps, lookup tables, state machines, parsers — the kinds of routines
//! that dominate IoT firmware) with randomly grown structured code.
//! Everything is seeded, so corpora are exactly reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use asteria_lang::{parse, Program};

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Number of functions per package.
    pub functions: usize,
    /// Maximum statement nesting depth of random code.
    pub max_depth: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            functions: 8,
            max_depth: 3,
            seed: 1,
        }
    }
}

/// External functions the generated code may import.
const EXTERNS: &[&str] = &[
    "ext_log",
    "ext_read",
    "ext_write",
    "ext_alloc",
    "ext_send",
    "ext_recv",
    "ext_hash",
    "ext_time",
    "ext_check",
];

/// String literals sprinkled into logging calls.
const STRINGS: &[&str] = &[
    "init",
    "error",
    "warn: %d",
    "state=%d",
    "done",
    "timeout",
    "retry",
    "bad input",
];

struct Gen {
    rng: StdRng,
    src: String,
    /// Names of functions generated so far (callable without recursion).
    funcs: Vec<(String, usize)>, // (name, arity)
    globals: Vec<String>,
}

impl Gen {
    fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.rng.gen_range(0..xs.len())]
    }

    /// A random in-scope scalar variable name.
    fn var(&mut self, scope: &[String]) -> String {
        scope[self.rng.gen_range(0..scope.len())].clone()
    }

    /// A random assignable variable: loop counters (`i*`) are excluded so
    /// random writes cannot break loop-termination bounds.
    fn assignable_var(&mut self, scope: &[String]) -> String {
        let candidates: Vec<&String> = scope.iter().filter(|v| !v.starts_with('i')).collect();
        if candidates.is_empty() {
            scope[0].clone()
        } else {
            (*candidates[self.rng.gen_range(0..candidates.len())]).clone()
        }
    }

    /// A random expression of bounded depth over the given scope.
    fn expr(&mut self, scope: &[String], depth: usize) -> String {
        if depth == 0 || self.rng.gen_bool(0.35) {
            return match self.rng.gen_range(0..10) {
                0..=4 => self.var(scope),
                5..=7 => self.rng.gen_range(0..64i64).to_string(),
                8 => {
                    if self.globals.is_empty() {
                        self.var(scope)
                    } else {
                        let g = self.rng.gen_range(0..self.globals.len());
                        self.globals[g].clone()
                    }
                }
                _ => format!("{}", self.rng.gen_range(1..16i64)),
            };
        }
        match self.rng.gen_range(0..12) {
            0..=6 => {
                // Frequency-weighted operators: real firmware code is
                // dominated by +/-/& with the exotic operators in the tail,
                // which keeps node-type histograms realistically correlated
                // across unrelated functions.
                let op = *self.pick(&[
                    "+", "+", "+", "+", "-", "-", "-", "*", "&", "&", "|", "^", "/", "%", "<<",
                    ">>",
                ]);
                // Keep shift amounts small so results stay comparable.
                let rhs = if op == "<<" || op == ">>" {
                    self.rng.gen_range(0..8i64).to_string()
                } else {
                    self.expr(scope, depth - 1)
                };
                format!("({} {} {})", self.expr(scope, depth - 1), op, rhs)
            }
            7 => {
                let op = *self.pick(&["-", "~", "!"]);
                format!("{}({})", op, self.expr(scope, depth - 1))
            }
            8 | 9 => {
                // Call an extern or an earlier function (keeps the call
                // graph acyclic).
                let use_local = !self.funcs.is_empty() && self.rng.gen_bool(0.5);
                if use_local {
                    let idx = self.rng.gen_range(0..self.funcs.len());
                    let (name, arity) = self.funcs[idx].clone();
                    let args: Vec<String> =
                        (0..arity).map(|_| self.expr(scope, depth - 1)).collect();
                    format!("{name}({})", args.join(", "))
                } else {
                    let name = *self.pick(EXTERNS);
                    let n = self.rng.gen_range(1..=3);
                    let args: Vec<String> = (0..n).map(|_| self.expr(scope, depth - 1)).collect();
                    format!("{name}({})", args.join(", "))
                }
            }
            _ => {
                let op = *self.pick(&["==", "==", "<", "<", ">", "!="]);
                format!(
                    "({} {} {})",
                    self.expr(scope, depth - 1),
                    op,
                    self.expr(scope, depth - 1)
                )
            }
        }
    }

    fn cond(&mut self, scope: &[String], depth: usize) -> String {
        let op = *self.pick(&["==", "==", "!=", "<", "<", "<=", ">", ">", ">="]);
        let base = format!(
            "{} {} {}",
            self.expr(scope, depth.saturating_sub(1)),
            op,
            self.expr(scope, depth.saturating_sub(1))
        );
        if depth > 1 && self.rng.gen_bool(0.2) {
            let join = *self.pick(&["&&", "||"]);
            let extra_op = *self.pick(&["<", ">", "=="]);
            format!(
                "{base} {join} {} {extra_op} {}",
                self.var(scope),
                self.rng.gen_range(0..32)
            )
        } else {
            base
        }
    }

    /// Emits one random statement into `out` at the given indent/depth,
    /// possibly declaring new locals into `scope`.
    fn stmt(&mut self, out: &mut String, scope: &mut Vec<String>, depth: usize, fresh: &mut usize) {
        // Statement-kind weights mirror real firmware code: straight-line
        // assignments and calls dominate; control flow is the minority
        // (roughly one statement in four).
        let choice = if depth == 0 {
            self.rng.gen_range(0..4)
        } else {
            *self.pick(&[0, 0, 1, 1, 1, 2, 2, 3, 4, 5, 6, 7, 8])
        };
        match choice {
            0 => {
                let name = format!("t{}", *fresh);
                *fresh += 1;
                let e = self.expr(scope, 2);
                out.push_str(&format!("int {name} = {e};\n"));
                scope.push(name);
            }
            1 => {
                let v = self.assignable_var(scope);
                let op = *self.pick(&["=", "+=", "-=", "*=", "&=", "|=", "^="]);
                let e = self.expr(scope, 2);
                out.push_str(&format!("{v} {op} {e};\n"));
            }
            2 => {
                let name = *self.pick(EXTERNS);
                if self.rng.gen_bool(0.4) {
                    let s = *self.pick(STRINGS);
                    out.push_str(&format!("{name}({s:?}, {});\n", self.var(scope)));
                } else {
                    out.push_str(&format!("{name}({});\n", self.expr(scope, 2)));
                }
            }
            3 => {
                let v = self.assignable_var(scope);
                let op = *self.pick(&["++", "--"]);
                out.push_str(&format!("{v}{op};\n"));
            }
            4 | 5 => {
                let c = self.cond(scope, 2);
                out.push_str(&format!("if ({c}) {{\n"));
                self.block(out, scope, depth - 1, fresh);
                if self.rng.gen_bool(0.5) {
                    out.push_str("} else {\n");
                    self.block(out, scope, depth - 1, fresh);
                }
                out.push_str("}\n");
            }
            6 => {
                let i = format!("i{}", *fresh);
                *fresh += 1;
                let bound = self.rng.gen_range(2..12);
                out.push_str(&format!("for (int {i} = 0; {i} < {bound}; {i}++) {{\n"));
                scope.push(i.clone());
                self.block(out, scope, depth - 1, fresh);
                scope.retain(|v| *v != i);
                out.push_str("}\n");
            }
            7 => {
                let scrut = self.var(scope);
                let k = self.rng.gen_range(2..5);
                out.push_str(&format!("switch ({scrut} % {k}) {{\n"));
                for case in 0..k {
                    out.push_str(&format!("case {case}:\n"));
                    let v = self.assignable_var(scope);
                    out.push_str(&format!("{v} += {};\nbreak;\n", self.rng.gen_range(1..9)));
                }
                out.push_str("default:\n");
                let v = self.assignable_var(scope);
                out.push_str(&format!("{v} -= 1;\n"));
                out.push_str("}\n");
            }
            _ => {
                // Bounded while loop over a fresh counter.
                let w = format!("w{}", *fresh);
                *fresh += 1;
                let bound = self.rng.gen_range(2..10);
                out.push_str(&format!("int {w} = {};\n", bound));
                out.push_str(&format!("while ({w} > 0) {{\n"));
                let inner_scope_len = scope.len();
                self.block(out, scope, depth - 1, fresh);
                scope.truncate(inner_scope_len);
                out.push_str(&format!("{w} -= 1;\n}}\n"));
            }
        }
    }

    fn block(
        &mut self,
        out: &mut String,
        scope: &mut Vec<String>,
        depth: usize,
        fresh: &mut usize,
    ) {
        let n = self.rng.gen_range(1..=3);
        let scope_len = scope.len();
        for _ in 0..n {
            self.stmt(out, scope, depth, fresh);
        }
        scope.truncate(scope_len);
    }

    /// Instantiates one of the idiom-template *families*.
    ///
    /// Families are structurally parameterized: each instantiation draws
    /// operators, statement order, optional guards and loop flavour at
    /// random. Two instantiations of the same family therefore share very
    /// similar node-type multisets while differing in structure and
    /// order — the property that separates order-aware encoders
    /// (Tree-LSTM) from multiset hashes (Diaphora) in real corpora.
    fn template(&mut self, name: &str, arity: usize) -> String {
        let params: Vec<String> = (0..arity).map(|i| format!("p{i}")).collect();
        let sig = params
            .iter()
            .map(|p| format!("int {p}"))
            .collect::<Vec<_>>()
            .join(", ");
        let p0 = params[0].clone();
        let k1 = self.rng.gen_range(2..30);
        let k2 = self.rng.gen_range(1..17);
        let k3 = self.rng.gen_range(3..11);
        let ext = *self.pick(EXTERNS);
        match self.rng.gen_range(0..8) {
            0 => {
                // Checksum family: fold loop with shuffled mixing steps.
                let mix1 = *self.pick(&["h = h * 31 + v;", "h = (h << 3) - v;", "h ^= v * 7;"]);
                let mix2 = *self.pick(&["h ^= h >> 2;", "h += i;", "h = h & 8388607;", ""]);
                let (a, b) = if self.rng.gen_bool(0.5) {
                    (mix1, mix2)
                } else {
                    (mix2, mix1)
                };
                format!(
                    "int {name}({sig}) {{ int h = {k1}; for (int i = 0; i < {k3}; i++) {{ \
                     int v = ({p0} >> (i * {k2} % 8)) & 255; {a} {b} }} return h; }}"
                )
            }
            1 => {
                // Clamp family: bounds checks in either order, optional log.
                let log = if self.rng.gen_bool(0.5) {
                    format!("{ext}(\"clamp\", {p0});")
                } else {
                    String::new()
                };
                let hi = format!("if ({p0} > {k1}) {{ {log} return {k1}; }}");
                let lo = *self.pick(&[
                    "if (p0 < 0) { return 0; }",
                    "if (p0 <= 0) { return 0 - p0; }",
                ]);
                let (a, b) = if self.rng.gen_bool(0.5) {
                    (hi.clone(), lo.to_string())
                } else {
                    (lo.to_string(), hi)
                };
                format!("int {name}({sig}) {{ {a} {b} return {p0}; }}")
            }
            2 => {
                // Table family: build + fold, fold op and direction vary.
                let fold = *self.pick(&["s ^= tab[i];", "s += tab[i];", "s |= tab[i];"]);
                let build = *self.pick(&[
                    "tab[i] = i * 3 + p0;",
                    "tab[i] = (p0 >> i) & 15;",
                    "tab[i] = p0 - i;",
                ]);
                format!(
                    "int {name}({sig}) {{ int tab[{k3}]; for (int i = 0; i < {k3}; i++) {{ \
                     {build} }} int s = {k2}; for (int i = 0; i < {k3}; i++) \
                     {{ {fold} }} return s; }}"
                )
            }
            3 => {
                // State-machine family: arm contents and count vary.
                let arm0 = *self.pick(&["state += p0 & 3;", "state ^= p0;", "state += 2;"]);
                let arm1 = *self.pick(&["state += 5;", "state *= 2;", "state -= p0 & 1;"]);
                format!(
                    "int {name}({sig}) {{ int state = 0; for (int i = 0; i < {k3}; i++) {{ \
                     switch (state % 3) {{ case 0: {arm0} break; \
                     case 1: {arm1} break; default: state -= 1; }} }} return state; }}"
                )
            }
            4 => {
                // Accumulate family: loop flavour varies (do-while/while/for).
                let step = *self.pick(&["acc += p0 % 9;", "acc ^= p0 + n;", "acc += n * 2;"]);
                match self.rng.gen_range(0..3) {
                    0 => format!(
                        "int {name}({sig}) {{ int acc = 0; int n = {k3}; do {{ {step} \
                         n -= 1; }} while (n > 0); return acc; }}"
                    ),
                    1 => format!(
                        "int {name}({sig}) {{ int acc = 0; int n = {k3}; while (n > 0) {{ \
                         {step} n -= 1; }} return acc; }}"
                    ),
                    _ => format!(
                        "int {name}({sig}) {{ int acc = 0; for (int n = {k3}; n > 0; n--) {{ \
                         {step} }} return acc; }}"
                    ),
                }
            }
            5 => {
                // Bit-mixing family: step order shuffles.
                let s1 = format!("x = ((x >> 1) & {k1}) | ((x & {k1}) << 1);");
                let s2 = format!("x ^= {k2};");
                let s3 = "x += x >> 4;".to_string();
                let mut steps = [s1, s2, s3];
                if self.rng.gen_bool(0.5) {
                    steps.swap(0, 1);
                }
                if self.rng.gen_bool(0.5) {
                    steps.swap(1, 2);
                }
                format!(
                    "int {name}({sig}) {{ int x = {p0}; {} {} {} return x + {ext}(x); }}",
                    steps[0], steps[1], steps[2]
                )
            }
            6 => {
                // Extremum family: min or max, strict or not, guard varies.
                let cmp = *self.pick(&[">", ">=", "<", "<="]);
                format!(
                    "int {name}({sig}) {{ int best = 0 - 1000; for (int i = 0; i < {k3}; i++) {{ \
                     int cand = ({p0} * i) % {k1}; if (cand {cmp} best) {{ best = cand; }} }} \
                     return best; }}"
                )
            }
            _ => {
                // Retry family: early return vs break, extra bookkeeping.
                let extra = *self.pick(&["", "ext_log(\"retry\", tries);"]);
                if self.rng.gen_bool(0.5) {
                    format!(
                        "int {name}({sig}) {{ int tries = {k3}; while (tries > 0) {{ {extra} \
                         if ({ext}({p0}, tries) > {k1}) {{ return tries; }} tries -= 1; }} \
                         return 0 - 1; }}"
                    )
                } else {
                    format!(
                        "int {name}({sig}) {{ int tries = {k3}; int found = 0 - 1; \
                         while (tries > 0) {{ {extra} if ({ext}({p0}, tries) > {k1}) {{ \
                         found = tries; break; }} tries -= 1; }} return found; }}"
                    )
                }
            }
        }
    }

    fn function(&mut self, name: &str, cfg: &GenConfig) -> String {
        let arity = self.rng.gen_range(1..=3usize);
        if self.rng.gen_bool(0.6) {
            let body = self.template(name, arity);
            self.funcs.push((name.to_string(), arity));
            return body;
        }
        let params: Vec<String> = (0..arity).map(|i| format!("p{i}")).collect();
        let sig = params
            .iter()
            .map(|p| format!("int {p}"))
            .collect::<Vec<_>>()
            .join(", ");
        let mut out = format!("int {name}({sig}) {{\n");
        let mut scope = params.clone();
        let mut fresh = 0usize;
        out.push_str(&format!("int acc = {};\n", self.rng.gen_range(0..8)));
        scope.push("acc".into());
        // Size mix mirrors real firmware (paper Fig. 10a: about half of all
        // ASTs have fewer than 20 nodes): many tiny functions, a medium
        // band, and a long tail of large ones.
        let (n, depth) = match self.rng.gen_range(0..10) {
            0..=4 => (self.rng.gen_range(1..=2), 1),
            5..=7 => (self.rng.gen_range(2..=4), cfg.max_depth.min(2)),
            _ => (self.rng.gen_range(4..=7), cfg.max_depth),
        };
        for _ in 0..n {
            self.stmt(&mut out, &mut scope, depth, &mut fresh);
        }
        out.push_str(&format!("return {};\n}}\n", self.expr(&scope, 2)));
        self.funcs.push((name.to_string(), arity));
        out
    }
}

/// Generates one package as MiniC source + parsed program.
///
/// The same `(package_name, seed)` always yields the same program.
///
/// # Panics
///
/// Panics if the generator emits unparseable source (a generator bug —
/// exercised heavily by this crate's tests).
pub fn generate_package(package_name: &str, cfg: &GenConfig) -> (String, Program) {
    // Mix the package name into the seed so packages differ.
    let mut h: u64 = cfg.seed ^ 0x9E3779B97F4A7C15;
    for b in package_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    let mut g = Gen {
        rng: StdRng::seed_from_u64(h),
        src: String::new(),
        funcs: Vec::new(),
        globals: Vec::new(),
    };

    let n_globals = g.rng.gen_range(0..=3);
    for i in 0..n_globals {
        let name = format!("g_{package_name}_{i}");
        let value = g.rng.gen_range(-100..100i64);
        g.src.push_str(&format!("int {name} = {value};\n"));
        g.globals.push(name);
    }
    for i in 0..cfg.functions {
        let fname = format!("{package_name}_fn{i}");
        let body = g.function(&fname, cfg);
        g.src.push_str(&body);
        g.src.push('\n');
    }
    let program = parse(&g.src).unwrap_or_else(|e| {
        panic!(
            "generator produced invalid source for {package_name}: {e}\n{}",
            g.src
        )
    });
    (g.src, program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asteria_compiler::{compile_program, Arch, Vm};
    use asteria_lang::Interp;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        let (s1, _) = generate_package("busybox", &cfg);
        let (s2, _) = generate_package("busybox", &cfg);
        assert_eq!(s1, s2);
    }

    #[test]
    fn different_packages_differ() {
        let cfg = GenConfig::default();
        let (s1, _) = generate_package("busybox", &cfg);
        let (s2, _) = generate_package("openssl", &cfg);
        assert_ne!(s1, s2);
    }

    #[test]
    fn many_seeds_parse_and_compile() {
        for seed in 0..8 {
            let cfg = GenConfig {
                functions: 6,
                max_depth: 3,
                seed,
            };
            let (_, program) = generate_package(&format!("pkg{seed}"), &cfg);
            assert_eq!(program.functions.len(), 6);
            for arch in Arch::ALL {
                compile_program(&program, arch)
                    .unwrap_or_else(|e| panic!("seed {seed} {arch}: {e}"));
            }
        }
    }

    #[test]
    fn generated_code_is_differentially_correct() {
        // The strongest corpus validity check: generated functions compute
        // the same results in the interpreter and in the VM on every ISA.
        for seed in 0..4 {
            let cfg = GenConfig {
                functions: 4,
                max_depth: 2,
                seed: 100 + seed,
            };
            let (_, program) = generate_package(&format!("fuzz{seed}"), &cfg);
            let binaries: Vec<_> = Arch::ALL
                .iter()
                .map(|a| compile_program(&program, *a).unwrap())
                .collect();
            for func in &program.functions {
                for args_seed in 0..3i64 {
                    let args: Vec<i64> = (0..func.params.len() as i64)
                        .map(|i| args_seed * 7 + i - 3)
                        .collect();
                    let expected = match Interp::new(&program).call(&func.name, &args) {
                        Ok(v) => v,
                        Err(_) => continue, // step-limit outliers are skipped
                    };
                    for b in &binaries {
                        let sym = b.symbol_index(&func.name).unwrap();
                        let got = Vm::new(b).call(sym, &args).unwrap();
                        assert_eq!(
                            got, expected,
                            "{} diverged on {} with {args:?}",
                            func.name, b.arch
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn functions_are_structurally_diverse() {
        let cfg = GenConfig {
            functions: 12,
            max_depth: 3,
            seed: 5,
        };
        let (_, program) = generate_package("diverse", &cfg);
        let mut sizes: Vec<usize> = program.functions.iter().map(|f| f.stmt_count()).collect();
        sizes.sort_unstable();
        assert!(sizes.last().unwrap() > sizes.first().unwrap(), "{sizes:?}");
    }
}
