//! Corpus persistence: write a cross-compiled corpus to a directory of
//! SBF binaries and reload it later.
//!
//! Only the binaries and a small manifest are stored — function instances
//! are *re-extracted* on load, which keeps the on-disk format trivial and
//! guarantees the loaded corpus always reflects the current
//! decompiler/extractor (extraction is deterministic).

use std::fs;
use std::io;
use std::path::Path;

use asteria_compiler::{Arch, Binary};
use asteria_core::extract_binary;

use crate::corpus::{Corpus, CorpusBinary, FunctionInstance};

/// Writes every binary of a corpus into `dir` (created if missing) as
/// `<package>.<arch>.sbf`, plus a `manifest.tsv` listing them.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_corpus(corpus: &Corpus, dir: &Path) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let mut manifest = String::new();
    for cb in &corpus.binaries {
        let file = format!("{}.{}.sbf", cb.package, cb.arch);
        let mut buf = Vec::new();
        cb.binary.save(&mut buf)?;
        fs::write(dir.join(&file), buf)?;
        manifest.push_str(&format!("{}\t{}\t{}\n", cb.package, cb.arch, file));
    }
    fs::write(dir.join("manifest.tsv"), manifest)?;
    Ok(())
}

/// Loads a corpus previously written by [`save_corpus`], re-extracting
/// every function with the given inline filter β and AST-size floor.
///
/// # Errors
///
/// Returns `InvalidData` for malformed manifests or binaries, and
/// propagates filesystem errors. Extraction failures become
/// `InvalidData` (they indicate a corrupted binary).
pub fn load_corpus(dir: &Path, beta: usize, min_ast_size: usize) -> io::Result<Corpus> {
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let manifest = fs::read_to_string(dir.join("manifest.tsv"))?;
    let mut corpus = Corpus::default();
    for (lineno, line) in manifest.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split('\t');
        let (package, arch_name, file) = match (parts.next(), parts.next(), parts.next()) {
            (Some(p), Some(a), Some(f)) => (p, a, f),
            _ => return Err(bad(format!("manifest line {} malformed", lineno + 1))),
        };
        let arch = Arch::from_name(arch_name)
            .ok_or_else(|| bad(format!("unknown architecture {arch_name}")))?;
        let bytes = fs::read(dir.join(file))?;
        let binary = Binary::load(bytes.as_slice())?;
        if binary.arch != arch {
            return Err(bad(format!("{file}: architecture mismatch")));
        }
        let extracted = extract_binary(&binary, beta)
            .map_err(|e| bad(format!("{file}: extraction failed: {e}")))?;
        for f in extracted {
            if f.ast_size < min_ast_size {
                corpus.filtered_out += 1;
                continue;
            }
            corpus.instances.push(FunctionInstance {
                package: package.to_string(),
                name: f.name.clone(),
                arch,
                extracted: f,
            });
        }
        corpus.binaries.push(CorpusBinary {
            package: package.to_string(),
            arch,
            binary,
        });
    }
    Ok(corpus)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{build_corpus, CorpusConfig};

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("asteria_persist_{}_{tag}", std::process::id()));
        p
    }

    fn small() -> Corpus {
        build_corpus(&CorpusConfig {
            packages: 2,
            functions_per_package: 3,
            seed: 77,
            ..Default::default()
        })
    }

    #[test]
    fn save_load_roundtrip_preserves_everything() {
        let corpus = small();
        let dir = temp_dir("roundtrip");
        save_corpus(&corpus, &dir).unwrap();
        let loaded = load_corpus(&dir, 6, 5).unwrap();
        assert_eq!(loaded.binaries.len(), corpus.binaries.len());
        assert_eq!(loaded.instances.len(), corpus.instances.len());
        for (a, b) in corpus.instances.iter().zip(&loaded.instances) {
            assert_eq!(a.identity(), b.identity());
            assert_eq!(a.arch, b.arch);
            assert_eq!(a.extracted.tree, b.extracted.tree);
            assert_eq!(a.extracted.callee_count, b.extracted.callee_count);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_applies_size_filter() {
        let corpus = small();
        let dir = temp_dir("filter");
        save_corpus(&corpus, &dir).unwrap();
        let strict = load_corpus(&dir, 6, 10_000).unwrap();
        assert!(strict.instances.is_empty());
        assert!(strict.filtered_out > 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_rejects_missing_manifest() {
        let dir = temp_dir("missing");
        fs::create_dir_all(&dir).unwrap();
        assert!(load_corpus(&dir, 6, 5).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_rejects_corrupt_binary() {
        let corpus = small();
        let dir = temp_dir("corrupt");
        save_corpus(&corpus, &dir).unwrap();
        // Truncate one binary file.
        let manifest = fs::read_to_string(dir.join("manifest.tsv")).unwrap();
        let victim = manifest.lines().next().unwrap().split('\t').nth(2).unwrap();
        fs::write(dir.join(victim), b"SBF1").unwrap();
        assert!(load_corpus(&dir, 6, 5).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
