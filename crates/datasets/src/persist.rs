//! Corpus persistence: write a cross-compiled corpus to a directory of
//! SBF binaries and reload it later.
//!
//! Only the binaries and a small manifest are stored — function instances
//! are *re-extracted* on load, which keeps the on-disk format trivial and
//! guarantees the loaded corpus always reflects the current
//! decompiler/extractor (extraction is deterministic).

use std::fs;
use std::io;
use std::path::Path;

use asteria_compiler::{Arch, Binary};
use asteria_core::extract_binary;

use crate::corpus::{Corpus, CorpusBinary, FunctionInstance};

/// True when a manifest field is safe to write: non-empty, and free of
/// the TSV structure characters (tab, newline, carriage return) that
/// would silently corrupt `manifest.tsv`.
fn field_is_clean(s: &str) -> bool {
    !s.is_empty() && !s.contains(['\t', '\n', '\r'])
}

/// True when `file` is a plain basename: joining it to the corpus
/// directory can never escape that directory. Rejects empty names, path
/// separators, and the `.`/`..` dot entries.
fn is_plain_basename(file: &str) -> bool {
    !file.is_empty() && !file.contains(['/', '\\']) && file != "." && file != ".."
}

/// Writes every binary of a corpus into `dir` (created if missing) as
/// `<package>.<arch>.sbf`, plus a `manifest.tsv` listing them.
///
/// # Errors
///
/// Returns `InvalidData` when a package name would corrupt the manifest
/// (embedded tab/newline) or escape the corpus directory (path
/// separators, `..`); propagates filesystem errors.
pub fn save_corpus(corpus: &Corpus, dir: &Path) -> io::Result<()> {
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    fs::create_dir_all(dir)?;
    let mut manifest = String::new();
    for cb in &corpus.binaries {
        if !field_is_clean(&cb.package) {
            return Err(bad(format!(
                "package name {:?} contains manifest structure characters",
                cb.package
            )));
        }
        let file = format!("{}.{}.sbf", cb.package, cb.arch);
        if !is_plain_basename(&file) {
            return Err(bad(format!(
                "package name {:?} is not a plain file basename",
                cb.package
            )));
        }
        let mut buf = Vec::new();
        cb.binary.save(&mut buf)?;
        fs::write(dir.join(&file), buf)?;
        manifest.push_str(&format!("{}\t{}\t{}\n", cb.package, cb.arch, file));
    }
    fs::write(dir.join("manifest.tsv"), manifest)?;
    Ok(())
}

/// Loads a corpus previously written by [`save_corpus`], re-extracting
/// every function with the given inline filter β and AST-size floor.
///
/// # Errors
///
/// Returns `InvalidData` for malformed manifests or binaries, and
/// propagates filesystem errors. Extraction failures become
/// `InvalidData` (they indicate a corrupted binary).
pub fn load_corpus(dir: &Path, beta: usize, min_ast_size: usize) -> io::Result<Corpus> {
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let manifest = fs::read_to_string(dir.join("manifest.tsv"))?;
    let mut corpus = Corpus::default();
    for (lineno, line) in manifest.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split('\t');
        let (package, arch_name, file) = match (parts.next(), parts.next(), parts.next()) {
            (Some(p), Some(a), Some(f)) => (p, a, f),
            _ => return Err(bad(format!("manifest line {} malformed", lineno + 1))),
        };
        let arch = Arch::from_name(arch_name)
            .ok_or_else(|| bad(format!("unknown architecture {arch_name}")))?;
        if !field_is_clean(package) {
            return Err(bad(format!("manifest line {}: empty package", lineno + 1)));
        }
        // The manifest is untrusted: a file entry must be a plain
        // basename, or `dir.join` would read (and on save, write)
        // outside the corpus directory.
        if !is_plain_basename(file) {
            return Err(bad(format!(
                "manifest line {}: file {file:?} is not a plain basename",
                lineno + 1
            )));
        }
        let bytes = fs::read(dir.join(file))?;
        let binary = Binary::load(bytes.as_slice())?;
        if binary.arch != arch {
            return Err(bad(format!("{file}: architecture mismatch")));
        }
        let extracted = extract_binary(&binary, beta)
            .map_err(|e| bad(format!("{file}: extraction failed: {e}")))?;
        for f in extracted {
            if f.ast_size < min_ast_size {
                corpus.filtered_out += 1;
                continue;
            }
            corpus.instances.push(FunctionInstance {
                package: package.to_string(),
                name: f.name.clone(),
                arch,
                extracted: f,
            });
        }
        corpus.binaries.push(CorpusBinary {
            package: package.to_string(),
            arch,
            binary,
        });
    }
    Ok(corpus)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{build_corpus, CorpusConfig};

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("asteria_persist_{}_{tag}", std::process::id()));
        p
    }

    fn small() -> Corpus {
        build_corpus(&CorpusConfig {
            packages: 2,
            functions_per_package: 3,
            seed: 77,
            ..Default::default()
        })
    }

    #[test]
    fn save_load_roundtrip_preserves_everything() {
        let corpus = small();
        let dir = temp_dir("roundtrip");
        save_corpus(&corpus, &dir).unwrap();
        let loaded = load_corpus(&dir, 6, 5).unwrap();
        assert_eq!(loaded.binaries.len(), corpus.binaries.len());
        assert_eq!(loaded.instances.len(), corpus.instances.len());
        for (a, b) in corpus.instances.iter().zip(&loaded.instances) {
            assert_eq!(a.identity(), b.identity());
            assert_eq!(a.arch, b.arch);
            assert_eq!(a.extracted.tree, b.extracted.tree);
            assert_eq!(a.extracted.callee_count, b.extracted.callee_count);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_applies_size_filter() {
        let corpus = small();
        let dir = temp_dir("filter");
        save_corpus(&corpus, &dir).unwrap();
        let strict = load_corpus(&dir, 6, 10_000).unwrap();
        assert!(strict.instances.is_empty());
        assert!(strict.filtered_out > 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_rejects_missing_manifest() {
        let dir = temp_dir("missing");
        fs::create_dir_all(&dir).unwrap();
        assert!(load_corpus(&dir, 6, 5).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_rejects_manifest_breaking_package_names() {
        let dir = temp_dir("badfield");
        for evil in ["pkg\tx", "pkg\nx", "pkg\rx", ""] {
            let mut corpus = small();
            corpus.binaries[0].package = evil.to_string();
            let err = save_corpus(&corpus, &dir).expect_err("must reject");
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{evil:?}");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_rejects_path_escaping_package_names() {
        let dir = temp_dir("escape");
        for evil in ["../pkg", "a/b", "a\\b"] {
            let mut corpus = small();
            corpus.binaries[0].package = evil.to_string();
            let err = save_corpus(&corpus, &dir).expect_err("must reject");
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{evil:?}");
        }
        // Nothing may have been written outside the corpus dir.
        assert!(!dir.parent().unwrap().join("pkg.x86.sbf").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_rejects_traversal_manifest_paths() {
        let corpus = small();
        let dir = temp_dir("traversal");
        save_corpus(&corpus, &dir).unwrap();
        // Plant a secret one level up that a traversal entry would reach.
        let secret = dir
            .parent()
            .unwrap()
            .join(format!("asteria_persist_secret_{}.sbf", std::process::id()));
        let mut buf = Vec::new();
        corpus.binaries[0].binary.save(&mut buf).unwrap();
        fs::write(&secret, &buf).unwrap();
        let evil = format!(
            "{}\t{}\t../{}\n",
            corpus.binaries[0].package,
            corpus.binaries[0].arch,
            secret.file_name().unwrap().to_str().unwrap()
        );
        fs::write(dir.join("manifest.tsv"), evil).unwrap();
        let err = load_corpus(&dir, 6, 5).expect_err("must reject traversal");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("basename"), "{err}");
        let _ = fs::remove_file(&secret);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_rejects_dot_dot_file_entry() {
        let corpus = small();
        let dir = temp_dir("dotdot");
        save_corpus(&corpus, &dir).unwrap();
        fs::write(dir.join("manifest.tsv"), "p\tx86\t..\n").unwrap();
        let err = load_corpus(&dir, 6, 5).expect_err("must reject ..");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_rejects_corrupt_binary() {
        let corpus = small();
        let dir = temp_dir("corrupt");
        save_corpus(&corpus, &dir).unwrap();
        // Truncate one binary file.
        let manifest = fs::read_to_string(dir.join("manifest.tsv")).unwrap();
        let victim = manifest.lines().next().unwrap().split('\t').nth(2).unwrap();
        fs::write(dir.join(victim), b"SBF1").unwrap();
        assert!(load_corpus(&dir, 6, 5).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
