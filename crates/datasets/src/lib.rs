//! `asteria-datasets` — reproducible corpora for training and evaluation.
//!
//! The paper builds three datasets (§IV-B): **Buildroot** (260 packages
//! cross-compiled for four ISAs; training + testing), **OpenSSL**
//! (comparative evaluation) and **Firmware** (5,979 vendor images;
//! vulnerability search). All three are gated inputs — vendor firmware and
//! a buildroot toolchain cannot ship with this reproduction — so this
//! crate substitutes seeded synthetic corpora with the same ground-truth
//! structure:
//!
//! - [`gen`] grows MiniC packages from idiom templates + random structured
//!   code (deterministic per seed);
//! - [`corpus`] cross-compiles each package for the four ISAs of
//!   `asteria-compiler` and extracts every function's AST, applying the
//!   paper's "AST size ≥ 5" filter;
//! - [`pairs`] samples labelled homologous / non-homologous pairs over the
//!   six architecture combinations of Table III and splits 8:2.
//!
//! # Examples
//!
//! ```
//! use asteria_datasets::{build_corpus, build_pairs, CorpusConfig, PairConfig};
//!
//! let corpus = build_corpus(&CorpusConfig { packages: 2, functions_per_package: 3,
//!     ..Default::default() });
//! let pairs = build_pairs(&corpus, &PairConfig::default());
//! assert!(!pairs.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod gen;
pub mod pairs;
pub mod persist;

pub use corpus::{
    build_corpus, build_corpus_with_extra, Corpus, CorpusBinary, CorpusConfig, FunctionInstance,
};
pub use gen::{generate_package, GenConfig};
pub use pairs::{build_pairs, to_train_pairs, Pair, PairConfig, PairSet, ARCH_COMBINATIONS};
pub use persist::{load_corpus, save_corpus};
