//! The Gemini baseline (Xu et al., CCS'17): a structure2vec graph
//! embedding network over ACFGs, trained as a Siamese network with cosine
//! similarity — reimplemented on `asteria-nn`.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use asteria_nn::{Adam, Graph, NodeId, Optimizer, ParamId, ParamStore, Tensor};

use crate::acfg::{Acfg, ACFG_FEATURES};

/// Gemini hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct GeminiConfig {
    /// Embedding dimension p (64, as in the Gemini paper).
    pub embed_dim: usize,
    /// Message-passing iterations T.
    pub iterations: usize,
    /// Weight-initialization seed.
    pub seed: u64,
    /// Adam learning rate.
    pub learning_rate: f32,
}

impl Default for GeminiConfig {
    fn default() -> Self {
        GeminiConfig {
            embed_dim: 64,
            iterations: 3,
            seed: 0x6E311,
            learning_rate: 0.01,
        }
    }
}

/// The Gemini model.
pub struct GeminiModel {
    config: GeminiConfig,
    store: ParamStore,
    w1: ParamId,
    p1: ParamId,
    p2: ParamId,
    w2: ParamId,
    optimizer: Adam,
}

impl std::fmt::Debug for GeminiModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "GeminiModel(p={}, T={})",
            self.config.embed_dim, self.config.iterations
        )
    }
}

impl GeminiModel {
    /// Builds a model with fresh weights.
    pub fn new(config: GeminiConfig) -> Self {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let p = config.embed_dim;
        let w1 = store.add("gemini.w1", Tensor::xavier(p, ACFG_FEATURES, &mut rng));
        let p1 = store.add("gemini.p1", Tensor::xavier(p, p, &mut rng));
        let p2 = store.add("gemini.p2", Tensor::xavier(p, p, &mut rng));
        let w2 = store.add("gemini.w2", Tensor::xavier(p, p, &mut rng));
        let optimizer = Adam::new(config.learning_rate);
        GeminiModel {
            config,
            store,
            w1,
            p1,
            p2,
            w2,
            optimizer,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &GeminiConfig {
        &self.config
    }

    /// Builds the graph-embedding computation on the tape, returning the
    /// embedding node.
    fn embed_on(&self, g: &mut Graph, acfg: &Acfg) -> NodeId {
        let p = self.config.embed_dim;
        let w1 = g.param(&self.store, self.w1);
        let p1 = g.param(&self.store, self.p1);
        let p2 = g.param(&self.store, self.p2);
        let w2 = g.param(&self.store, self.w2);
        let neighbors = acfg.neighbors();
        // Per-node transformed features (computed once).
        let wx: Vec<NodeId> = acfg
            .features
            .iter()
            .map(|f| {
                let x = g.input(Tensor::column(&f.map(|v| v as f32)));
                g.matvec(w1, x)
            })
            .collect();
        let zero = g.input(Tensor::zeros(p, 1));
        let mut mu: Vec<NodeId> = vec![zero; acfg.len()];
        for _ in 0..self.config.iterations {
            let mut next = Vec::with_capacity(acfg.len());
            for v in 0..acfg.len() {
                let agg = if neighbors[v].is_empty() {
                    zero
                } else {
                    let terms: Vec<NodeId> = neighbors[v].iter().map(|u| mu[*u]).collect();
                    g.sum(&terms)
                };
                // Two-layer relu MLP σ(·), as in the Gemini paper.
                let l1 = g.matvec(p1, agg);
                let l1 = g.relu(l1);
                let l2 = g.matvec(p2, l1);
                let l2 = g.relu(l2);
                let s = g.add(wx[v], l2);
                next.push(g.tanh(s));
            }
            mu = next;
        }
        let total = g.sum(&mu);
        g.matvec(w2, total)
    }

    /// Embeds an ACFG into a vector (the offline phase).
    pub fn embed(&self, acfg: &Acfg) -> Vec<f32> {
        let mut g = Graph::new();
        let e = self.embed_on(&mut g, acfg);
        g.value(e).as_slice().to_vec()
    }

    /// Cosine similarity of two ACFGs (full forward pass).
    pub fn similarity(&self, a: &Acfg, b: &Acfg) -> f32 {
        let mut g = Graph::new();
        let ea = self.embed_on(&mut g, a);
        let eb = self.embed_on(&mut g, b);
        let cos = g.cosine(ea, eb);
        g.value(cos).item()
    }

    /// Online-phase similarity from cached embeddings: plain cosine,
    /// mapped to `[0, 1]` for ROC comparability.
    pub fn similarity_from_embeddings(a: &[f32], b: &[f32]) -> f32 {
        let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
        let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
        let cos = dot / (na * nb).max(1e-7);
        0.5 * (cos + 1.0)
    }

    /// One Siamese training step toward cosine ±1; returns the loss.
    pub fn train_pair(&mut self, a: &Acfg, b: &Acfg, homologous: bool) -> f32 {
        self.store.zero_grads();
        let mut g = Graph::new();
        let ea = self.embed_on(&mut g, a);
        let eb = self.embed_on(&mut g, b);
        let cos = g.cosine(ea, eb);
        let target = Tensor::scalar(if homologous { 1.0 } else { -1.0 });
        let loss = g.mse_loss(cos, target);
        let lv = g.value(loss).item();
        g.backward(loss, &mut self.store);
        self.store.clip_grad_norm(5.0);
        self.optimizer.step(&mut self.store);
        lv
    }

    /// One epoch over shuffled labelled pairs; returns the mean loss.
    pub fn train_epoch(&mut self, pairs: &[(Acfg, Acfg, bool)], rng: &mut StdRng) -> f32 {
        let mut order: Vec<usize> = (0..pairs.len()).collect();
        order.shuffle(rng);
        let mut total = 0.0f64;
        for i in order {
            let (a, b, label) = &pairs[i];
            total += self.train_pair(a, b, *label) as f64;
        }
        (total / pairs.len().max(1) as f64) as f32
    }
}

/// Trains for `epochs` epochs with the model's optimizer, keeping the
/// best-validation weights when a validator is supplied.
pub fn train_gemini(
    model: &mut GeminiModel,
    pairs: &[(Acfg, Acfg, bool)],
    epochs: usize,
    seed: u64,
    mut validate: Option<&mut dyn FnMut(&GeminiModel) -> f64>,
) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut losses = Vec::with_capacity(epochs);
    let mut best = f64::NEG_INFINITY;
    let mut best_weights: Option<Vec<u8>> = None;
    for _ in 0..epochs {
        losses.push(model.train_epoch(pairs, &mut rng));
        if let Some(v) = validate.as_deref_mut() {
            let score = v(model);
            if score > best {
                best = score;
                let mut buf = Vec::new();
                model.store.save(&mut buf).expect("in-memory save");
                best_weights = Some(buf);
            }
        }
    }
    if let Some(w) = best_weights {
        model.store.load(w.as_slice()).expect("snapshot matches");
    }
    losses
}

/// Deterministic synthetic ACFG for tests and micro-benchmarks.
pub fn synthetic_acfg(blocks: usize, seed: u64) -> Acfg {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut features = Vec::with_capacity(blocks);
    let mut succs = vec![Vec::new(); blocks];
    for (i, s) in succs.iter_mut().enumerate() {
        let mut f = [0.0f64; ACFG_FEATURES];
        for v in f.iter_mut() {
            *v = rng.gen_range(0.0..8.0f64).round();
        }
        features.push(f);
        if i + 1 < blocks {
            s.push(i + 1);
        }
        if i > 1 && rng.gen_bool(0.3) {
            let t = rng.gen_range(0..i);
            s.push(t);
        }
    }
    Acfg { features, succs }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> GeminiModel {
        GeminiModel::new(GeminiConfig {
            embed_dim: 8,
            iterations: 2,
            ..Default::default()
        })
    }

    #[test]
    fn embedding_has_configured_dim() {
        let m = tiny();
        let a = synthetic_acfg(5, 1);
        let e = m.embed(&a);
        assert_eq!(e.len(), 8);
        assert!(e.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn identical_graphs_have_similarity_one() {
        let m = tiny();
        let a = synthetic_acfg(6, 2);
        assert!((m.similarity(&a, &a) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn online_similarity_matches_full_path() {
        let m = tiny();
        let a = synthetic_acfg(5, 3);
        let b = synthetic_acfg(7, 4);
        let full = m.similarity(&a, &b);
        let fast = GeminiModel::similarity_from_embeddings(&m.embed(&a), &m.embed(&b));
        assert!(((0.5 * (full + 1.0)) - fast).abs() < 1e-5);
    }

    #[test]
    fn training_separates_structures() {
        let mut m = tiny();
        let a1 = synthetic_acfg(4, 10);
        let a2 = synthetic_acfg(4, 10); // identical
        let b = synthetic_acfg(12, 99);
        let pairs = vec![
            (a1.clone(), a2.clone(), true),
            (a1.clone(), b.clone(), false),
        ];
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..60 {
            m.train_epoch(&pairs, &mut rng);
        }
        let pos = m.similarity(&a1, &a2);
        let neg = m.similarity(&a1, &b);
        assert!(pos > neg + 0.3, "pos={pos} neg={neg}");
    }

    #[test]
    fn best_weights_restored_by_validator() {
        let mut m = tiny();
        let pairs = vec![(synthetic_acfg(3, 1), synthetic_acfg(3, 1), true)];
        let mut scores = vec![0.9, 0.1, 0.1].into_iter();
        let mut snaps: Vec<Vec<u8>> = Vec::new();
        let mut validate = |m: &GeminiModel| {
            let mut buf = Vec::new();
            m.store.save(&mut buf).unwrap();
            snaps.push(buf);
            scores.next().unwrap_or(0.0)
        };
        train_gemini(&mut m, &pairs, 3, 5, Some(&mut validate));
        let mut cur = Vec::new();
        m.store.save(&mut cur).unwrap();
        assert_eq!(cur, snaps[0], "epoch-1 weights should be restored");
    }

    #[test]
    fn synthetic_acfg_is_deterministic() {
        assert_eq!(synthetic_acfg(6, 7), synthetic_acfg(6, 7));
    }
}
