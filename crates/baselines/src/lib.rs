//! `asteria-baselines` — the two comparison systems of the paper's
//! evaluation, built from scratch:
//!
//! - **Gemini** (Xu et al., CCS'17): [`acfg`] extraction (discovRE/Genius
//!   statistical block features + betweenness centrality) and a
//!   structure2vec Siamese [`gemini::GeminiModel`] trained with cosine/MSE
//!   on the same pair corpus as Asteria;
//! - **Diaphora**: [`diaphora`] prime-product AST hashing with multiset
//!   Dice similarity over big-integer factorizations.
//!
//! Both expose offline (feature extraction / embedding) and online
//! (similarity) phases so the Fig. 10 timing studies can measure them
//! separately.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acfg;
pub mod diaphora;
pub mod gemini;

pub use acfg::{betweenness, extract_acfg, Acfg, ACFG_FEATURES};
pub use diaphora::{hash_ast, prime_table, similarity as diaphora_similarity, DiaphoraHash};
pub use gemini::{synthetic_acfg, train_gemini, GeminiConfig, GeminiModel};
