//! The Diaphora baseline: prime-product AST hashing.
//!
//! Diaphora maps every AST node type to a prime and hashes the AST as the
//! product of those primes (a multiset hash that ignores tree structure).
//! Comparing two hashes means factoring them back into prime multisets —
//! arbitrary-precision work that is exactly why the paper measures
//! Diaphora's online phase in milliseconds (Fig. 10c).

use asteria_bignum::{first_primes, BigUint};
use asteria_core::{AstTree, NodeType};

/// A Diaphora AST hash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiaphoraHash {
    product: BigUint,
    node_count: usize,
}

impl DiaphoraHash {
    /// Bits in the underlying product (size diagnostic).
    pub fn bits(&self) -> usize {
        self.product.bits()
    }

    /// Number of nodes hashed.
    pub fn node_count(&self) -> usize {
        self.node_count
    }
}

/// The per-label prime table.
pub fn prime_table() -> Vec<u64> {
    first_primes(NodeType::VOCAB)
}

/// Hashes a digitalized AST as the product of per-node primes (the
/// offline phase, "D-H" in Fig. 10b).
pub fn hash_ast(tree: &AstTree) -> DiaphoraHash {
    let primes = prime_table();
    let mut product = BigUint::one();
    for (label, count) in tree.label_histogram().iter().enumerate() {
        for _ in 0..*count {
            product.mul_u64(primes[label]);
        }
    }
    DiaphoraHash {
        product,
        node_count: tree.size(),
    }
}

/// Similarity of two hashes: the multiset Dice coefficient of their prime
/// factorizations, `2·|A ∩ B| / (|A| + |B|)` with multiplicity. Requires
/// factoring both products over the prime table — the deliberately slow
/// online phase.
pub fn similarity(a: &DiaphoraHash, b: &DiaphoraHash) -> f64 {
    let primes = prime_table();
    let (ea, ca) = a.product.factor_over(&primes);
    let (eb, cb) = b.product.factor_over(&primes);
    debug_assert!(ca && cb, "hash contains foreign factors");
    let mut shared = 0u64;
    let mut total = 0u64;
    for (x, y) in ea.iter().zip(eb.iter()) {
        shared += (*x).min(*y) as u64;
        total += (*x as u64) + (*y as u64);
    }
    if total == 0 {
        return 1.0;
    }
    2.0 * shared as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use asteria_core::nodes::AstTree;

    fn tree(kinds: &[NodeType]) -> AstTree {
        let mut t = AstTree::with_root(NodeType::Block);
        let r = t.root();
        for k in kinds {
            t.add(r, *k);
        }
        t
    }

    #[test]
    fn identical_trees_have_similarity_one() {
        let a = hash_ast(&tree(&[NodeType::If, NodeType::Return]));
        let b = hash_ast(&tree(&[NodeType::If, NodeType::Return]));
        assert_eq!(a, b);
        assert_eq!(similarity(&a, &b), 1.0);
    }

    #[test]
    fn node_order_is_ignored() {
        // A known weakness of the multiset hash (and part of why Diaphora
        // underperforms in the paper).
        let a = hash_ast(&tree(&[NodeType::If, NodeType::Return]));
        let b = hash_ast(&tree(&[NodeType::Return, NodeType::If]));
        assert_eq!(similarity(&a, &b), 1.0);
    }

    #[test]
    fn disjoint_trees_have_low_similarity() {
        let a = hash_ast(&tree(&[NodeType::If, NodeType::If, NodeType::If]));
        let b = hash_ast(&tree(&[NodeType::Call, NodeType::Num, NodeType::Var]));
        let s = similarity(&a, &b);
        // Only the shared Block root overlaps: 2·1/8.
        assert!((s - 0.25).abs() < 1e-12, "{s}");
    }

    #[test]
    fn partial_overlap_is_fractional() {
        let a = hash_ast(&tree(&[NodeType::If, NodeType::Return, NodeType::Var]));
        let b = hash_ast(&tree(&[NodeType::If, NodeType::Return, NodeType::Num]));
        let s = similarity(&a, &b);
        // Shared: block, if, return = 3 of 4 each → 6/8.
        assert!((s - 0.75).abs() < 1e-12, "{s}");
    }

    #[test]
    fn hash_grows_with_tree_size() {
        let small = hash_ast(&tree(&[NodeType::If]));
        let kinds: Vec<NodeType> = (0..200).map(|_| NodeType::Call).collect();
        let big = hash_ast(&tree(&kinds));
        assert!(big.bits() > small.bits());
        assert_eq!(big.node_count(), 201);
        // 200 nodes of one prime comfortably exceeds u128.
        assert!(big.bits() > 128);
    }

    #[test]
    fn real_function_hashes_compare_across_arch() {
        use asteria_compiler::{compile_program, Arch};
        use asteria_core::digitalize;
        use asteria_decompiler::decompile_function;
        let p = asteria_lang::parse(
            "int f(int n) { int s = 0; for (int i = 0; i < n; i++) { s += ext(i); } return s; }",
        )
        .unwrap();
        let hx = {
            let b = compile_program(&p, Arch::X86).unwrap();
            hash_ast(&digitalize(&decompile_function(&b, 0).unwrap()))
        };
        let ha = {
            let b = compile_program(&p, Arch::Arm).unwrap();
            hash_ast(&digitalize(&decompile_function(&b, 0).unwrap()))
        };
        let s = similarity(&hx, &ha);
        assert!(s > 0.5, "homologous similarity too low: {s}");
    }
}
