//! Attributed control-flow graph (ACFG) extraction — the function feature
//! of Genius and Gemini (Xu et al., CCS'17), which the paper compares
//! against.
//!
//! Each basic block carries the statistical features proposed by
//! discovRE/Genius: counts of string constants, numeric constants,
//! transfer instructions, calls, total instructions and arithmetic
//! instructions, plus two structural features (number of offspring and
//! betweenness centrality).

use asteria_compiler::{decode_function, Binary, DecodeError, MInst, SymbolKind};
use asteria_decompiler::build_cfg;

/// Number of per-block features.
pub const ACFG_FEATURES: usize = 8;

/// An attributed CFG.
#[derive(Debug, Clone, PartialEq)]
pub struct Acfg {
    /// Per-block feature vectors.
    pub features: Vec<[f64; ACFG_FEATURES]>,
    /// Per-block successor lists.
    pub succs: Vec<Vec<usize>>,
}

impl Acfg {
    /// Number of basic blocks.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True for an empty graph (never produced by extraction).
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Undirected neighbour lists (structure2vec passes messages both
    /// ways along CFG edges).
    pub fn neighbors(&self) -> Vec<Vec<usize>> {
        let mut n = vec![Vec::new(); self.len()];
        for (u, ss) in self.succs.iter().enumerate() {
            for &v in ss {
                if !n[u].contains(&v) {
                    n[u].push(v);
                }
                if !n[v].contains(&u) {
                    n[v].push(u);
                }
            }
        }
        n
    }
}

/// Betweenness centrality for every node of an unweighted digraph
/// (Brandes' algorithm).
pub fn betweenness(succs: &[Vec<usize>]) -> Vec<f64> {
    let n = succs.len();
    let mut bc = vec![0.0f64; n];
    for s in 0..n {
        // BFS from s.
        let mut stack = Vec::new();
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut sigma = vec![0.0f64; n];
        let mut dist = vec![-1i64; n];
        sigma[s] = 1.0;
        dist[s] = 0;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            stack.push(v);
            for &w in &succs[v] {
                if dist[w] < 0 {
                    dist[w] = dist[v] + 1;
                    queue.push_back(w);
                }
                if dist[w] == dist[v] + 1 {
                    sigma[w] += sigma[v];
                    preds[w].push(v);
                }
            }
        }
        let mut delta = vec![0.0f64; n];
        while let Some(w) = stack.pop() {
            for &v in &preds[w] {
                delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
            }
            if w != s {
                bc[w] += delta[w];
            }
        }
    }
    bc
}

/// Extracts the ACFG of one defined function.
///
/// # Errors
///
/// Returns decode errors; calling on an external symbol yields an error
/// via decoding the empty body (callers should pass defined functions).
pub fn extract_acfg(binary: &Binary, sym: usize) -> Result<Acfg, DecodeError> {
    let symbol = &binary.symbols[sym];
    debug_assert_eq!(symbol.kind, SymbolKind::Function, "ACFG of non-function");
    let insts = decode_function(&symbol.code, binary.arch)?;
    let cfg = build_cfg(&insts);
    let succs: Vec<Vec<usize>> = cfg.blocks.iter().map(|b| b.succs.clone()).collect();
    let bc = betweenness(&succs);
    let mut features = Vec::with_capacity(cfg.blocks.len());
    for (bi, block) in cfg.blocks.iter().enumerate() {
        let body = &insts[block.start as usize..block.end as usize];
        let mut f = [0.0f64; ACFG_FEATURES];
        for inst in body {
            match inst {
                MInst::LoadStr(_, _) => f[0] += 1.0,
                MInst::MovImm(_, _) => f[1] += 1.0,
                MInst::Jmp(_) | MInst::Brnz(_, _) => f[2] += 1.0,
                MInst::Call { .. } => f[3] += 1.0,
                _ => {}
            }
            if inst.is_arith() {
                f[5] += 1.0;
            }
        }
        f[4] = body.len() as f64;
        // Offspring: number of distinct successors (Genius's notion of
        // children in the CFG).
        f[6] = block.succs.len() as f64;
        f[7] = bc[bi];
        features.push(f);
    }
    Ok(Acfg { features, succs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use asteria_compiler::{compile_program, Arch};
    use asteria_lang::parse;

    fn acfg_of(src: &str, arch: Arch) -> Acfg {
        let p = parse(src).unwrap();
        let b = compile_program(&p, arch).unwrap();
        extract_acfg(&b, 0).unwrap()
    }

    const LOOPY: &str = "int f(int n) { int s = 0; for (int i = 0; i < n; i++) { \
                         if (i % 2 == 0) { s += ext(i); } } return s; }";

    #[test]
    fn features_are_populated() {
        let a = acfg_of(LOOPY, Arch::X86);
        assert!(a.len() >= 3);
        let total_insts: f64 = a.features.iter().map(|f| f[4]).sum();
        assert!(total_insts > 10.0);
        let calls: f64 = a.features.iter().map(|f| f[3]).sum();
        assert_eq!(calls, 1.0);
    }

    #[test]
    fn acfg_differs_more_across_arch_than_ast() {
        // The paper's Fig. 2 claim: CFG structure is architecture-sensitive.
        // This diamond if-converts on ARM (no calls in the arms), so the
        // ARM ACFG collapses to fewer blocks than x86's.
        let src = "int f(int a, int b) { int x = 0; if (a > b) { x = a; } else { x = b; } \
                   return x * 2; }";
        let x86 = acfg_of(src, Arch::X86);
        let arm = acfg_of(src, Arch::Arm);
        assert!(arm.len() < x86.len(), "x86={} arm={}", x86.len(), arm.len());
    }

    #[test]
    fn betweenness_of_path_graph() {
        // 0 → 1 → 2: node 1 lies on the single shortest path 0→2.
        let succs = vec![vec![1], vec![2], vec![]];
        let bc = betweenness(&succs);
        assert_eq!(bc, vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn betweenness_of_diamond() {
        // 0 → {1,2} → 3: two equal shortest paths share the middle nodes.
        let succs = vec![vec![1, 2], vec![3], vec![3], vec![]];
        let bc = betweenness(&succs);
        assert_eq!(bc[0], 0.0);
        assert_eq!(bc[3], 0.0);
        assert!((bc[1] - 0.5).abs() < 1e-12);
        assert!((bc[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn neighbors_are_symmetric() {
        let a = acfg_of(LOOPY, Arch::Ppc);
        let n = a.neighbors();
        for (u, ns) in n.iter().enumerate() {
            for &v in ns {
                assert!(n[v].contains(&u));
            }
        }
    }

    #[test]
    fn string_constants_counted() {
        let a = acfg_of(
            r#"int f(int x) { ext_log("alpha", x); ext_log("beta", x); return 0; }"#,
            Arch::X64,
        );
        let strs: f64 = a.features.iter().map(|f| f[0]).sum();
        assert_eq!(strs, 2.0);
    }
}
