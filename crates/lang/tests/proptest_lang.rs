//! Property-based tests for the MiniC frontend: arbitrary ASTs must
//! survive a pretty-print → parse round trip, and the interpreter must be
//! deterministic.

use proptest::prelude::*;

use asteria_lang::{
    parse, print_program, AssignOp, BinOp, Expr, Function, IncDec, Interp, LValue, Param, Program,
    Stmt, SwitchCase, UnOp,
};

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Mod),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
        Just(BinOp::Shl),
        Just(BinOp::Shr),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
        Just(BinOp::LogAnd),
        Just(BinOp::LogOr),
    ]
}

fn arb_unop() -> impl Strategy<Value = UnOp> {
    prop_oneof![Just(UnOp::Neg), Just(UnOp::Not), Just(UnOp::BitNot)]
}

/// Expressions over the fixed variables `a` and `b` (always in scope).
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0i64..1000).prop_map(Expr::Num),
        Just(Expr::var("a")),
        Just(Expr::var("b")),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (arb_binop(), inner.clone(), inner.clone()).prop_map(|(op, l, r)| Expr::bin(op, l, r)),
            (arb_unop(), inner.clone()).prop_map(|(op, e)| Expr::Unary(op, Box::new(e))),
            (inner.clone(), proptest::collection::vec(inner, 0..3)).prop_map(
                |(first, mut rest)| {
                    rest.insert(0, first);
                    Expr::Call("ext_fn".into(), rest)
                }
            ),
        ]
    })
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    let simple = prop_oneof![
        arb_expr().prop_map(|e| Stmt::Expr(Expr::Assign(
            AssignOp::Assign,
            LValue::Var("a".into()),
            Box::new(e)
        ))),
        arb_expr().prop_map(|e| Stmt::Expr(Expr::Assign(
            AssignOp::AddAssign,
            LValue::Var("b".into()),
            Box::new(e)
        ))),
        Just(Stmt::Expr(Expr::IncDec(
            IncDec::PostInc,
            LValue::Var("a".into())
        ))),
        arb_expr().prop_map(|e| Stmt::Return(Some(e))),
    ];
    simple.prop_recursive(2, 12, 4, |inner| {
        prop_oneof![
            (arb_expr(), proptest::collection::vec(inner.clone(), 1..3))
                .prop_map(|(c, body)| Stmt::If(c, body, Vec::new())),
            (
                arb_expr(),
                proptest::collection::vec(inner.clone(), 1..2),
                proptest::collection::vec(inner.clone(), 1..2)
            )
                .prop_map(|(c, t, e)| Stmt::If(c, t, e)),
            (arb_expr(), proptest::collection::vec(inner.clone(), 1..3)).prop_map(
                |(scrut, body)| Stmt::Switch(
                    scrut,
                    vec![
                        SwitchCase {
                            value: Some(0),
                            body
                        },
                        SwitchCase {
                            value: None,
                            body: vec![Stmt::Break]
                        },
                    ]
                )
            ),
        ]
    })
}

fn arb_function() -> impl Strategy<Value = Program> {
    proptest::collection::vec(arb_stmt(), 1..6).prop_map(|mut body| {
        body.push(Stmt::Return(Some(Expr::var("a"))));
        Program {
            globals: Vec::new(),
            functions: vec![Function {
                name: "f".into(),
                params: vec![Param { name: "a".into() }, Param { name: "b".into() }],
                body,
            }],
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pretty-printing then reparsing reproduces the exact AST.
    #[test]
    fn pretty_parse_roundtrip(program in arb_function()) {
        let printed = print_program(&program);
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        prop_assert_eq!(reparsed, program);
    }

    /// Evaluation is deterministic and total (modulo resource limits).
    #[test]
    fn interpreter_is_deterministic(program in arb_function(), a in -50i64..50, b in -50i64..50) {
        let r1 = Interp::new(&program).call("f", &[a, b]);
        let r2 = Interp::new(&program).call("f", &[a, b]);
        prop_assert_eq!(r1, r2);
    }
}
