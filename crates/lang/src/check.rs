//! Static semantic checks for MiniC programs.
//!
//! The parser accepts anything syntactically valid; this pass rejects the
//! programs that would only fail at runtime: duplicate definitions, calls
//! to *defined* functions with the wrong arity (externals are variadic by
//! convention), duplicate `switch` cases, and duplicate parameters.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::ast::{Expr, Function, LValue, Program, Stmt};

/// A semantic diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Diagnostic {
    /// Two functions share a name.
    DuplicateFunction {
        /// The repeated name.
        name: String,
    },
    /// Two globals share a name.
    DuplicateGlobal {
        /// The repeated name.
        name: String,
    },
    /// A function declares the same parameter twice.
    DuplicateParam {
        /// Enclosing function.
        function: String,
        /// The repeated parameter.
        param: String,
    },
    /// A call to a defined function passes the wrong number of arguments.
    ArityMismatch {
        /// Enclosing function.
        function: String,
        /// Callee name.
        callee: String,
        /// Declared parameter count.
        expected: usize,
        /// Argument count at the call site.
        got: usize,
    },
    /// A `switch` repeats a case value.
    DuplicateCase {
        /// Enclosing function.
        function: String,
        /// The repeated case value.
        value: i64,
    },
    /// A `switch` has more than one `default` arm.
    DuplicateDefault {
        /// Enclosing function.
        function: String,
    },
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Diagnostic::DuplicateFunction { name } => {
                write!(f, "duplicate function definition `{name}`")
            }
            Diagnostic::DuplicateGlobal { name } => {
                write!(f, "duplicate global definition `{name}`")
            }
            Diagnostic::DuplicateParam { function, param } => {
                write!(f, "duplicate parameter `{param}` in `{function}`")
            }
            Diagnostic::ArityMismatch {
                function,
                callee,
                expected,
                got,
            } => write!(
                f,
                "call to `{callee}` in `{function}` passes {got} arguments, expected {expected}"
            ),
            Diagnostic::DuplicateCase { function, value } => {
                write!(f, "duplicate case {value} in `{function}`")
            }
            Diagnostic::DuplicateDefault { function } => {
                write!(f, "multiple default arms in `{function}`")
            }
        }
    }
}

/// Runs all checks, returning every diagnostic found (empty = clean).
pub fn check_program(program: &Program) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    let mut seen = HashSet::new();
    for g in &program.globals {
        if !seen.insert(&g.name) {
            out.push(Diagnostic::DuplicateGlobal {
                name: g.name.clone(),
            });
        }
    }

    let mut arities: HashMap<&str, usize> = HashMap::new();
    let mut seen_fn = HashSet::new();
    for f in &program.functions {
        if !seen_fn.insert(&f.name) {
            out.push(Diagnostic::DuplicateFunction {
                name: f.name.clone(),
            });
        }
        arities.insert(&f.name, f.params.len());
        let mut seen_params = HashSet::new();
        for p in &f.params {
            if !seen_params.insert(&p.name) {
                out.push(Diagnostic::DuplicateParam {
                    function: f.name.clone(),
                    param: p.name.clone(),
                });
            }
        }
    }

    for f in &program.functions {
        check_function(f, &arities, &mut out);
    }
    out
}

fn check_function(f: &Function, arities: &HashMap<&str, usize>, out: &mut Vec<Diagnostic>) {
    fn expr(e: &Expr, f: &Function, arities: &HashMap<&str, usize>, out: &mut Vec<Diagnostic>) {
        match e {
            Expr::Call(name, args) => {
                if let Some(&expected) = arities.get(name.as_str()) {
                    if expected != args.len() {
                        out.push(Diagnostic::ArityMismatch {
                            function: f.name.clone(),
                            callee: name.clone(),
                            expected,
                            got: args.len(),
                        });
                    }
                }
                for a in args {
                    expr(a, f, arities, out);
                }
            }
            Expr::Index(_, i) => expr(i, f, arities, out),
            Expr::Unary(_, inner) => expr(inner, f, arities, out),
            Expr::Binary(_, a, b) => {
                expr(a, f, arities, out);
                expr(b, f, arities, out);
            }
            Expr::Assign(_, lv, rhs) => {
                if let LValue::Index(_, i) = lv {
                    expr(i, f, arities, out);
                }
                expr(rhs, f, arities, out);
            }
            Expr::IncDec(_, LValue::Index(_, i)) => expr(i, f, arities, out),
            _ => {}
        }
    }
    fn stmts(
        body: &[Stmt],
        f: &Function,
        arities: &HashMap<&str, usize>,
        out: &mut Vec<Diagnostic>,
    ) {
        for s in body {
            match s {
                Stmt::Local(_, e) | Stmt::Expr(e) | Stmt::Return(Some(e)) => {
                    expr(e, f, arities, out)
                }
                Stmt::If(c, t, el) => {
                    expr(c, f, arities, out);
                    stmts(t, f, arities, out);
                    stmts(el, f, arities, out);
                }
                Stmt::While(c, b) => {
                    expr(c, f, arities, out);
                    stmts(b, f, arities, out);
                }
                Stmt::DoWhile(b, c) => {
                    stmts(b, f, arities, out);
                    expr(c, f, arities, out);
                }
                Stmt::For(init, c, step, b) => {
                    if let Some(i) = init {
                        stmts(std::slice::from_ref(i), f, arities, out);
                    }
                    expr(c, f, arities, out);
                    if let Some(st) = step {
                        stmts(std::slice::from_ref(st), f, arities, out);
                    }
                    stmts(b, f, arities, out);
                }
                Stmt::Switch(scrut, cases) => {
                    expr(scrut, f, arities, out);
                    let mut seen = HashSet::new();
                    let mut defaults = 0;
                    for case in cases {
                        match case.value {
                            Some(v) => {
                                if !seen.insert(v) {
                                    out.push(Diagnostic::DuplicateCase {
                                        function: f.name.clone(),
                                        value: v,
                                    });
                                }
                            }
                            None => defaults += 1,
                        }
                        stmts(&case.body, f, arities, out);
                    }
                    if defaults > 1 {
                        out.push(Diagnostic::DuplicateDefault {
                            function: f.name.clone(),
                        });
                    }
                }
                _ => {}
            }
        }
    }
    stmts(&f.body, f, arities, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn diags(src: &str) -> Vec<Diagnostic> {
        check_program(&parse(src).unwrap())
    }

    #[test]
    fn clean_program_has_no_diagnostics() {
        let d = diags(
            "int g = 1; int helper(int a, int b) { return a + b; } \
             int f(int x) { return helper(x, g) + ext_anything(x, x, x); }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn detects_arity_mismatch_on_defined_functions_only() {
        let d = diags(
            "int helper(int a, int b) { return a + b; } \
             int f(int x) { return helper(x) + ext_whatever(x, x, x, x); }",
        );
        assert_eq!(d.len(), 1);
        assert!(matches!(
            &d[0],
            Diagnostic::ArityMismatch { callee, expected: 2, got: 1, .. } if callee == "helper"
        ));
    }

    #[test]
    fn detects_duplicate_functions_and_globals() {
        let d = diags("int g = 1; int g = 2; int f() { return 0; } int f() { return 1; }");
        assert!(d
            .iter()
            .any(|x| matches!(x, Diagnostic::DuplicateGlobal { .. })));
        assert!(d
            .iter()
            .any(|x| matches!(x, Diagnostic::DuplicateFunction { .. })));
    }

    #[test]
    fn detects_duplicate_params() {
        let d = diags("int f(int a, int a) { return a; }");
        assert!(matches!(&d[0], Diagnostic::DuplicateParam { param, .. } if param == "a"));
    }

    #[test]
    fn detects_duplicate_switch_cases_and_defaults() {
        let d = diags(
            "int f(int x) { switch (x) { case 1: return 1; case 1: return 2; \
             default: return 3; default: return 4; } }",
        );
        assert!(d
            .iter()
            .any(|x| matches!(x, Diagnostic::DuplicateCase { value: 1, .. })));
        assert!(d
            .iter()
            .any(|x| matches!(x, Diagnostic::DuplicateDefault { .. })));
    }

    #[test]
    fn checks_nested_calls_in_all_positions() {
        let d = diags(
            "int one(int a) { return a; } \
             int f(int x) { int buf[4]; buf[one(x, x)] = one(x, x); \
             for (int i = one(x, x); i < 2; i++) { } return 0; }",
        );
        assert_eq!(d.len(), 3, "{d:?}");
    }

    #[test]
    fn diagnostics_render_readably() {
        let d = diags("int h(int a) { return a; } int f(int x) { return h(x, x); }");
        let text = d[0].to_string();
        assert!(text.contains("h"), "{text}");
        assert!(text.contains("expected 1"), "{text}");
    }
}
