//! `asteria-lang` — the MiniC language frontend.
//!
//! The Asteria paper compiles 260 open-source C packages with buildroot to
//! obtain cross-architecture binaries. This reproduction replaces that gated
//! toolchain input with MiniC, a small C-like language whose statement and
//! expression forms cover the paper's Table I node vocabulary: `if`,
//! `while`, `do/while`, `for`, `switch`, `return`, `break`, `continue`,
//! assignments (plain and compound), comparisons, arithmetic and bit
//! operations, pre/post increment/decrement, indexing, calls, numbers and
//! strings.
//!
//! The crate provides:
//! - the source [`ast`] ([`Program`], [`Function`], [`Stmt`], [`Expr`]);
//! - a [`lexer`] and recursive-descent [`parser`] ([`parse`]);
//! - a [`pretty`]-printer whose output re-parses identically;
//! - a reference [`Interp`]reter defining MiniC semantics, used for
//!   differential testing of the compiler and decompiler.
//!
//! # Examples
//!
//! ```
//! let program = asteria_lang::parse(
//!     "int sum_to(int n) { int s = 0; for (int i = 1; i <= n; i++) { s += i; } return s; }",
//! )?;
//! let mut interp = asteria_lang::Interp::new(&program);
//! assert_eq!(interp.call("sum_to", &[4])?, 10);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod check;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod pretty;

pub use ast::{
    AssignOp, BinOp, Expr, Function, Global, IncDec, LValue, Param, Program, Stmt, SwitchCase, UnOp,
};
pub use check::{check_program, Diagnostic};
pub use interp::{external_call_result, EvalError, Interp};
pub use lexer::{tokenize, LexError, Token};
pub use parser::{parse, ParseError};
pub use pretty::{print_expr, print_function, print_program};
