//! Tokenizer for MiniC source text.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Integer literal.
    Num(i64),
    /// String literal (content, unescaped).
    Str(String),
    /// Identifier or keyword candidate.
    Ident(String),
    /// Keyword.
    Keyword(Keyword),
    /// Punctuation or operator.
    Punct(&'static str),
    /// End of input.
    Eof,
}

/// Reserved words of MiniC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keyword {
    /// `int`
    Int,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `do`
    Do,
    /// `for`
    For,
    /// `switch`
    Switch,
    /// `case`
    Case,
    /// `default`
    Default,
    /// `return`
    Return,
    /// `break`
    Break,
    /// `continue`
    Continue,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Num(n) => write!(f, "{n}"),
            Token::Str(s) => write!(f, "{s:?}"),
            Token::Ident(s) => write!(f, "{s}"),
            Token::Keyword(k) => write!(f, "{k:?}"),
            Token::Punct(p) => write!(f, "{p}"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// An error produced while tokenizing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

fn keyword(s: &str) -> Option<Keyword> {
    Some(match s {
        "int" => Keyword::Int,
        "if" => Keyword::If,
        "else" => Keyword::Else,
        "while" => Keyword::While,
        "do" => Keyword::Do,
        "for" => Keyword::For,
        "switch" => Keyword::Switch,
        "case" => Keyword::Case,
        "default" => Keyword::Default,
        "return" => Keyword::Return,
        "break" => Keyword::Break,
        "continue" => Keyword::Continue,
        _ => return None,
    })
}

/// Multi-character punctuation, longest first so maximal munch works.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "++", "--", "+=", "-=", "*=",
    "/=", "&=", "|=", "^=", "%=", "(", ")", "{", "}", "[", "]", ";", ",", ":", "+", "-", "*", "/",
    "%", "&", "|", "^", "~", "!", "<", ">", "=", "?",
];

/// Tokenizes MiniC source text.
///
/// # Errors
///
/// Returns a [`LexError`] on an unterminated string literal, a malformed
/// number, or an unexpected character.
pub fn tokenize(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    'outer: while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Line comments.
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        // Block comments.
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            let start = i;
            i += 2;
            while i + 1 < bytes.len() {
                if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                    i += 2;
                    continue 'outer;
                }
                i += 1;
            }
            return Err(LexError {
                offset: start,
                message: "unterminated comment".into(),
            });
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i] as char).is_ascii_alphanumeric() {
                i += 1;
            }
            let text = &src[start..i];
            let value = if let Some(hex) = text.strip_prefix("0x").or(text.strip_prefix("0X")) {
                i64::from_str_radix(hex, 16)
            } else {
                text.parse()
            }
            .map_err(|_| LexError {
                offset: start,
                message: format!("malformed number {text:?}"),
            })?;
            out.push(Token::Num(value));
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            let text = &src[start..i];
            match keyword(text) {
                Some(k) => out.push(Token::Keyword(k)),
                None => out.push(Token::Ident(text.to_string())),
            }
            continue;
        }
        if c == '"' {
            let start = i;
            i += 1;
            let mut s = String::new();
            while i < bytes.len() && bytes[i] != b'"' {
                if bytes[i] == b'\\' && i + 1 < bytes.len() {
                    i += 1;
                    s.push(match bytes[i] {
                        b'n' => '\n',
                        b't' => '\t',
                        b'0' => '\0',
                        other => other as char,
                    });
                } else {
                    s.push(bytes[i] as char);
                }
                i += 1;
            }
            if i >= bytes.len() {
                return Err(LexError {
                    offset: start,
                    message: "unterminated string".into(),
                });
            }
            i += 1; // closing quote
            out.push(Token::Str(s));
            continue;
        }
        for p in PUNCTS {
            if src[i..].starts_with(p) {
                out.push(Token::Punct(p));
                i += p.len();
                continue 'outer;
            }
        }
        return Err(LexError {
            offset: i,
            message: format!("unexpected character {c:?}"),
        });
    }
    out.push(Token::Eof);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_simple_function() {
        let toks = tokenize("int f(int x) { return x + 1; }").unwrap();
        assert_eq!(toks[0], Token::Keyword(Keyword::Int));
        assert_eq!(toks[1], Token::Ident("f".into()));
        assert!(toks.contains(&Token::Punct("+")));
        assert_eq!(*toks.last().unwrap(), Token::Eof);
    }

    #[test]
    fn maximal_munch_for_operators() {
        let toks = tokenize("a <<= b << c <= d < e").unwrap();
        let puncts: Vec<_> = toks
            .iter()
            .filter_map(|t| match t {
                Token::Punct(p) => Some(*p),
                _ => None,
            })
            .collect();
        assert_eq!(puncts, vec!["<<=", "<<", "<=", "<"]);
    }

    #[test]
    fn hex_and_decimal_numbers() {
        let toks = tokenize("0x10 42").unwrap();
        assert_eq!(toks[0], Token::Num(16));
        assert_eq!(toks[1], Token::Num(42));
    }

    #[test]
    fn string_escapes() {
        let toks = tokenize(r#""a\nb""#).unwrap();
        assert_eq!(toks[0], Token::Str("a\nb".into()));
    }

    #[test]
    fn comments_are_skipped() {
        let toks = tokenize("a // comment\n/* block */ b").unwrap();
        assert_eq!(toks.len(), 3); // a, b, eof
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("\"oops").is_err());
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(tokenize("/* oops").is_err());
    }

    #[test]
    fn unexpected_character_errors() {
        let err = tokenize("a @ b").unwrap_err();
        assert!(err.to_string().contains("unexpected character"));
    }

    #[test]
    fn keywords_are_not_identifiers() {
        let toks = tokenize("while whilex").unwrap();
        assert_eq!(toks[0], Token::Keyword(Keyword::While));
        assert_eq!(toks[1], Token::Ident("whilex".into()));
    }
}
