//! Source-level abstract syntax tree for MiniC.
//!
//! MiniC is the reproduction's stand-in for the C sources the paper
//! cross-compiles with buildroot. It is deliberately small but covers every
//! statement and expression class in the paper's Table I, so the decompiled
//! ASTs exercise the full node vocabulary.

use std::fmt;

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    LogAnd,
    /// `||`
    LogOr,
}

impl BinOp {
    /// True for the six comparison operators.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// True for the short-circuiting logical operators.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::LogAnd | BinOp::LogOr)
    }

    /// The C spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::LogAnd => "&&",
            BinOp::LogOr => "||",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-x`.
    Neg,
    /// Logical not `!x`.
    Not,
    /// Bitwise not `~x`.
    BitNot,
}

impl UnOp {
    /// The C spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Not => "!",
            UnOp::BitNot => "~",
        }
    }
}

/// Compound-assignment flavours (`x op= e`), plus plain assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignOp {
    /// `=`
    Assign,
    /// `+=`
    AddAssign,
    /// `-=`
    SubAssign,
    /// `*=`
    MulAssign,
    /// `/=`
    DivAssign,
    /// `&=`
    AndAssign,
    /// `|=`
    OrAssign,
    /// `^=`
    XorAssign,
    /// `%=`
    ModAssign,
    /// `<<=`
    ShlAssign,
    /// `>>=`
    ShrAssign,
}

impl AssignOp {
    /// The underlying binary operator for compound assignments.
    pub fn binop(self) -> Option<BinOp> {
        match self {
            AssignOp::Assign => None,
            AssignOp::AddAssign => Some(BinOp::Add),
            AssignOp::SubAssign => Some(BinOp::Sub),
            AssignOp::MulAssign => Some(BinOp::Mul),
            AssignOp::DivAssign => Some(BinOp::Div),
            AssignOp::AndAssign => Some(BinOp::And),
            AssignOp::OrAssign => Some(BinOp::Or),
            AssignOp::XorAssign => Some(BinOp::Xor),
            AssignOp::ModAssign => Some(BinOp::Mod),
            AssignOp::ShlAssign => Some(BinOp::Shl),
            AssignOp::ShrAssign => Some(BinOp::Shr),
        }
    }

    /// The C spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            AssignOp::Assign => "=",
            AssignOp::AddAssign => "+=",
            AssignOp::SubAssign => "-=",
            AssignOp::MulAssign => "*=",
            AssignOp::DivAssign => "/=",
            AssignOp::AndAssign => "&=",
            AssignOp::OrAssign => "|=",
            AssignOp::XorAssign => "^=",
            AssignOp::ModAssign => "%=",
            AssignOp::ShlAssign => "<<=",
            AssignOp::ShrAssign => ">>=",
        }
    }
}

/// Increment/decrement flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IncDec {
    /// `++x`
    PreInc,
    /// `--x`
    PreDec,
    /// `x++`
    PostInc,
    /// `x--`
    PostDec,
}

/// An lvalue: something assignable.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LValue {
    /// A named local, parameter, or global variable.
    Var(String),
    /// An array element `name[index]`.
    Index(String, Box<Expr>),
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Integer literal.
    Num(i64),
    /// String literal (only valid as a call argument).
    Str(String),
    /// Variable reference.
    Var(String),
    /// Array element read `name[index]`.
    Index(String, Box<Expr>),
    /// Function call.
    Call(String, Vec<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Assignment as an expression (value is the assigned value).
    Assign(AssignOp, LValue, Box<Expr>),
    /// Pre/post increment/decrement of an lvalue.
    IncDec(IncDec, LValue),
}

impl Expr {
    /// Convenience constructor for a binary expression.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// Convenience constructor for a variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Number of nodes in this expression tree (for statistics).
    pub fn size(&self) -> usize {
        match self {
            Expr::Num(_) | Expr::Str(_) | Expr::Var(_) => 1,
            Expr::Index(_, i) => 2 + i.size(),
            Expr::Call(_, args) => 1 + args.iter().map(Expr::size).sum::<usize>(),
            Expr::Unary(_, e) => 1 + e.size(),
            Expr::Binary(_, a, b) => 1 + a.size() + b.size(),
            Expr::Assign(_, lv, e) => {
                let lv_size = match lv {
                    LValue::Var(_) => 1,
                    LValue::Index(_, i) => 2 + i.size(),
                };
                1 + lv_size + e.size()
            }
            Expr::IncDec(_, lv) => match lv {
                LValue::Var(_) => 2,
                LValue::Index(_, i) => 3 + i.size(),
            },
        }
    }
}

/// A `switch` case arm.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SwitchCase {
    /// Case value; `None` for `default`.
    pub value: Option<i64>,
    /// The arm body. Arms do not fall through in MiniC.
    pub body: Vec<Stmt>,
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Stmt {
    /// Local variable declaration with an initializer.
    Local(String, Expr),
    /// Local fixed-size array declaration.
    LocalArray(String, usize),
    /// Expression statement (calls, assignments, inc/dec).
    Expr(Expr),
    /// `if (cond) { then } else { else }`.
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (cond) { body }`.
    While(Expr, Vec<Stmt>),
    /// `do { body } while (cond);`
    DoWhile(Vec<Stmt>, Expr),
    /// `for (init; cond; step) { body }`.
    For(Option<Box<Stmt>>, Expr, Option<Box<Stmt>>, Vec<Stmt>),
    /// `switch (scrutinee) { cases }`.
    Switch(Expr, Vec<SwitchCase>),
    /// `return expr;` or bare `return;`.
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
}

impl Stmt {
    /// Number of statements in this subtree, counting nested bodies.
    pub fn count(&self) -> usize {
        fn body(b: &[Stmt]) -> usize {
            b.iter().map(Stmt::count).sum()
        }
        match self {
            Stmt::If(_, t, e) => 1 + body(t) + body(e),
            Stmt::While(_, b) | Stmt::DoWhile(b, _) => 1 + body(b),
            Stmt::For(i, _, s, b) => {
                1 + i.as_ref().map_or(0, |s| s.count())
                    + s.as_ref().map_or(0, |s| s.count())
                    + body(b)
            }
            Stmt::Switch(_, cases) => 1 + cases.iter().map(|c| body(&c.body)).sum::<usize>(),
            _ => 1,
        }
    }
}

/// A function parameter (all parameters are `int`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Param {
    /// Parameter name.
    pub name: String,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Function {
    /// Function name (symbol).
    pub name: String,
    /// Parameters, in declaration order.
    pub params: Vec<Param>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

impl Function {
    /// Total number of statements in the function body.
    pub fn stmt_count(&self) -> usize {
        self.body.iter().map(Stmt::count).sum()
    }
}

/// A global scalar variable.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Global {
    /// Global name.
    pub name: String,
    /// Initial value.
    pub value: i64,
}

/// A complete MiniC translation unit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// Global variables.
    pub globals: Vec<Global>,
    /// Function definitions.
    pub functions: Vec<Function>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_classification() {
        assert!(BinOp::Eq.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::LogAnd.is_logical());
        assert!(!BinOp::And.is_logical());
    }

    #[test]
    fn assignop_maps_to_binop() {
        assert_eq!(AssignOp::AddAssign.binop(), Some(BinOp::Add));
        assert_eq!(AssignOp::Assign.binop(), None);
    }

    #[test]
    fn expr_size_counts_nodes() {
        // x + y * 2 -> Binary(Add, Var, Binary(Mul, Var, Num)) = 5 nodes
        let e = Expr::bin(
            BinOp::Add,
            Expr::var("x"),
            Expr::bin(BinOp::Mul, Expr::var("y"), Expr::Num(2)),
        );
        assert_eq!(e.size(), 5);
    }

    #[test]
    fn stmt_count_recurses() {
        let s = Stmt::If(
            Expr::var("c"),
            vec![Stmt::Return(Some(Expr::Num(1))), Stmt::Break],
            vec![Stmt::Continue],
        );
        assert_eq!(s.count(), 4);
    }

    #[test]
    fn program_function_lookup() {
        let mut p = Program::new();
        p.functions.push(Function {
            name: "f".into(),
            params: vec![],
            body: vec![],
        });
        assert!(p.function("f").is_some());
        assert!(p.function("g").is_none());
    }
}
