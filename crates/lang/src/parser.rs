//! Recursive-descent parser for MiniC.

use std::fmt;

use crate::ast::{
    AssignOp, BinOp, Expr, Function, Global, IncDec, LValue, Param, Program, Stmt, SwitchCase, UnOp,
};
use crate::lexer::{tokenize, Keyword, LexError, Token};

/// An error produced while parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Token index of the failure.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at token {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            position: 0,
            message: e.to_string(),
        }
    }
}

/// Parses a complete MiniC translation unit.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax error.
///
/// # Examples
///
/// ```
/// let program = asteria_lang::parse("int inc(int x) { return x + 1; }")?;
/// assert_eq!(program.functions[0].name, "inc");
/// # Ok::<(), asteria_lang::ParseError>(())
/// ```
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let tokens = tokenize(src)?;
    Parser { tokens, pos: 0 }.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek2(&self) -> &Token {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)]
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        self.pos += 1;
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            position: self.pos,
            message: message.into(),
        })
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        match self.advance() {
            Token::Punct(q) if q == p => Ok(()),
            other => {
                self.pos -= 1;
                self.err(format!("expected `{p}`, found `{other}`"))
            }
        }
    }

    fn expect_keyword(&mut self, k: Keyword) -> Result<(), ParseError> {
        match self.advance() {
            Token::Keyword(q) if q == k => Ok(()),
            other => {
                self.pos -= 1;
                self.err(format!("expected `{k:?}`, found `{other}`"))
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.advance() {
            Token::Ident(s) => Ok(s),
            other => {
                self.pos -= 1;
                self.err(format!("expected identifier, found `{other}`"))
            }
        }
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Token::Punct(q) if *q == p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut program = Program::new();
        while !matches!(self.peek(), Token::Eof) {
            self.expect_keyword(Keyword::Int)?;
            let name = self.expect_ident()?;
            match self.peek() {
                Token::Punct("(") => program.functions.push(self.function(name)?),
                Token::Punct("=") => {
                    self.advance();
                    let value = match self.advance() {
                        Token::Num(n) => n,
                        Token::Punct("-") => match self.advance() {
                            Token::Num(n) => -n,
                            _ => return self.err("expected number after `-`"),
                        },
                        _ => return self.err("global initializer must be a constant"),
                    };
                    self.expect_punct(";")?;
                    program.globals.push(Global { name, value });
                }
                _ => return self.err("expected `(` or `=` after top-level name"),
            }
        }
        Ok(program)
    }

    fn function(&mut self, name: String) -> Result<Function, ParseError> {
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            loop {
                self.expect_keyword(Keyword::Int)?;
                params.push(Param {
                    name: self.expect_ident()?,
                });
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        let body = self.block()?;
        Ok(Function { name, params, body })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            if matches!(self.peek(), Token::Eof) {
                return self.err("unterminated block");
            }
            stmts.push(self.statement()?);
        }
        Ok(stmts)
    }

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        match self.peek().clone() {
            Token::Keyword(Keyword::Int) => {
                let s = self.local_decl()?;
                self.expect_punct(";")?;
                Ok(s)
            }
            Token::Keyword(Keyword::If) => self.if_stmt(),
            Token::Keyword(Keyword::While) => {
                self.advance();
                self.expect_punct("(")?;
                let cond = self.expr()?;
                self.expect_punct(")")?;
                Ok(Stmt::While(cond, self.block()?))
            }
            Token::Keyword(Keyword::Do) => {
                self.advance();
                let body = self.block()?;
                self.expect_keyword(Keyword::While)?;
                self.expect_punct("(")?;
                let cond = self.expr()?;
                self.expect_punct(")")?;
                self.expect_punct(";")?;
                Ok(Stmt::DoWhile(body, cond))
            }
            Token::Keyword(Keyword::For) => self.for_stmt(),
            Token::Keyword(Keyword::Switch) => self.switch_stmt(),
            Token::Keyword(Keyword::Return) => {
                self.advance();
                if self.eat_punct(";") {
                    Ok(Stmt::Return(None))
                } else {
                    let e = self.expr()?;
                    self.expect_punct(";")?;
                    Ok(Stmt::Return(Some(e)))
                }
            }
            Token::Keyword(Keyword::Break) => {
                self.advance();
                self.expect_punct(";")?;
                Ok(Stmt::Break)
            }
            Token::Keyword(Keyword::Continue) => {
                self.advance();
                self.expect_punct(";")?;
                Ok(Stmt::Continue)
            }
            _ => {
                let e = self.expr()?;
                self.expect_punct(";")?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    /// Parses `int name = expr` or `int name[N]` (without trailing `;`).
    fn local_decl(&mut self) -> Result<Stmt, ParseError> {
        self.expect_keyword(Keyword::Int)?;
        let name = self.expect_ident()?;
        if self.eat_punct("[") {
            let size = match self.advance() {
                Token::Num(n) if n > 0 => n as usize,
                _ => return self.err("array size must be a positive constant"),
            };
            self.expect_punct("]")?;
            Ok(Stmt::LocalArray(name, size))
        } else {
            self.expect_punct("=")?;
            let init = self.expr()?;
            Ok(Stmt::Local(name, init))
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.expect_keyword(Keyword::If)?;
        self.expect_punct("(")?;
        let cond = self.expr()?;
        self.expect_punct(")")?;
        let then_body = self.block()?;
        let else_body = if matches!(self.peek(), Token::Keyword(Keyword::Else)) {
            self.advance();
            if matches!(self.peek(), Token::Keyword(Keyword::If)) {
                vec![self.if_stmt()?]
            } else {
                self.block()?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt::If(cond, then_body, else_body))
    }

    fn for_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.expect_keyword(Keyword::For)?;
        self.expect_punct("(")?;
        let init = if matches!(self.peek(), Token::Punct(";")) {
            None
        } else if matches!(self.peek(), Token::Keyword(Keyword::Int)) {
            Some(Box::new(self.local_decl()?))
        } else {
            Some(Box::new(Stmt::Expr(self.expr()?)))
        };
        self.expect_punct(";")?;
        let cond = if matches!(self.peek(), Token::Punct(";")) {
            Expr::Num(1)
        } else {
            self.expr()?
        };
        self.expect_punct(";")?;
        let step = if matches!(self.peek(), Token::Punct(")")) {
            None
        } else {
            Some(Box::new(Stmt::Expr(self.expr()?)))
        };
        self.expect_punct(")")?;
        Ok(Stmt::For(init, cond, step, self.block()?))
    }

    fn switch_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.expect_keyword(Keyword::Switch)?;
        self.expect_punct("(")?;
        let scrutinee = self.expr()?;
        self.expect_punct(")")?;
        self.expect_punct("{")?;
        let mut cases = Vec::new();
        while !self.eat_punct("}") {
            let value = match self.advance() {
                Token::Keyword(Keyword::Case) => {
                    let v = match self.advance() {
                        Token::Num(n) => n,
                        Token::Punct("-") => match self.advance() {
                            Token::Num(n) => -n,
                            _ => return self.err("expected number after `-`"),
                        },
                        _ => return self.err("case label must be a constant"),
                    };
                    Some(v)
                }
                Token::Keyword(Keyword::Default) => None,
                other => {
                    self.pos -= 1;
                    return self.err(format!("expected `case` or `default`, found `{other}`"));
                }
            };
            self.expect_punct(":")?;
            let mut body = Vec::new();
            loop {
                match self.peek() {
                    Token::Keyword(Keyword::Case)
                    | Token::Keyword(Keyword::Default)
                    | Token::Punct("}") => break,
                    Token::Eof => return self.err("unterminated switch"),
                    _ => body.push(self.statement()?),
                }
            }
            cases.push(SwitchCase { value, body });
        }
        Ok(Stmt::Switch(scrutinee, cases))
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.binary(0)?;
        let op = match self.peek() {
            Token::Punct("=") => AssignOp::Assign,
            Token::Punct("+=") => AssignOp::AddAssign,
            Token::Punct("-=") => AssignOp::SubAssign,
            Token::Punct("*=") => AssignOp::MulAssign,
            Token::Punct("/=") => AssignOp::DivAssign,
            Token::Punct("&=") => AssignOp::AndAssign,
            Token::Punct("|=") => AssignOp::OrAssign,
            Token::Punct("^=") => AssignOp::XorAssign,
            Token::Punct("%=") => AssignOp::ModAssign,
            Token::Punct("<<=") => AssignOp::ShlAssign,
            Token::Punct(">>=") => AssignOp::ShrAssign,
            _ => return Ok(lhs),
        };
        self.advance();
        let lvalue = match lhs {
            Expr::Var(name) => LValue::Var(name),
            Expr::Index(name, idx) => LValue::Index(name, idx),
            _ => return self.err("left-hand side of assignment is not assignable"),
        };
        let rhs = self.assignment()?;
        Ok(Expr::Assign(op, lvalue, Box::new(rhs)))
    }

    /// Precedence-climbing binary expression parser. Level 0 is the loosest.
    fn binary(&mut self, level: usize) -> Result<Expr, ParseError> {
        const LEVELS: &[&[(&str, BinOp)]] = &[
            &[("||", BinOp::LogOr)],
            &[("&&", BinOp::LogAnd)],
            &[("|", BinOp::Or)],
            &[("^", BinOp::Xor)],
            &[("&", BinOp::And)],
            &[("==", BinOp::Eq), ("!=", BinOp::Ne)],
            &[
                ("<=", BinOp::Le),
                (">=", BinOp::Ge),
                ("<", BinOp::Lt),
                (">", BinOp::Gt),
            ],
            &[("<<", BinOp::Shl), (">>", BinOp::Shr)],
            &[("+", BinOp::Add), ("-", BinOp::Sub)],
            &[("*", BinOp::Mul), ("/", BinOp::Div), ("%", BinOp::Mod)],
        ];
        if level >= LEVELS.len() {
            return self.unary();
        }
        let mut lhs = self.binary(level + 1)?;
        'outer: loop {
            for (sym, op) in LEVELS[level] {
                if matches!(self.peek(), Token::Punct(p) if p == sym) {
                    self.advance();
                    let rhs = self.binary(level + 1)?;
                    lhs = Expr::bin(*op, lhs, rhs);
                    continue 'outer;
                }
            }
            return Ok(lhs);
        }
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Token::Punct("-") => {
                self.advance();
                Ok(Expr::Unary(UnOp::Neg, Box::new(self.unary()?)))
            }
            Token::Punct("!") => {
                self.advance();
                Ok(Expr::Unary(UnOp::Not, Box::new(self.unary()?)))
            }
            Token::Punct("~") => {
                self.advance();
                Ok(Expr::Unary(UnOp::BitNot, Box::new(self.unary()?)))
            }
            Token::Punct("++") => {
                self.advance();
                let lv = self.lvalue()?;
                Ok(Expr::IncDec(IncDec::PreInc, lv))
            }
            Token::Punct("--") => {
                self.advance();
                let lv = self.lvalue()?;
                Ok(Expr::IncDec(IncDec::PreDec, lv))
            }
            _ => self.postfix(),
        }
    }

    fn lvalue(&mut self) -> Result<LValue, ParseError> {
        let name = self.expect_ident()?;
        if self.eat_punct("[") {
            let idx = self.expr()?;
            self.expect_punct("]")?;
            Ok(LValue::Index(name, Box::new(idx)))
        } else {
            Ok(LValue::Var(name))
        }
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let primary = self.primary()?;
        match self.peek() {
            Token::Punct("++") => {
                let lv = expr_to_lvalue(&primary).ok_or_else(|| ParseError {
                    position: self.pos,
                    message: "operand of `++` is not assignable".into(),
                })?;
                self.advance();
                Ok(Expr::IncDec(IncDec::PostInc, lv))
            }
            Token::Punct("--") => {
                let lv = expr_to_lvalue(&primary).ok_or_else(|| ParseError {
                    position: self.pos,
                    message: "operand of `--` is not assignable".into(),
                })?;
                self.advance();
                Ok(Expr::IncDec(IncDec::PostDec, lv))
            }
            _ => Ok(primary),
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.advance() {
            Token::Num(n) => Ok(Expr::Num(n)),
            Token::Str(s) => Ok(Expr::Str(s)),
            Token::Punct("(") => {
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Token::Ident(name) => {
                if self.eat_punct("(") {
                    let mut args = Vec::new();
                    if !self.eat_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if self.eat_punct(")") {
                                break;
                            }
                            self.expect_punct(",")?;
                        }
                    }
                    Ok(Expr::Call(name, args))
                } else if self.eat_punct("[") {
                    let idx = self.expr()?;
                    self.expect_punct("]")?;
                    Ok(Expr::Index(name, Box::new(idx)))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => {
                self.pos -= 1;
                self.err(format!("expected expression, found `{other}`"))
            }
        }
    }
}

fn expr_to_lvalue(e: &Expr) -> Option<LValue> {
    match e {
        Expr::Var(name) => Some(LValue::Var(name.clone())),
        Expr::Index(name, idx) => Some(LValue::Index(name.clone(), idx.clone())),
        _ => None,
    }
}

// Silence an unused warning: peek2 is kept for future grammar growth.
impl Parser {
    #[allow(dead_code)]
    fn lookahead_is(&self, p: &str) -> bool {
        matches!(self.peek2(), Token::Punct(q) if *q == p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_fn(body: &str) -> Function {
        let src = format!("int test(int a, int b) {{ {body} }}");
        parse(&src).expect("parse failed").functions.remove(0)
    }

    #[test]
    fn parses_function_signature() {
        let f = parse_fn("return a;");
        assert_eq!(f.name, "test");
        assert_eq!(f.params.len(), 2);
    }

    #[test]
    fn parses_globals() {
        let p = parse("int g = 42; int h = -7; int f() { return g; }").unwrap();
        assert_eq!(p.globals.len(), 2);
        assert_eq!(p.globals[1].value, -7);
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let f = parse_fn("return a + b * 2;");
        match &f.body[0] {
            Stmt::Return(Some(Expr::Binary(BinOp::Add, _, rhs))) => {
                assert!(matches!(**rhs, Expr::Binary(BinOp::Mul, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn comparison_binds_looser_than_shift() {
        let f = parse_fn("return a << 1 < b;");
        assert!(matches!(
            &f.body[0],
            Stmt::Return(Some(Expr::Binary(BinOp::Lt, _, _)))
        ));
    }

    #[test]
    fn parses_if_else_chain() {
        let f = parse_fn("if (a) { return 1; } else if (b) { return 2; } else { return 3; }");
        match &f.body[0] {
            Stmt::If(_, _, else_body) => {
                assert!(matches!(else_body[0], Stmt::If(_, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_loops() {
        let f = parse_fn(
            "int s = 0; for (int i = 0; i < a; i++) { s += i; } while (s > 10) { s -= 1; } \
             do { s++; } while (s < 3);",
        );
        assert!(matches!(f.body[1], Stmt::For(_, _, _, _)));
        assert!(matches!(f.body[2], Stmt::While(_, _)));
        assert!(matches!(f.body[3], Stmt::DoWhile(_, _)));
    }

    #[test]
    fn parses_switch() {
        let f = parse_fn("switch (a) { case 1: return 1; case 2: return 2; default: return 0; }");
        match &f.body[0] {
            Stmt::Switch(_, cases) => {
                assert_eq!(cases.len(), 3);
                assert_eq!(cases[0].value, Some(1));
                assert_eq!(cases[2].value, None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_calls_and_strings() {
        let f = parse_fn(r#"log("hello", a); return helper(a, b + 1);"#);
        assert!(matches!(&f.body[0], Stmt::Expr(Expr::Call(name, args))
            if name == "log" && args.len() == 2));
    }

    #[test]
    fn parses_arrays_and_indexing() {
        let f = parse_fn("int buf[8]; buf[0] = a; return buf[a % 8];");
        assert!(matches!(&f.body[0], Stmt::LocalArray(n, 8) if n == "buf"));
        assert!(matches!(
            &f.body[1],
            Stmt::Expr(Expr::Assign(AssignOp::Assign, LValue::Index(_, _), _))
        ));
    }

    #[test]
    fn parses_incdec_variants() {
        let f = parse_fn("a++; --b; return a;");
        assert!(matches!(
            &f.body[0],
            Stmt::Expr(Expr::IncDec(IncDec::PostInc, _))
        ));
        assert!(matches!(
            &f.body[1],
            Stmt::Expr(Expr::IncDec(IncDec::PreDec, _))
        ));
    }

    #[test]
    fn extended_compound_assignments_parse() {
        let f = parse_fn("a %= 3; b <<= 2; a >>= 1; return a + b;");
        assert!(matches!(
            &f.body[0],
            Stmt::Expr(Expr::Assign(AssignOp::ModAssign, _, _))
        ));
        assert!(matches!(
            &f.body[1],
            Stmt::Expr(Expr::Assign(AssignOp::ShlAssign, _, _))
        ));
        assert!(matches!(
            &f.body[2],
            Stmt::Expr(Expr::Assign(AssignOp::ShrAssign, _, _))
        ));
    }

    #[test]
    fn assignment_is_right_associative() {
        let f = parse_fn("int c = 0; a = c = b;");
        match &f.body[1] {
            Stmt::Expr(Expr::Assign(AssignOp::Assign, LValue::Var(a), rhs)) => {
                assert_eq!(a, "a");
                assert!(matches!(**rhs, Expr::Assign(AssignOp::Assign, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_assignment_target() {
        let r = parse("int f() { 1 + 2 = 3; }");
        assert!(r.is_err());
    }

    #[test]
    fn rejects_unterminated_block() {
        assert!(parse("int f() { return 1;").is_err());
    }

    #[test]
    fn error_mentions_expected_token() {
        let e = parse("int f( { }").unwrap_err();
        assert!(e.to_string().contains("expected"));
    }
}
