//! Pretty-printer: renders a [`Program`] back to parseable MiniC source.

use std::fmt::Write;

use crate::ast::{Expr, Function, IncDec, LValue, Program, Stmt};

/// Renders a whole program as MiniC source text.
///
/// The output re-parses to an identical AST (see the round-trip tests),
/// which makes it usable for corpus persistence and debugging.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for g in &p.globals {
        let _ = writeln!(out, "int {} = {};", g.name, g.value);
    }
    for f in &p.functions {
        out.push_str(&print_function(f));
    }
    out
}

/// Renders one function definition.
pub fn print_function(f: &Function) -> String {
    let mut out = String::new();
    let params: Vec<String> = f.params.iter().map(|p| format!("int {}", p.name)).collect();
    let _ = writeln!(out, "int {}({}) {{", f.name, params.join(", "));
    for s in &f.body {
        print_stmt(&mut out, s, 1);
    }
    out.push_str("}\n");
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn print_block(out: &mut String, body: &[Stmt], depth: usize) {
    out.push_str("{\n");
    for s in body {
        print_stmt(out, s, depth + 1);
    }
    indent(out, depth);
    out.push('}');
}

fn print_stmt(out: &mut String, s: &Stmt, depth: usize) {
    indent(out, depth);
    match s {
        Stmt::Local(name, init) => {
            let _ = writeln!(out, "int {name} = {};", print_expr(init));
        }
        Stmt::LocalArray(name, size) => {
            let _ = writeln!(out, "int {name}[{size}];");
        }
        Stmt::Expr(e) => {
            let _ = writeln!(out, "{};", print_expr(e));
        }
        Stmt::If(cond, then_body, else_body) => {
            let _ = write!(out, "if ({}) ", print_expr(cond));
            print_block(out, then_body, depth);
            if !else_body.is_empty() {
                out.push_str(" else ");
                print_block(out, else_body, depth);
            }
            out.push('\n');
        }
        Stmt::While(cond, body) => {
            let _ = write!(out, "while ({}) ", print_expr(cond));
            print_block(out, body, depth);
            out.push('\n');
        }
        Stmt::DoWhile(body, cond) => {
            out.push_str("do ");
            print_block(out, body, depth);
            let _ = writeln!(out, " while ({});", print_expr(cond));
        }
        Stmt::For(init, cond, step, body) => {
            let init_s = init
                .as_ref()
                .map_or(String::new(), |s| print_simple_stmt(s));
            let step_s = step
                .as_ref()
                .map_or(String::new(), |s| print_simple_stmt(s));
            let _ = write!(out, "for ({init_s}; {}; {step_s}) ", print_expr(cond));
            print_block(out, body, depth);
            out.push('\n');
        }
        Stmt::Switch(scrutinee, cases) => {
            let _ = writeln!(out, "switch ({}) {{", print_expr(scrutinee));
            for case in cases {
                indent(out, depth);
                match case.value {
                    Some(v) => {
                        let _ = writeln!(out, "case {v}:");
                    }
                    None => {
                        let _ = writeln!(out, "default:");
                    }
                }
                for s in &case.body {
                    print_stmt(out, s, depth + 1);
                }
            }
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::Return(Some(e)) => {
            let _ = writeln!(out, "return {};", print_expr(e));
        }
        Stmt::Return(None) => out.push_str("return;\n"),
        Stmt::Break => out.push_str("break;\n"),
        Stmt::Continue => out.push_str("continue;\n"),
    }
}

/// Renders a statement without trailing newline/semicolon handling for the
/// `for` header positions.
fn print_simple_stmt(s: &Stmt) -> String {
    match s {
        Stmt::Local(name, init) => format!("int {name} = {}", print_expr(init)),
        Stmt::Expr(e) => print_expr(e),
        other => panic!("statement not valid in for header: {other:?}"),
    }
}

fn print_lvalue(lv: &LValue) -> String {
    match lv {
        LValue::Var(name) => name.clone(),
        LValue::Index(name, idx) => format!("{name}[{}]", print_expr(idx)),
    }
}

/// Renders an expression, fully parenthesized where needed.
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Num(n) => {
            if *n < 0 {
                format!("({n})")
            } else {
                n.to_string()
            }
        }
        Expr::Str(s) => format!("{:?}", s),
        Expr::Var(name) => name.clone(),
        Expr::Index(name, idx) => format!("{name}[{}]", print_expr(idx)),
        Expr::Call(name, args) => {
            let args: Vec<String> = args.iter().map(print_expr).collect();
            format!("{name}({})", args.join(", "))
        }
        Expr::Unary(op, inner) => format!("{}({})", op.symbol(), print_expr(inner)),
        Expr::Binary(op, a, b) => {
            format!("({} {} {})", print_expr(a), op.symbol(), print_expr(b))
        }
        Expr::Assign(op, lv, rhs) => {
            format!("{} {} {}", print_lvalue(lv), op.symbol(), print_expr(rhs))
        }
        Expr::IncDec(kind, lv) => match kind {
            IncDec::PreInc => format!("++{}", print_lvalue(lv)),
            IncDec::PreDec => format!("--{}", print_lvalue(lv)),
            IncDec::PostInc => format!("{}++", print_lvalue(lv)),
            IncDec::PostDec => format!("{}--", print_lvalue(lv)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const SAMPLE: &str = r#"
int limit = 100;
int clamp_add(int a, int b) {
    int s = a + b;
    if (s > limit) { return limit; } else { return s; }
}
int sum_to(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) { s += i; }
    return s;
}
int classify(int x) {
    switch (x % 3) {
    case 0:
        return 10;
    case 1:
        return 20;
    default:
        return 30;
    }
}
"#;

    #[test]
    fn roundtrip_preserves_ast() {
        let p1 = parse(SAMPLE).unwrap();
        let printed = print_program(&p1);
        let p2 = parse(&printed).unwrap();
        assert_eq!(p1, p2, "pretty-printed source must reparse identically");
    }

    #[test]
    fn roundtrip_twice_is_stable() {
        let p1 = parse(SAMPLE).unwrap();
        let s1 = print_program(&p1);
        let s2 = print_program(&parse(&s1).unwrap());
        assert_eq!(s1, s2);
    }

    #[test]
    fn negative_literals_reparse() {
        let p1 = parse("int f() { return 0 - 5; }").unwrap();
        let printed = print_program(&p1);
        assert_eq!(parse(&printed).unwrap(), p1);
    }

    #[test]
    fn strings_are_escaped() {
        let p = parse(r#"int f() { log("a\nb"); return 0; }"#).unwrap();
        let printed = print_program(&p);
        assert_eq!(parse(&printed).unwrap(), p);
    }
}
