//! Reference interpreter for MiniC.
//!
//! This defines the language's semantics. The compiler backends and the
//! binary-level virtual machine in `asteria-compiler` are differentially
//! tested against this interpreter: the same function evaluated on the same
//! arguments must produce the same result on every architecture.
//!
//! Deliberately *defined* behaviours (so all layers can agree):
//! - all arithmetic wraps modulo 2⁶⁴ (values are `i64`);
//! - division by zero yields 0; remainder by zero yields the dividend
//!   (consistent with `a - (a/b)*b`, which is how RISC backends expand `%`);
//! - shift amounts are masked to 6 bits;
//! - array indices wrap into `0..size` (Euclidean remainder);
//! - calls to functions not defined in the program ("externals", e.g.
//!   `log`, `memcpy`) return a deterministic FNV-1a hash of the callee name
//!   and the argument values.

use std::collections::HashMap;
use std::fmt;

use crate::ast::{BinOp, Expr, Function, IncDec, LValue, Program, Stmt, UnOp};

/// Errors produced during evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The step budget was exhausted (probable infinite loop).
    StepLimit,
    /// Reference to an undeclared variable.
    UnknownVar(String),
    /// Call target is not a function and not an external.
    BadCall(String),
    /// Call recursion exceeded the depth limit.
    RecursionLimit,
    /// Wrong number of arguments in a direct call.
    ArityMismatch {
        /// Callee name.
        callee: String,
        /// Number of declared parameters.
        expected: usize,
        /// Number of arguments supplied.
        got: usize,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::StepLimit => write!(f, "step budget exhausted"),
            EvalError::UnknownVar(v) => write!(f, "unknown variable {v}"),
            EvalError::BadCall(c) => write!(f, "bad call target {c}"),
            EvalError::RecursionLimit => write!(f, "recursion limit exceeded"),
            EvalError::ArityMismatch {
                callee,
                expected,
                got,
            } => {
                write!(f, "call to {callee} expects {expected} args, got {got}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// Deterministic result of calling an undefined ("external") function.
///
/// Shared by the interpreter and the binary VM so differential tests agree.
pub fn external_call_result(name: &str, args: &[i64]) -> i64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    for a in args {
        for b in a.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    // Keep results in a small signed range so arithmetic stays comparable.
    (h % 65536) as i64 - 32768
}

/// Applies a binary operator with MiniC's defined semantics.
pub fn eval_binop(op: BinOp, a: i64, b: i64) -> i64 {
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        BinOp::Mod => {
            if b == 0 {
                // Consistent with `a - (a/b)*b` under div-by-zero = 0; RISC
                // backends expand `%` exactly that way.
                a
            } else {
                a.wrapping_rem(b)
            }
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl((b & 63) as u32),
        BinOp::Shr => a.wrapping_shr((b & 63) as u32),
        BinOp::Eq => (a == b) as i64,
        BinOp::Ne => (a != b) as i64,
        BinOp::Lt => (a < b) as i64,
        BinOp::Le => (a <= b) as i64,
        BinOp::Gt => (a > b) as i64,
        BinOp::Ge => (a >= b) as i64,
        BinOp::LogAnd => ((a != 0) && (b != 0)) as i64,
        BinOp::LogOr => ((a != 0) || (b != 0)) as i64,
    }
}

/// Applies a unary operator.
pub fn eval_unop(op: UnOp, a: i64) -> i64 {
    match op {
        UnOp::Neg => a.wrapping_neg(),
        UnOp::Not => (a == 0) as i64,
        UnOp::BitNot => !a,
    }
}

/// Wraps an array index into `0..size` (Euclidean remainder).
pub fn wrap_index(index: i64, size: usize) -> usize {
    debug_assert!(size > 0);
    index.rem_euclid(size as i64) as usize
}

enum Flow {
    Normal,
    Break,
    Continue,
    Return(i64),
}

struct Frame {
    scalars: HashMap<String, i64>,
    arrays: HashMap<String, Vec<i64>>,
}

/// An interpreter instance over a program.
///
/// # Examples
///
/// ```
/// let p = asteria_lang::parse("int dbl(int x) { return x * 2; }")?;
/// let mut interp = asteria_lang::Interp::new(&p);
/// assert_eq!(interp.call("dbl", &[21])?, 42);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Interp<'p> {
    program: &'p Program,
    globals: HashMap<String, i64>,
    steps_left: u64,
    depth: usize,
}

/// Default step budget per top-level call.
pub const DEFAULT_STEP_BUDGET: u64 = 2_000_000;

/// Maximum call depth.
pub const MAX_DEPTH: usize = 64;

impl<'p> Interp<'p> {
    /// Creates an interpreter with freshly initialized globals.
    pub fn new(program: &'p Program) -> Self {
        let globals = program
            .globals
            .iter()
            .map(|g| (g.name.clone(), g.value))
            .collect();
        Interp {
            program,
            globals,
            steps_left: DEFAULT_STEP_BUDGET,
            depth: 0,
        }
    }

    /// Calls a defined function by name with the given arguments.
    ///
    /// Globals persist across calls on the same interpreter, mirroring the
    /// data segment of a loaded binary.
    ///
    /// # Errors
    ///
    /// See [`EvalError`].
    pub fn call(&mut self, name: &str, args: &[i64]) -> Result<i64, EvalError> {
        self.steps_left = DEFAULT_STEP_BUDGET;
        self.call_inner(name, args)
    }

    fn call_inner(&mut self, name: &str, args: &[i64]) -> Result<i64, EvalError> {
        let func = match self.program.function(name) {
            Some(f) => f,
            None => return Ok(external_call_result(name, args)),
        };
        if args.len() != func.params.len() {
            return Err(EvalError::ArityMismatch {
                callee: name.to_string(),
                expected: func.params.len(),
                got: args.len(),
            });
        }
        if self.depth >= MAX_DEPTH {
            return Err(EvalError::RecursionLimit);
        }
        self.depth += 1;
        let mut frame = Frame {
            scalars: HashMap::new(),
            arrays: HashMap::new(),
        };
        for (p, v) in func.params.iter().zip(args) {
            frame.scalars.insert(p.name.clone(), *v);
        }
        let result = self.exec_body(func, &mut frame);
        self.depth -= 1;
        match result? {
            Flow::Return(v) => Ok(v),
            _ => Ok(0), // fall off the end: return 0
        }
    }

    fn exec_body(&mut self, func: &Function, frame: &mut Frame) -> Result<Flow, EvalError> {
        for stmt in &func.body {
            match self.exec_stmt(stmt, frame)? {
                Flow::Normal => {}
                flow => return Ok(flow),
            }
        }
        Ok(Flow::Normal)
    }

    fn tick(&mut self) -> Result<(), EvalError> {
        if self.steps_left == 0 {
            return Err(EvalError::StepLimit);
        }
        self.steps_left -= 1;
        Ok(())
    }

    fn exec_block(&mut self, body: &[Stmt], frame: &mut Frame) -> Result<Flow, EvalError> {
        for stmt in body {
            match self.exec_stmt(stmt, frame)? {
                Flow::Normal => {}
                flow => return Ok(flow),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, stmt: &Stmt, frame: &mut Frame) -> Result<Flow, EvalError> {
        self.tick()?;
        match stmt {
            Stmt::Local(name, init) => {
                let v = self.eval(init, frame)?;
                frame.scalars.insert(name.clone(), v);
                Ok(Flow::Normal)
            }
            Stmt::LocalArray(name, size) => {
                frame.arrays.insert(name.clone(), vec![0; *size]);
                Ok(Flow::Normal)
            }
            Stmt::Expr(e) => {
                self.eval(e, frame)?;
                Ok(Flow::Normal)
            }
            Stmt::If(cond, then_body, else_body) => {
                if self.eval(cond, frame)? != 0 {
                    self.exec_block(then_body, frame)
                } else {
                    self.exec_block(else_body, frame)
                }
            }
            Stmt::While(cond, body) => {
                while self.eval(cond, frame)? != 0 {
                    self.tick()?;
                    match self.exec_block(body, frame)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::DoWhile(body, cond) => {
                loop {
                    self.tick()?;
                    match self.exec_block(body, frame)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                    if self.eval(cond, frame)? == 0 {
                        break;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For(init, cond, step, body) => {
                if let Some(init) = init {
                    self.exec_stmt(init, frame)?;
                }
                while self.eval(cond, frame)? != 0 {
                    self.tick()?;
                    match self.exec_block(body, frame)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                    if let Some(step) = step {
                        self.exec_stmt(step, frame)?;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Switch(scrutinee, cases) => {
                let v = self.eval(scrutinee, frame)?;
                let arm = cases
                    .iter()
                    .find(|c| c.value == Some(v))
                    .or_else(|| cases.iter().find(|c| c.value.is_none()));
                match arm {
                    Some(case) => match self.exec_block(&case.body, frame)? {
                        Flow::Break => Ok(Flow::Normal),
                        flow => Ok(flow),
                    },
                    None => Ok(Flow::Normal),
                }
            }
            Stmt::Return(Some(e)) => {
                let v = self.eval(e, frame)?;
                Ok(Flow::Return(v))
            }
            Stmt::Return(None) => Ok(Flow::Return(0)),
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
        }
    }

    fn read_var(&self, name: &str, frame: &Frame) -> Result<i64, EvalError> {
        if let Some(v) = frame.scalars.get(name) {
            return Ok(*v);
        }
        if let Some(v) = self.globals.get(name) {
            return Ok(*v);
        }
        Err(EvalError::UnknownVar(name.to_string()))
    }

    fn write_var(&mut self, name: &str, value: i64, frame: &mut Frame) -> Result<(), EvalError> {
        if let Some(v) = frame.scalars.get_mut(name) {
            *v = value;
            return Ok(());
        }
        if let Some(v) = self.globals.get_mut(name) {
            *v = value;
            return Ok(());
        }
        Err(EvalError::UnknownVar(name.to_string()))
    }

    fn read_lvalue(&mut self, lv: &LValue, frame: &mut Frame) -> Result<i64, EvalError> {
        match lv {
            LValue::Var(name) => self.read_var(name, frame),
            LValue::Index(name, idx) => {
                let i = self.eval(idx, frame)?;
                let arr = frame
                    .arrays
                    .get(name)
                    .ok_or_else(|| EvalError::UnknownVar(name.clone()))?;
                Ok(arr[wrap_index(i, arr.len())])
            }
        }
    }

    fn write_lvalue(
        &mut self,
        lv: &LValue,
        value: i64,
        frame: &mut Frame,
    ) -> Result<(), EvalError> {
        match lv {
            LValue::Var(name) => self.write_var(name, value, frame),
            LValue::Index(name, idx) => {
                let i = self.eval(idx, frame)?;
                let arr = frame
                    .arrays
                    .get_mut(name)
                    .ok_or_else(|| EvalError::UnknownVar(name.clone()))?;
                let pos = wrap_index(i, arr.len());
                arr[pos] = value;
                Ok(())
            }
        }
    }

    fn eval(&mut self, e: &Expr, frame: &mut Frame) -> Result<i64, EvalError> {
        self.tick()?;
        match e {
            Expr::Num(n) => Ok(*n),
            // String literals only appear as external-call arguments; their
            // "value" is a stable hash standing in for the string address.
            Expr::Str(s) => Ok(external_call_result(s, &[])),
            Expr::Var(name) => self.read_var(name, frame),
            Expr::Index(name, idx) => {
                self.read_lvalue(&LValue::Index(name.clone(), idx.clone()), frame)
            }
            Expr::Call(name, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, frame)?);
                }
                self.call_inner(name, &vals)
            }
            Expr::Unary(op, inner) => Ok(eval_unop(*op, self.eval(inner, frame)?)),
            Expr::Binary(op, a, b) => {
                // Short-circuit evaluation for && and ||.
                match op {
                    BinOp::LogAnd => {
                        let av = self.eval(a, frame)?;
                        if av == 0 {
                            return Ok(0);
                        }
                        Ok((self.eval(b, frame)? != 0) as i64)
                    }
                    BinOp::LogOr => {
                        let av = self.eval(a, frame)?;
                        if av != 0 {
                            return Ok(1);
                        }
                        Ok((self.eval(b, frame)? != 0) as i64)
                    }
                    _ => {
                        let av = self.eval(a, frame)?;
                        let bv = self.eval(b, frame)?;
                        Ok(eval_binop(*op, av, bv))
                    }
                }
            }
            Expr::Assign(op, lv, rhs) => {
                let rhs_v = self.eval(rhs, frame)?;
                let new = match op.binop() {
                    None => rhs_v,
                    Some(bop) => {
                        let old = self.read_lvalue(lv, frame)?;
                        eval_binop(bop, old, rhs_v)
                    }
                };
                self.write_lvalue(lv, new, frame)?;
                Ok(new)
            }
            Expr::IncDec(kind, lv) => {
                let old = self.read_lvalue(lv, frame)?;
                let (new, result) = match kind {
                    IncDec::PreInc => (old.wrapping_add(1), old.wrapping_add(1)),
                    IncDec::PreDec => (old.wrapping_sub(1), old.wrapping_sub(1)),
                    IncDec::PostInc => (old.wrapping_add(1), old),
                    IncDec::PostDec => (old.wrapping_sub(1), old),
                };
                self.write_lvalue(lv, new, frame)?;
                Ok(result)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn run(src: &str, func: &str, args: &[i64]) -> i64 {
        let p = parse(src).unwrap();
        Interp::new(&p).call(func, args).unwrap()
    }

    #[test]
    fn arithmetic_and_return() {
        assert_eq!(
            run("int f(int a, int b) { return a * b + 1; }", "f", &[6, 7]),
            43
        );
    }

    #[test]
    fn division_by_zero_is_zero() {
        assert_eq!(run("int f(int a) { return a / 0; }", "f", &[5]), 0);
        assert_eq!(run("int f(int a) { return a % 0; }", "f", &[5]), 5);
    }

    #[test]
    fn branches() {
        let src = "int f(int x) { if (x > 0) { return 1; } else { return 0 - 1; } }";
        assert_eq!(run(src, "f", &[3]), 1);
        assert_eq!(run(src, "f", &[-3]), -1);
    }

    #[test]
    fn loops_accumulate() {
        let src = "int f(int n) { int s = 0; for (int i = 1; i <= n; i++) { s += i; } return s; }";
        assert_eq!(run(src, "f", &[10]), 55);
    }

    #[test]
    fn while_with_break_continue() {
        let src = "int f(int n) { int s = 0; int i = 0; while (1) { i++; \
                   if (i > n) { break; } if (i % 2 == 0) { continue; } s += i; } return s; }";
        assert_eq!(run(src, "f", &[10]), 25); // 1+3+5+7+9
    }

    #[test]
    fn do_while_runs_at_least_once() {
        let src = "int f() { int s = 0; do { s++; } while (0); return s; }";
        assert_eq!(run(src, "f", &[]), 1);
    }

    #[test]
    fn switch_selects_arm_and_default() {
        let src = "int f(int x) { switch (x) { case 1: return 10; case 2: return 20; \
                   default: return 99; } }";
        assert_eq!(run(src, "f", &[1]), 10);
        assert_eq!(run(src, "f", &[2]), 20);
        assert_eq!(run(src, "f", &[7]), 99);
    }

    #[test]
    fn arrays_wrap_indices() {
        let src = "int f(int x) { int a[4]; a[x] = 7; return a[x + 8]; }";
        assert_eq!(run(src, "f", &[2]), 7); // 2 and 10 wrap to the same slot
        assert_eq!(run(src, "f", &[-1]), 7); // -1 wraps to 3
    }

    #[test]
    fn globals_persist_across_calls() {
        let p = parse("int g = 0; int bump() { g += 1; return g; }").unwrap();
        let mut i = Interp::new(&p);
        assert_eq!(i.call("bump", &[]).unwrap(), 1);
        assert_eq!(i.call("bump", &[]).unwrap(), 2);
    }

    #[test]
    fn direct_recursion() {
        let src = "int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }";
        assert_eq!(run(src, "fib", &[10]), 55);
    }

    #[test]
    fn external_calls_are_deterministic() {
        let a = external_call_result("log", &[1, 2]);
        let b = external_call_result("log", &[1, 2]);
        let c = external_call_result("log", &[2, 1]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let src = "int f(int x) { return helper_ext(x); }";
        assert_eq!(
            run(src, "f", &[5]),
            external_call_result("helper_ext", &[5])
        );
    }

    #[test]
    fn short_circuit_skips_side_effects() {
        let src = "int g = 0; int side() { g = 1; return 1; } \
                   int f(int x) { int r = x && side(); return g * 10 + r; }";
        assert_eq!(run(src, "f", &[0]), 0); // side() not evaluated
        assert_eq!(run(src, "f", &[1]), 11);
    }

    #[test]
    fn incdec_all_variants() {
        let src = "int f() { int x = 5; int a = x++; int b = ++x; int c = x--; int d = --x; \
                   return a * 1000 + b * 100 + c * 10 + d; }";
        // a=5 (x=6), b=7 (x=7), c=7 (x=6), d=5 (x=5)
        assert_eq!(run(src, "f", &[]), 5775);
    }

    #[test]
    fn infinite_loop_hits_step_limit() {
        let p = parse("int f() { while (1) { } return 0; }").unwrap();
        let err = Interp::new(&p).call("f", &[]).unwrap_err();
        assert_eq!(err, EvalError::StepLimit);
    }

    #[test]
    fn deep_recursion_hits_depth_limit() {
        let p = parse("int f(int n) { return f(n + 1); }").unwrap();
        let err = Interp::new(&p).call("f", &[0]).unwrap_err();
        assert_eq!(err, EvalError::RecursionLimit);
    }

    #[test]
    fn arity_mismatch_is_reported() {
        let p = parse("int f(int a) { return a; }").unwrap();
        let mut i = Interp::new(&p);
        // Build call through another function to exercise the path.
        assert!(matches!(
            i.call("f", &[1, 2]),
            Err(EvalError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn compound_assignment_on_array() {
        let src = "int f(int x) { int a[2]; a[0] = 3; a[0] *= x; return a[0]; }";
        assert_eq!(run(src, "f", &[4]), 12);
    }

    #[test]
    fn shift_masking() {
        assert_eq!(run("int f(int a) { return a << 65; }", "f", &[1]), 2);
    }
}
