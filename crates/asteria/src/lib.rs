//! **Asteria** — a complete Rust reproduction of *"Asteria: Deep
//! Learning-based AST-Encoding for Cross-platform Binary Code Similarity
//! Detection"* (Yang et al., DSN 2021).
//!
//! This facade crate re-exports the whole system:
//!
//! | module | crate | role |
//! |--------|-------|------|
//! | [`exec`] | `asteria-exec` | deterministic scoped worker pool driving the parallel offline/online phases |
//! | [`obs`] | `asteria-obs` | unified tracing and metrics layer (spans, counters, Prometheus/JSONL sinks) |
//! | [`nn`] | `asteria-nn` | tensors, autograd, layers, optimizers (PyTorch substitute) |
//! | [`lang`] | `asteria-lang` | MiniC frontend + reference interpreter |
//! | [`compiler`] | `asteria-compiler` | four synthetic ISAs, SBF binaries, VM (gcc/buildroot substitute) |
//! | [`decompiler`] | `asteria-decompiler` | disassembly, lifting, structuring (IDA Pro substitute) |
//! | [`bignum`] | `asteria-bignum` | big integers for Diaphora's prime products |
//! | [`core`] | `asteria-core` | the paper's contribution: Tree-LSTM AST encoding + Siamese similarity + calibration |
//! | [`baselines`] | `asteria-baselines` | Gemini (structure2vec over ACFGs) and Diaphora |
//! | [`datasets`] | `asteria-datasets` | seeded corpora, cross-arch pair construction |
//! | [`eval`] | `asteria-eval` | ROC/AUC/Youden metrics, CDFs, timing |
//! | [`vulnsearch`] | `asteria-vulnsearch` | §V firmware vulnerability search |
//! | [`serve`] | `asteria-serve` | online similarity-query server (batching, backpressure, graceful drain) |
//!
//! # Quickstart
//!
//! ```
//! use asteria::core::{extract_function, AsteriaModel, ModelConfig, DEFAULT_INLINE_BETA};
//! use asteria::compiler::{compile_program, Arch};
//!
//! let src = "int checksum(int n) { int h = 17; \
//!            for (int i = 0; i < n % 16; i++) { h = h * 31 + i; } return h; }";
//! let program = asteria::lang::parse(src)?;
//! let model = AsteriaModel::new(ModelConfig::default());
//! let arm = compile_program(&program, Arch::Arm)?;
//! let ppc = compile_program(&program, Arch::Ppc)?;
//! let fa = extract_function(&arm, 0, DEFAULT_INLINE_BETA)?;
//! let fp = extract_function(&ppc, 0, DEFAULT_INLINE_BETA)?;
//! let similarity = model.similarity(&fa.tree, &fp.tree);
//! assert!((0.0..=1.0).contains(&similarity));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corrupt;
pub mod error;

pub use error::Error;

pub use asteria_baselines as baselines;
pub use asteria_bignum as bignum;
pub use asteria_compiler as compiler;
pub use asteria_core as core;
pub use asteria_datasets as datasets;
pub use asteria_decompiler as decompiler;
pub use asteria_eval as eval;
pub use asteria_exec as exec;
pub use asteria_lang as lang;
pub use asteria_nn as nn;
pub use asteria_obs as obs;
pub use asteria_serve as serve;
pub use asteria_vulnsearch as vulnsearch;
