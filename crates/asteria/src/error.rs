//! The unified error type for the consolidated session API.
//!
//! The pipeline's layers each have a precise error enum — a failing
//! query surfaces [`QueryError`], index persistence surfaces
//! [`IndexError`], extraction surfaces [`DecompileError`] — but a caller
//! driving the whole pipeline (the CLI, the serve daemon, an embedding
//! application) wants to `?` through all of them and match one enum at
//! the end. [`Error`] is that enum: every layer error converts `From`
//! into it, and it implements [`std::error::Error`] with the layer error
//! as its `source()`.

use std::fmt;

use asteria_decompiler::DecompileError;
use asteria_vulnsearch::{IndexError, QueryError};

/// Any error the Asteria pipeline can surface, unified for callers that
/// drive multiple layers.
///
/// ```
/// use asteria::Error;
///
/// fn drive() -> Result<(), Error> {
///     // `?` works on Result<_, QueryError>, Result<_, IndexError>,
///     // and Result<_, DecompileError> alike.
///     Ok(())
/// }
/// # drive().unwrap();
/// ```
#[derive(Debug)]
pub enum Error {
    /// A query failed to encode (parse/compile/resolve/extract stages).
    Query(QueryError),
    /// Index persistence failed (ASIX I/O, corruption, checksums).
    Index(IndexError),
    /// Decompilation failed outside the resilient corpus path.
    Decompile(DecompileError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Query(e) => write!(f, "{e}"),
            Error::Index(e) => write!(f, "index: {e}"),
            Error::Decompile(e) => write!(f, "decompile: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Query(e) => Some(e),
            Error::Index(e) => Some(e),
            Error::Decompile(e) => Some(e),
        }
    }
}

impl From<QueryError> for Error {
    fn from(e: QueryError) -> Error {
        Error::Query(e)
    }
}

impl From<IndexError> for Error {
    fn from(e: IndexError) -> Error {
        Error::Index(e)
    }
}

impl From<DecompileError> for Error {
    fn from(e: DecompileError) -> Error {
        Error::Decompile(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asteria_vulnsearch::QueryErrorKind;
    use std::error::Error as _;

    fn query_error() -> QueryError {
        QueryError {
            cve: "CVE-1".into(),
            function: "f".into(),
            kind: QueryErrorKind::MissingFunction,
        }
    }

    #[test]
    fn question_mark_converts_every_layer_error() {
        fn through_query() -> Result<(), Error> {
            Err(query_error())?;
            Ok(())
        }
        fn through_index() -> Result<(), Error> {
            Err(IndexError::BadMagic)?;
            Ok(())
        }
        assert!(matches!(through_query(), Err(Error::Query(_))));
        assert!(matches!(through_index(), Err(Error::Index(_))));
    }

    #[test]
    fn display_and_source_delegate_to_the_layer_error() {
        let e = Error::from(query_error());
        assert!(e.to_string().contains("CVE-1"), "{e}");
        assert!(e.source().is_some());
        let e = Error::from(IndexError::BadMagic);
        assert!(e.to_string().starts_with("index: "), "{e}");
        assert!(e.source().is_some());
    }
}
