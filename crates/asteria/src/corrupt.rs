//! Deterministic binary corruption for fault-injection testing.
//!
//! Real firmware corpora contain truncated sections, flash bit-rot and
//! deliberately obfuscated code; the paper's IDA-based pipeline silently
//! drops what it cannot digest. This module generates *seeded*,
//! reproducible corruptions so the test suite can prove every layer of
//! the extraction pipeline degrades to a typed error — never a panic,
//! hang or unbounded allocation. A failing seed is a one-line repro.
//!
//! The generator is a self-contained SplitMix64 so corruption streams
//! stay identical across platforms and rand versions.

/// A seeded corruption engine. Every method consumes randomness from the
/// same deterministic stream, so a `(seed, call sequence)` pair fully
/// identifies the produced mutant.
#[derive(Debug, Clone)]
pub struct Corruptor {
    state: u64,
}

/// The corruption strategies [`Corruptor::corrupt`] cycles through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mutation {
    /// Flip 1–8 random bits anywhere in the image.
    BitFlips,
    /// Cut the image at a random point.
    Truncate,
    /// Overwrite a random window with random bytes.
    Splice,
    /// Overwrite an aligned 4-byte field with an extreme length-like
    /// value (0, small, huge, `u32::MAX`).
    LengthField,
    /// Scramble bytes near the start, where magic/arch/counts live.
    Header,
}

impl Mutation {
    /// All strategies, in the order [`Corruptor::corrupt`] draws them.
    pub const ALL: [Mutation; 5] = [
        Mutation::BitFlips,
        Mutation::Truncate,
        Mutation::Splice,
        Mutation::LengthField,
        Mutation::Header,
    ];
}

/// The line-protocol corruption strategies [`Corruptor::corrupt_line`]
/// cycles through — aimed at the `asteria serve` JSON wire format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LineMutation {
    /// Replace the whole line with random bytes (worst-case input).
    Garbage,
    /// Apply one of the binary [`Mutation`]s to the UTF-8 bytes.
    ByteNoise,
    /// Cut the line at a random byte.
    Truncate,
    /// Delete one structural JSON character (`{}[]":,`).
    DropStructural,
    /// Overwrite a random byte with a structural JSON character.
    SwapStructural,
    /// Wrap the line in dozens of nested arrays (depth-limit probe).
    DeepNesting,
    /// Splice in a malformed or lone-surrogate escape sequence.
    BadEscape,
}

impl LineMutation {
    /// All strategies, in the order [`Corruptor::corrupt_line`] draws
    /// them.
    pub const ALL: [LineMutation; 7] = [
        LineMutation::Garbage,
        LineMutation::ByteNoise,
        LineMutation::Truncate,
        LineMutation::DropStructural,
        LineMutation::SwapStructural,
        LineMutation::DeepNesting,
        LineMutation::BadEscape,
    ];
}

impl Corruptor {
    /// Creates a corruptor from a seed.
    pub fn new(seed: u64) -> Corruptor {
        Corruptor {
            // Avoid the all-zeros fixed point without losing determinism.
            state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next raw 64-bit draw (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (`0` when `n == 0`).
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        (self.next_u64() % n as u64) as usize
    }

    /// Flips `flips` random bits (at least one when the input is
    /// non-empty).
    pub fn bit_flips(&mut self, bytes: &[u8], flips: usize) -> Vec<u8> {
        let mut out = bytes.to_vec();
        if out.is_empty() {
            return out;
        }
        for _ in 0..flips.max(1) {
            let i = self.below(out.len());
            out[i] ^= 1 << self.below(8);
        }
        out
    }

    /// Cuts the image at a random point (always strictly shorter than a
    /// non-empty input).
    pub fn truncate(&mut self, bytes: &[u8]) -> Vec<u8> {
        bytes[..self.below(bytes.len())].to_vec()
    }

    /// Overwrites a random window (up to `max_len` bytes) with random
    /// bytes.
    pub fn splice(&mut self, bytes: &[u8], max_len: usize) -> Vec<u8> {
        let mut out = bytes.to_vec();
        if out.is_empty() {
            return out;
        }
        let start = self.below(out.len());
        let len = 1 + self.below(max_len.max(1));
        let end = (start + len).min(out.len());
        for b in &mut out[start..end] {
            *b = (self.next_u64() & 0xff) as u8;
        }
        out
    }

    /// Overwrites an aligned 4-byte little-endian field with an extreme
    /// length-like value — the classic lying-length-prefix attack.
    pub fn length_field(&mut self, bytes: &[u8]) -> Vec<u8> {
        let mut out = bytes.to_vec();
        if out.len() < 4 {
            return out;
        }
        let pos = self.below(out.len() - 3);
        let value: u32 = match self.below(4) {
            0 => 0,
            1 => 7,
            2 => 1 << 30,
            _ => u32::MAX,
        };
        out[pos..pos + 4].copy_from_slice(&value.to_le_bytes());
        out
    }

    /// Scrambles bytes within the first 16 — where magic, architecture
    /// and top-level counts live in any sane container format.
    pub fn header(&mut self, bytes: &[u8]) -> Vec<u8> {
        let mut out = bytes.to_vec();
        let span = out.len().min(16);
        if span == 0 {
            return out;
        }
        for _ in 0..1 + self.below(4) {
            let i = self.below(span);
            out[i] = (self.next_u64() & 0xff) as u8;
        }
        out
    }

    /// A stream of `len` uniformly random bytes (no relation to any
    /// valid image — the harshest decoder input).
    pub fn random_stream(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| (self.next_u64() & 0xff) as u8).collect()
    }

    /// Applies one randomly chosen [`LineMutation`] to a line-protocol
    /// request (the `asteria serve` wire format) and reports which.
    ///
    /// The output never contains `\n` or `\r` — a corrupted *line* must
    /// stay one line, otherwise the mutation would silently become two
    /// protocol messages and the request/response accounting in the
    /// fault-injection harness would break.
    pub fn corrupt_line(&mut self, line: &str) -> (LineMutation, Vec<u8>) {
        let m = LineMutation::ALL[self.below(LineMutation::ALL.len())];
        let bytes = line.as_bytes();
        let mut out = match m {
            LineMutation::Garbage => {
                let len = 1 + self.below(64);
                self.random_stream(len)
            }
            LineMutation::ByteNoise => self.corrupt(bytes).1,
            LineMutation::Truncate => self.truncate(bytes),
            LineMutation::DropStructural => {
                let mut v = bytes.to_vec();
                let structural: Vec<usize> = v
                    .iter()
                    .enumerate()
                    .filter(|(_, b)| matches!(b, b'{' | b'}' | b'[' | b']' | b'"' | b':' | b','))
                    .map(|(i, _)| i)
                    .collect();
                if !structural.is_empty() {
                    v.remove(structural[self.below(structural.len())]);
                }
                v
            }
            LineMutation::SwapStructural => {
                let mut v = bytes.to_vec();
                if !v.is_empty() {
                    const PUNCT: [u8; 7] = [b'{', b'}', b'[', b']', b'"', b':', b','];
                    let i = self.below(v.len());
                    v[i] = PUNCT[self.below(PUNCT.len())];
                }
                v
            }
            LineMutation::DeepNesting => {
                let depth = 16 + self.below(128);
                let mut v = Vec::with_capacity(depth * 2 + bytes.len());
                v.extend(std::iter::repeat_n(b'[', depth));
                v.extend_from_slice(bytes);
                v.extend(std::iter::repeat_n(b']', depth));
                v
            }
            LineMutation::BadEscape => {
                let mut v = bytes.to_vec();
                let i = self.below(v.len() + 1);
                let bad: &[u8] = match self.below(3) {
                    0 => br"\u12",
                    1 => br"\q",
                    _ => br"\ud800",
                };
                v.splice(i..i, bad.iter().copied());
                v
            }
        };
        for b in &mut out {
            if *b == b'\n' || *b == b'\r' {
                *b = b' ';
            }
        }
        (m, out)
    }

    /// Applies one randomly chosen [`Mutation`] and reports which.
    pub fn corrupt(&mut self, bytes: &[u8]) -> (Mutation, Vec<u8>) {
        let m = Mutation::ALL[self.below(Mutation::ALL.len())];
        let out = match m {
            Mutation::BitFlips => {
                let flips = 1 + self.below(8);
                self.bit_flips(bytes, flips)
            }
            Mutation::Truncate => self.truncate(bytes),
            Mutation::Splice => self.splice(bytes, 16),
            Mutation::LengthField => self.length_field(bytes),
            Mutation::Header => self.header(bytes),
        };
        (m, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &[u8] = b"SBF1\x02the quick brown fox jumps over the lazy dog";

    #[test]
    fn same_seed_same_stream() {
        let mut a = Corruptor::new(42);
        let mut b = Corruptor::new(42);
        for _ in 0..100 {
            assert_eq!(a.corrupt(SAMPLE), b.corrupt(SAMPLE));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Corruptor::new(1);
        let mut b = Corruptor::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn bit_flips_change_nonempty_input() {
        let mut c = Corruptor::new(7);
        for _ in 0..50 {
            assert_ne!(c.bit_flips(SAMPLE, 1), SAMPLE);
        }
    }

    #[test]
    fn truncate_shortens() {
        let mut c = Corruptor::new(9);
        for _ in 0..50 {
            assert!(c.truncate(SAMPLE).len() < SAMPLE.len());
        }
    }

    #[test]
    fn empty_input_is_safe_everywhere() {
        let mut c = Corruptor::new(3);
        assert!(c.bit_flips(&[], 4).is_empty());
        assert!(c.truncate(&[]).is_empty());
        assert!(c.splice(&[], 8).is_empty());
        assert!(c.length_field(&[]).is_empty());
        assert!(c.header(&[]).is_empty());
        let (_, out) = c.corrupt(&[]);
        assert!(out.is_empty());
    }

    #[test]
    fn all_mutations_eventually_drawn() {
        let mut c = Corruptor::new(11);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(c.corrupt(SAMPLE).0);
        }
        assert_eq!(seen.len(), Mutation::ALL.len());
    }

    #[test]
    fn line_corruptions_stay_single_line_and_cover_every_strategy() {
        let request = r#"{"id":7,"op":"query","function":"f","source":"int f(int a){return a;}"}"#;
        let mut c = Corruptor::new(23);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..400 {
            let (m, out) = c.corrupt_line(request);
            seen.insert(m);
            assert!(
                !out.contains(&b'\n') && !out.contains(&b'\r'),
                "{m:?} produced a line break"
            );
        }
        assert_eq!(seen.len(), LineMutation::ALL.len());
    }

    #[test]
    fn line_corruption_is_deterministic_per_seed() {
        let request = r#"{"id":1,"op":"ping"}"#;
        let mut a = Corruptor::new(99);
        let mut b = Corruptor::new(99);
        for _ in 0..100 {
            assert_eq!(a.corrupt_line(request), b.corrupt_line(request));
        }
    }
}
