//! Named trainable parameters with gradient accumulators.

use std::fmt;
use std::io::{self, Read, Write};

use crate::tensor::Tensor;

/// Identifier of a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

struct ParamEntry {
    name: String,
    value: Tensor,
    grad: Tensor,
}

/// Container of all trainable parameters of a model.
///
/// The store owns both the parameter values and their gradient accumulators.
/// A [`crate::graph::Graph`] reads values during the forward pass and
/// accumulates gradients into the store during [`crate::graph::Graph::backward`].
///
/// # Examples
///
/// ```
/// use asteria_nn::{ParamStore, Tensor};
///
/// let mut store = ParamStore::new();
/// let w = store.add("w", Tensor::ones(2, 2));
/// assert_eq!(store.value(w).shape(), (2, 2));
/// ```
#[derive(Default)]
pub struct ParamStore {
    entries: Vec<ParamEntry>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ParamStore {
            entries: Vec::new(),
        }
    }

    /// Registers a parameter and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a parameter with the same name already exists.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let name = name.into();
        assert!(
            self.entries.iter().all(|e| e.name != name),
            "duplicate parameter name: {name}"
        );
        let grad = Tensor::zeros(value.rows(), value.cols());
        self.entries.push(ParamEntry { name, value, grad });
        ParamId(self.entries.len() - 1)
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of scalar weights across all parameters.
    pub fn num_weights(&self) -> usize {
        self.entries.iter().map(|e| e.value.len()).sum()
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].value
    }

    /// Mutable value of a parameter.
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.entries[id.0].value
    }

    /// Accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].grad
    }

    /// Mutable gradient accumulator of a parameter.
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.entries[id.0].grad
    }

    /// Name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.entries[id.0].name
    }

    /// Looks up a parameter id by name.
    pub fn find(&self, name: &str) -> Option<ParamId> {
        self.entries
            .iter()
            .position(|e| e.name == name)
            .map(ParamId)
    }

    /// Ids of all parameters, in registration order.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.entries.len()).map(ParamId)
    }

    /// Resets every gradient accumulator to zero.
    pub fn zero_grads(&mut self) {
        for e in &mut self.entries {
            e.grad.fill_zero();
        }
    }

    /// Global L2 norm of all gradients; useful for clipping and diagnostics.
    pub fn grad_norm(&self) -> f32 {
        self.entries
            .iter()
            .map(|e| e.grad.as_slice().iter().map(|v| v * v).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// Scales all gradients so the global norm is at most `max_norm`.
    pub fn clip_grad_norm(&mut self, max_norm: f32) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for e in &mut self.entries {
                for v in e.grad.as_mut_slice() {
                    *v *= scale;
                }
            }
        }
    }

    /// Serializes all parameter values to a writer.
    ///
    /// The format is a simple little-endian binary layout: a magic tag,
    /// the parameter count, then `(name, rows, cols, data)` records.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the writer.
    pub fn save<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(b"ASNN")?;
        w.write_all(&(self.entries.len() as u32).to_le_bytes())?;
        for e in &self.entries {
            let name = e.name.as_bytes();
            w.write_all(&(name.len() as u32).to_le_bytes())?;
            w.write_all(name)?;
            w.write_all(&(e.value.rows() as u32).to_le_bytes())?;
            w.write_all(&(e.value.cols() as u32).to_le_bytes())?;
            for v in e.value.as_slice() {
                w.write_all(&v.to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Loads parameter values previously written by [`ParamStore::save`]
    /// into this store, matching parameters by name.
    ///
    /// Header fields are untrusted: the name is resolved and its
    /// registered shape checked *before* any data buffer is allocated,
    /// and the element count is capped, so a corrupt or adversarial
    /// stream cannot trigger a multi-GiB allocation (mirroring the
    /// allocation caps in the SBF loader).
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` if the stream is malformed, names are unknown,
    /// or shapes do not match the registered parameters.
    pub fn load<R: Read>(&mut self, mut r: R) -> io::Result<()> {
        /// Hard ceiling on elements per parameter: far above any model
        /// this workspace builds, far below an OOM.
        const MAX_PARAM_ELEMS: usize = 1 << 26;
        fn bad(msg: &str) -> io::Error {
            io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
        }
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != b"ASNN" {
            return Err(bad("bad magic"));
        }
        let mut u32buf = [0u8; 4];
        r.read_exact(&mut u32buf)?;
        let count = u32::from_le_bytes(u32buf) as usize;
        for _ in 0..count {
            r.read_exact(&mut u32buf)?;
            let name_len = u32::from_le_bytes(u32buf) as usize;
            if name_len > 1 << 20 {
                return Err(bad("unreasonable name length"));
            }
            let mut name = vec![0u8; name_len];
            r.read_exact(&mut name)?;
            let name = String::from_utf8(name).map_err(|_| bad("name not utf-8"))?;
            r.read_exact(&mut u32buf)?;
            let rows = u32::from_le_bytes(u32buf) as usize;
            r.read_exact(&mut u32buf)?;
            let cols = u32::from_le_bytes(u32buf) as usize;
            let id = self
                .find(&name)
                .ok_or_else(|| bad(&format!("unknown parameter {name}")))?;
            if self.value(id).shape() != (rows, cols) {
                return Err(bad(&format!("shape mismatch for {name}")));
            }
            let elems = rows
                .checked_mul(cols)
                .filter(|&n| n <= MAX_PARAM_ELEMS)
                .ok_or_else(|| bad(&format!("parameter {name} too large")))?;
            let mut data = vec![0.0f32; elems];
            let mut f32buf = [0u8; 4];
            for v in &mut data {
                r.read_exact(&mut f32buf)?;
                *v = f32::from_le_bytes(f32buf);
            }
            *self.value_mut(id) = Tensor::from_vec(rows, cols, data);
        }
        Ok(())
    }

    /// Content digest of every parameter (names, shapes, exact weight
    /// bits) — FNV-1a over the same layout [`ParamStore::save`] writes.
    ///
    /// Two stores digest equal iff they would serialize identically, so
    /// the digest is the cache-invalidation key for anything derived
    /// from the weights (e.g. a persistent embedding index): one SGD
    /// step, one renamed parameter, or one reshaped tensor changes it.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.write_usize(self.entries.len());
        for e in &self.entries {
            h.write(e.name.as_bytes());
            h.write_usize(e.value.rows());
            h.write_usize(e.value.cols());
            for v in e.value.as_slice() {
                h.write(&v.to_bits().to_le_bytes());
            }
        }
        h.finish()
    }
}

/// Minimal FNV-1a 64 hasher for content digests (no external deps; the
/// std `DefaultHasher` is not guaranteed stable across releases, and the
/// digest here is persisted on disk).
pub struct Fnv(u64);

impl Fnv {
    /// Creates a hasher at the FNV-1a offset basis.
    pub fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Feeds a usize as 8 little-endian bytes (stable across platforms).
    pub fn write_usize(&mut self, v: usize) {
        self.write(&(v as u64).to_le_bytes());
    }

    /// Feeds a u64 as little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Self {
        Fnv::new()
    }
}

impl fmt::Debug for ParamStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ParamStore({} params, {} weights)",
            self.len(),
            self.num_weights()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_find_and_value() {
        let mut s = ParamStore::new();
        let a = s.add("a", Tensor::ones(2, 3));
        let b = s.add("b", Tensor::zeros(1, 1));
        assert_eq!(s.find("a"), Some(a));
        assert_eq!(s.find("b"), Some(b));
        assert_eq!(s.find("c"), None);
        assert_eq!(s.num_weights(), 7);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_names_rejected() {
        let mut s = ParamStore::new();
        s.add("w", Tensor::ones(1, 1));
        s.add("w", Tensor::ones(1, 1));
    }

    #[test]
    fn zero_grads_clears() {
        let mut s = ParamStore::new();
        let a = s.add("a", Tensor::ones(2, 2));
        s.grad_mut(a).add_assign(&Tensor::ones(2, 2));
        assert_eq!(s.grad(a).as_slice(), &[1.0; 4]);
        s.zero_grads();
        assert_eq!(s.grad(a).as_slice(), &[0.0; 4]);
    }

    #[test]
    fn clip_grad_norm_scales() {
        let mut s = ParamStore::new();
        let a = s.add("a", Tensor::ones(1, 2));
        *s.grad_mut(a) = Tensor::from_rows(&[&[3.0, 4.0]]);
        s.clip_grad_norm(1.0);
        assert!((s.grad_norm() - 1.0).abs() < 1e-6);
        // Direction preserved.
        let g = s.grad(a).as_slice();
        assert!((g[0] / g[1] - 0.75).abs() < 1e-6);
    }

    #[test]
    fn save_load_roundtrip() {
        let mut s = ParamStore::new();
        let a = s.add("alpha", Tensor::from_rows(&[&[1.5, -2.5]]));
        let b = s.add("beta", Tensor::full(2, 2, 0.25));
        let mut buf = Vec::new();
        s.save(&mut buf).unwrap();

        let mut s2 = ParamStore::new();
        let a2 = s2.add("alpha", Tensor::zeros(1, 2));
        let b2 = s2.add("beta", Tensor::zeros(2, 2));
        s2.load(buf.as_slice()).unwrap();
        assert_eq!(s2.value(a2), s.value(a));
        assert_eq!(s2.value(b2), s.value(b));
    }

    #[test]
    fn load_rejects_shape_mismatch() {
        let mut s = ParamStore::new();
        s.add("w", Tensor::ones(2, 2));
        let mut buf = Vec::new();
        s.save(&mut buf).unwrap();

        let mut s2 = ParamStore::new();
        s2.add("w", Tensor::ones(3, 3));
        assert!(s2.load(buf.as_slice()).is_err());
    }

    #[test]
    fn load_rejects_huge_shape_before_allocating() {
        // A lying header claiming a ~16-GiB tensor for a registered 1×1
        // parameter must be rejected up front — shape is validated
        // against the registered parameter before any data allocation.
        let mut s = ParamStore::new();
        s.add("w", Tensor::ones(1, 1));
        let mut buf = Vec::new();
        buf.extend_from_slice(b"ASNN");
        buf.extend_from_slice(&1u32.to_le_bytes()); // one record
        buf.extend_from_slice(&1u32.to_le_bytes()); // name len
        buf.extend_from_slice(b"w");
        buf.extend_from_slice(&0x4000_0000u32.to_le_bytes()); // rows
        buf.extend_from_slice(&0x4000_0000u32.to_le_bytes()); // cols
        let err = s.load(buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("shape mismatch"), "{err}");
        // Untouched on failure.
        assert_eq!(s.value(s.find("w").unwrap()).as_slice(), &[1.0]);
    }

    #[test]
    fn load_rejects_unknown_name_before_allocating() {
        let mut s = ParamStore::new();
        s.add("w", Tensor::ones(1, 1));
        let mut buf = Vec::new();
        buf.extend_from_slice(b"ASNN");
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&6u32.to_le_bytes());
        buf.extend_from_slice(b"rogue!");
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = s.load(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("unknown parameter"), "{err}");
    }

    #[test]
    fn digest_is_stable_and_weight_sensitive() {
        let mut s = ParamStore::new();
        let a = s.add("a", Tensor::from_rows(&[&[1.0, 2.0]]));
        let d0 = s.digest();
        assert_eq!(d0, s.digest(), "digest must be deterministic");
        s.value_mut(a).as_mut_slice()[0] = 1.0 + 1e-7;
        assert_ne!(d0, s.digest(), "one-ulp weight change must show");

        // Same values under a different name → different digest.
        let mut t = ParamStore::new();
        t.add("b", Tensor::from_rows(&[&[1.0, 2.0]]));
        assert_ne!(s.digest(), t.digest());
    }

    #[test]
    fn digest_matches_across_save_load() {
        let mut s = ParamStore::new();
        s.add("w", Tensor::full(3, 2, 0.5));
        let mut buf = Vec::new();
        s.save(&mut buf).unwrap();
        let mut s2 = ParamStore::new();
        s2.add("w", Tensor::zeros(3, 2));
        assert_ne!(s.digest(), s2.digest());
        s2.load(buf.as_slice()).unwrap();
        assert_eq!(s.digest(), s2.digest());
    }

    #[test]
    fn load_rejects_bad_magic() {
        let mut s = ParamStore::new();
        s.add("w", Tensor::ones(1, 1));
        assert!(s.load(&b"XXXX\x00\x00\x00\x00"[..]).is_err());
    }
}
