//! Finite-difference gradient checking.
//!
//! Used by the test suites of this crate and of `asteria-core` to validate
//! every backward implementation against a central-difference estimate.

use crate::graph::{Graph, NodeId};
use crate::params::ParamStore;

/// Verifies analytic gradients against central finite differences.
///
/// `build` must construct a fresh forward pass on the given graph and
/// return the scalar loss node. It is called repeatedly with perturbed
/// parameter values.
///
/// # Panics
///
/// Panics (failing the test) if any parameter gradient deviates from the
/// numeric estimate by more than `tol` in relative terms (with an absolute
/// floor of `tol * 1e-1` for near-zero gradients).
pub fn check_gradients<F>(store: &mut ParamStore, h: f32, tol: f32, build: F)
where
    F: Fn(&ParamStore, &mut Graph) -> NodeId,
{
    // Analytic gradients.
    store.zero_grads();
    let mut g = Graph::new();
    let loss = build(store, &mut g);
    g.backward(loss, store);

    let ids: Vec<_> = store.ids().collect();
    for id in ids {
        let (rows, cols) = store.value(id).shape();
        for r in 0..rows {
            for c in 0..cols {
                let orig = store.value(id)[(r, c)];

                store.value_mut(id)[(r, c)] = orig + h;
                let mut gp = Graph::new();
                let lp = build(store, &mut gp);
                let fp = gp.value(lp).item();

                store.value_mut(id)[(r, c)] = orig - h;
                let mut gm = Graph::new();
                let lm = build(store, &mut gm);
                let fm = gm.value(lm).item();

                store.value_mut(id)[(r, c)] = orig;

                let numeric = (fp - fm) / (2.0 * h);
                let analytic = store.grad(id)[(r, c)];
                let denom = numeric.abs().max(analytic.abs()).max(0.1);
                let rel = (numeric - analytic).abs() / denom;
                assert!(
                    rel <= tol,
                    "gradient mismatch for {}[{r},{c}]: analytic={analytic} numeric={numeric} rel={rel}",
                    store.name(id)
                );
            }
        }
    }
}
