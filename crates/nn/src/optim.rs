//! Gradient-descent optimizers: SGD, AdaGrad (the paper's choice), Adam.

use crate::params::ParamStore;
use crate::tensor::Tensor;

/// A first-order optimizer that consumes accumulated gradients from a
/// [`ParamStore`] and updates the parameter values in place.
///
/// Implementations do **not** clear gradients; call
/// [`ParamStore::zero_grads`] after each step.
pub trait Optimizer {
    /// Applies one update using the gradients currently in `store`.
    fn step(&mut self, store: &mut ParamStore);

    /// The configured learning rate.
    fn learning_rate(&self) -> f32;
}

/// Plain stochastic gradient descent: `w ← w − lr · g`.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// Creates an SGD optimizer with the given learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive and finite.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        Sgd { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore) {
        for id in store.ids().collect::<Vec<_>>() {
            let g = store.grad(id).clone();
            store.value_mut(id).add_scaled(&g, -self.lr);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

/// AdaGrad, the optimizer the paper uses for Tree-LSTM training (§IV-A):
/// `G ← G + g²;  w ← w − lr · g / (√G + ε)`.
#[derive(Debug)]
pub struct AdaGrad {
    lr: f32,
    eps: f32,
    accum: Vec<Tensor>,
}

impl AdaGrad {
    /// Creates an AdaGrad optimizer with accumulator ε of `1e-8`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive and finite.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        AdaGrad {
            lr,
            eps: 1e-8,
            accum: Vec::new(),
        }
    }

    fn ensure_state(&mut self, store: &ParamStore) {
        if self.accum.len() != store.len() {
            self.accum = store
                .ids()
                .map(|id| {
                    let (r, c) = store.value(id).shape();
                    Tensor::zeros(r, c)
                })
                .collect();
        }
    }
}

impl Optimizer for AdaGrad {
    fn step(&mut self, store: &mut ParamStore) {
        self.ensure_state(store);
        for (i, id) in store.ids().collect::<Vec<_>>().into_iter().enumerate() {
            let g = store.grad(id).clone();
            let acc = &mut self.accum[i];
            for (a, gi) in acc.as_mut_slice().iter_mut().zip(g.as_slice()) {
                *a += gi * gi;
            }
            let value = store.value_mut(id);
            for ((w, gi), a) in value
                .as_mut_slice()
                .iter_mut()
                .zip(g.as_slice())
                .zip(acc.as_slice())
            {
                *w -= self.lr * gi / (a.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

/// Adam with the standard default moment coefficients (β₁=0.9, β₂=0.999).
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: i32,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive and finite.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    fn ensure_state(&mut self, store: &ParamStore) {
        if self.m.len() != store.len() {
            let zeros = |store: &ParamStore| {
                store
                    .ids()
                    .map(|id| {
                        let (r, c) = store.value(id).shape();
                        Tensor::zeros(r, c)
                    })
                    .collect::<Vec<_>>()
            };
            self.m = zeros(store);
            self.v = zeros(store);
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore) {
        self.ensure_state(store);
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);
        for (i, id) in store.ids().collect::<Vec<_>>().into_iter().enumerate() {
            let g = store.grad(id).clone();
            let (m, v) = (&mut self.m[i], &mut self.v[i]);
            for ((mi, vi), gi) in m
                .as_mut_slice()
                .iter_mut()
                .zip(v.as_mut_slice())
                .zip(g.as_slice())
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
            }
            let value = store.value_mut(id);
            for ((w, mi), vi) in value
                .as_mut_slice()
                .iter_mut()
                .zip(m.as_slice())
                .zip(v.as_slice())
            {
                let mhat = mi / bc1;
                let vhat = vi / bc2;
                *w -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// Minimizes (w − 3)² with each optimizer and checks convergence.
    fn converges(opt: &mut dyn Optimizer, iters: usize) -> f32 {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::scalar(0.0));
        for _ in 0..iters {
            store.zero_grads();
            let mut g = Graph::new();
            let wn = g.param(&store, w);
            let loss = g.mse_loss(wn, Tensor::scalar(3.0));
            g.backward(loss, &mut store);
            opt.step(&mut store);
        }
        store.value(w).item()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let w = converges(&mut Sgd::new(0.1), 200);
        assert!((w - 3.0).abs() < 1e-3, "w={w}");
    }

    #[test]
    fn adagrad_converges_on_quadratic() {
        let w = converges(&mut AdaGrad::new(0.5), 800);
        assert!((w - 3.0).abs() < 0.05, "w={w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let w = converges(&mut Adam::new(0.05), 600);
        assert!((w - 3.0).abs() < 1e-2, "w={w}");
    }

    #[test]
    fn adagrad_step_shrinks_over_time() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::scalar(0.0));
        let mut opt = AdaGrad::new(1.0);
        let mut deltas = Vec::new();
        for _ in 0..3 {
            store.zero_grads();
            store.grad_mut(w).add_assign(&Tensor::scalar(1.0));
            let before = store.value(w).item();
            opt.step(&mut store);
            deltas.push((store.value(w).item() - before).abs());
        }
        assert!(deltas[0] > deltas[1] && deltas[1] > deltas[2], "{deltas:?}");
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn rejects_nonpositive_lr() {
        let _ = Sgd::new(0.0);
    }
}
