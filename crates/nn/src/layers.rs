//! Reusable layers: embeddings and affine (linear) transforms.

use rand::Rng;

use crate::graph::{Graph, NodeId};
use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;

/// A learned lookup table mapping token ids to dense vectors, equivalent to
/// PyTorch's `nn.Embedding` as used by the paper (§IV-A).
///
/// # Examples
///
/// ```
/// use asteria_nn::{Embedding, Graph, ParamStore};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut store = ParamStore::new();
/// let mut rng = StdRng::seed_from_u64(0);
/// let emb = Embedding::new(&mut store, "emb", 44, 16, &mut rng);
/// let mut g = Graph::new();
/// let v = emb.lookup(&mut g, &store, 10);
/// assert_eq!(g.value(v).shape(), (16, 1));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Embedding {
    weight: ParamId,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// Registers a `(vocab, dim)` embedding table initialized uniformly in
    /// `[-0.1, 0.1]`.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        vocab: usize,
        dim: usize,
        rng: &mut R,
    ) -> Self {
        let weight = store.add(name, Tensor::uniform(vocab, dim, 0.1, rng));
        Embedding { weight, vocab, dim }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Underlying parameter id.
    pub fn weight(&self) -> ParamId {
        self.weight
    }

    /// Looks up token `index`, returning a `(dim, 1)` node.
    ///
    /// # Panics
    ///
    /// Panics if `index >= vocab`.
    pub fn lookup(&self, g: &mut Graph, store: &ParamStore, index: usize) -> NodeId {
        assert!(
            index < self.vocab,
            "embedding index {index} out of range {}",
            self.vocab
        );
        g.embed_row(store, self.weight, index)
    }
}

/// An affine transform `y = Wx + b`.
#[derive(Debug, Clone, Copy)]
pub struct Linear {
    weight: ParamId,
    bias: Option<ParamId>,
    inputs: usize,
    outputs: usize,
}

impl Linear {
    /// Registers a `(outputs, inputs)` Xavier-initialized weight matrix and
    /// a zero bias vector.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        inputs: usize,
        outputs: usize,
        rng: &mut R,
    ) -> Self {
        let weight = store.add(format!("{name}.w"), Tensor::xavier(outputs, inputs, rng));
        let bias = store.add(format!("{name}.b"), Tensor::zeros(outputs, 1));
        Linear {
            weight,
            bias: Some(bias),
            inputs,
            outputs,
        }
    }

    /// Registers a bias-free linear transform.
    pub fn new_no_bias<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        inputs: usize,
        outputs: usize,
        rng: &mut R,
    ) -> Self {
        let weight = store.add(format!("{name}.w"), Tensor::xavier(outputs, inputs, rng));
        Linear {
            weight,
            bias: None,
            inputs,
            outputs,
        }
    }

    /// Input dimension.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Output dimension.
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// Weight parameter id.
    pub fn weight(&self) -> ParamId {
        self.weight
    }

    /// Applies the transform to a `(inputs, 1)` node.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: NodeId) -> NodeId {
        let w = g.param(store, self.weight);
        let wx = g.matvec(w, x);
        match self.bias {
            Some(b) => {
                let bn = g.param(store, b);
                g.add(wx, bn)
            }
            None => wx,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn embedding_lookup_returns_rows() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let emb = Embedding::new(&mut store, "e", 10, 4, &mut rng);
        let mut g = Graph::new();
        let v = emb.lookup(&mut g, &store, 3);
        assert_eq!(g.value(v).shape(), (4, 1));
        assert_eq!(g.value(v), &store.value(emb.weight()).row_vector(3));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn embedding_rejects_out_of_range() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let emb = Embedding::new(&mut store, "e", 10, 4, &mut rng);
        let mut g = Graph::new();
        emb.lookup(&mut g, &store, 10);
    }

    #[test]
    fn linear_applies_affine_transform() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let lin = Linear::new(&mut store, "l", 3, 2, &mut rng);
        // Overwrite with known values.
        *store.value_mut(lin.weight()) = Tensor::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 1.0, 1.0]]);
        let b = store.find("l.b").unwrap();
        *store.value_mut(b) = Tensor::column(&[10.0, 20.0]);
        let mut g = Graph::new();
        let x = g.input(Tensor::column(&[1.0, 2.0, 3.0]));
        let y = lin.forward(&mut g, &store, x);
        assert_eq!(g.value(y).as_slice(), &[11.0, 25.0]);
    }

    #[test]
    fn linear_no_bias_has_single_param() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let _ = Linear::new_no_bias(&mut store, "l", 3, 2, &mut rng);
        assert_eq!(store.len(), 1);
    }
}
