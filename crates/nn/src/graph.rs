//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Graph`] records every operation of a forward pass as a node on a
//! tape. Calling [`Graph::backward`] replays the tape in reverse, applying
//! each operation's vector–Jacobian product and accumulating parameter
//! gradients into a [`ParamStore`].
//!
//! The tape is rebuilt for every example, which is exactly what a dynamic
//! network such as a Tree-LSTM needs: the structure of the computation
//! follows the structure of the input tree.

use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;

/// Identifier of a value node on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

/// Numerical floor used when clamping probabilities inside losses.
const EPS: f32 = 1e-7;

enum Op {
    /// Constant input; no gradient flows out of the tape here.
    Input,
    /// Full parameter tensor.
    Param(ParamId),
    /// Single row of a parameter matrix, viewed as a column vector
    /// (embedding lookup).
    EmbedRow(ParamId, usize),
    /// Matrix–vector product `a * b` (`a` matrix node, `b` column vector).
    MatVec(NodeId, NodeId),
    Add(NodeId, NodeId),
    Sub(NodeId, NodeId),
    Hadamard(NodeId, NodeId),
    ScalarMul(NodeId, f32),
    Sigmoid(NodeId),
    Tanh(NodeId),
    Relu(NodeId),
    Abs(NodeId),
    Concat(NodeId, NodeId),
    Softmax(NodeId),
    Sum(Vec<NodeId>),
    Dot(NodeId, NodeId),
    Cosine(NodeId, NodeId),
    BceLoss(NodeId, Tensor),
    MseLoss(NodeId, Tensor),
}

struct Node {
    value: Tensor,
    op: Op,
}

/// A single forward pass recorded as a differentiable tape.
///
/// # Examples
///
/// ```
/// use asteria_nn::{Graph, ParamStore, Tensor};
///
/// let mut store = ParamStore::new();
/// let w = store.add("w", Tensor::from_rows(&[&[1.0, 2.0]]));
/// let mut g = Graph::new();
/// let wn = g.param(&store, w);
/// let x = g.input(Tensor::column(&[3.0, 4.0]));
/// let y = g.matvec(wn, x);
/// assert_eq!(g.value(y).item(), 11.0);
/// ```
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Graph { nodes: Vec::new() }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no operations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Value produced by a node during the forward pass.
    pub fn value(&self, id: NodeId) -> &Tensor {
        &self.nodes[id.0].value
    }

    fn push(&mut self, value: Tensor, op: Op) -> NodeId {
        debug_assert!(value.is_finite(), "non-finite value on tape");
        self.nodes.push(Node { value, op });
        NodeId(self.nodes.len() - 1)
    }

    /// Records a constant input tensor.
    pub fn input(&mut self, t: Tensor) -> NodeId {
        self.push(t, Op::Input)
    }

    /// Records a full parameter tensor read.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> NodeId {
        self.push(store.value(id).clone(), Op::Param(id))
    }

    /// Records an embedding lookup: row `row` of parameter `id`, returned
    /// as a column vector.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range for the parameter matrix.
    pub fn embed_row(&mut self, store: &ParamStore, id: ParamId, row: usize) -> NodeId {
        let v = store.value(id).row_vector(row);
        self.push(v, Op::EmbedRow(id, row))
    }

    /// Matrix–vector product.
    pub fn matvec(&mut self, m: NodeId, x: NodeId) -> NodeId {
        let v = self.nodes[m.0].value.matvec(&self.nodes[x.0].value);
        self.push(v, Op::MatVec(m, x))
    }

    /// Element-wise addition.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a.0]
            .value
            .zip_map(&self.nodes[b.0].value, |x, y| x + y);
        self.push(v, Op::Add(a, b))
    }

    /// Element-wise sum of three nodes.
    pub fn add3(&mut self, a: NodeId, b: NodeId, c: NodeId) -> NodeId {
        let ab = self.add(a, b);
        self.add(ab, c)
    }

    /// Element-wise subtraction `a - b`.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a.0]
            .value
            .zip_map(&self.nodes[b.0].value, |x, y| x - y);
        self.push(v, Op::Sub(a, b))
    }

    /// Hadamard (element-wise) product.
    pub fn hadamard(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a.0]
            .value
            .zip_map(&self.nodes[b.0].value, |x, y| x * y);
        self.push(v, Op::Hadamard(a, b))
    }

    /// Multiplication by a compile-time constant.
    pub fn scalar_mul(&mut self, a: NodeId, c: f32) -> NodeId {
        let v = self.nodes[a.0].value.map(|x| c * x);
        self.push(v, Op::ScalarMul(a, c))
    }

    /// Element-wise logistic sigmoid.
    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(v, Op::Sigmoid(a))
    }

    /// Element-wise hyperbolic tangent.
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.map(f32::tanh);
        self.push(v, Op::Tanh(a))
    }

    /// Element-wise rectified linear unit.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.map(|x| x.max(0.0));
        self.push(v, Op::Relu(a))
    }

    /// Element-wise absolute value (subgradient 0 at the origin).
    pub fn abs(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.map(f32::abs);
        self.push(v, Op::Abs(a))
    }

    /// Concatenation of two column vectors.
    ///
    /// # Panics
    ///
    /// Panics if either node is not a column vector.
    pub fn concat(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (av, bv) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(av.cols(), 1, "concat requires column vectors");
        assert_eq!(bv.cols(), 1, "concat requires column vectors");
        let mut data = Vec::with_capacity(av.len() + bv.len());
        data.extend_from_slice(av.as_slice());
        data.extend_from_slice(bv.as_slice());
        let v = Tensor::column(&data);
        self.push(v, Op::Concat(a, b))
    }

    /// Numerically stable softmax over a column vector.
    pub fn softmax(&mut self, a: NodeId) -> NodeId {
        let x = &self.nodes[a.0].value;
        assert_eq!(x.cols(), 1, "softmax requires a column vector");
        let max = x
            .as_slice()
            .iter()
            .cloned()
            .fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = x.as_slice().iter().map(|v| (v - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        let v = Tensor::column(&exps.iter().map(|e| e / sum).collect::<Vec<_>>());
        self.push(v, Op::Softmax(a))
    }

    /// Element-wise sum of an arbitrary number of equal-shape nodes.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn sum(&mut self, items: &[NodeId]) -> NodeId {
        assert!(!items.is_empty(), "sum of zero nodes");
        let mut v = self.nodes[items[0].0].value.clone();
        for id in &items[1..] {
            v.add_assign(&self.nodes[id.0].value);
        }
        self.push(v, Op::Sum(items.to_vec()))
    }

    /// Dot product of two equal-shape nodes, producing a `1x1` node.
    pub fn dot(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = Tensor::scalar(self.nodes[a.0].value.dot(&self.nodes[b.0].value));
        self.push(v, Op::Dot(a, b))
    }

    /// Cosine similarity of two vectors, producing a `1x1` node.
    ///
    /// Both inputs must be nonzero; a tiny epsilon guards the norms.
    pub fn cosine(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (av, bv) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        let denom = (av.norm() * bv.norm()).max(EPS);
        let v = Tensor::scalar(av.dot(bv) / denom);
        self.push(v, Op::Cosine(a, b))
    }

    /// Mean binary cross entropy between predicted probabilities and a
    /// target tensor of the same shape, producing a `1x1` loss node.
    ///
    /// Predictions are clamped away from 0 and 1 for numerical stability.
    pub fn bce_loss(&mut self, pred: NodeId, target: Tensor) -> NodeId {
        let p = &self.nodes[pred.0].value;
        assert_eq!(p.shape(), target.shape(), "bce target shape mismatch");
        let n = p.len() as f32;
        let mut loss = 0.0;
        for (pi, ti) in p.as_slice().iter().zip(target.as_slice()) {
            let pc = pi.clamp(EPS, 1.0 - EPS);
            loss -= ti * pc.ln() + (1.0 - ti) * (1.0 - pc).ln();
        }
        let v = Tensor::scalar(loss / n);
        self.push(v, Op::BceLoss(pred, target))
    }

    /// Mean squared error between a prediction and a target tensor of the
    /// same shape, producing a `1x1` loss node.
    pub fn mse_loss(&mut self, pred: NodeId, target: Tensor) -> NodeId {
        let p = &self.nodes[pred.0].value;
        assert_eq!(p.shape(), target.shape(), "mse target shape mismatch");
        let n = p.len() as f32;
        let loss: f32 = p
            .as_slice()
            .iter()
            .zip(target.as_slice())
            .map(|(pi, ti)| (pi - ti) * (pi - ti))
            .sum();
        let v = Tensor::scalar(loss / n);
        self.push(v, Op::MseLoss(pred, target))
    }

    /// Runs reverse-mode differentiation from the scalar node `loss`,
    /// accumulating parameter gradients into `store`.
    ///
    /// Gradients are *added* to whatever is already in the store, so a
    /// caller can accumulate over a mini-batch before an optimizer step.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a `1x1` node.
    pub fn backward(&self, loss: NodeId, store: &mut ParamStore) {
        assert_eq!(
            self.nodes[loss.0].value.shape(),
            (1, 1),
            "loss must be scalar"
        );
        let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        grads[loss.0] = Some(Tensor::scalar(1.0));

        for idx in (0..=loss.0).rev() {
            let g = match grads[idx].take() {
                Some(g) => g,
                None => continue,
            };
            let node = &self.nodes[idx];
            match &node.op {
                Op::Input => {}
                Op::Param(pid) => store.grad_mut(*pid).add_assign(&g),
                Op::EmbedRow(pid, row) => store.grad_mut(*pid).add_row(*row, &g),
                Op::MatVec(m, x) => {
                    let xv = &self.nodes[x.0].value;
                    let mv = &self.nodes[m.0].value;
                    accumulate(&mut grads, m.0, &Tensor::outer(&g, xv));
                    accumulate(&mut grads, x.0, &mv.matvec_t(&g));
                }
                Op::Add(a, b) => {
                    accumulate(&mut grads, a.0, &g);
                    accumulate(&mut grads, b.0, &g);
                }
                Op::Sub(a, b) => {
                    accumulate(&mut grads, a.0, &g);
                    accumulate_scaled(&mut grads, b.0, &g, -1.0);
                }
                Op::Hadamard(a, b) => {
                    let ga = g.zip_map(&self.nodes[b.0].value, |gi, bi| gi * bi);
                    let gb = g.zip_map(&self.nodes[a.0].value, |gi, ai| gi * ai);
                    accumulate(&mut grads, a.0, &ga);
                    accumulate(&mut grads, b.0, &gb);
                }
                Op::ScalarMul(a, c) => accumulate_scaled(&mut grads, a.0, &g, *c),
                Op::Sigmoid(a) => {
                    let ga = g.zip_map(&node.value, |gi, yi| gi * yi * (1.0 - yi));
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::Tanh(a) => {
                    let ga = g.zip_map(&node.value, |gi, yi| gi * (1.0 - yi * yi));
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::Relu(a) => {
                    let ga = g.zip_map(
                        &self.nodes[a.0].value,
                        |gi, xi| {
                            if xi > 0.0 {
                                gi
                            } else {
                                0.0
                            }
                        },
                    );
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::Abs(a) => {
                    let ga = g.zip_map(&self.nodes[a.0].value, |gi, xi| gi * sign(xi));
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::Concat(a, b) => {
                    let alen = self.nodes[a.0].value.len();
                    let ga = Tensor::column(&g.as_slice()[..alen]);
                    let gb = Tensor::column(&g.as_slice()[alen..]);
                    accumulate(&mut grads, a.0, &ga);
                    accumulate(&mut grads, b.0, &gb);
                }
                Op::Softmax(a) => {
                    // dL/dx = y ⊙ (g − (g·y) 1)
                    let y = &node.value;
                    let gy: f32 = g.dot(y);
                    let ga = y.zip_map(&g, |yi, gi| yi * (gi - gy));
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::Sum(items) => {
                    for id in items {
                        accumulate(&mut grads, id.0, &g);
                    }
                }
                Op::Dot(a, b) => {
                    let gi = g.item();
                    accumulate_scaled(&mut grads, a.0, &self.nodes[b.0].value, gi);
                    accumulate_scaled(&mut grads, b.0, &self.nodes[a.0].value, gi);
                }
                Op::Cosine(a, b) => {
                    let av = &self.nodes[a.0].value;
                    let bv = &self.nodes[b.0].value;
                    let na = av.norm().max(EPS);
                    let nb = bv.norm().max(EPS);
                    let cos = node.value.item();
                    let gi = g.item();
                    // d cos / da = b/(|a||b|) − cos · a/|a|²
                    let mut ga = bv.map(|x| x / (na * nb));
                    ga.add_scaled(av, -cos / (na * na));
                    let mut gb = av.map(|x| x / (na * nb));
                    gb.add_scaled(bv, -cos / (nb * nb));
                    accumulate_scaled(&mut grads, a.0, &ga, gi);
                    accumulate_scaled(&mut grads, b.0, &gb, gi);
                }
                Op::BceLoss(pred, target) => {
                    let p = &self.nodes[pred.0].value;
                    let n = p.len() as f32;
                    let gi = g.item();
                    let gp = p.zip_map(target, |pi, ti| {
                        let pc = pi.clamp(EPS, 1.0 - EPS);
                        gi * (pc - ti) / (pc * (1.0 - pc) * n)
                    });
                    accumulate(&mut grads, pred.0, &gp);
                }
                Op::MseLoss(pred, target) => {
                    let p = &self.nodes[pred.0].value;
                    let n = p.len() as f32;
                    let gi = g.item();
                    let gp = p.zip_map(target, |pi, ti| gi * 2.0 * (pi - ti) / n);
                    accumulate(&mut grads, pred.0, &gp);
                }
            }
        }
    }
}

fn sign(x: f32) -> f32 {
    if x > 0.0 {
        1.0
    } else if x < 0.0 {
        -1.0
    } else {
        0.0
    }
}

fn accumulate(grads: &mut [Option<Tensor>], idx: usize, g: &Tensor) {
    match &mut grads[idx] {
        Some(existing) => existing.add_assign(g),
        slot @ None => *slot = Some(g.clone()),
    }
}

fn accumulate_scaled(grads: &mut [Option<Tensor>], idx: usize, g: &Tensor, scale: f32) {
    match &mut grads[idx] {
        Some(existing) => existing.add_scaled(g, scale),
        slot @ None => {
            let mut t = Tensor::zeros(g.rows(), g.cols());
            t.add_scaled(g, scale);
            *slot = Some(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_gradients;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_values() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]));
        let mut g = Graph::new();
        let wn = g.param(&store, w);
        let x = g.input(Tensor::column(&[3.0, 4.0]));
        let y = g.matvec(wn, x);
        assert_eq!(g.value(y).as_slice(), &[3.0, 8.0]);
        let s = g.sigmoid(y);
        assert!((g.value(s).as_slice()[0] - 0.95257413).abs() < 1e-6);
    }

    #[test]
    fn softmax_sums_to_one() {
        let mut g = Graph::new();
        let x = g.input(Tensor::column(&[1.0, 2.0, 3.0]));
        let s = g.softmax(x);
        let sum: f32 = g.value(s).as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        // Largest logit gets largest probability.
        let v = g.value(s).as_slice();
        assert!(v[2] > v[1] && v[1] > v[0]);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let mut g = Graph::new();
        let x = g.input(Tensor::column(&[1000.0, 1001.0]));
        let s = g.softmax(x);
        assert!(g.value(s).is_finite());
    }

    #[test]
    fn backward_through_matvec_and_sigmoid() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_rows(&[&[0.5, -0.5]]));
        check_gradients(&mut store, 1e-2, 2e-2, |store, g| {
            let wn = g.param(store, w);
            let x = g.input(Tensor::column(&[1.0, 2.0]));
            let y = g.matvec(wn, x);
            let s = g.sigmoid(y);
            g.bce_loss(s, Tensor::scalar(1.0))
        });
    }

    #[test]
    fn backward_through_softmax_bce() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::xavier(2, 4, &mut rng));
        check_gradients(&mut store, 1e-2, 2e-2, |store, g| {
            let wn = g.param(store, w);
            let x = g.input(Tensor::column(&[0.3, -0.4, 0.5, 0.9]));
            let y = g.matvec(wn, x);
            let s = g.softmax(y);
            g.bce_loss(s, Tensor::column(&[0.0, 1.0]))
        });
    }

    #[test]
    fn backward_through_hadamard_concat_abs() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::uniform(3, 1, 0.9, &mut rng));
        let b = store.add("b", Tensor::uniform(3, 1, 0.9, &mut rng));
        let w = store.add("w", Tensor::xavier(1, 6, &mut rng));
        check_gradients(&mut store, 1e-2, 2e-2, |store, g| {
            let an = g.param(store, a);
            let bn = g.param(store, b);
            let d = g.sub(an, bn);
            let ad = g.abs(d);
            let h = g.hadamard(an, bn);
            let c = g.concat(ad, h);
            let wn = g.param(store, w);
            let y = g.matvec(wn, c);
            let s = g.sigmoid(y);
            g.mse_loss(s, Tensor::scalar(0.25))
        });
    }

    #[test]
    fn backward_through_cosine() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::uniform(4, 1, 1.0, &mut rng));
        let b = store.add("b", Tensor::uniform(4, 1, 1.0, &mut rng));
        check_gradients(&mut store, 1e-2, 2e-2, |store, g| {
            let an = g.param(store, a);
            let bn = g.param(store, b);
            let c = g.cosine(an, bn);
            g.mse_loss(c, Tensor::scalar(1.0))
        });
    }

    #[test]
    fn backward_through_embedding() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let e = store.add("emb", Tensor::uniform(5, 3, 0.5, &mut rng));
        let w = store.add("w", Tensor::xavier(1, 3, &mut rng));
        check_gradients(&mut store, 1e-2, 2e-2, |store, g| {
            let r2 = g.embed_row(store, e, 2);
            let r4 = g.embed_row(store, e, 4);
            let s = g.add(r2, r4);
            let wn = g.param(store, w);
            let y = g.matvec(wn, s);
            let t = g.tanh(y);
            g.mse_loss(t, Tensor::scalar(0.5))
        });
    }

    #[test]
    fn backward_through_sum_and_relu() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::uniform(3, 1, 1.0, &mut rng));
        let b = store.add("b", Tensor::uniform(3, 1, 1.0, &mut rng));
        let c = store.add("c", Tensor::uniform(3, 1, 1.0, &mut rng));
        let w = store.add("w", Tensor::xavier(1, 3, &mut rng));
        check_gradients(&mut store, 1e-2, 2e-2, |store, g| {
            let an = g.param(store, a);
            let bn = g.param(store, b);
            let cn = g.param(store, c);
            let s = g.sum(&[an, bn, cn]);
            let r = g.relu(s);
            let wn = g.param(store, w);
            let y = g.matvec(wn, r);
            g.mse_loss(y, Tensor::scalar(0.1))
        });
    }

    #[test]
    fn gradients_accumulate_across_backward_calls() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_rows(&[&[1.0]]));
        for _ in 0..2 {
            let mut g = Graph::new();
            let wn = g.param(&store, w);
            let x = g.input(Tensor::scalar(2.0));
            let y = g.hadamard(wn, x);
            let loss = g.mse_loss(y, Tensor::scalar(0.0));
            g.backward(loss, &mut store);
        }
        // d/dw (2w)^2 = 8w = 8, accumulated twice = 16.
        assert!((store.grad(ParamId(0)).item() - 16.0).abs() < 1e-4);
    }

    #[test]
    fn shared_parameter_gets_summed_gradient() {
        // Same parameter used twice in one graph (Siamese sharing).
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_rows(&[&[3.0]]));
        let mut g = Graph::new();
        let w1 = g.param(&store, w);
        let w2 = g.param(&store, w);
        let p = g.hadamard(w1, w2); // w²
        let loss = g.mse_loss(p, Tensor::scalar(0.0));
        g.backward(loss, &mut store);
        // d/dw w⁴ /1... actually loss = (w²)² = w⁴? No: mse(w², 0) = w⁴? No!
        // mse = (w² − 0)² = w⁴; d/dw = 4w³ = 108.
        assert!((store.grad(ParamId(0)).item() - 108.0).abs() < 1e-2);
    }

    #[test]
    #[should_panic(expected = "loss must be scalar")]
    fn backward_rejects_vector_loss() {
        let mut store = ParamStore::new();
        let mut g = Graph::new();
        let x = g.input(Tensor::column(&[1.0, 2.0]));
        g.backward(x, &mut store);
    }
}

#[cfg(test)]
mod more_grad_tests {
    use super::*;
    use crate::gradcheck::check_gradients;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn backward_through_scalar_mul_and_add3() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::uniform(3, 1, 1.0, &mut rng));
        let b = store.add("b", Tensor::uniform(3, 1, 1.0, &mut rng));
        let c = store.add("c", Tensor::uniform(3, 1, 1.0, &mut rng));
        check_gradients(&mut store, 1e-2, 2e-2, |store, g| {
            let an = g.param(store, a);
            let bn = g.param(store, b);
            let cn = g.param(store, c);
            let scaled = g.scalar_mul(an, -1.5);
            let s = g.add3(scaled, bn, cn);
            let t = g.tanh(s);
            g.mse_loss(t, Tensor::full(3, 1, 0.2))
        });
    }

    #[test]
    fn backward_through_dot() {
        let mut rng = StdRng::seed_from_u64(22);
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::uniform(4, 1, 1.0, &mut rng));
        let b = store.add("b", Tensor::uniform(4, 1, 1.0, &mut rng));
        check_gradients(&mut store, 1e-2, 2e-2, |store, g| {
            let an = g.param(store, a);
            let bn = g.param(store, b);
            let d = g.dot(an, bn);
            g.mse_loss(d, Tensor::scalar(0.4))
        });
    }
}
