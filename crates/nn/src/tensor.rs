//! Dense 2-D tensor of `f32` values.
//!
//! Every value flowing through [`crate::graph::Graph`] is a `Tensor`. Column
//! vectors are represented as `(n, 1)` tensors and scalars as `(1, 1)`.

use std::fmt;
use std::ops::{Index, IndexMut};

use rand::Rng;

/// A dense, row-major matrix of `f32` values.
///
/// # Examples
///
/// ```
/// use asteria_nn::Tensor;
///
/// let w = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let x = Tensor::column(&[1.0, 1.0]);
/// let y = w.matvec(&x);
/// assert_eq!(y.as_slice(), &[3.0, 7.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "tensor dimensions must be nonzero");
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        let mut t = Tensor::zeros(rows, cols);
        t.data.fill(1.0);
        t
    }

    /// Creates a tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        let mut t = Tensor::zeros(rows, cols);
        t.data.fill(value);
        t
    }

    /// Creates a tensor from row slices.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have differing lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "at least one row required");
        let cols = rows[0].len();
        assert!(cols > 0, "rows must be non-empty");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "all rows must have equal length");
            data.extend_from_slice(row);
        }
        Tensor {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates an `(n, 1)` column vector from a slice.
    pub fn column(values: &[f32]) -> Self {
        assert!(!values.is_empty(), "column vector must be non-empty");
        Tensor {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Creates a `(1, 1)` scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            rows: 1,
            cols: 1,
            data: vec![value],
        }
    }

    /// Creates a tensor from a raw row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        assert!(rows > 0 && cols > 0, "tensor dimensions must be nonzero");
        Tensor { rows, cols, data }
    }

    /// Creates a tensor with entries drawn uniformly from `[-limit, limit]`.
    pub fn uniform<R: Rng>(rows: usize, cols: usize, limit: f32, rng: &mut R) -> Self {
        let mut t = Tensor::zeros(rows, cols);
        for v in &mut t.data {
            *v = rng.gen_range(-limit..=limit);
        }
        t
    }

    /// Creates a tensor using Xavier/Glorot uniform initialization for a
    /// weight matrix with `cols` inputs and `rows` outputs.
    pub fn xavier<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let limit = (6.0 / (rows + cols) as f32).sqrt();
        Tensor::uniform(rows, cols, limit, rng)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always false: tensors have nonzero dimensions by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Row-major view of the underlying buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable row-major view of the underlying buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Value of a `(1, 1)` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not `1x1`.
    pub fn item(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "item() requires a 1x1 tensor");
        self.data[0]
    }

    /// Matrix–vector product `self * x` where `x` is `(cols, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not a column vector with `self.cols()` rows.
    pub fn matvec(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.cols, 1, "matvec requires a column vector");
        assert_eq!(x.rows, self.cols, "matvec dimension mismatch");
        let mut out = Tensor::zeros(self.rows, 1);
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0f32;
            for (a, b) in row.iter().zip(x.data.iter()) {
                acc += a * b;
            }
            out.data[r] = acc;
        }
        out
    }

    /// Transposed matrix–vector product `self^T * y` where `y` is `(rows, 1)`.
    pub fn matvec_t(&self, y: &Tensor) -> Tensor {
        assert_eq!(y.cols, 1, "matvec_t requires a column vector");
        assert_eq!(y.rows, self.rows, "matvec_t dimension mismatch");
        let mut out = Tensor::zeros(self.cols, 1);
        for r in 0..self.rows {
            let yr = y.data[r];
            if yr == 0.0 {
                continue;
            }
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, a) in out.data.iter_mut().zip(row.iter()) {
                *o += a * yr;
            }
        }
        out
    }

    /// Outer product `y * x^T` of two column vectors, shaped `(y.rows, x.rows)`.
    pub fn outer(y: &Tensor, x: &Tensor) -> Tensor {
        assert_eq!(y.cols, 1, "outer requires column vectors");
        assert_eq!(x.cols, 1, "outer requires column vectors");
        let mut out = Tensor::zeros(y.rows, x.rows);
        for r in 0..y.rows {
            let yr = y.data[r];
            for c in 0..x.rows {
                out.data[r * x.rows + c] = yr * x.data[c];
            }
        }
        out
    }

    /// Dot product of two equal-shape tensors viewed as flat vectors.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape(), other.shape(), "dot shape mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Euclidean norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Element-wise addition into `self`.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Element-wise `self += scale * other`.
    pub fn add_scaled(&mut self, other: &Tensor, scale: f32) {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += scale * b;
        }
    }

    /// Sets every entry to zero.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Applies `f` element-wise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let mut out = self.clone();
        for v in &mut out.data {
            *v = f(*v);
        }
        out
    }

    /// Element-wise binary combination of two equal-shape tensors.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "zip_map shape mismatch");
        let mut out = self.clone();
        for (v, w) in out.data.iter_mut().zip(other.data.iter()) {
            *v = f(*v, *w);
        }
        out
    }

    /// Row `r` as a new `(cols, 1)` column vector.
    pub fn row_vector(&self, r: usize) -> Tensor {
        assert!(r < self.rows, "row index out of range");
        Tensor::column(&self.data[r * self.cols..(r + 1) * self.cols])
    }

    /// Copies `v` (a `(cols, 1)` vector) into row `r`.
    pub fn set_row(&mut self, r: usize, v: &Tensor) {
        assert!(r < self.rows, "row index out of range");
        assert_eq!(v.shape(), (self.cols, 1), "row shape mismatch");
        self.data[r * self.cols..(r + 1) * self.cols].copy_from_slice(&v.data);
    }

    /// Adds `v` (a `(cols, 1)` vector) into row `r`.
    pub fn add_row(&mut self, r: usize, v: &Tensor) {
        assert!(r < self.rows, "row index out of range");
        assert_eq!(v.shape(), (self.cols, 1), "row shape mismatch");
        for (a, b) in self.data[r * self.cols..(r + 1) * self.cols]
            .iter_mut()
            .zip(&v.data)
        {
            *a += b;
        }
    }

    /// True when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl Index<(usize, usize)> for Tensor {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Tensor {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}x{})[", self.rows, self.cols)?;
        let preview: Vec<String> = self
            .data
            .iter()
            .take(8)
            .map(|v| format!("{v:.4}"))
            .collect();
        write!(f, "{}", preview.join(", "))?;
        if self.data.len() > 8 {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(3, 2);
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.len(), 6);
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_rows_layout_is_row_major() {
        let t = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(t[(0, 1)], 2.0);
        assert_eq!(t[(1, 0)], 3.0);
        assert_eq!(t.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn matvec_matches_manual() {
        let w = Tensor::from_rows(&[&[1.0, -1.0, 2.0], &[0.5, 0.0, -2.0]]);
        let x = Tensor::column(&[2.0, 3.0, 1.0]);
        let y = w.matvec(&x);
        assert_eq!(y.as_slice(), &[1.0, -1.0]);
    }

    #[test]
    fn matvec_t_is_transpose_product() {
        let w = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let y = Tensor::column(&[1.0, 0.0, -1.0]);
        let x = w.matvec_t(&y);
        assert_eq!(x.as_slice(), &[-4.0, -4.0]);
    }

    #[test]
    fn outer_product() {
        let y = Tensor::column(&[1.0, 2.0]);
        let x = Tensor::column(&[3.0, 4.0, 5.0]);
        let o = Tensor::outer(&y, &x);
        assert_eq!(o.shape(), (2, 3));
        assert_eq!(o[(1, 2)], 10.0);
    }

    #[test]
    fn dot_and_norm() {
        let a = Tensor::column(&[3.0, 4.0]);
        assert_eq!(a.dot(&a), 25.0);
        assert_eq!(a.norm(), 5.0);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Tensor::ones(2, 2);
        let b = Tensor::full(2, 2, 3.0);
        a.add_scaled(&b, 2.0);
        assert!(a.as_slice().iter().all(|&v| v == 7.0));
    }

    #[test]
    fn rows_roundtrip() {
        let mut m = Tensor::zeros(3, 4);
        let v = Tensor::column(&[1.0, 2.0, 3.0, 4.0]);
        m.set_row(1, &v);
        assert_eq!(m.row_vector(1), v);
        m.add_row(1, &v);
        assert_eq!(m.row_vector(1).as_slice(), &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn uniform_respects_limit() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::uniform(10, 10, 0.25, &mut rng);
        assert!(t.as_slice().iter().all(|&v| (-0.25..=0.25).contains(&v)));
    }

    #[test]
    #[should_panic(expected = "matvec dimension mismatch")]
    fn matvec_rejects_bad_shapes() {
        let w = Tensor::zeros(2, 3);
        let x = Tensor::column(&[1.0, 2.0]);
        let _ = w.matvec(&x);
    }

    #[test]
    fn map_and_zip_map() {
        let a = Tensor::column(&[1.0, -2.0]);
        let b = Tensor::column(&[10.0, 20.0]);
        assert_eq!(a.map(f32::abs).as_slice(), &[1.0, 2.0]);
        assert_eq!(a.zip_map(&b, |x, y| x + y).as_slice(), &[11.0, 18.0]);
    }
}
