//! `asteria-nn` — a minimal, dependency-light neural-network substrate.
//!
//! The Asteria paper builds its Tree-LSTM on PyTorch. This crate is the
//! reproduction's PyTorch substitute: a dense [`Tensor`] type, a tape-based
//! reverse-mode autodiff [`Graph`], [`Embedding`]/[`Linear`] layers, and the
//! optimizers the paper and its baselines need ([`AdaGrad`] for Asteria,
//! [`Sgd`]/[`Adam`] for ablations and for the Gemini baseline).
//!
//! The tape is rebuilt per example, which is what dynamic tree-shaped models
//! require — the paper itself notes that Tree-LSTM computation "depends on
//! the shape of the AST" and forces batch size 1 (§IV-A).
//!
//! # Examples
//!
//! Train `y = sigmoid(w·x)` toward 1 with AdaGrad:
//!
//! ```
//! use asteria_nn::{AdaGrad, Graph, Optimizer, ParamStore, Tensor};
//!
//! let mut store = ParamStore::new();
//! let w = store.add("w", Tensor::zeros(1, 2));
//! let mut opt = AdaGrad::new(0.1);
//! for _ in 0..50 {
//!     store.zero_grads();
//!     let mut g = Graph::new();
//!     let wn = g.param(&store, w);
//!     let x = g.input(Tensor::column(&[1.0, -1.0]));
//!     let y = g.matvec(wn, x);
//!     let p = g.sigmoid(y);
//!     let loss = g.bce_loss(p, Tensor::scalar(1.0));
//!     g.backward(loss, &mut store);
//!     opt.step(&mut store);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gradcheck;
mod graph;
mod layers;
mod optim;
mod params;
mod tensor;

pub use graph::{Graph, NodeId};
pub use layers::{Embedding, Linear};
pub use optim::{AdaGrad, Adam, Optimizer, Sgd};
pub use params::{Fnv, ParamId, ParamStore};
pub use tensor::Tensor;
