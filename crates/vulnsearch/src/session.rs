//! The consolidated vulnsearch API: [`IndexBuilder`] for the offline
//! phase and [`SearchSession`] for the online phase.
//!
//! Earlier iterations grew a matrix of free functions
//! (`build_search_index{,_threads,_cached,_cached_threads}`,
//! `search{,_threads}`, `run_search{,_threads}`, `encode_query`) that
//! every new surface — CLI, benches, and now the long-running
//! `asteria serve` daemon — had to re-duplicate. This module collapses
//! that matrix into two types:
//!
//! - [`IndexBuilder`] — an options-struct builder for the offline phase:
//!   `.threads(n)`, `.cache(path)` (persistent ASIX warm starts),
//!   `.limits(l)` / `.inline_beta(β)` (extraction budgets), producing a
//!   [`SearchIndex`] plus [`CacheStats`].
//! - [`SearchSession`] — holds the model and the index and answers
//!   queries: [`SearchSession::query`] / [`SearchSession::query_batch`]
//!   for ad-hoc function lookups (the serving path),
//!   [`SearchSession::run`] for the paper's Table IV experiment.
//!
//! The old free functions survive as `#[deprecated]` wrappers delegating
//! here, so external callers migrate at their own pace while the
//! workspace itself builds with `-D deprecated`.
//!
//! All determinism invariants carry over unchanged: a session's answers
//! are bit-identical at every thread count, and batched queries are
//! bit-identical to one-at-a-time queries.

use std::cmp::Ordering;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use asteria_compiler::{compile_program, Arch};
use asteria_core::{
    encode_function, extract_binary_resilient_with, extract_function_with, function_similarity,
    AsteriaModel, FunctionEncoding, DEFAULT_INLINE_BETA,
};
use asteria_decompiler::{BudgetKind, DecompileLimits};
use asteria_lang::parse;

use crate::firmware::FirmwareImage;
use crate::index_io::{
    extraction_params_digest, fingerprint_binary, CacheStats, CachedBinary, CachedFunction,
    IndexCache, IndexError,
};
use crate::library::CveEntry;
use crate::search::{
    CveSearchResult, IndexedFunction, QueryError, QueryErrorKind, SearchHit, SearchIndex,
};

/// Default number of hits a [`FunctionQuery`] returns.
pub const DEFAULT_TOP_K: usize = 10;

// ---------------------------------------------------------------------------
// IndexBuilder
// ---------------------------------------------------------------------------

/// Options-struct builder for the offline phase: encodes a firmware
/// corpus into a [`SearchIndex`], optionally warm-started from a
/// persistent ASIX cache.
///
/// ```no_run
/// # use asteria_core::{AsteriaModel, ModelConfig};
/// # use asteria_vulnsearch::{build_firmware_corpus, vulnerability_library, FirmwareConfig};
/// # use asteria_vulnsearch::IndexBuilder;
/// # let model = AsteriaModel::new(ModelConfig::default());
/// # let firmware = build_firmware_corpus(&FirmwareConfig::default(), &vulnerability_library());
/// let build = IndexBuilder::new(&model)
///     .threads(4)
///     .cache("index.asix")
///     .build(&firmware)?;
/// println!("{} functions, {}", build.index.len(), build.stats);
/// # Ok::<(), asteria_vulnsearch::IndexError>(())
/// ```
#[derive(Debug)]
pub struct IndexBuilder<'m> {
    model: &'m AsteriaModel,
    threads: usize,
    inline_beta: usize,
    limits: DecompileLimits,
    cache_path: Option<PathBuf>,
    seed_cache: Option<IndexCache>,
}

/// What [`IndexBuilder::build`] produces: the index, the cache
/// accounting for this build, and the (updated) cache for reuse.
#[derive(Debug)]
pub struct IndexBuild {
    /// The offline product: every firmware function encoded once.
    pub index: SearchIndex,
    /// Hit/miss/eviction accounting for this build.
    pub stats: CacheStats,
    /// The updated embedding cache (already persisted when the builder
    /// was given a `.cache(path)`).
    pub cache: IndexCache,
}

impl<'m> IndexBuilder<'m> {
    /// A builder with default options: auto thread count, default
    /// inlining β and decompile budgets, no persistent cache.
    pub fn new(model: &'m AsteriaModel) -> IndexBuilder<'m> {
        IndexBuilder {
            model,
            threads: 0,
            inline_beta: DEFAULT_INLINE_BETA,
            limits: DecompileLimits::default(),
            cache_path: None,
            seed_cache: None,
        }
    }

    /// Worker-thread count for the offline fan-out (`0` = auto:
    /// `ASTERIA_THREADS` override, else all cores).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Warm-starts from (and persists back to) an ASIX cache file.
    ///
    /// A missing file costs a cold build; an unreadable or corrupt one
    /// costs a warning plus a cold rebuild — never the run. The updated
    /// cache is written back after the build.
    pub fn cache(mut self, path: impl Into<PathBuf>) -> Self {
        self.cache_path = Some(path.into());
        self
    }

    /// Warm-starts from an in-memory cache (takes precedence over the
    /// initial contents of a `.cache(path)` file; the file, when also
    /// configured, is still written back).
    pub fn seed_cache(mut self, cache: IndexCache) -> Self {
        self.seed_cache = Some(cache);
        self
    }

    /// Decompilation budgets for extraction. Changing limits changes the
    /// extraction-parameters digest, so a persistent cache built under
    /// different limits self-invalidates.
    pub fn limits(mut self, limits: DecompileLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Callee-expansion depth β for extraction (paper §III; the digest
    /// binds it like [`IndexBuilder::limits`]).
    pub fn inline_beta(mut self, beta: usize) -> Self {
        self.inline_beta = beta;
        self
    }

    /// Runs the offline phase.
    ///
    /// # Errors
    ///
    /// Only I/O on a configured `.cache(path)` can fail — reading a file
    /// that exists but cannot be read, or writing the updated cache
    /// back. Corrupt cache *contents* degrade to a cold rebuild instead.
    pub fn build(self, firmware: &[FirmwareImage]) -> Result<IndexBuild, IndexError> {
        let mut cache = match self.seed_cache {
            Some(cache) => cache,
            None => match &self.cache_path {
                Some(path) => match std::fs::read(path) {
                    Ok(bytes) => match IndexCache::load(bytes.as_slice()) {
                        Ok(cache) => cache,
                        Err(e) => {
                            asteria_obs::warn!(
                                "warning: ignoring unusable index cache at {}: {e}",
                                path.display()
                            );
                            IndexCache::default()
                        }
                    },
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => IndexCache::default(),
                    Err(e) => return Err(IndexError::Io(e)),
                },
                None => IndexCache::default(),
            },
        };
        let (index, stats) = build_index_impl(
            self.model,
            firmware,
            &mut cache,
            self.threads,
            self.inline_beta,
            &self.limits,
        );
        if let Some(path) = &self.cache_path {
            let mut buf = Vec::new();
            cache.save(&mut buf)?;
            std::fs::write(path, buf)?;
        }
        Ok(IndexBuild {
            index,
            stats,
            cache,
        })
    }

    /// Runs the offline phase against a caller-owned in-memory cache,
    /// updating it in place. This path is infallible: no file I/O is
    /// involved (`.cache(path)` is ignored here).
    pub fn build_into(
        &self,
        firmware: &[FirmwareImage],
        cache: &mut IndexCache,
    ) -> (SearchIndex, CacheStats) {
        build_index_impl(
            self.model,
            firmware,
            cache,
            self.threads,
            self.inline_beta,
            &self.limits,
        )
    }
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

/// One online similarity query: a function (as MiniC source, the way an
/// analyst supplies a reference build of a vulnerable library) to rank
/// against the whole index.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionQuery {
    /// Caller-chosen label, echoed in errors (a CVE id, a request id…).
    pub label: String,
    /// MiniC source containing the query function.
    pub source: String,
    /// Name of the query function within `source`.
    pub function: String,
    /// Architecture to compile the reference build for.
    pub arch: Arch,
    /// Ranked hits to return (`0` = the full ranking).
    pub top_k: usize,
}

impl FunctionQuery {
    /// A query with the default [`DEFAULT_TOP_K`] cutoff.
    pub fn new(
        label: impl Into<String>,
        source: impl Into<String>,
        function: impl Into<String>,
        arch: Arch,
    ) -> FunctionQuery {
        FunctionQuery {
            label: label.into(),
            source: source.into(),
            function: function.into(),
            arch,
            top_k: DEFAULT_TOP_K,
        }
    }

    /// A query for a CVE library entry's vulnerable source.
    pub fn for_cve(entry: &CveEntry, arch: Arch) -> FunctionQuery {
        FunctionQuery::new(
            entry.id,
            entry.vulnerable_source.clone(),
            entry.function,
            arch,
        )
    }

    /// Sets the ranked-hit cutoff (`0` = full ranking).
    pub fn top_k(mut self, k: usize) -> FunctionQuery {
        self.top_k = k;
        self
    }

    /// Identity of the *answer* this query produces (label excluded:
    /// requests that differ only in label share one encode + ranking).
    fn dedup_key(&self) -> (String, String, u8, usize) {
        (
            self.source.clone(),
            self.function.clone(),
            self.arch as u8,
            self.top_k,
        )
    }
}

/// The answer to one [`FunctionQuery`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// Ranked hits, truncated to the query's `top_k` (all hits when
    /// `top_k == 0`).
    pub hits: Vec<SearchHit>,
    /// Total functions ranked (the index size at query time).
    pub total_ranked: usize,
}

// ---------------------------------------------------------------------------
// SearchSession
// ---------------------------------------------------------------------------

/// The online phase as a long-lived object: holds the model and the
/// index, answers queries. One `SearchSession` serves CLI one-shots,
/// benches, and the `asteria serve` daemon through the same code path.
///
/// Sessions are cheap to share (`Arc<SearchSession>`) and all methods
/// take `&self`, so a server can answer from many threads.
#[derive(Debug)]
pub struct SearchSession {
    model: Arc<AsteriaModel>,
    index: SearchIndex,
    threads: usize,
    inline_beta: usize,
    limits: DecompileLimits,
}

impl SearchSession {
    /// A session over a built index. Accepts the model by value or
    /// already shared (`Arc<AsteriaModel>`).
    pub fn new(model: impl Into<Arc<AsteriaModel>>, index: SearchIndex) -> SearchSession {
        SearchSession {
            model: model.into(),
            index,
            threads: 0,
            inline_beta: DEFAULT_INLINE_BETA,
            limits: DecompileLimits::default(),
        }
    }

    /// Worker-thread count for query encoding and ranking (`0` = auto).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Decompilation budgets for query-side extraction (match the
    /// builder's for digest-consistent behavior).
    pub fn limits(mut self, limits: DecompileLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Callee-expansion depth β for query-side extraction.
    pub fn inline_beta(mut self, beta: usize) -> Self {
        self.inline_beta = beta;
        self
    }

    /// The model this session scores with.
    pub fn model(&self) -> &AsteriaModel {
        &self.model
    }

    /// The index this session ranks against.
    pub fn index(&self) -> &SearchIndex {
        &self.index
    }

    /// Encodes a query function without ranking it.
    ///
    /// # Errors
    ///
    /// A typed [`QueryError`] naming the failing stage (parse, compile,
    /// symbol resolution, decompile).
    pub fn encode(&self, query: &FunctionQuery) -> Result<FunctionEncoding, QueryError> {
        encode_query_impl(
            &self.model,
            &query.label,
            &query.source,
            &query.function,
            query.arch,
            self.inline_beta,
            &self.limits,
        )
    }

    /// Encodes a CVE library entry's vulnerable source (the Table IV
    /// query shape).
    ///
    /// # Errors
    ///
    /// A typed [`QueryError`] naming the failing stage.
    pub fn encode_cve(&self, entry: &CveEntry, arch: Arch) -> Result<FunctionEncoding, QueryError> {
        self.encode(&FunctionQuery::for_cve(entry, arch))
    }

    /// Ranks the whole index against an already-encoded query. The full
    /// ranking is returned; callers cut it as they like.
    pub fn rank(&self, encoding: &FunctionEncoding) -> Vec<SearchHit> {
        rank_impl(&self.model, &self.index, encoding, self.threads)
    }

    /// Answers one query: encode, rank, truncate to `top_k`.
    ///
    /// # Errors
    ///
    /// A typed [`QueryError`] when the query source fails to encode.
    pub fn query(&self, query: &FunctionQuery) -> Result<QueryOutcome, QueryError> {
        let encoding = self.encode(query)?;
        let mut hits = self.rank(&encoding);
        let total_ranked = hits.len();
        if query.top_k > 0 {
            hits.truncate(query.top_k);
        }
        Ok(QueryOutcome { hits, total_ranked })
    }

    /// Answers a batch of queries — the serving hot path.
    ///
    /// Identical queries (same source, function, arch, and cutoff) are
    /// **deduplicated**: encoded and ranked once, with the outcome
    /// replayed to every duplicate. Unique queries fan out over the
    /// session's worker threads. Each outcome is bit-identical to what
    /// [`SearchSession::query`] returns for that query alone — batching
    /// is a latency/throughput optimization, never a semantic one.
    pub fn query_batch(&self, queries: &[FunctionQuery]) -> Vec<Result<QueryOutcome, QueryError>> {
        if queries.is_empty() {
            return Vec::new();
        }
        let mut batch_span = asteria_obs::span("query-batch");
        batch_span.set_items(queries.len() as u64);
        // Dedup map: answer identity → index of the first query with it.
        let mut first_of: HashMap<(String, String, u8, usize), usize> = HashMap::new();
        let mut unique: Vec<&FunctionQuery> = Vec::new();
        let mut slot_of: Vec<usize> = Vec::with_capacity(queries.len());
        for q in queries {
            let slot = *first_of.entry(q.dedup_key()).or_insert_with(|| {
                unique.push(q);
                unique.len() - 1
            });
            slot_of.push(slot);
        }
        if asteria_obs::enabled() {
            asteria_obs::counter_add(
                "asteria_query_batch_deduped_total",
                &[],
                (queries.len() - unique.len()) as u64,
            );
        }
        // Each unique query is encoded and ranked independently; the
        // inner ranking runs serially because the batch itself is the
        // parallel axis (scoring is bit-identical at every thread count,
        // so this choice cannot change any answer).
        let answers: Vec<Result<QueryOutcome, QueryError>> =
            asteria_exec::par_map_threads(self.threads, &unique, |q| {
                let encoding = encode_query_impl(
                    &self.model,
                    &q.label,
                    &q.source,
                    &q.function,
                    q.arch,
                    self.inline_beta,
                    &self.limits,
                )?;
                let mut hits = rank_impl(&self.model, &self.index, &encoding, 1);
                let total_ranked = hits.len();
                if q.top_k > 0 {
                    hits.truncate(q.top_k);
                }
                Ok(QueryOutcome { hits, total_ranked })
            });
        slot_of
            .into_iter()
            .enumerate()
            .map(|(i, slot)| match &answers[slot] {
                Ok(outcome) => Ok(outcome.clone()),
                // Errors carry the *original* query's label even when the
                // answer was computed for a duplicate.
                Err(e) => Err(QueryError {
                    cve: queries[i].label.clone(),
                    function: queries[i].function.clone(),
                    kind: e.kind.clone(),
                }),
            })
            .collect()
    }

    /// Runs the full Table IV experiment: searches every CVE against
    /// the index, thresholds candidates, and scores them against ground
    /// truth. Results are independent of the thread count.
    ///
    /// # Errors
    ///
    /// Returns the first (in library order) [`QueryError`] if any CVE's
    /// reference source fails to encode.
    pub fn run(
        &self,
        firmware: &[FirmwareImage],
        library: &[CveEntry],
        threshold: f64,
        query_arch: Arch,
    ) -> Result<Vec<CveSearchResult>, QueryError> {
        run_impl(
            &self.model,
            &self.index,
            firmware,
            library,
            threshold,
            query_arch,
            self.threads,
            self.inline_beta,
            &self.limits,
        )
    }
}

// ---------------------------------------------------------------------------
// Shared implementations (also backing the deprecated free functions)
// ---------------------------------------------------------------------------

/// The incremental offline phase. See [`IndexBuilder`] for semantics:
/// fingerprint hits replay cached embeddings, misses run the cold
/// pipeline over `asteria-exec` workers, stale entries are evicted, and
/// the result is bit-identical to a cold build at every thread count
/// and hit/miss mix.
pub(crate) fn build_index_impl(
    model: &AsteriaModel,
    firmware: &[FirmwareImage],
    cache: &mut IndexCache,
    threads: usize,
    inline_beta: usize,
    limits: &DecompileLimits,
) -> (SearchIndex, CacheStats) {
    let mut build_span = asteria_obs::span("index-build");
    let model_digest = model.weights_digest();
    let params_digest = extraction_params_digest(inline_beta, limits);
    let mut stats = CacheStats::default();
    if cache.model_digest != model_digest || cache.params_digest != params_digest {
        // Retraining or a budget change invalidates every embedding.
        stats.evicted += cache.clear();
        cache.model_digest = model_digest;
        cache.params_digest = params_digest;
    }

    // One work unit per binary: the granularity that balances fan-out
    // (images hold few binaries) against per-unit overhead, and the
    // granularity the cache is keyed at (callee counts depend on sibling
    // symbols, so a binary is the smallest self-contained unit).
    let units: Vec<(usize, usize, &FirmwareImage)> = firmware
        .iter()
        .enumerate()
        .flat_map(|(ii, img)| (0..img.binaries.len()).map(move |bi| (ii, bi, img)))
        .collect();
    build_span.set_items(units.len() as u64);
    let cache_ref = &*cache;
    let per_binary = asteria_exec::par_map_threads(threads, &units, |&(ii, bi, img)| {
        let mut bin_span = asteria_obs::span("encode-binary");
        let bin_timer = asteria_obs::timer();
        let binary = &img.binaries[bi];
        let fingerprint = fingerprint_binary(binary, params_digest, model_digest);
        let attach_truth = |name: &str| {
            img.planted
                .iter()
                .find(|p| p.binary_index == bi && p.display_name == name)
                .map(|p| (p.cve_index, p.vulnerable))
        };
        if let Some(cached) = cache_ref.get(fingerprint) {
            // Warm: replay embeddings and report; skip extraction and
            // all Tree-LSTM encoding.
            let functions: Vec<IndexedFunction> = cached
                .functions
                .iter()
                .map(|f| IndexedFunction {
                    image: ii,
                    binary: bi,
                    name: f.name.clone(),
                    encoding: FunctionEncoding {
                        name: f.name.clone(),
                        vector: f.vector.clone(),
                        callee_count: f.callee_count,
                    },
                    ground_truth: attach_truth(&f.name),
                })
                .collect();
            bin_span.set_items(functions.len() as u64);
            bin_timer.observe_seconds("asteria_index_binary_seconds", &[("mode", "warm")]);
            return (functions, cached.report, fingerprint, None);
        }
        // Cold: the full resilient extraction + encoding pipeline.
        let extraction = extract_binary_resilient_with(binary, inline_beta, limits);
        let functions: Vec<IndexedFunction> = extraction
            .successes()
            .map(|f| IndexedFunction {
                image: ii,
                binary: bi,
                name: f.name.clone(),
                encoding: encode_function(model, f),
                ground_truth: attach_truth(&f.name),
            })
            .collect();
        let entry = CachedBinary {
            report: extraction.report,
            functions: functions
                .iter()
                .map(|f| CachedFunction {
                    name: f.name.clone(),
                    callee_count: f.encoding.callee_count,
                    vector: f.encoding.vector.clone(),
                })
                .collect(),
        };
        bin_span.set_items(functions.len() as u64);
        bin_timer.observe_seconds("asteria_index_binary_seconds", &[("mode", "cold")]);
        (functions, extraction.report, fingerprint, Some(entry))
    });

    let mut index = SearchIndex::default();
    let mut live = std::collections::HashSet::with_capacity(per_binary.len());
    for (functions, report, fingerprint, new_entry) in per_binary {
        index.extraction.absorb(&report);
        index.functions.extend(functions);
        live.insert(fingerprint);
        match new_entry {
            Some(entry) => {
                stats.misses += 1;
                cache.insert(fingerprint, entry);
            }
            None => stats.hits += 1,
        }
    }
    // Anything the corpus no longer contains is stale.
    stats.evicted += cache.retain_fingerprints(|fp| live.contains(&fp));
    record_build_metrics(&index, &stats);
    (index, stats)
}

/// Publishes the offline build's obs counters. Everything here is
/// derived from the deterministically merged results — never from inside
/// a worker — so every value is identical at any thread count.
fn record_build_metrics(index: &SearchIndex, stats: &CacheStats) {
    if !asteria_obs::enabled() {
        return;
    }
    asteria_obs::counter_add("asteria_cache_hits_total", &[], stats.hits as u64);
    asteria_obs::counter_add("asteria_cache_misses_total", &[], stats.misses as u64);
    asteria_obs::counter_add("asteria_cache_evicted_total", &[], stats.evicted as u64);
    asteria_obs::counter_add(
        "asteria_functions_indexed_total",
        &[],
        index.functions.len() as u64,
    );
    let r = &index.extraction;
    for (outcome, n) in [
        ("extracted", r.extracted),
        ("over_budget", r.over_budget),
        ("decode_error", r.decode_errors),
        ("empty", r.empty_functions),
        ("other", r.other_errors),
    ] {
        asteria_obs::counter_add(
            "asteria_extraction_outcomes_total",
            &[("outcome", outcome)],
            n as u64,
        );
    }
    // Pre-register every budget kind at zero so the exposition always
    // carries all four series, even on a corpus where none fire.
    for kind in BudgetKind::ALL {
        asteria_obs::counter_add(
            "asteria_budget_exceeded_total",
            &[("kind", kind.label())],
            0,
        );
    }
}

/// Encodes one query function: parse → compile for `arch` → resolve →
/// extract → Tree-LSTM encode, every stage surfacing a typed error.
pub(crate) fn encode_query_impl(
    model: &AsteriaModel,
    label: &str,
    source: &str,
    function: &str,
    arch: Arch,
    inline_beta: usize,
    limits: &DecompileLimits,
) -> Result<FunctionEncoding, QueryError> {
    let fail = |kind| QueryError {
        cve: label.to_string(),
        function: function.to_string(),
        kind,
    };
    let program = parse(source).map_err(|e| fail(QueryErrorKind::Parse(e)))?;
    let binary = compile_program(&program, arch).map_err(|e| fail(QueryErrorKind::Compile(e)))?;
    let sym = binary
        .symbol_index(function)
        .ok_or_else(|| fail(QueryErrorKind::MissingFunction))?;
    let f = extract_function_with(&binary, sym, inline_beta, limits)
        .map_err(|e| fail(QueryErrorKind::Extract(e)))?;
    Ok(encode_function(model, &f))
}

/// Descending-score ordering that is total: NaN ranks **last** (a
/// degenerate encoding must sink to the bottom of the ranking, not panic
/// the sort or float to the top as `total_cmp`'s `NaN > ∞` would).
fn rank_order(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (false, false) => b.total_cmp(&a),
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
    }
}

/// Ranks the whole index against one query. Scoring fans out per
/// function in index order; the final (stable) sort runs on the merged
/// scores, so the ranking is identical at every thread count.
pub(crate) fn rank_impl(
    model: &AsteriaModel,
    index: &SearchIndex,
    query: &FunctionEncoding,
    threads: usize,
) -> Vec<SearchHit> {
    let timer = asteria_obs::timer();
    let scores = asteria_exec::par_map_chunked(threads, 0, &index.functions, |f| {
        function_similarity(model, query, &f.encoding)
    });
    timer.observe_seconds("asteria_search_seconds", &[]);
    let mut hits: Vec<SearchHit> = scores
        .into_iter()
        .enumerate()
        .map(|(function, score)| SearchHit { function, score })
        .collect();
    hits.sort_by(|a, b| rank_order(a.score, b.score));
    hits
}

/// The Table IV experiment over explicit components. The CVE queries
/// encode in parallel, then each per-CVE ranking scores the index in
/// parallel; error selection (first failing CVE in library order) and
/// all results are independent of the thread count.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_impl(
    model: &AsteriaModel,
    index: &SearchIndex,
    firmware: &[FirmwareImage],
    library: &[CveEntry],
    threshold: f64,
    query_arch: Arch,
    threads: usize,
    inline_beta: usize,
    limits: &DecompileLimits,
) -> Result<Vec<CveSearchResult>, QueryError> {
    let mut search_span = asteria_obs::span("online-search");
    search_span.set_items(library.len() as u64);
    // Fan the CVE set out for query encoding, then surface the first
    // failure in deterministic library order.
    let queries = asteria_exec::par_map_threads(threads, library, |entry| {
        encode_query_impl(
            model,
            entry.id,
            &entry.vulnerable_source,
            entry.function,
            query_arch,
            inline_beta,
            limits,
        )
    });
    let mut results = Vec::with_capacity(library.len());
    for (cve_index, (entry, query)) in library.iter().zip(queries).enumerate() {
        let query = query?;
        let hits = rank_impl(model, index, &query, threads);
        let mut candidates = 0;
        let mut confirmed = 0;
        let mut affected: Vec<String> = Vec::new();
        for h in &hits {
            // A NaN score compares as incomparable (never ≥ threshold),
            // so it also stops the candidate scan.
            let at_or_above = matches!(
                h.score.partial_cmp(&threshold),
                Some(Ordering::Greater | Ordering::Equal)
            );
            if !at_or_above {
                break;
            }
            candidates += 1;
            let f = &index.functions[h.function];
            if f.ground_truth == Some((cve_index, true)) {
                confirmed += 1;
                let img = &firmware[f.image];
                let label = format!("{} {}", img.vendor, img.model);
                if !affected.contains(&label) {
                    affected.push(label);
                }
            }
        }
        let top_hits: Vec<bool> = hits
            .iter()
            .take(10)
            .map(|h| index.functions[h.function].ground_truth == Some((cve_index, true)))
            .collect();
        let top10_hits = top_hits.iter().filter(|h| **h).count();
        let total_vulnerable = index
            .functions
            .iter()
            .filter(|f| f.ground_truth == Some((cve_index, true)))
            .count();
        results.push(CveSearchResult {
            cve: entry.id.to_string(),
            software: entry.software.to_string(),
            function: entry.function.to_string(),
            candidates,
            confirmed,
            total_vulnerable,
            affected_models: affected,
            top_hits,
            top10_hits,
        });
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::firmware::{build_firmware_corpus, FirmwareConfig};
    use crate::library::vulnerability_library;
    use asteria_core::ModelConfig;

    fn fixture() -> (AsteriaModel, Vec<FirmwareImage>, SearchIndex) {
        let model = AsteriaModel::new(ModelConfig {
            hidden_dim: 12,
            embed_dim: 8,
            ..Default::default()
        });
        let firmware = build_firmware_corpus(
            &FirmwareConfig {
                images: 5,
                ..Default::default()
            },
            &vulnerability_library(),
        );
        let index = IndexBuilder::new(&model)
            .build(&firmware)
            .expect("in-memory build")
            .index;
        (model, firmware, index)
    }

    #[test]
    fn index_covers_all_functions() {
        let (_, firmware, index) = fixture();
        let expected: usize = firmware.iter().map(|i| i.function_count()).sum();
        // Some tiny functions may be filtered by the AST-size rule, but
        // most must be present.
        assert!(index.len() > expected / 2, "{} of {expected}", index.len());
    }

    #[test]
    fn ground_truth_is_attached() {
        let (_, firmware, index) = fixture();
        let planted: usize = firmware.iter().map(|i| i.planted.len()).sum();
        let attached = index
            .functions
            .iter()
            .filter(|f| f.ground_truth.is_some())
            .count();
        assert_eq!(attached, planted);
    }

    #[test]
    fn session_rank_is_sorted_descending() {
        let (model, _, index) = fixture();
        let lib = vulnerability_library();
        let total = index.len();
        let session = SearchSession::new(model, index);
        let q = session
            .encode_cve(&lib[0], Arch::X86)
            .expect("query encodes");
        let hits = session.rank(&q);
        assert_eq!(hits.len(), total);
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn session_run_produces_one_result_per_cve() {
        let (model, firmware, index) = fixture();
        let lib = vulnerability_library();
        let session = SearchSession::new(model, index);
        let results = session
            .run(&firmware, &lib, 0.5, Arch::X86)
            .expect("queries encode");
        assert_eq!(results.len(), 7);
        for r in &results {
            assert!(r.confirmed <= r.candidates);
            assert!(r.top_hits.len() <= 10);
            assert_eq!(r.top10_hits, r.top_hits.iter().filter(|h| **h).count());
        }
    }

    #[test]
    fn session_encode_surfaces_typed_errors() {
        let (model, _, index) = fixture();
        let session = SearchSession::new(model, index);
        let bad = FunctionQuery::new("CVE-0000-0000", "int nope( { broken", "nope", Arch::X86);
        let err = session.query(&bad).expect_err("must fail");
        assert_eq!(err.cve, "CVE-0000-0000");
        assert!(matches!(err.kind, QueryErrorKind::Parse(_)), "{err:?}");
        assert!(err.to_string().contains("does not parse"), "{err}");

        let missing = FunctionQuery::new("q", "int other() { return 1; }", "nope", Arch::X86);
        let err = session.query(&missing).expect_err("must fail");
        assert!(
            matches!(err.kind, QueryErrorKind::MissingFunction),
            "{err:?}"
        );
    }

    #[test]
    fn session_run_surfaces_query_errors() {
        let (model, firmware, index) = fixture();
        let mut lib = vulnerability_library();
        lib[2].vulnerable_source = "not even close to MiniC".into();
        let session = SearchSession::new(model, index);
        let err = session
            .run(&firmware, &lib, 0.5, Arch::X86)
            .expect_err("bad library entry must surface");
        assert_eq!(err.cve, lib[2].id);
    }

    #[test]
    fn index_reports_full_extraction_on_clean_corpus() {
        let (_, firmware, index) = fixture();
        let expected: usize = firmware.iter().map(|i| i.function_count()).sum();
        assert_eq!(index.extraction.total, expected);
        assert_eq!(index.extraction.skipped, 0);
    }

    #[test]
    fn corrupted_corpus_completes_with_skips_reported() {
        let model = AsteriaModel::new(ModelConfig {
            hidden_dim: 12,
            embed_dim: 8,
            ..Default::default()
        });
        let mut firmware = build_firmware_corpus(
            &FirmwareConfig {
                images: 3,
                ..Default::default()
            },
            &vulnerability_library(),
        );
        // Corrupt one function per image: undecodable garbage bytes.
        let mut corrupted = 0usize;
        for img in &mut firmware {
            if let Some(binary) = img.binaries.first_mut() {
                if let Some(sym) = binary.symbols.first_mut() {
                    sym.code = vec![0xff; 7];
                    corrupted += 1;
                }
            }
        }
        assert!(corrupted > 0);
        let index = IndexBuilder::new(&model)
            .build(&firmware)
            .expect("builds")
            .index;
        assert_eq!(index.extraction.skipped, corrupted);
        assert!(index.extraction.decode_errors >= corrupted);
        assert!(!index.is_empty());
        // The whole search pipeline still runs end to end.
        let lib = vulnerability_library();
        let extraction = index.extraction;
        let session = SearchSession::new(model, index);
        let results = session
            .run(&firmware, &lib, 0.5, Arch::X86)
            .expect("queries encode");
        assert_eq!(results.len(), lib.len());
        let report = crate::report::render_report_with_extraction(&results, 0.5, &extraction);
        assert!(report.contains("## Corpus coverage"));
        assert!(report.contains(&format!("{corrupted} skipped")));
    }

    #[test]
    fn query_batch_is_bit_identical_to_individual_queries_and_dedups() {
        let (model, _, index) = fixture();
        let lib = vulnerability_library();
        let session = SearchSession::new(model, index);
        // A batch with duplicates (same answer identity, distinct labels)
        // and one failing query in the middle.
        let mut batch: Vec<FunctionQuery> = lib
            .iter()
            .take(3)
            .map(|e| FunctionQuery::for_cve(e, Arch::X86))
            .collect();
        batch.push(FunctionQuery::for_cve(&lib[0], Arch::X86));
        let mut dup_relabel = FunctionQuery::for_cve(&lib[1], Arch::X86);
        dup_relabel.label = "client-7".into();
        batch.push(dup_relabel);
        batch.push(FunctionQuery::new(
            "bad",
            "int broken(",
            "broken",
            Arch::X86,
        ));

        let batched = session.query_batch(&batch);
        assert_eq!(batched.len(), batch.len());
        for (q, got) in batch.iter().zip(&batched) {
            match (session.query(q), got) {
                (Ok(want), Ok(got)) => {
                    assert_eq!(want.total_ranked, got.total_ranked);
                    assert_eq!(want.hits.len(), got.hits.len());
                    for (a, b) in want.hits.iter().zip(&got.hits) {
                        assert_eq!(a.function, b.function);
                        assert_eq!(a.score.to_bits(), b.score.to_bits(), "{}", q.label);
                    }
                }
                (Err(want), Err(got)) => {
                    assert_eq!(want.cve, got.cve);
                    assert_eq!(want.kind, got.kind);
                }
                (want, got) => panic!("outcome mismatch for {}: {want:?} vs {got:?}", q.label),
            }
        }
        // The relabeled duplicate keeps its own label on success paths
        // too — labels never leak across deduplicated answers.
        assert!(batched[4].is_ok());
    }

    #[test]
    fn top_k_truncation_and_full_ranking() {
        let (model, _, index) = fixture();
        let total = index.len();
        let lib = vulnerability_library();
        let session = SearchSession::new(model, index);
        let q5 = FunctionQuery::for_cve(&lib[0], Arch::X86).top_k(5);
        let got = session.query(&q5).expect("encodes");
        assert_eq!(got.hits.len(), 5.min(total));
        assert_eq!(got.total_ranked, total);
        let all = session
            .query(&FunctionQuery::for_cve(&lib[0], Arch::X86).top_k(0))
            .expect("encodes");
        assert_eq!(all.hits.len(), total);
    }

    #[test]
    fn warm_cached_build_is_bit_identical_and_all_hits() {
        let (model, firmware, cold_index) = fixture();
        let mut cache =
            IndexCache::for_model(&model, DEFAULT_INLINE_BETA, &DecompileLimits::default());
        let builder = IndexBuilder::new(&model);
        let (first, cold_stats) = builder.build_into(&firmware, &mut cache);
        let units: usize = firmware.iter().map(|i| i.binaries.len()).sum();
        assert_eq!(cold_stats.misses, units);
        assert_eq!(cold_stats.hits, 0);
        assert_eq!(first, cold_index, "cached cold build == plain build");

        let (second, warm_stats) = builder.build_into(&firmware, &mut cache);
        assert_eq!(warm_stats.hits, units, "{warm_stats}");
        assert_eq!(warm_stats.misses, 0);
        assert_eq!(warm_stats.evicted, 0);
        assert_eq!(second, cold_index, "warm build must be bit-identical");
    }

    #[test]
    fn changing_one_binary_re_encodes_only_that_binary() {
        let (model, mut firmware, _) = fixture();
        let mut cache =
            IndexCache::for_model(&model, DEFAULT_INLINE_BETA, &DecompileLimits::default());
        let builder = IndexBuilder::new(&model);
        builder.build_into(&firmware, &mut cache);
        let units: usize = firmware.iter().map(|i| i.binaries.len()).sum();
        // Corrupt one function body: that binary's fingerprint changes.
        firmware[0].binaries[0].symbols[0].code = vec![0xff; 7];
        let (index, stats) = builder.build_into(&firmware, &mut cache);
        assert_eq!(stats.misses, 1, "{stats}");
        assert_eq!(stats.hits, units - 1);
        assert_eq!(stats.evicted, 1, "the old entry for that binary is stale");
        assert_eq!(index.extraction.skipped, 1);
        // And it matches an uncached build of the modified corpus.
        let fresh = IndexBuilder::new(&model)
            .build(&firmware)
            .expect("builds")
            .index;
        assert_eq!(index, fresh);
    }

    #[test]
    fn changing_model_weights_invalidates_the_whole_cache() {
        let (model, firmware, _) = fixture();
        let mut cache =
            IndexCache::for_model(&model, DEFAULT_INLINE_BETA, &DecompileLimits::default());
        IndexBuilder::new(&model).build_into(&firmware, &mut cache);
        let entries = cache.len();
        assert!(entries > 0);
        // A different seed → different weights → different digest.
        let retrained = AsteriaModel::new(ModelConfig {
            hidden_dim: 12,
            embed_dim: 8,
            seed: 0xBEEF,
            ..Default::default()
        });
        let (index, stats) = IndexBuilder::new(&retrained).build_into(&firmware, &mut cache);
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.evicted, entries, "{stats}");
        let fresh = IndexBuilder::new(&retrained)
            .build(&firmware)
            .expect("builds")
            .index;
        assert_eq!(index, fresh);
        assert_eq!(cache.model_digest, retrained.weights_digest());
    }

    #[test]
    fn shrinking_corpus_evicts_dropped_binaries() {
        let (model, mut firmware, _) = fixture();
        let mut cache =
            IndexCache::for_model(&model, DEFAULT_INLINE_BETA, &DecompileLimits::default());
        let builder = IndexBuilder::new(&model);
        builder.build_into(&firmware, &mut cache);
        let dropped = firmware.pop().expect("fixture has images");
        let (_, stats) = builder.build_into(&firmware, &mut cache);
        assert_eq!(stats.misses, 0);
        assert_eq!(stats.evicted, dropped.binaries.len(), "{stats}");
    }

    #[test]
    fn cache_path_roundtrip_and_corrupt_file_degrades_to_cold() {
        let (model, firmware, plain) = fixture();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("asteria_session_cache_{}.asix", std::process::id()));
        let _ = std::fs::remove_file(&path);

        // Cold build against a missing file, then a warm rebuild from it.
        let cold = IndexBuilder::new(&model)
            .cache(&path)
            .build(&firmware)
            .expect("cold build");
        assert_eq!(cold.stats.hits, 0);
        assert_eq!(cold.index, plain, "cache path must not change the index");
        let warm = IndexBuilder::new(&model)
            .cache(&path)
            .build(&firmware)
            .expect("warm build");
        assert_eq!(warm.stats.misses, 0, "{}", warm.stats);
        assert_eq!(warm.index, plain);

        // Corrupt contents: warn + cold rebuild, never an error.
        std::fs::write(&path, b"definitely not ASIX").expect("overwrite");
        let recovered = IndexBuilder::new(&model)
            .cache(&path)
            .build(&firmware)
            .expect("corrupt cache degrades to cold");
        assert_eq!(recovered.stats.hits, 0);
        assert!(recovered.stats.misses > 0);
        assert_eq!(recovered.index, plain);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn nan_scores_rank_last_and_never_panic() {
        let (model, _, mut index) = fixture();
        assert!(index.len() >= 3);
        // A degenerate encoding: every component NaN. The similarity it
        // produces is NaN, which must sink to the bottom of the ranking.
        let dim = index.functions[0].encoding.vector.len();
        index.functions[1].encoding.vector = vec![f32::NAN; dim];
        let lib = vulnerability_library();
        let total = index.len();
        let session = SearchSession::new(model, index);
        let q = session
            .encode_cve(&lib[0], Arch::X86)
            .expect("query encodes");
        let hits = session.rank(&q);
        assert_eq!(hits.len(), total);
        let last = hits.last().expect("non-empty");
        assert!(last.score.is_nan(), "NaN must rank last: {last:?}");
        assert_eq!(last.function, 1);
        assert!(hits[..hits.len() - 1].iter().all(|h| !h.score.is_nan()));
    }
}
