//! Report rendering: turns search results into the markdown table shape
//! of the paper's Table IV.

use std::fmt::Write;

use asteria_core::ExtractionReport;

use crate::index_io::CacheStats;
use crate::search::CveSearchResult;

/// Renders Table IV-style markdown from per-CVE search results.
///
/// # Examples
///
/// ```
/// use asteria_vulnsearch::{render_report, CveSearchResult};
///
/// let results = vec![CveSearchResult {
///     cve: "CVE-2016-2105".into(),
///     software: "openssl".into(),
///     function: "evp_encode_update".into(),
///     candidates: 11,
///     confirmed: 5,
///     total_vulnerable: 5,
///     affected_models: vec!["netguard R8".into()],
///     top_hits: vec![true, true, true, true, true, false, false, false, false, false],
///     top10_hits: 5,
/// }];
/// let md = render_report(&results, 0.62);
/// assert!(md.contains("CVE-2016-2105"));
/// assert!(md.contains("| 5 |"));
/// ```
pub fn render_report(results: &[CveSearchResult], threshold: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Vulnerability search report (threshold {threshold:.2})"
    );
    out.push('\n');
    out.push_str(
        "| # | CVE | software | function | candidates | confirmed | planted | affected models |\n",
    );
    out.push_str(
        "|---|-----|----------|----------|------------|-----------|---------|------------------|\n",
    );
    let mut total_confirmed = 0;
    let mut total_planted = 0;
    for (i, r) in results.iter().enumerate() {
        let models = if r.affected_models.is_empty() {
            "—".to_string()
        } else {
            r.affected_models.join(", ")
        };
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {} | {} |",
            i + 1,
            r.cve,
            r.software,
            r.function,
            r.candidates,
            r.confirmed,
            r.total_vulnerable,
            models
        );
        total_confirmed += r.confirmed;
        total_planted += r.total_vulnerable;
    }
    out.push('\n');
    let _ = writeln!(
        out,
        "confirmed {total_confirmed} of {total_planted} planted vulnerable functions"
    );
    out
}

/// Renders the full report including the corpus extraction outcome: the
/// Table IV body plus a coverage section stating how many firmware
/// functions were skipped during offline encoding (and why).
///
/// # Examples
///
/// ```
/// use asteria_core::ExtractionReport;
/// use asteria_vulnsearch::render_report_with_extraction;
///
/// let extraction = ExtractionReport {
///     total: 10,
///     extracted: 9,
///     skipped: 1,
///     decode_errors: 1,
///     ..Default::default()
/// };
/// let md = render_report_with_extraction(&[], 0.5, &extraction);
/// assert!(md.contains("## Corpus coverage"));
/// assert!(md.contains("1 skipped"));
/// ```
pub fn render_report_with_extraction(
    results: &[CveSearchResult],
    threshold: f64,
    extraction: &ExtractionReport,
) -> String {
    let mut out = render_report(results, threshold);
    out.push('\n');
    out.push_str("## Corpus coverage\n\n");
    let _ = writeln!(out, "{extraction}");
    out
}

/// Renders the full report including the corpus extraction outcome
/// *and* the embedding-cache accounting of an incremental
/// [`build_search_index_cached`](crate::build_search_index_cached)
/// build: how many binaries were served warm from the ASIX cache, how
/// many were encoded cold, and how many stale entries were evicted.
///
/// # Examples
///
/// ```
/// use asteria_core::ExtractionReport;
/// use asteria_vulnsearch::{render_report_with_cache, CacheStats};
///
/// let extraction = ExtractionReport { total: 10, extracted: 10, ..Default::default() };
/// let stats = CacheStats { hits: 3, misses: 1, evicted: 2 };
/// let md = render_report_with_cache(&[], 0.5, &extraction, &stats);
/// assert!(md.contains("3 hits, 1 misses, 2 evicted"));
/// ```
pub fn render_report_with_cache(
    results: &[CveSearchResult],
    threshold: f64,
    extraction: &ExtractionReport,
    cache: &CacheStats,
) -> String {
    let mut out = render_report_with_extraction(results, threshold, extraction);
    let _ = writeln!(out, "embedding cache: {cache}");
    out
}

/// Per-CVE recall line summary (compact log form).
pub fn render_summary_lines(results: &[CveSearchResult]) -> Vec<String> {
    results
        .iter()
        .map(|r| {
            format!(
                "{}: {}/{} confirmed ({} candidates, top10 {})",
                r.cve, r.confirmed, r.total_vulnerable, r.candidates, r.top10_hits
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<CveSearchResult> {
        vec![
            CveSearchResult {
                cve: "CVE-A".into(),
                software: "s1".into(),
                function: "f1".into(),
                candidates: 3,
                confirmed: 2,
                total_vulnerable: 2,
                affected_models: vec!["v m1".into(), "v m2".into()],
                top_hits: vec![true, true, false],
                top10_hits: 2,
            },
            CveSearchResult {
                cve: "CVE-B".into(),
                software: "s2".into(),
                function: "f2".into(),
                candidates: 0,
                confirmed: 0,
                total_vulnerable: 1,
                affected_models: vec![],
                top_hits: vec![false, false],
                top10_hits: 0,
            },
        ]
    }

    #[test]
    fn report_contains_all_rows_and_totals() {
        let md = render_report(&sample(), 0.5);
        assert!(md.contains("CVE-A"));
        assert!(md.contains("CVE-B"));
        assert!(md.contains("v m1, v m2"));
        assert!(md.contains("| — |"));
        assert!(md.contains("confirmed 2 of 3"));
    }

    #[test]
    fn cache_stats_render_into_the_coverage_section() {
        let extraction = ExtractionReport {
            total: 4,
            extracted: 4,
            ..Default::default()
        };
        let stats = CacheStats {
            hits: 2,
            misses: 2,
            evicted: 1,
        };
        let md = render_report_with_cache(&sample(), 0.5, &extraction, &stats);
        assert!(md.contains("## Corpus coverage"), "{md}");
        assert!(
            md.contains("embedding cache: 2 hits, 2 misses, 1 evicted"),
            "{md}"
        );
    }

    #[test]
    fn summary_lines_are_one_per_cve() {
        let lines = render_summary_lines(&sample());
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("2/2 confirmed"));
        assert!(lines[1].contains("0/1 confirmed"));
    }
}
