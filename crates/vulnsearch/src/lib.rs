//! `asteria-vulnsearch` — the paper's §V application: IoT-firmware
//! vulnerability search.
//!
//! The paper encodes 5,979 vendor firmware images offline, then ranks all
//! firmware functions against seven CVE queries by calibrated similarity,
//! thresholding at the Youden-index operating point. Vendor firmware
//! cannot ship here, so:
//!
//! - [`library`] supplies seven CVE-like MiniC vulnerable functions (with
//!   patched variants, the way fixed firmware versions differ);
//! - [`firmware`] builds a stripped, ARM-heavy synthetic firmware corpus
//!   with those functions planted under recorded ground truth;
//! - [`search`] reproduces the pipeline end to end: offline encoding of
//!   the corpus, per-CVE ranking, Table IV scoring, and the top-k accuracy
//!   metric of the Asteria-vs-Gemini end-to-end comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod firmware;
pub mod index_io;
pub mod library;
pub mod report;
pub mod search;
pub mod session;

pub use firmware::{build_firmware_corpus, FirmwareConfig, FirmwareImage, PlantedFunction};
pub use index_io::{
    extraction_params_digest, fingerprint_binary, CacheStats, CachedBinary, CachedFunction,
    IndexCache, IndexError, ASIX_MAGIC, ASIX_VERSION,
};
pub use library::{vulnerability_library, CveEntry};
pub use report::{
    render_report, render_report_with_cache, render_report_with_extraction, render_summary_lines,
};
#[allow(deprecated)]
pub use search::{
    build_search_index, build_search_index_cached, build_search_index_cached_threads,
    build_search_index_threads, encode_query, run_search, run_search_threads, search,
    search_threads,
};
pub use search::{
    top_k_accuracy, CveSearchResult, IndexedFunction, QueryError, QueryErrorKind, SearchHit,
    SearchIndex,
};
pub use session::{
    FunctionQuery, IndexBuild, IndexBuilder, QueryOutcome, SearchSession, DEFAULT_TOP_K,
};
