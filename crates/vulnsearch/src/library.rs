//! The vulnerability library: seven CVE-like entries (paper §V, Table IV).
//!
//! The real study searches for seven CVEs from OpenSSL, wget, libcurl and
//! vsftpd. Those binaries cannot ship here, so each entry is a MiniC
//! function modelled on the *shape* of the real vulnerable routine (buffer
//! encode loops, fragment reassembly, glob parsing, …) together with a
//! patched variant that differs the way real patches do — an added bounds
//! check or corrected guard. The search task is then identical in
//! structure: find the vulnerable variant planted in stripped firmware.

/// One entry of the vulnerability library.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CveEntry {
    /// CVE-style identifier.
    pub id: &'static str,
    /// Host software package.
    pub software: &'static str,
    /// Vulnerable function name.
    pub function: &'static str,
    /// MiniC source of the vulnerable version.
    pub vulnerable_source: String,
    /// MiniC source of the patched version (same name, fixed logic).
    pub patched_source: String,
}

/// Builds the seven-entry library mirroring Table IV.
pub fn vulnerability_library() -> Vec<CveEntry> {
    vec![
        CveEntry {
            id: "CVE-2016-2105",
            software: "openssl",
            function: "evp_encode_update",
            // Base64-style encode loop missing an overflow check.
            vulnerable_source: "int evp_encode_update(int inl, int pos) { \
                int out[16]; int o = 0; int n = pos; \
                while (inl > 0) { n += 1; \
                  if (n >= 48) { int chunk = n / 3; \
                    for (int i = 0; i < chunk % 8; i++) { out[o + i] = (n >> i) & 63; } \
                    o += chunk; n = 0; ext_write(o); } \
                  inl -= 1; } \
                for (int i = 0; i < 4; i++) { out[i] = out[i] ^ 32; } \
                return o + n; }"
                .into(),
            patched_source: "int evp_encode_update(int inl, int pos) { \
                int out[16]; int o = 0; int n = pos; \
                while (inl > 0) { n += 1; \
                  if (n >= 48) { int chunk = n / 3; \
                    if (o + chunk > 16) { ext_log(\"overflow\", o); return 0 - 1; } \
                    for (int i = 0; i < chunk % 8; i++) { out[o + i] = (n >> i) & 63; } \
                    o += chunk; n = 0; ext_write(o); } \
                  inl -= 1; } \
                for (int i = 0; i < 4; i++) { out[i] = out[i] ^ 32; } \
                return o + n; }"
                .into(),
        },
        CveEntry {
            id: "CVE-2014-4877",
            software: "wget",
            function: "ftp_retrieve_glob",
            // Symlink-following glob retrieval without a type check.
            vulnerable_source: "int ftp_retrieve_glob(int count, int flags) { \
                int got = 0; \
                for (int i = 0; i < count % 16; i++) { \
                  int kind = ext_read(i); \
                  if (kind == 2 && (flags & 4) == 0) { continue; } \
                  int rc = ext_recv(i, kind); \
                  if (rc < 0) { ext_log(\"retrieve failed\", i); break; } \
                  got += 1; } \
                return got; }"
                .into(),
            patched_source: "int ftp_retrieve_glob(int count, int flags) { \
                int got = 0; \
                for (int i = 0; i < count % 16; i++) { \
                  int kind = ext_read(i); \
                  if (kind == 3) { ext_log(\"symlink skipped\", i); continue; } \
                  if (kind == 2 && (flags & 4) == 0) { continue; } \
                  int rc = ext_recv(i, kind); \
                  if (rc < 0) { ext_log(\"retrieve failed\", i); break; } \
                  got += 1; } \
                return got; }"
                .into(),
        },
        CveEntry {
            id: "CVE-2014-0195",
            software: "openssl",
            function: "dtls1_reassemble_fragment",
            // Fragment reassembly trusting the declared length.
            vulnerable_source: "int dtls1_reassemble_fragment(int frag_off, int frag_len) { \
                int buf[32]; int total = 0; \
                int end = frag_off + frag_len; \
                for (int i = frag_off; i < end % 64; i++) { \
                  buf[i] = ext_read(i) & 255; total += 1; } \
                if (total > 0) { ext_send(total, frag_off); } \
                return total; }"
                .into(),
            patched_source: "int dtls1_reassemble_fragment(int frag_off, int frag_len) { \
                int buf[32]; int total = 0; \
                if (frag_off + frag_len > 32) { ext_log(\"bad fragment\", frag_len); \
                  return 0 - 1; } \
                int end = frag_off + frag_len; \
                for (int i = frag_off; i < end % 64; i++) { \
                  buf[i] = ext_read(i) & 255; total += 1; } \
                if (total > 0) { ext_send(total, frag_off); } \
                return total; }"
                .into(),
        },
        CveEntry {
            id: "CVE-2016-6303",
            software: "openssl",
            function: "mdc2_update",
            // Digest update with an integer-overflowing length computation.
            vulnerable_source: "int mdc2_update(int len, int md_i) { \
                int h = md_i; int i = 0; \
                while (i < len % 32) { \
                  h = ((h << 5) + h) ^ ext_read(i); \
                  h = h & 2147483647; i += 2; } \
                ext_hash(h); return h; }"
                .into(),
            patched_source: "int mdc2_update(int len, int md_i) { \
                int h = md_i; int i = 0; \
                if (len < 0) { return 0; } \
                while (i < len % 32) { \
                  h = ((h << 5) + h) ^ ext_read(i); \
                  h = h & 2147483647; i += 2; } \
                ext_hash(h); return h; }"
                .into(),
        },
        CveEntry {
            id: "CVE-2016-8618",
            software: "curl",
            function: "curl_maprintf",
            // printf-style formatter with an unchecked width multiply.
            vulnerable_source: "int curl_maprintf(int width, int prec) { \
                int produced = 0; \
                for (int i = 0; i < 8; i++) { \
                  int need = width * prec + i; \
                  int cell = ext_alloc(need); \
                  if (cell == 0) { break; } \
                  produced += need % 7; } \
                ext_write(produced); return produced; }"
                .into(),
            patched_source: "int curl_maprintf(int width, int prec) { \
                int produced = 0; \
                for (int i = 0; i < 8; i++) { \
                  if (width != 0 && prec > 1000000 / width) { \
                    ext_log(\"width overflow\", width); return 0 - 1; } \
                  int need = width * prec + i; \
                  int cell = ext_alloc(need); \
                  if (cell == 0) { break; } \
                  produced += need % 7; } \
                ext_write(produced); return produced; }"
                .into(),
        },
        CveEntry {
            id: "CVE-2013-1944",
            software: "curl",
            function: "tailmatch",
            // Suffix cookie-domain match that ignores embedded separators.
            vulnerable_source: "int tailmatch(int alen, int blen) { \
                if (blen > alen) { return 0; } \
                int i = 0; int ok = 1; \
                while (i < blen % 24) { \
                  int ca = ext_read(alen - blen + i); \
                  int cb = ext_read(i + 4096); \
                  if ((ca | 32) != (cb | 32)) { ok = 0; break; } \
                  i += 1; } \
                return ok; }"
                .into(),
            patched_source: "int tailmatch(int alen, int blen) { \
                if (blen > alen) { return 0; } \
                if (blen != alen) { \
                  int sep = ext_read(alen - blen - 1); \
                  if (sep != 46) { return 0; } } \
                int i = 0; int ok = 1; \
                while (i < blen % 24) { \
                  int ca = ext_read(alen - blen + i); \
                  int cb = ext_read(i + 4096); \
                  if ((ca | 32) != (cb | 32)) { ok = 0; break; } \
                  i += 1; } \
                return ok; }"
                .into(),
        },
        CveEntry {
            id: "CVE-2011-0762",
            software: "vsftpd",
            function: "vsf_filename_passes_filter",
            // Glob filter with unbounded backtracking state.
            vulnerable_source: "int vsf_filename_passes_filter(int name_len, int filt_len) { \
                int matched = 0; int iters = 0; \
                int i = 0; int j = 0; \
                while (i < name_len % 24 && j < filt_len % 24) { \
                  iters += 1; \
                  int fc = ext_read(j + 256); \
                  if (fc == 42) { j += 1; i += 1; matched += 1; continue; } \
                  if (fc == ext_read(i)) { i += 1; j += 1; matched += 1; } \
                  else { i += 1; } } \
                return matched * 100 + iters; }"
                .into(),
            patched_source: "int vsf_filename_passes_filter(int name_len, int filt_len) { \
                int matched = 0; int iters = 0; \
                int i = 0; int j = 0; \
                while (i < name_len % 24 && j < filt_len % 24) { \
                  iters += 1; \
                  if (iters > 100) { ext_log(\"filter too complex\", iters); return 0; } \
                  int fc = ext_read(j + 256); \
                  if (fc == 42) { j += 1; i += 1; matched += 1; continue; } \
                  if (fc == ext_read(i)) { i += 1; j += 1; matched += 1; } \
                  else { i += 1; } } \
                return matched * 100 + iters; }"
                .into(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use asteria_compiler::{compile_program, Arch};
    use asteria_lang::parse;

    #[test]
    fn library_has_seven_entries() {
        assert_eq!(vulnerability_library().len(), 7);
    }

    #[test]
    fn all_sources_parse_and_compile() {
        for e in vulnerability_library() {
            for src in [&e.vulnerable_source, &e.patched_source] {
                let p = parse(src).unwrap_or_else(|err| panic!("{}: {err}", e.id));
                assert_eq!(p.functions[0].name, e.function);
                for arch in Arch::ALL {
                    compile_program(&p, arch)
                        .unwrap_or_else(|err| panic!("{} on {arch}: {err}", e.id));
                }
            }
        }
    }

    #[test]
    fn vulnerable_and_patched_differ() {
        for e in vulnerability_library() {
            assert_ne!(e.vulnerable_source, e.patched_source, "{}", e.id);
        }
    }

    #[test]
    fn entries_are_distinct_functions() {
        let lib = vulnerability_library();
        for i in 0..lib.len() {
            for j in i + 1..lib.len() {
                assert_ne!(lib[i].function, lib[j].function);
                assert_ne!(lib[i].id, lib[j].id);
            }
        }
    }
}
