//! Synthetic firmware corpus (the paper's Firmware dataset substitute).
//!
//! Each image belongs to a vendor/model/version, targets one architecture
//! (distributed like the paper's Table II: mostly ARM, then PPC), bundles
//! several filler packages, and — for a random subset of CVE entries —
//! includes the host software with either the vulnerable or the patched
//! function version. All binaries are **stripped**, as release firmware
//! is, so search must work on `sub_<offset>` names. Ground truth about the
//! planted functions is recorded separately for scoring.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use asteria_compiler::{compile_program, Arch, Binary};
use asteria_datasets::{generate_package, GenConfig};
use asteria_lang::parse;

use crate::library::CveEntry;

/// Firmware corpus parameters.
#[derive(Debug, Clone, Copy)]
pub struct FirmwareConfig {
    /// Number of firmware images.
    pub images: usize,
    /// Filler packages per image.
    pub packages_per_image: usize,
    /// Functions per filler package.
    pub functions_per_package: usize,
    /// Probability an image ships a given CVE's host software at all.
    pub include_probability: f64,
    /// Probability the shipped copy is the *vulnerable* version.
    pub vulnerable_probability: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for FirmwareConfig {
    fn default() -> Self {
        FirmwareConfig {
            images: 12,
            packages_per_image: 2,
            functions_per_package: 4,
            include_probability: 0.5,
            vulnerable_probability: 0.5,
            seed: 77,
        }
    }
}

/// Ground truth about one planted library function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlantedFunction {
    /// Index into the vulnerability library.
    pub cve_index: usize,
    /// Binary index within the image.
    pub binary_index: usize,
    /// Stripped display name (`sub_<offset>`).
    pub display_name: String,
    /// True when the planted copy is the vulnerable version.
    pub vulnerable: bool,
}

/// One firmware image.
#[derive(Debug, Clone)]
pub struct FirmwareImage {
    /// Vendor name.
    pub vendor: String,
    /// Device model.
    pub model: String,
    /// Firmware version string.
    pub version: String,
    /// Target architecture.
    pub arch: Arch,
    /// Stripped binaries unpacked from the image.
    pub binaries: Vec<Binary>,
    /// Ground truth for scoring (not visible to the search).
    pub planted: Vec<PlantedFunction>,
}

impl FirmwareImage {
    /// Total number of defined functions across the image's binaries.
    pub fn function_count(&self) -> usize {
        self.binaries
            .iter()
            .map(|b| b.function_indices().len())
            .sum()
    }
}

const VENDORS: &[(&str, &[&str])] = &[
    ("netguard", &["R7", "D7", "R8", "FV3"]),
    ("dlane", &["DSN6", "DIR8"]),
    ("schnell", &["PLC2", "ION7"]),
];

fn pick_arch(rng: &mut StdRng) -> Arch {
    // Table II firmware distribution: ARM-heavy, then PPC.
    let roll: f64 = rng.gen();
    if roll < 0.60 {
        Arch::Arm
    } else if roll < 0.85 {
        Arch::Ppc
    } else if roll < 0.93 {
        Arch::X64
    } else {
        Arch::X86
    }
}

/// Builds a firmware corpus.
///
/// # Panics
///
/// Panics if any embedded source fails to compile (covered by library and
/// generator tests).
pub fn build_firmware_corpus(config: &FirmwareConfig, library: &[CveEntry]) -> Vec<FirmwareImage> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut images = Vec::with_capacity(config.images);
    for img_idx in 0..config.images {
        let (vendor, models) = VENDORS[rng.gen_range(0..VENDORS.len())];
        let model = models[rng.gen_range(0..models.len())].to_string();
        let version = format!("1.{}.{}", rng.gen_range(0..4), rng.gen_range(0..10));
        let arch = pick_arch(&mut rng);

        let mut binaries = Vec::new();
        let mut planted = Vec::new();

        // Filler packages.
        for p in 0..config.packages_per_image {
            let gen_cfg = GenConfig {
                functions: config.functions_per_package,
                max_depth: 2,
                seed: config.seed ^ ((img_idx as u64) << 17) ^ p as u64,
            };
            let (_, program) = generate_package(&format!("fw{img_idx}_pkg{p}"), &gen_cfg);
            let mut binary = compile_program(&program, arch).expect("filler compiles");
            binary.strip();
            binaries.push(binary);
        }

        // CVE host software.
        for (cve_index, entry) in library.iter().enumerate() {
            if !rng.gen_bool(config.include_probability) {
                continue;
            }
            let vulnerable = rng.gen_bool(config.vulnerable_probability);
            let source = if vulnerable {
                &entry.vulnerable_source
            } else {
                &entry.patched_source
            };
            // Surround the library function with a couple of package-local
            // helpers so the binary looks like a real library.
            let gen_cfg = GenConfig {
                functions: 2,
                max_depth: 2,
                seed: config.seed ^ 0xCAFE ^ ((img_idx as u64) << 9) ^ cve_index as u64,
            };
            let (filler_src, _) = generate_package(&format!("lib{img_idx}_{cve_index}"), &gen_cfg);
            let full_src = format!("{filler_src}\n{source}\n");
            let program = parse(&full_src).expect("library source parses");
            let mut binary = compile_program(&program, arch).expect("library compiles");
            let sym = binary
                .symbol_index(entry.function)
                .expect("library function present");
            binary.strip();
            let display_name = binary.symbols[sym].display_name();
            planted.push(PlantedFunction {
                cve_index,
                binary_index: binaries.len(),
                display_name,
                vulnerable,
            });
            binaries.push(binary);
        }

        images.push(FirmwareImage {
            vendor: vendor.to_string(),
            model,
            version,
            arch,
            binaries,
            planted,
        });
    }
    images
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::vulnerability_library;

    fn small() -> Vec<FirmwareImage> {
        build_firmware_corpus(
            &FirmwareConfig {
                images: 4,
                ..Default::default()
            },
            &vulnerability_library(),
        )
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.vendor, y.vendor);
            assert_eq!(x.planted, y.planted);
        }
    }

    #[test]
    fn binaries_are_stripped() {
        for img in small() {
            for b in &img.binaries {
                for idx in b.function_indices() {
                    assert!(b.symbols[idx].name.is_none(), "function kept its name");
                }
            }
        }
    }

    #[test]
    fn planted_ground_truth_is_resolvable() {
        for img in small() {
            for p in &img.planted {
                let b = &img.binaries[p.binary_index];
                let found = b
                    .function_indices()
                    .into_iter()
                    .any(|i| b.symbols[i].display_name() == p.display_name);
                assert!(found, "{} not found in its binary", p.display_name);
            }
        }
    }

    #[test]
    fn corpus_contains_both_versions_somewhere() {
        let images = build_firmware_corpus(
            &FirmwareConfig {
                images: 16,
                ..Default::default()
            },
            &vulnerability_library(),
        );
        let vuln = images
            .iter()
            .flat_map(|i| &i.planted)
            .filter(|p| p.vulnerable)
            .count();
        let patched = images
            .iter()
            .flat_map(|i| &i.planted)
            .filter(|p| !p.vulnerable)
            .count();
        assert!(vuln > 0, "no vulnerable plants");
        assert!(patched > 0, "no patched plants");
    }

    #[test]
    fn arch_distribution_is_arm_heavy() {
        let images = build_firmware_corpus(
            &FirmwareConfig {
                images: 40,
                ..Default::default()
            },
            &vulnerability_library(),
        );
        let arm = images.iter().filter(|i| i.arch == Arch::Arm).count();
        assert!(arm >= 15, "only {arm}/40 ARM images");
    }
}
