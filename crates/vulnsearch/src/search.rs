//! The vulnerability search's data types (paper §V) and the deprecated
//! free-function API.
//!
//! The implementation lives in [`crate::session`]: [`IndexBuilder`] is
//! the offline phase, [`SearchSession`] the online phase. The free
//! functions below are thin `#[deprecated]` wrappers kept so external
//! callers migrate at their own pace; everything in this workspace uses
//! the session API directly.
//!
//! [`IndexBuilder`]: crate::session::IndexBuilder
//! [`SearchSession`]: crate::session::SearchSession

use std::fmt;

use asteria_compiler::{Arch, CompileError};
use asteria_core::{AsteriaModel, ExtractionReport, FunctionEncoding, DEFAULT_INLINE_BETA};
use asteria_decompiler::{DecompileError, DecompileLimits};
use asteria_lang::ParseError;

use crate::firmware::FirmwareImage;
use crate::index_io::{CacheStats, IndexCache};
use crate::library::CveEntry;
use crate::session;

/// One firmware function in the search index.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexedFunction {
    /// Image index in the corpus.
    pub image: usize,
    /// Binary index within the image.
    pub binary: usize,
    /// Stripped display name.
    pub name: String,
    /// Cached offline encoding.
    pub encoding: FunctionEncoding,
    /// Ground truth: `Some((cve_index, vulnerable))` for planted library
    /// functions, `None` for filler code. Used only for scoring.
    pub ground_truth: Option<(usize, bool)>,
}

/// The offline product: every firmware function encoded once.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchIndex {
    /// All indexed functions.
    pub functions: Vec<IndexedFunction>,
    /// Aggregated extraction outcome across the whole corpus: how many
    /// functions were encoded and how many were skipped (and why).
    pub extraction: ExtractionReport,
}

impl SearchIndex {
    /// Number of indexed functions.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }
}

/// Why a query could not be encoded: the analyst-supplied source failed
/// one of the four pipeline stages. Unlike corpus-side extraction
/// failures (skipped and counted), a failing *query* makes the whole
/// search meaningless, so it surfaces as a typed error.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryErrorKind {
    /// The vulnerable source failed to parse.
    Parse(ParseError),
    /// The vulnerable source failed to compile for the query arch.
    Compile(CompileError),
    /// The named function is absent from the compiled binary.
    MissingFunction,
    /// Decompiling the reference build failed.
    Extract(DecompileError),
}

/// A typed query-encoding failure, naming the query (CVE id or caller
/// label) and function it belongs to.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryError {
    /// Label of the failing query (a CVE identifier in the Table IV
    /// experiment; any caller-chosen label for ad-hoc queries).
    pub cve: String,
    /// The vulnerable function name.
    pub function: String,
    /// The failing stage.
    pub kind: QueryErrorKind,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query {} ({}): ", self.cve, self.function)?;
        match &self.kind {
            QueryErrorKind::Parse(e) => write!(f, "library source does not parse: {e}"),
            QueryErrorKind::Compile(e) => write!(f, "library source does not compile: {e}"),
            QueryErrorKind::MissingFunction => write!(f, "function not found in compiled library"),
            QueryErrorKind::Extract(e) => write!(f, "reference build does not decompile: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// A ranked search hit.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// Index into [`SearchIndex::functions`].
    pub function: usize,
    /// Calibrated similarity score ℱ.
    pub score: f64,
}

/// Table IV-style per-CVE result.
#[derive(Debug, Clone, PartialEq)]
pub struct CveSearchResult {
    /// CVE identifier.
    pub cve: String,
    /// Host software.
    pub software: String,
    /// Vulnerable function name.
    pub function: String,
    /// Candidates scoring at or above the threshold.
    pub candidates: usize,
    /// Confirmed vulnerable functions among the candidates (ground truth).
    pub confirmed: usize,
    /// Vulnerable plants that exist in the corpus (recall denominator).
    pub total_vulnerable: usize,
    /// Affected `vendor model` strings, deduplicated.
    pub affected_models: Vec<String>,
    /// Per-rank ground truth of the top-10 ranked results: `top_hits[r]`
    /// is true iff the function at rank `r` is a planted vulnerable copy
    /// of this CVE. Lets top-k accuracy count hits strictly within the
    /// top k for any k ≤ 10.
    pub top_hits: Vec<bool>,
    /// True positives within the top-10 ranked results (§V end-to-end);
    /// equals `top_hits.iter().filter(|h| **h).count()`.
    pub top10_hits: usize,
}

/// Top-k accuracy across CVEs: the fraction of top-k slots filled with
/// true vulnerable functions, capped by availability (the §V end-to-end
/// comparison metric between Asteria and Gemini). A hit only counts
/// toward ranks `< k` — a hit at rank 8 contributes to top-10 but not
/// top-1.
pub fn top_k_accuracy(results: &[CveSearchResult], k: usize) -> f64 {
    let mut hit = 0usize;
    let mut possible = 0usize;
    for r in results {
        hit += r.top_hits.iter().take(k).filter(|h| **h).count();
        possible += r.total_vulnerable.min(k);
    }
    if possible == 0 {
        return 0.0;
    }
    hit as f64 / possible as f64
}

// ---------------------------------------------------------------------------
// Deprecated free-function API (delegates to crate::session)
// ---------------------------------------------------------------------------

/// Encodes every function of every firmware binary (the offline phase)
/// with the default thread count.
#[deprecated(
    since = "0.5.0",
    note = "use `IndexBuilder::new(model).build(firmware)`"
)]
pub fn build_search_index(model: &AsteriaModel, firmware: &[FirmwareImage]) -> SearchIndex {
    let mut cache = IndexCache::for_model(model, DEFAULT_INLINE_BETA, &DecompileLimits::default());
    session::IndexBuilder::new(model)
        .build_into(firmware, &mut cache)
        .0
}

/// [`build_search_index`] with an explicit worker count (`0` = auto).
#[deprecated(
    since = "0.5.0",
    note = "use `IndexBuilder::new(model).threads(n).build(firmware)`"
)]
pub fn build_search_index_threads(
    model: &AsteriaModel,
    firmware: &[FirmwareImage],
    threads: usize,
) -> SearchIndex {
    let mut cache = IndexCache::for_model(model, DEFAULT_INLINE_BETA, &DecompileLimits::default());
    session::IndexBuilder::new(model)
        .threads(threads)
        .build_into(firmware, &mut cache)
        .0
}

/// Incremental offline phase against a caller-owned cache, with the
/// default thread count.
#[deprecated(
    since = "0.5.0",
    note = "use `IndexBuilder::new(model).build_into(firmware, cache)`"
)]
pub fn build_search_index_cached(
    model: &AsteriaModel,
    firmware: &[FirmwareImage],
    cache: &mut IndexCache,
) -> (SearchIndex, CacheStats) {
    session::IndexBuilder::new(model).build_into(firmware, cache)
}

/// Incremental offline phase against a caller-owned cache with an
/// explicit worker count (`0` = auto).
#[deprecated(
    since = "0.5.0",
    note = "use `IndexBuilder::new(model).threads(n).build_into(firmware, cache)`"
)]
pub fn build_search_index_cached_threads(
    model: &AsteriaModel,
    firmware: &[FirmwareImage],
    cache: &mut IndexCache,
    threads: usize,
) -> (SearchIndex, CacheStats) {
    session::IndexBuilder::new(model)
        .threads(threads)
        .build_into(firmware, cache)
}

/// Encodes a CVE query function (compiled for `query_arch`, as the
/// analyst would compile or obtain a reference build of the vulnerable
/// library).
///
/// # Errors
///
/// Returns a typed [`QueryError`] when the library source fails to
/// parse, compile, resolve, or decompile.
#[deprecated(
    since = "0.5.0",
    note = "use `SearchSession::encode_cve` (or `SearchSession::encode` with a `FunctionQuery`)"
)]
pub fn encode_query(
    model: &AsteriaModel,
    entry: &CveEntry,
    query_arch: Arch,
) -> Result<FunctionEncoding, QueryError> {
    session::encode_query_impl(
        model,
        entry.id,
        &entry.vulnerable_source,
        entry.function,
        query_arch,
        DEFAULT_INLINE_BETA,
        &DecompileLimits::default(),
    )
}

/// Ranks the whole index against one query (the online phase) with the
/// default thread count.
#[deprecated(since = "0.5.0", note = "use `SearchSession::rank`")]
pub fn search(
    model: &AsteriaModel,
    index: &SearchIndex,
    query: &FunctionEncoding,
) -> Vec<SearchHit> {
    session::rank_impl(model, index, query, 0)
}

/// [`search`] with an explicit worker count (`0` = auto).
#[deprecated(
    since = "0.5.0",
    note = "use `SearchSession::rank` on a session configured with `.threads(n)`"
)]
pub fn search_threads(
    model: &AsteriaModel,
    index: &SearchIndex,
    query: &FunctionEncoding,
    threads: usize,
) -> Vec<SearchHit> {
    session::rank_impl(model, index, query, threads)
}

/// Runs the full Table IV experiment with the default thread count.
///
/// # Errors
///
/// Returns the first (in library order) [`QueryError`] if any CVE's
/// reference source fails to encode.
#[deprecated(since = "0.5.0", note = "use `SearchSession::run`")]
pub fn run_search(
    model: &AsteriaModel,
    index: &SearchIndex,
    firmware: &[FirmwareImage],
    library: &[CveEntry],
    threshold: f64,
    query_arch: Arch,
) -> Result<Vec<CveSearchResult>, QueryError> {
    session::run_impl(
        model,
        index,
        firmware,
        library,
        threshold,
        query_arch,
        0,
        DEFAULT_INLINE_BETA,
        &DecompileLimits::default(),
    )
}

/// [`run_search`] with an explicit worker count (`0` = auto).
#[deprecated(
    since = "0.5.0",
    note = "use `SearchSession::run` on a session configured with `.threads(n)`"
)]
#[allow(clippy::too_many_arguments)]
pub fn run_search_threads(
    model: &AsteriaModel,
    index: &SearchIndex,
    firmware: &[FirmwareImage],
    library: &[CveEntry],
    threshold: f64,
    query_arch: Arch,
    threads: usize,
) -> Result<Vec<CveSearchResult>, QueryError> {
    session::run_impl(
        model,
        index,
        firmware,
        library,
        threshold,
        query_arch,
        threads,
        DEFAULT_INLINE_BETA,
        &DecompileLimits::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::firmware::{build_firmware_corpus, FirmwareConfig};
    use crate::library::vulnerability_library;
    use crate::session::{IndexBuilder, SearchSession};
    use asteria_core::ModelConfig;

    fn fixture() -> (AsteriaModel, Vec<FirmwareImage>, SearchIndex) {
        let model = AsteriaModel::new(ModelConfig {
            hidden_dim: 12,
            embed_dim: 8,
            ..Default::default()
        });
        let firmware = build_firmware_corpus(
            &FirmwareConfig {
                images: 5,
                ..Default::default()
            },
            &vulnerability_library(),
        );
        let index = IndexBuilder::new(&model)
            .build(&firmware)
            .expect("in-memory build")
            .index;
        (model, firmware, index)
    }

    /// The deprecated wrappers must produce bit-identical results to the
    /// session API they delegate to — old callers lose nothing by
    /// migrating late.
    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_delegate_to_session_api() {
        let (model, firmware, index) = fixture();
        let lib = vulnerability_library();

        let legacy_index = build_search_index(&model, &firmware);
        assert_eq!(legacy_index, index, "build wrapper");
        let legacy_threads = build_search_index_threads(&model, &firmware, 2);
        assert_eq!(legacy_threads, index, "threaded build wrapper");

        let mut cache =
            IndexCache::for_model(&model, DEFAULT_INLINE_BETA, &DecompileLimits::default());
        let (cached_index, stats) = build_search_index_cached(&model, &firmware, &mut cache);
        assert_eq!(cached_index, index, "cached build wrapper");
        assert!(stats.misses > 0);
        let (warm_index, warm) =
            build_search_index_cached_threads(&model, &firmware, &mut cache, 2);
        assert_eq!(warm_index, index, "cached threaded build wrapper");
        assert_eq!(warm.misses, 0);

        let q = encode_query(&model, &lib[0], Arch::X86).expect("query encodes");
        let legacy_hits = search(&model, &index, &q);
        let legacy_hits_threads = search_threads(&model, &index, &q, 2);
        let legacy_results =
            run_search(&model, &index, &firmware, &lib, 0.5, Arch::X86).expect("queries encode");
        let legacy_results_threads =
            run_search_threads(&model, &index, &firmware, &lib, 0.5, Arch::X86, 2)
                .expect("queries encode");

        let session = SearchSession::new(model, index);
        let sq = session.encode_cve(&lib[0], Arch::X86).expect("encodes");
        assert_eq!(q, sq, "encode wrapper");
        let hits = session.rank(&sq);
        assert_eq!(legacy_hits, hits, "search wrapper");
        assert_eq!(legacy_hits_threads, hits, "threaded search wrapper");
        let results = session
            .run(&firmware, &lib, 0.5, Arch::X86)
            .expect("queries encode");
        assert_eq!(legacy_results, results, "run_search wrapper");
        assert_eq!(
            legacy_results_threads, results,
            "threaded run_search wrapper"
        );
    }

    #[test]
    fn top_k_accuracy_bounds() {
        let (model, firmware, index) = fixture();
        let lib = vulnerability_library();
        let session = SearchSession::new(model, index);
        let results = session
            .run(&firmware, &lib, 0.0, Arch::X86)
            .expect("queries encode");
        let acc = top_k_accuracy(&results, 10);
        assert!((0.0..=1.0).contains(&acc), "{acc}");
    }

    #[test]
    fn top_k_accuracy_counts_strictly_within_k() {
        // One CVE, one planted copy, found at rank 8 (0-based): it must
        // count toward top-10 but NOT toward top-1 — the bug the old
        // `.min(k)` clamp had.
        let mut top_hits = vec![false; 10];
        top_hits[8] = true;
        let r = CveSearchResult {
            cve: "CVE-X".into(),
            software: "s".into(),
            function: "f".into(),
            candidates: 1,
            confirmed: 1,
            total_vulnerable: 1,
            affected_models: vec![],
            top_hits,
            top10_hits: 1,
        };
        assert_eq!(top_k_accuracy(std::slice::from_ref(&r), 10), 1.0);
        assert_eq!(top_k_accuracy(std::slice::from_ref(&r), 5), 0.0);
        assert_eq!(top_k_accuracy(&[r], 1), 0.0);
    }
}
