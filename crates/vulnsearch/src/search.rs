//! The vulnerability search itself (paper §V): encode the whole firmware
//! corpus offline, then rank every function against each CVE query by
//! calibrated similarity.

use asteria_compiler::{compile_program, Arch};
use asteria_core::{
    encode_function, extract_binary_resilient, extract_function, function_similarity, AsteriaModel,
    ExtractionReport, FunctionEncoding, DEFAULT_INLINE_BETA,
};
use asteria_lang::parse;

use crate::firmware::FirmwareImage;
use crate::library::CveEntry;

/// One firmware function in the search index.
#[derive(Debug, Clone)]
pub struct IndexedFunction {
    /// Image index in the corpus.
    pub image: usize,
    /// Binary index within the image.
    pub binary: usize,
    /// Stripped display name.
    pub name: String,
    /// Cached offline encoding.
    pub encoding: FunctionEncoding,
    /// Ground truth: `Some((cve_index, vulnerable))` for planted library
    /// functions, `None` for filler code. Used only for scoring.
    pub ground_truth: Option<(usize, bool)>,
}

/// The offline product: every firmware function encoded once.
#[derive(Debug, Clone, Default)]
pub struct SearchIndex {
    /// All indexed functions.
    pub functions: Vec<IndexedFunction>,
    /// Aggregated extraction outcome across the whole corpus: how many
    /// functions were encoded and how many were skipped (and why).
    pub extraction: ExtractionReport,
}

impl SearchIndex {
    /// Number of indexed functions.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }
}

/// Encodes every function of every firmware binary (the offline phase).
///
/// Extraction is resilient: a corrupt or over-budget function is skipped
/// and counted in [`SearchIndex::extraction`] instead of aborting the
/// whole corpus — real firmware always contains functions the decompiler
/// cannot digest.
pub fn build_search_index(model: &AsteriaModel, firmware: &[FirmwareImage]) -> SearchIndex {
    let mut index = SearchIndex::default();
    for (ii, img) in firmware.iter().enumerate() {
        for (bi, binary) in img.binaries.iter().enumerate() {
            let extraction = extract_binary_resilient(binary, DEFAULT_INLINE_BETA);
            index.extraction.absorb(&extraction.report);
            for f in extraction.successes() {
                let ground_truth = img
                    .planted
                    .iter()
                    .find(|p| p.binary_index == bi && p.display_name == f.name)
                    .map(|p| (p.cve_index, p.vulnerable));
                index.functions.push(IndexedFunction {
                    image: ii,
                    binary: bi,
                    name: f.name.clone(),
                    encoding: encode_function(model, f),
                    ground_truth,
                });
            }
        }
    }
    index
}

/// Encodes a CVE query function (compiled for `query_arch`, as the analyst
/// would compile or obtain a reference build of the vulnerable library).
///
/// # Panics
///
/// Panics if the library source fails to compile (covered by library
/// tests).
pub fn encode_query(model: &AsteriaModel, entry: &CveEntry, query_arch: Arch) -> FunctionEncoding {
    let program = parse(&entry.vulnerable_source).expect("library source parses");
    let binary = compile_program(&program, query_arch).expect("library compiles");
    let sym = binary.symbol_index(entry.function).expect("query symbol");
    let f = extract_function(&binary, sym, DEFAULT_INLINE_BETA).expect("query extraction");
    encode_function(model, &f)
}

/// A ranked search hit.
#[derive(Debug, Clone)]
pub struct SearchHit {
    /// Index into [`SearchIndex::functions`].
    pub function: usize,
    /// Calibrated similarity score ℱ.
    pub score: f64,
}

/// Ranks the whole index against one query (the online phase).
pub fn search(
    model: &AsteriaModel,
    index: &SearchIndex,
    query: &FunctionEncoding,
) -> Vec<SearchHit> {
    let mut hits: Vec<SearchHit> = index
        .functions
        .iter()
        .enumerate()
        .map(|(i, f)| SearchHit {
            function: i,
            score: function_similarity(model, query, &f.encoding),
        })
        .collect();
    hits.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("finite scores"));
    hits
}

/// Table IV-style per-CVE result.
#[derive(Debug, Clone)]
pub struct CveSearchResult {
    /// CVE identifier.
    pub cve: String,
    /// Host software.
    pub software: String,
    /// Vulnerable function name.
    pub function: String,
    /// Candidates scoring at or above the threshold.
    pub candidates: usize,
    /// Confirmed vulnerable functions among the candidates (ground truth).
    pub confirmed: usize,
    /// Vulnerable plants that exist in the corpus (recall denominator).
    pub total_vulnerable: usize,
    /// Affected `vendor model` strings, deduplicated.
    pub affected_models: Vec<String>,
    /// True positives within the top-10 ranked results (§V end-to-end).
    pub top10_hits: usize,
}

/// Runs the full Table IV experiment: searches every CVE against the
/// index, thresholds candidates, and scores them against ground truth.
pub fn run_search(
    model: &AsteriaModel,
    index: &SearchIndex,
    firmware: &[FirmwareImage],
    library: &[CveEntry],
    threshold: f64,
    query_arch: Arch,
) -> Vec<CveSearchResult> {
    library
        .iter()
        .enumerate()
        .map(|(cve_index, entry)| {
            let query = encode_query(model, entry, query_arch);
            let hits = search(model, index, &query);
            let mut candidates = 0;
            let mut confirmed = 0;
            let mut affected: Vec<String> = Vec::new();
            for h in &hits {
                if h.score < threshold {
                    break;
                }
                candidates += 1;
                let f = &index.functions[h.function];
                if f.ground_truth == Some((cve_index, true)) {
                    confirmed += 1;
                    let img = &firmware[f.image];
                    let label = format!("{} {}", img.vendor, img.model);
                    if !affected.contains(&label) {
                        affected.push(label);
                    }
                }
            }
            let top10_hits = hits
                .iter()
                .take(10)
                .filter(|h| index.functions[h.function].ground_truth == Some((cve_index, true)))
                .count();
            let total_vulnerable = index
                .functions
                .iter()
                .filter(|f| f.ground_truth == Some((cve_index, true)))
                .count();
            CveSearchResult {
                cve: entry.id.to_string(),
                software: entry.software.to_string(),
                function: entry.function.to_string(),
                candidates,
                confirmed,
                total_vulnerable,
                affected_models: affected,
                top10_hits,
            }
        })
        .collect()
}

/// Top-k accuracy across CVEs: the fraction of top-k slots filled with
/// true vulnerable functions, capped by availability (the §V end-to-end
/// comparison metric between Asteria and Gemini).
pub fn top_k_accuracy(results: &[CveSearchResult], k: usize) -> f64 {
    let mut hit = 0usize;
    let mut possible = 0usize;
    for r in results {
        hit += r.top10_hits.min(k);
        possible += r.total_vulnerable.min(k);
    }
    if possible == 0 {
        return 0.0;
    }
    hit as f64 / possible as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::firmware::{build_firmware_corpus, FirmwareConfig};
    use crate::library::vulnerability_library;
    use asteria_core::ModelConfig;

    fn fixture() -> (AsteriaModel, Vec<FirmwareImage>, SearchIndex) {
        let model = AsteriaModel::new(ModelConfig {
            hidden_dim: 12,
            embed_dim: 8,
            ..Default::default()
        });
        let firmware = build_firmware_corpus(
            &FirmwareConfig {
                images: 5,
                ..Default::default()
            },
            &vulnerability_library(),
        );
        let index = build_search_index(&model, &firmware);
        (model, firmware, index)
    }

    #[test]
    fn index_covers_all_functions() {
        let (_, firmware, index) = fixture();
        let expected: usize = firmware.iter().map(|i| i.function_count()).sum();
        // Some tiny functions may be filtered by the AST-size rule, but
        // most must be present.
        assert!(index.len() > expected / 2, "{} of {expected}", index.len());
    }

    #[test]
    fn ground_truth_is_attached() {
        let (_, firmware, index) = fixture();
        let planted: usize = firmware.iter().map(|i| i.planted.len()).sum();
        let attached = index
            .functions
            .iter()
            .filter(|f| f.ground_truth.is_some())
            .count();
        assert_eq!(attached, planted);
    }

    #[test]
    fn search_is_sorted_descending() {
        let (model, _, index) = fixture();
        let lib = vulnerability_library();
        let q = encode_query(&model, &lib[0], Arch::X86);
        let hits = search(&model, &index, &q);
        assert_eq!(hits.len(), index.len());
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn run_search_produces_one_result_per_cve() {
        let (model, firmware, index) = fixture();
        let lib = vulnerability_library();
        let results = run_search(&model, &index, &firmware, &lib, 0.5, Arch::X86);
        assert_eq!(results.len(), 7);
        for r in &results {
            assert!(r.confirmed <= r.candidates);
            assert!(r.top10_hits <= 10);
        }
    }

    #[test]
    fn index_reports_full_extraction_on_clean_corpus() {
        let (_, firmware, index) = fixture();
        let expected: usize = firmware.iter().map(|i| i.function_count()).sum();
        assert_eq!(index.extraction.total, expected);
        assert_eq!(index.extraction.skipped, 0);
    }

    #[test]
    fn corrupted_corpus_completes_with_skips_reported() {
        let model = AsteriaModel::new(ModelConfig {
            hidden_dim: 12,
            embed_dim: 8,
            ..Default::default()
        });
        let mut firmware = build_firmware_corpus(
            &FirmwareConfig {
                images: 3,
                ..Default::default()
            },
            &vulnerability_library(),
        );
        // Corrupt one function per image: undecodable garbage bytes.
        let mut corrupted = 0usize;
        for img in &mut firmware {
            if let Some(binary) = img.binaries.first_mut() {
                if let Some(sym) = binary.symbols.first_mut() {
                    sym.code = vec![0xff; 7];
                    corrupted += 1;
                }
            }
        }
        assert!(corrupted > 0);
        let index = build_search_index(&model, &firmware);
        assert_eq!(index.extraction.skipped, corrupted);
        assert!(index.extraction.decode_errors >= corrupted);
        assert!(!index.is_empty());
        // The whole search pipeline still runs end to end.
        let lib = vulnerability_library();
        let results = run_search(&model, &index, &firmware, &lib, 0.5, Arch::X86);
        assert_eq!(results.len(), lib.len());
        let report = crate::report::render_report_with_extraction(&results, 0.5, &index.extraction);
        assert!(report.contains("## Corpus coverage"));
        assert!(report.contains(&format!("{corrupted} skipped")));
    }

    #[test]
    fn top_k_accuracy_bounds() {
        let (model, firmware, index) = fixture();
        let lib = vulnerability_library();
        let results = run_search(&model, &index, &firmware, &lib, 0.0, Arch::X86);
        let acc = top_k_accuracy(&results, 10);
        assert!((0.0..=1.0).contains(&acc), "{acc}");
    }
}
