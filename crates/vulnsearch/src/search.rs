//! The vulnerability search itself (paper §V): encode the whole firmware
//! corpus offline, then rank every function against each CVE query by
//! calibrated similarity.
//!
//! Both phases fan out over `asteria-exec`'s deterministic worker pool:
//! the offline phase per **binary** (extraction + Tree-LSTM encoding, the
//! cost the paper's Fig. 10 shows dominating end-to-end time), the online
//! phase per **indexed function** (scoring) and per **CVE** (query
//! encoding). The parallel results are bit-identical to the serial ones
//! at every thread count — same index order, same scores, same extraction
//! reports — because each work unit is computed independently and merged
//! in input order.

use std::cmp::Ordering;
use std::fmt;

use asteria_compiler::{compile_program, Arch, CompileError};
use asteria_core::{
    encode_function, extract_binary_resilient, extract_function, function_similarity, AsteriaModel,
    ExtractionReport, FunctionEncoding, DEFAULT_INLINE_BETA,
};
use asteria_decompiler::{BudgetKind, DecompileError, DecompileLimits};
use asteria_lang::{parse, ParseError};

use crate::firmware::FirmwareImage;
use crate::index_io::{
    extraction_params_digest, fingerprint_binary, CacheStats, CachedBinary, CachedFunction,
    IndexCache,
};
use crate::library::CveEntry;

/// One firmware function in the search index.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexedFunction {
    /// Image index in the corpus.
    pub image: usize,
    /// Binary index within the image.
    pub binary: usize,
    /// Stripped display name.
    pub name: String,
    /// Cached offline encoding.
    pub encoding: FunctionEncoding,
    /// Ground truth: `Some((cve_index, vulnerable))` for planted library
    /// functions, `None` for filler code. Used only for scoring.
    pub ground_truth: Option<(usize, bool)>,
}

/// The offline product: every firmware function encoded once.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchIndex {
    /// All indexed functions.
    pub functions: Vec<IndexedFunction>,
    /// Aggregated extraction outcome across the whole corpus: how many
    /// functions were encoded and how many were skipped (and why).
    pub extraction: ExtractionReport,
}

impl SearchIndex {
    /// Number of indexed functions.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }
}

/// Encodes every function of every firmware binary (the offline phase)
/// with the default thread count (`ASTERIA_THREADS` override, else all
/// cores).
///
/// Extraction is resilient: a corrupt or over-budget function is skipped
/// and counted in [`SearchIndex::extraction`] instead of aborting the
/// whole corpus — real firmware always contains functions the decompiler
/// cannot digest.
pub fn build_search_index(model: &AsteriaModel, firmware: &[FirmwareImage]) -> SearchIndex {
    build_search_index_threads(model, firmware, 0)
}

/// [`build_search_index`] with an explicit worker count (`0` = auto).
///
/// Per-binary extraction + encoding fans out across workers;
/// [`ExtractionReport`]s and function lists are merged deterministically
/// in `(image, binary)` input order, so the index is bit-identical to a
/// serial build at every thread count.
pub fn build_search_index_threads(
    model: &AsteriaModel,
    firmware: &[FirmwareImage],
    threads: usize,
) -> SearchIndex {
    // A throwaway cache: every binary misses, so this is the cold path —
    // one code path for cold and warm builds keeps them bit-identical by
    // construction.
    let mut cache = IndexCache::for_model(model, DEFAULT_INLINE_BETA, &DecompileLimits::default());
    build_search_index_cached_threads(model, firmware, &mut cache, threads).0
}

/// [`build_search_index_cached_threads`] with the default thread count.
pub fn build_search_index_cached(
    model: &AsteriaModel,
    firmware: &[FirmwareImage],
    cache: &mut IndexCache,
) -> (SearchIndex, CacheStats) {
    build_search_index_cached_threads(model, firmware, cache, 0)
}

/// Incremental offline phase: like [`build_search_index_threads`], but
/// backed by a persistent [`IndexCache`].
///
/// Each binary is fingerprinted over (exact binary bytes, extraction
/// parameters, model weights digest). A fingerprint **hit** replays the
/// cached embeddings and extraction report — no decompilation, no
/// Tree-LSTM encoding. A **miss** runs the cold pipeline, fanning out
/// over `asteria-exec` workers as before, and the result is written back
/// to the cache. Entries whose fingerprint no longer appears in the
/// corpus (and the whole cache, when the model weights or
/// [`DecompileLimits`] digests changed) are **evicted** so the cache
/// never serves stale embeddings.
///
/// The returned index is bit-identical to a cold
/// [`build_search_index_threads`] build at every thread count and every
/// hit/miss mix: cached vectors are the exact bits the cold path
/// produced, reports are replayed verbatim, and ground truth is
/// recomputed from the live corpus (identity metadata is not trusted
/// across corpus relabelings).
pub fn build_search_index_cached_threads(
    model: &AsteriaModel,
    firmware: &[FirmwareImage],
    cache: &mut IndexCache,
    threads: usize,
) -> (SearchIndex, CacheStats) {
    let mut build_span = asteria_obs::span("index-build");
    let model_digest = model.weights_digest();
    let params_digest = extraction_params_digest(DEFAULT_INLINE_BETA, &DecompileLimits::default());
    let mut stats = CacheStats::default();
    if cache.model_digest != model_digest || cache.params_digest != params_digest {
        // Retraining or a budget change invalidates every embedding.
        stats.evicted += cache.clear();
        cache.model_digest = model_digest;
        cache.params_digest = params_digest;
    }

    // One work unit per binary: the granularity that balances fan-out
    // (images hold few binaries) against per-unit overhead, and the
    // granularity the cache is keyed at (callee counts depend on sibling
    // symbols, so a binary is the smallest self-contained unit).
    let units: Vec<(usize, usize, &FirmwareImage)> = firmware
        .iter()
        .enumerate()
        .flat_map(|(ii, img)| (0..img.binaries.len()).map(move |bi| (ii, bi, img)))
        .collect();
    build_span.set_items(units.len() as u64);
    let cache_ref = &*cache;
    let per_binary = asteria_exec::par_map_threads(threads, &units, |&(ii, bi, img)| {
        let mut bin_span = asteria_obs::span("encode-binary");
        let bin_timer = asteria_obs::timer();
        let binary = &img.binaries[bi];
        let fingerprint = fingerprint_binary(binary, params_digest, model_digest);
        let attach_truth = |name: &str| {
            img.planted
                .iter()
                .find(|p| p.binary_index == bi && p.display_name == name)
                .map(|p| (p.cve_index, p.vulnerable))
        };
        if let Some(cached) = cache_ref.get(fingerprint) {
            // Warm: replay embeddings and report; skip extraction and
            // all Tree-LSTM encoding.
            let functions: Vec<IndexedFunction> = cached
                .functions
                .iter()
                .map(|f| IndexedFunction {
                    image: ii,
                    binary: bi,
                    name: f.name.clone(),
                    encoding: FunctionEncoding {
                        name: f.name.clone(),
                        vector: f.vector.clone(),
                        callee_count: f.callee_count,
                    },
                    ground_truth: attach_truth(&f.name),
                })
                .collect();
            bin_span.set_items(functions.len() as u64);
            bin_timer.observe_seconds("asteria_index_binary_seconds", &[("mode", "warm")]);
            return (functions, cached.report, fingerprint, None);
        }
        // Cold: the full resilient extraction + encoding pipeline.
        let extraction = extract_binary_resilient(binary, DEFAULT_INLINE_BETA);
        let functions: Vec<IndexedFunction> = extraction
            .successes()
            .map(|f| IndexedFunction {
                image: ii,
                binary: bi,
                name: f.name.clone(),
                encoding: encode_function(model, f),
                ground_truth: attach_truth(&f.name),
            })
            .collect();
        let entry = CachedBinary {
            report: extraction.report,
            functions: functions
                .iter()
                .map(|f| CachedFunction {
                    name: f.name.clone(),
                    callee_count: f.encoding.callee_count,
                    vector: f.encoding.vector.clone(),
                })
                .collect(),
        };
        bin_span.set_items(functions.len() as u64);
        bin_timer.observe_seconds("asteria_index_binary_seconds", &[("mode", "cold")]);
        (functions, extraction.report, fingerprint, Some(entry))
    });

    let mut index = SearchIndex::default();
    let mut live = std::collections::HashSet::with_capacity(per_binary.len());
    for (functions, report, fingerprint, new_entry) in per_binary {
        index.extraction.absorb(&report);
        index.functions.extend(functions);
        live.insert(fingerprint);
        match new_entry {
            Some(entry) => {
                stats.misses += 1;
                cache.insert(fingerprint, entry);
            }
            None => stats.hits += 1,
        }
    }
    // Anything the corpus no longer contains is stale.
    stats.evicted += cache.retain_fingerprints(|fp| live.contains(&fp));
    record_build_metrics(&index, &stats);
    (index, stats)
}

/// Publishes the offline build's obs counters. Everything here is
/// derived from the deterministically merged results — never from inside
/// a worker — so every value is identical at any thread count.
fn record_build_metrics(index: &SearchIndex, stats: &CacheStats) {
    if !asteria_obs::enabled() {
        return;
    }
    asteria_obs::counter_add("asteria_cache_hits_total", &[], stats.hits as u64);
    asteria_obs::counter_add("asteria_cache_misses_total", &[], stats.misses as u64);
    asteria_obs::counter_add("asteria_cache_evicted_total", &[], stats.evicted as u64);
    asteria_obs::counter_add(
        "asteria_functions_indexed_total",
        &[],
        index.functions.len() as u64,
    );
    let r = &index.extraction;
    for (outcome, n) in [
        ("extracted", r.extracted),
        ("over_budget", r.over_budget),
        ("decode_error", r.decode_errors),
        ("empty", r.empty_functions),
        ("other", r.other_errors),
    ] {
        asteria_obs::counter_add(
            "asteria_extraction_outcomes_total",
            &[("outcome", outcome)],
            n as u64,
        );
    }
    // Pre-register every budget kind at zero so the exposition always
    // carries all four series, even on a corpus where none fire.
    for kind in BudgetKind::ALL {
        asteria_obs::counter_add(
            "asteria_budget_exceeded_total",
            &[("kind", kind.label())],
            0,
        );
    }
}

/// Why a CVE query could not be encoded: the analyst-supplied library
/// source failed one of the four pipeline stages. Unlike corpus-side
/// extraction failures (skipped and counted), a failing *query* makes the
/// whole CVE's search meaningless, so it surfaces as a typed error.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryErrorKind {
    /// The vulnerable source failed to parse.
    Parse(ParseError),
    /// The vulnerable source failed to compile for the query arch.
    Compile(CompileError),
    /// The named function is absent from the compiled binary.
    MissingFunction,
    /// Decompiling the reference build failed.
    Extract(DecompileError),
}

/// A typed query-encoding failure, naming the CVE and function it
/// belongs to.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryError {
    /// CVE identifier of the failing query.
    pub cve: String,
    /// The vulnerable function name.
    pub function: String,
    /// The failing stage.
    pub kind: QueryErrorKind,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query {} ({}): ", self.cve, self.function)?;
        match &self.kind {
            QueryErrorKind::Parse(e) => write!(f, "library source does not parse: {e}"),
            QueryErrorKind::Compile(e) => write!(f, "library source does not compile: {e}"),
            QueryErrorKind::MissingFunction => write!(f, "function not found in compiled library"),
            QueryErrorKind::Extract(e) => write!(f, "reference build does not decompile: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// Encodes a CVE query function (compiled for `query_arch`, as the
/// analyst would compile or obtain a reference build of the vulnerable
/// library).
///
/// # Errors
///
/// Returns a typed [`QueryError`] when the library source fails to
/// parse, compile, resolve, or decompile — unparsable analyst input must
/// not kill the run.
pub fn encode_query(
    model: &AsteriaModel,
    entry: &CveEntry,
    query_arch: Arch,
) -> Result<FunctionEncoding, QueryError> {
    let fail = |kind| QueryError {
        cve: entry.id.to_string(),
        function: entry.function.to_string(),
        kind,
    };
    let program = parse(&entry.vulnerable_source).map_err(|e| fail(QueryErrorKind::Parse(e)))?;
    let binary =
        compile_program(&program, query_arch).map_err(|e| fail(QueryErrorKind::Compile(e)))?;
    let sym = binary
        .symbol_index(entry.function)
        .ok_or_else(|| fail(QueryErrorKind::MissingFunction))?;
    let f = extract_function(&binary, sym, DEFAULT_INLINE_BETA)
        .map_err(|e| fail(QueryErrorKind::Extract(e)))?;
    Ok(encode_function(model, &f))
}

/// A ranked search hit.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// Index into [`SearchIndex::functions`].
    pub function: usize,
    /// Calibrated similarity score ℱ.
    pub score: f64,
}

/// Descending-score ordering that is total: NaN ranks **last** (a
/// degenerate encoding must sink to the bottom of the ranking, not panic
/// the sort or float to the top as `total_cmp`'s `NaN > ∞` would).
fn rank_order(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (false, false) => b.total_cmp(&a),
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
    }
}

/// Ranks the whole index against one query (the online phase) with the
/// default thread count.
pub fn search(
    model: &AsteriaModel,
    index: &SearchIndex,
    query: &FunctionEncoding,
) -> Vec<SearchHit> {
    search_threads(model, index, query, 0)
}

/// [`search`] with an explicit worker count (`0` = auto). Scoring fans
/// out per function in index order; the final (stable) sort runs on the
/// merged scores, so the ranking is identical at every thread count.
pub fn search_threads(
    model: &AsteriaModel,
    index: &SearchIndex,
    query: &FunctionEncoding,
    threads: usize,
) -> Vec<SearchHit> {
    let timer = asteria_obs::timer();
    let scores = asteria_exec::par_map_chunked(threads, 0, &index.functions, |f| {
        function_similarity(model, query, &f.encoding)
    });
    timer.observe_seconds("asteria_search_seconds", &[]);
    let mut hits: Vec<SearchHit> = scores
        .into_iter()
        .enumerate()
        .map(|(function, score)| SearchHit { function, score })
        .collect();
    hits.sort_by(|a, b| rank_order(a.score, b.score));
    hits
}

/// Table IV-style per-CVE result.
#[derive(Debug, Clone, PartialEq)]
pub struct CveSearchResult {
    /// CVE identifier.
    pub cve: String,
    /// Host software.
    pub software: String,
    /// Vulnerable function name.
    pub function: String,
    /// Candidates scoring at or above the threshold.
    pub candidates: usize,
    /// Confirmed vulnerable functions among the candidates (ground truth).
    pub confirmed: usize,
    /// Vulnerable plants that exist in the corpus (recall denominator).
    pub total_vulnerable: usize,
    /// Affected `vendor model` strings, deduplicated.
    pub affected_models: Vec<String>,
    /// Per-rank ground truth of the top-10 ranked results: `top_hits[r]`
    /// is true iff the function at rank `r` is a planted vulnerable copy
    /// of this CVE. Lets top-k accuracy count hits strictly within the
    /// top k for any k ≤ 10.
    pub top_hits: Vec<bool>,
    /// True positives within the top-10 ranked results (§V end-to-end);
    /// equals `top_hits.iter().filter(|h| **h).count()`.
    pub top10_hits: usize,
}

/// Runs the full Table IV experiment with the default thread count:
/// searches every CVE against the index, thresholds candidates, and
/// scores them against ground truth.
///
/// # Errors
///
/// Returns the first (in library order) [`QueryError`] if any CVE's
/// reference source fails to encode.
pub fn run_search(
    model: &AsteriaModel,
    index: &SearchIndex,
    firmware: &[FirmwareImage],
    library: &[CveEntry],
    threshold: f64,
    query_arch: Arch,
) -> Result<Vec<CveSearchResult>, QueryError> {
    run_search_threads(model, index, firmware, library, threshold, query_arch, 0)
}

/// [`run_search`] with an explicit worker count (`0` = auto). The CVE
/// queries encode in parallel, then each per-CVE ranking scores the
/// index in parallel; error selection (first failing CVE in library
/// order) and all results are independent of the thread count.
#[allow(clippy::too_many_arguments)]
pub fn run_search_threads(
    model: &AsteriaModel,
    index: &SearchIndex,
    firmware: &[FirmwareImage],
    library: &[CveEntry],
    threshold: f64,
    query_arch: Arch,
    threads: usize,
) -> Result<Vec<CveSearchResult>, QueryError> {
    let mut search_span = asteria_obs::span("online-search");
    search_span.set_items(library.len() as u64);
    // Fan the CVE set out for query encoding, then surface the first
    // failure in deterministic library order.
    let queries = asteria_exec::par_map_threads(threads, library, |entry| {
        encode_query(model, entry, query_arch)
    });
    let mut results = Vec::with_capacity(library.len());
    for (cve_index, (entry, query)) in library.iter().zip(queries).enumerate() {
        let query = query?;
        let hits = search_threads(model, index, &query, threads);
        let mut candidates = 0;
        let mut confirmed = 0;
        let mut affected: Vec<String> = Vec::new();
        for h in &hits {
            // A NaN score compares as incomparable (never ≥ threshold),
            // so it also stops the candidate scan.
            let at_or_above = matches!(
                h.score.partial_cmp(&threshold),
                Some(Ordering::Greater | Ordering::Equal)
            );
            if !at_or_above {
                break;
            }
            candidates += 1;
            let f = &index.functions[h.function];
            if f.ground_truth == Some((cve_index, true)) {
                confirmed += 1;
                let img = &firmware[f.image];
                let label = format!("{} {}", img.vendor, img.model);
                if !affected.contains(&label) {
                    affected.push(label);
                }
            }
        }
        let top_hits: Vec<bool> = hits
            .iter()
            .take(10)
            .map(|h| index.functions[h.function].ground_truth == Some((cve_index, true)))
            .collect();
        let top10_hits = top_hits.iter().filter(|h| **h).count();
        let total_vulnerable = index
            .functions
            .iter()
            .filter(|f| f.ground_truth == Some((cve_index, true)))
            .count();
        results.push(CveSearchResult {
            cve: entry.id.to_string(),
            software: entry.software.to_string(),
            function: entry.function.to_string(),
            candidates,
            confirmed,
            total_vulnerable,
            affected_models: affected,
            top_hits,
            top10_hits,
        });
    }
    Ok(results)
}

/// Top-k accuracy across CVEs: the fraction of top-k slots filled with
/// true vulnerable functions, capped by availability (the §V end-to-end
/// comparison metric between Asteria and Gemini). A hit only counts
/// toward ranks `< k` — a hit at rank 8 contributes to top-10 but not
/// top-1.
pub fn top_k_accuracy(results: &[CveSearchResult], k: usize) -> f64 {
    let mut hit = 0usize;
    let mut possible = 0usize;
    for r in results {
        hit += r.top_hits.iter().take(k).filter(|h| **h).count();
        possible += r.total_vulnerable.min(k);
    }
    if possible == 0 {
        return 0.0;
    }
    hit as f64 / possible as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::firmware::{build_firmware_corpus, FirmwareConfig};
    use crate::library::vulnerability_library;
    use asteria_core::ModelConfig;

    fn fixture() -> (AsteriaModel, Vec<FirmwareImage>, SearchIndex) {
        let model = AsteriaModel::new(ModelConfig {
            hidden_dim: 12,
            embed_dim: 8,
            ..Default::default()
        });
        let firmware = build_firmware_corpus(
            &FirmwareConfig {
                images: 5,
                ..Default::default()
            },
            &vulnerability_library(),
        );
        let index = build_search_index(&model, &firmware);
        (model, firmware, index)
    }

    #[test]
    fn index_covers_all_functions() {
        let (_, firmware, index) = fixture();
        let expected: usize = firmware.iter().map(|i| i.function_count()).sum();
        // Some tiny functions may be filtered by the AST-size rule, but
        // most must be present.
        assert!(index.len() > expected / 2, "{} of {expected}", index.len());
    }

    #[test]
    fn ground_truth_is_attached() {
        let (_, firmware, index) = fixture();
        let planted: usize = firmware.iter().map(|i| i.planted.len()).sum();
        let attached = index
            .functions
            .iter()
            .filter(|f| f.ground_truth.is_some())
            .count();
        assert_eq!(attached, planted);
    }

    #[test]
    fn search_is_sorted_descending() {
        let (model, _, index) = fixture();
        let lib = vulnerability_library();
        let q = encode_query(&model, &lib[0], Arch::X86).expect("query encodes");
        let hits = search(&model, &index, &q);
        assert_eq!(hits.len(), index.len());
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn run_search_produces_one_result_per_cve() {
        let (model, firmware, index) = fixture();
        let lib = vulnerability_library();
        let results =
            run_search(&model, &index, &firmware, &lib, 0.5, Arch::X86).expect("queries encode");
        assert_eq!(results.len(), 7);
        for r in &results {
            assert!(r.confirmed <= r.candidates);
            assert!(r.top_hits.len() <= 10);
            assert_eq!(r.top10_hits, r.top_hits.iter().filter(|h| **h).count());
        }
    }

    #[test]
    fn encode_query_surfaces_typed_errors() {
        let (model, _, _) = fixture();
        let bad = CveEntry {
            id: "CVE-0000-0000",
            software: "bogus",
            function: "nope",
            vulnerable_source: "int nope( { broken".into(),
            patched_source: "int nope() { return 0; }".into(),
        };
        let err = encode_query(&model, &bad, Arch::X86).expect_err("must fail");
        assert_eq!(err.cve, "CVE-0000-0000");
        assert!(matches!(err.kind, QueryErrorKind::Parse(_)), "{err:?}");
        assert!(err.to_string().contains("does not parse"), "{err}");

        let missing = CveEntry {
            vulnerable_source: "int other() { return 1; }".into(),
            ..bad
        };
        let err = encode_query(&model, &missing, Arch::X86).expect_err("must fail");
        assert!(
            matches!(err.kind, QueryErrorKind::MissingFunction),
            "{err:?}"
        );
    }

    #[test]
    fn run_search_surfaces_query_errors() {
        let (model, firmware, index) = fixture();
        let mut lib = vulnerability_library();
        lib[2].vulnerable_source = "not even close to MiniC".into();
        let err = run_search(&model, &index, &firmware, &lib, 0.5, Arch::X86)
            .expect_err("bad library entry must surface");
        assert_eq!(err.cve, lib[2].id);
    }

    #[test]
    fn index_reports_full_extraction_on_clean_corpus() {
        let (_, firmware, index) = fixture();
        let expected: usize = firmware.iter().map(|i| i.function_count()).sum();
        assert_eq!(index.extraction.total, expected);
        assert_eq!(index.extraction.skipped, 0);
    }

    #[test]
    fn corrupted_corpus_completes_with_skips_reported() {
        let model = AsteriaModel::new(ModelConfig {
            hidden_dim: 12,
            embed_dim: 8,
            ..Default::default()
        });
        let mut firmware = build_firmware_corpus(
            &FirmwareConfig {
                images: 3,
                ..Default::default()
            },
            &vulnerability_library(),
        );
        // Corrupt one function per image: undecodable garbage bytes.
        let mut corrupted = 0usize;
        for img in &mut firmware {
            if let Some(binary) = img.binaries.first_mut() {
                if let Some(sym) = binary.symbols.first_mut() {
                    sym.code = vec![0xff; 7];
                    corrupted += 1;
                }
            }
        }
        assert!(corrupted > 0);
        let index = build_search_index(&model, &firmware);
        assert_eq!(index.extraction.skipped, corrupted);
        assert!(index.extraction.decode_errors >= corrupted);
        assert!(!index.is_empty());
        // The whole search pipeline still runs end to end.
        let lib = vulnerability_library();
        let results =
            run_search(&model, &index, &firmware, &lib, 0.5, Arch::X86).expect("queries encode");
        assert_eq!(results.len(), lib.len());
        let report = crate::report::render_report_with_extraction(&results, 0.5, &index.extraction);
        assert!(report.contains("## Corpus coverage"));
        assert!(report.contains(&format!("{corrupted} skipped")));
    }

    #[test]
    fn top_k_accuracy_bounds() {
        let (model, firmware, index) = fixture();
        let lib = vulnerability_library();
        let results =
            run_search(&model, &index, &firmware, &lib, 0.0, Arch::X86).expect("queries encode");
        let acc = top_k_accuracy(&results, 10);
        assert!((0.0..=1.0).contains(&acc), "{acc}");
    }

    #[test]
    fn top_k_accuracy_counts_strictly_within_k() {
        // One CVE, one planted copy, found at rank 8 (0-based): it must
        // count toward top-10 but NOT toward top-1 — the bug the old
        // `.min(k)` clamp had.
        let mut top_hits = vec![false; 10];
        top_hits[8] = true;
        let r = CveSearchResult {
            cve: "CVE-X".into(),
            software: "s".into(),
            function: "f".into(),
            candidates: 1,
            confirmed: 1,
            total_vulnerable: 1,
            affected_models: vec![],
            top_hits,
            top10_hits: 1,
        };
        assert_eq!(top_k_accuracy(std::slice::from_ref(&r), 10), 1.0);
        assert_eq!(top_k_accuracy(std::slice::from_ref(&r), 5), 0.0);
        assert_eq!(top_k_accuracy(&[r], 1), 0.0);
    }

    #[test]
    fn warm_cached_build_is_bit_identical_and_all_hits() {
        let (model, firmware, cold_index) = fixture();
        let mut cache =
            IndexCache::for_model(&model, DEFAULT_INLINE_BETA, &DecompileLimits::default());
        let (first, cold_stats) = build_search_index_cached(&model, &firmware, &mut cache);
        let units: usize = firmware.iter().map(|i| i.binaries.len()).sum();
        assert_eq!(cold_stats.misses, units);
        assert_eq!(cold_stats.hits, 0);
        assert_eq!(first, cold_index, "cached cold build == plain build");

        let (second, warm_stats) = build_search_index_cached(&model, &firmware, &mut cache);
        assert_eq!(warm_stats.hits, units, "{warm_stats}");
        assert_eq!(warm_stats.misses, 0);
        assert_eq!(warm_stats.evicted, 0);
        assert_eq!(second, cold_index, "warm build must be bit-identical");
    }

    #[test]
    fn changing_one_binary_re_encodes_only_that_binary() {
        let (model, mut firmware, _) = fixture();
        let mut cache =
            IndexCache::for_model(&model, DEFAULT_INLINE_BETA, &DecompileLimits::default());
        let (_, _) = build_search_index_cached(&model, &firmware, &mut cache);
        let units: usize = firmware.iter().map(|i| i.binaries.len()).sum();
        // Corrupt one function body: that binary's fingerprint changes.
        firmware[0].binaries[0].symbols[0].code = vec![0xff; 7];
        let (index, stats) = build_search_index_cached(&model, &firmware, &mut cache);
        assert_eq!(stats.misses, 1, "{stats}");
        assert_eq!(stats.hits, units - 1);
        assert_eq!(stats.evicted, 1, "the old entry for that binary is stale");
        assert_eq!(index.extraction.skipped, 1);
        // And it matches an uncached build of the modified corpus.
        assert_eq!(index, build_search_index(&model, &firmware));
    }

    #[test]
    fn changing_model_weights_invalidates_the_whole_cache() {
        let (model, firmware, _) = fixture();
        let mut cache =
            IndexCache::for_model(&model, DEFAULT_INLINE_BETA, &DecompileLimits::default());
        build_search_index_cached(&model, &firmware, &mut cache);
        let entries = cache.len();
        assert!(entries > 0);
        // A different seed → different weights → different digest.
        let retrained = AsteriaModel::new(ModelConfig {
            hidden_dim: 12,
            embed_dim: 8,
            seed: 0xBEEF,
            ..Default::default()
        });
        let (index, stats) = build_search_index_cached(&retrained, &firmware, &mut cache);
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.evicted, entries, "{stats}");
        assert_eq!(index, build_search_index(&retrained, &firmware));
        assert_eq!(cache.model_digest, retrained.weights_digest());
    }

    #[test]
    fn shrinking_corpus_evicts_dropped_binaries() {
        let (model, mut firmware, _) = fixture();
        let mut cache =
            IndexCache::for_model(&model, DEFAULT_INLINE_BETA, &DecompileLimits::default());
        build_search_index_cached(&model, &firmware, &mut cache);
        let dropped = firmware.pop().expect("fixture has images");
        let (_, stats) = build_search_index_cached(&model, &firmware, &mut cache);
        assert_eq!(stats.misses, 0);
        assert_eq!(stats.evicted, dropped.binaries.len(), "{stats}");
    }

    #[test]
    fn nan_scores_rank_last_and_never_panic() {
        let (model, _, mut index) = fixture();
        assert!(index.len() >= 3);
        // A degenerate encoding: every component NaN. The similarity it
        // produces is NaN, which must sink to the bottom of the ranking.
        let dim = index.functions[0].encoding.vector.len();
        index.functions[1].encoding.vector = vec![f32::NAN; dim];
        let lib = vulnerability_library();
        let q = encode_query(&model, &lib[0], Arch::X86).expect("query encodes");
        let hits = search(&model, &index, &q);
        assert_eq!(hits.len(), index.len());
        let last = hits.last().expect("non-empty");
        assert!(last.score.is_nan(), "NaN must rank last: {last:?}");
        assert_eq!(last.function, 1);
        assert!(hits[..hits.len() - 1].iter().all(|h| !h.score.is_nan()));
    }
}
