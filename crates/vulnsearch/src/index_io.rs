//! Persistent search-index storage: the versioned **ASIX** on-disk
//! format behind the incremental offline phase.
//!
//! The paper's cost breakdown (Fig. 10) shows offline AST encoding
//! dominating end-to-end search time, and the firmware case study
//! (Table IV) assumes embeddings are computed once per image and reused
//! across queries. ASIX makes that concrete: per-function embeddings,
//! callee counts and identity metadata are cached on disk, keyed by a
//! **content fingerprint** of (binary bytes + extraction parameters +
//! model weights digest), so stale entries self-invalidate whenever the
//! model is retrained or the [`DecompileLimits`] budget changes.
//!
//! The format is total under corruption: every multi-byte field is
//! little-endian, every length is capped before allocation, every entry
//! payload carries an FNV-1a checksum, and every failure mode is a typed
//! [`IndexError`] — never a panic. The fault-injection harness drives
//! the seeded corruptor (`asteria::corrupt`) over save/load to pin that
//! down.
//!
//! ## Layout (version 1)
//!
//! ```text
//! "ASIX"  magic                     4 bytes
//! version                           u32 (= 1)
//! model weights digest              u64
//! extraction-parameter digest       u64
//! entry count                       u32
//! per entry (one per cached binary, sorted by fingerprint):
//!   fingerprint                     u64
//!   payload length                  u32
//!   payload:
//!     extraction report             7 × u32
//!     function count                u32
//!     per function:
//!       name length, name bytes     u32 + bytes
//!       callee count                u32
//!       vector length, f32 bits     u32 + 4·len bytes
//!   payload checksum (FNV-1a 64)    u64
//! ```

use std::collections::HashMap;
use std::fmt;
use std::io::{self, Read, Write};

use asteria_compiler::Binary;
use asteria_core::{AsteriaModel, ExtractionReport};
use asteria_decompiler::DecompileLimits;
use asteria_nn::Fnv;

/// On-disk magic tag.
pub const ASIX_MAGIC: &[u8; 4] = b"ASIX";

/// Current format version. Readers reject anything newer; older
/// versions would be migrated here when the layout evolves.
pub const ASIX_VERSION: u32 = 1;

// Allocation caps: length prefixes are attacker-controlled, so nothing
// is pre-allocated beyond these bounds (the SBF loader applies the same
// discipline).
const MAX_ENTRIES: usize = 1 << 20;
const MAX_FUNCTIONS: usize = 1 << 20;
const MAX_NAME_LEN: usize = 1 << 16;
const MAX_VECTOR_LEN: usize = 1 << 20;
const MAX_PAYLOAD_LEN: usize = 1 << 26;
const MAX_PREALLOC: usize = 1 << 16;

/// Why an ASIX stream failed to load. Every variant is a recoverable,
/// typed condition: corrupt cache files cost a rebuild, never a crash.
#[derive(Debug)]
pub enum IndexError {
    /// The underlying reader failed (includes truncation).
    Io(io::Error),
    /// The stream does not start with the `ASIX` magic.
    BadMagic,
    /// The stream's format version is newer than this reader.
    UnsupportedVersion(u32),
    /// A structural invariant failed at a byte offset.
    Corrupt {
        /// Byte offset where parsing failed.
        offset: usize,
        /// What was wrong.
        what: String,
    },
    /// An entry's payload does not match its stored checksum.
    ChecksumMismatch {
        /// Fingerprint of the damaged entry.
        fingerprint: u64,
    },
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::Io(e) => write!(f, "index I/O error: {e}"),
            IndexError::BadMagic => write!(f, "not an ASIX index (bad magic)"),
            IndexError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported ASIX version {v} (reader supports {ASIX_VERSION})"
                )
            }
            IndexError::Corrupt { offset, what } => {
                write!(f, "corrupt ASIX index at byte {offset}: {what}")
            }
            IndexError::ChecksumMismatch { fingerprint } => {
                write!(f, "ASIX entry {fingerprint:#018x} failed its checksum")
            }
        }
    }
}

impl std::error::Error for IndexError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IndexError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for IndexError {
    fn from(e: io::Error) -> Self {
        IndexError::Io(e)
    }
}

/// One cached function: the embedding plus the identity metadata needed
/// to rebuild an index row without re-running extraction or encoding.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedFunction {
    /// Stripped display name.
    pub name: String,
    /// Calibration feature C (filtered callee count).
    pub callee_count: usize,
    /// Tree-LSTM encoding, exact bits.
    pub vector: Vec<f32>,
}

/// One cached binary: every successfully encoded function in symbol
/// order, plus the extraction report (including skips) from the cold
/// run, so a warm rebuild reproduces the corpus-coverage accounting
/// bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedBinary {
    /// Per-binary extraction outcome of the cold build.
    pub report: ExtractionReport,
    /// Encoded functions in the order the cold build produced them.
    pub functions: Vec<CachedFunction>,
}

/// Aggregate cache accounting for one incremental build.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Binaries served from the cache (extraction + encoding skipped).
    pub hits: usize,
    /// Binaries extracted and encoded cold.
    pub misses: usize,
    /// Stale entries dropped (fingerprint no longer present, or a
    /// model/parameter digest change wiped the cache).
    pub evicted: usize,
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits, {} misses, {} evicted",
            self.hits, self.misses, self.evicted
        )
    }
}

/// The persistent embedding cache: fingerprint → cached binary.
///
/// An `IndexCache` is scoped to one (model weights, extraction
/// parameters) pair, recorded as digests; `build_search_index_cached`
/// wipes it wholesale when either digest changes, and entry fingerprints
/// additionally bind the same inputs for defense in depth.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IndexCache {
    /// Digest of the model weights the cached embeddings came from.
    pub model_digest: u64,
    /// Digest of the extraction parameters (β + [`DecompileLimits`]).
    pub params_digest: u64,
    entries: HashMap<u64, CachedBinary>,
}

impl IndexCache {
    /// An empty cache bound to explicit digests.
    pub fn new(model_digest: u64, params_digest: u64) -> IndexCache {
        IndexCache {
            model_digest,
            params_digest,
            entries: HashMap::new(),
        }
    }

    /// An empty cache bound to a model and extraction parameters.
    pub fn for_model(model: &AsteriaModel, beta: usize, limits: &DecompileLimits) -> IndexCache {
        IndexCache::new(
            model.weights_digest(),
            extraction_params_digest(beta, limits),
        )
    }

    /// Number of cached binaries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a cached binary by fingerprint.
    pub fn get(&self, fingerprint: u64) -> Option<&CachedBinary> {
        self.entries.get(&fingerprint)
    }

    /// Inserts (or replaces) a cached binary.
    pub fn insert(&mut self, fingerprint: u64, entry: CachedBinary) {
        self.entries.insert(fingerprint, entry);
    }

    /// Drops every entry whose fingerprint fails `keep`; returns how
    /// many were evicted.
    pub fn retain_fingerprints(&mut self, keep: impl Fn(u64) -> bool) -> usize {
        let before = self.entries.len();
        self.entries.retain(|fp, _| keep(*fp));
        before - self.entries.len()
    }

    /// Drops everything; returns how many entries were evicted.
    pub fn clear(&mut self) -> usize {
        let n = self.entries.len();
        self.entries.clear();
        n
    }

    /// Fingerprints currently cached, unsorted.
    pub fn fingerprints(&self) -> impl Iterator<Item = u64> + '_ {
        self.entries.keys().copied()
    }

    /// Total cached functions across all entries.
    pub fn function_count(&self) -> usize {
        self.entries.values().map(|e| e.functions.len()).sum()
    }

    /// Serializes the cache (entries sorted by fingerprint, so equal
    /// caches produce byte-identical files).
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn save<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(ASIX_MAGIC)?;
        w.write_all(&ASIX_VERSION.to_le_bytes())?;
        w.write_all(&self.model_digest.to_le_bytes())?;
        w.write_all(&self.params_digest.to_le_bytes())?;
        w.write_all(&(self.entries.len() as u32).to_le_bytes())?;
        let mut fps: Vec<u64> = self.entries.keys().copied().collect();
        fps.sort_unstable();
        for fp in fps {
            let entry = &self.entries[&fp];
            let payload = encode_payload(entry);
            let mut checksum = Fnv::new();
            checksum.write(&payload);
            w.write_all(&fp.to_le_bytes())?;
            w.write_all(&(payload.len() as u32).to_le_bytes())?;
            w.write_all(&payload)?;
            w.write_all(&checksum.finish().to_le_bytes())?;
        }
        Ok(())
    }

    /// Loads a cache previously written by [`IndexCache::save`].
    ///
    /// # Errors
    ///
    /// Returns a typed [`IndexError`] for any malformed input: bad
    /// magic, unsupported version, truncation, lying length fields,
    /// checksum mismatches. Allocations are capped throughout, so a
    /// hostile stream cannot OOM the loader.
    pub fn load<R: Read>(mut r: R) -> Result<IndexCache, IndexError> {
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes)?;
        let mut c = Cursor::new(&bytes);
        let magic = c.take(4, "magic")?;
        if magic != ASIX_MAGIC {
            return Err(IndexError::BadMagic);
        }
        let version = c.u32("version")?;
        if version != ASIX_VERSION {
            return Err(IndexError::UnsupportedVersion(version));
        }
        let model_digest = c.u64("model digest")?;
        let params_digest = c.u64("params digest")?;
        let count = c.len("entry count", MAX_ENTRIES)?;
        let mut entries = HashMap::with_capacity(count.min(MAX_PREALLOC));
        for _ in 0..count {
            let fingerprint = c.u64("fingerprint")?;
            let payload_len = c.len("payload length", MAX_PAYLOAD_LEN)?;
            let payload_start = c.pos;
            let payload = c.take(payload_len, "entry payload")?;
            let mut checksum = Fnv::new();
            checksum.write(payload);
            let expected = checksum.finish();
            let stored = c.u64("checksum")?;
            if stored != expected {
                return Err(IndexError::ChecksumMismatch { fingerprint });
            }
            let entry = decode_payload(payload, payload_start)?;
            entries.insert(fingerprint, entry);
        }
        if c.pos != bytes.len() {
            return Err(IndexError::Corrupt {
                offset: c.pos,
                what: format!("{} trailing bytes", bytes.len() - c.pos),
            });
        }
        Ok(IndexCache {
            model_digest,
            params_digest,
            entries,
        })
    }
}

/// Serializes one entry's payload (the checksummed region).
fn encode_payload(entry: &CachedBinary) -> Vec<u8> {
    let mut out = Vec::new();
    let r = &entry.report;
    for v in [
        r.total,
        r.extracted,
        r.skipped,
        r.over_budget,
        r.decode_errors,
        r.empty_functions,
        r.other_errors,
    ] {
        out.extend_from_slice(&(v as u32).to_le_bytes());
    }
    out.extend_from_slice(&(entry.functions.len() as u32).to_le_bytes());
    for f in &entry.functions {
        let name = f.name.as_bytes();
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name);
        out.extend_from_slice(&(f.callee_count as u32).to_le_bytes());
        out.extend_from_slice(&(f.vector.len() as u32).to_le_bytes());
        for v in &f.vector {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
    out
}

/// Parses one entry payload. `base` is the payload's offset within the
/// whole stream, so corruption errors name absolute positions.
fn decode_payload(payload: &[u8], base: usize) -> Result<CachedBinary, IndexError> {
    let mut c = Cursor::with_base(payload, base);
    let mut counts = [0usize; 7];
    for (slot, what) in counts.iter_mut().zip([
        "report total",
        "report extracted",
        "report skipped",
        "report over_budget",
        "report decode_errors",
        "report empty_functions",
        "report other_errors",
    ]) {
        *slot = c.u32(what)? as usize;
    }
    let report = ExtractionReport {
        total: counts[0],
        extracted: counts[1],
        skipped: counts[2],
        over_budget: counts[3],
        decode_errors: counts[4],
        empty_functions: counts[5],
        other_errors: counts[6],
    };
    if report.extracted + report.skipped != report.total {
        return Err(c.corrupt("report counts do not add up"));
    }
    let nfuncs = c.len("function count", MAX_FUNCTIONS)?;
    if nfuncs != report.extracted {
        return Err(c.corrupt("function count disagrees with report"));
    }
    let mut functions = Vec::with_capacity(nfuncs.min(MAX_PREALLOC));
    for _ in 0..nfuncs {
        let name_len = c.len("name length", MAX_NAME_LEN)?;
        let name_bytes = c.take(name_len, "name")?;
        let name = std::str::from_utf8(name_bytes)
            .map_err(|_| c.corrupt("name not utf-8"))?
            .to_string();
        let callee_count = c.u32("callee count")? as usize;
        let vec_len = c.len("vector length", MAX_VECTOR_LEN)?;
        let mut vector = Vec::with_capacity(vec_len.min(MAX_PREALLOC));
        for _ in 0..vec_len {
            let raw = c.u32("vector element")?;
            vector.push(f32::from_bits(raw));
        }
        functions.push(CachedFunction {
            name,
            callee_count,
            vector,
        });
    }
    if c.pos - base != payload.len() {
        return Err(c.corrupt("payload has trailing bytes"));
    }
    Ok(CachedBinary { report, functions })
}

/// Bounds-checked little-endian reader over a byte slice, tracking the
/// absolute offset for error messages.
struct Cursor<'a> {
    bytes: &'a [u8],
    base: usize,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor {
            bytes,
            base: 0,
            pos: 0,
        }
    }

    fn with_base(bytes: &'a [u8], base: usize) -> Cursor<'a> {
        Cursor {
            bytes,
            base,
            pos: base,
        }
    }

    fn corrupt(&self, what: impl Into<String>) -> IndexError {
        IndexError::Corrupt {
            offset: self.pos,
            what: what.into(),
        }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], IndexError> {
        let rel = self.pos - self.base;
        let end = rel.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let out = &self.bytes[rel..end];
                self.pos += n;
                Ok(out)
            }
            None => Err(self.corrupt(format!("truncated while reading {what}"))),
        }
    }

    fn u32(&mut self, what: &str) -> Result<u32, IndexError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, IndexError> {
        let b = self.take(8, what)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(u64::from_le_bytes(arr))
    }

    /// Reads a u32 length field and enforces a cap before anything is
    /// allocated from it.
    fn len(&mut self, what: &str, cap: usize) -> Result<usize, IndexError> {
        let v = self.u32(what)? as usize;
        if v > cap {
            return Err(self.corrupt(format!("{what} {v} exceeds cap {cap}")));
        }
        Ok(v)
    }
}

/// Digest of the extraction parameters that shape every cached
/// embedding: the inline filter β and every [`DecompileLimits`] budget.
/// Changing any of them invalidates the whole cache.
pub fn extraction_params_digest(beta: usize, limits: &DecompileLimits) -> u64 {
    let mut h = Fnv::new();
    h.write_usize(beta);
    h.write_usize(limits.max_instructions);
    h.write_usize(limits.max_basic_blocks);
    h.write_usize(limits.max_ast_nodes);
    h.write_usize(limits.max_structure_iters);
    h.finish()
}

/// Content fingerprint of one binary under the current pipeline: the
/// binary's exact serialized bytes (covering every function body and
/// symbol — the callee-count feature depends on sibling functions, so
/// the whole container is the correct granularity), the extraction
/// parameters, and the model weights digest. Any change to any of the
/// three yields a different fingerprint, which is how stale cache
/// entries self-invalidate.
pub fn fingerprint_binary(binary: &Binary, params_digest: u64, model_digest: u64) -> u64 {
    let mut bytes = Vec::new();
    binary.save(&mut bytes).expect("in-memory save cannot fail");
    let mut h = Fnv::new();
    h.write_u64(params_digest);
    h.write_u64(model_digest);
    h.write_usize(bytes.len());
    h.write(&bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cache() -> IndexCache {
        let mut cache = IndexCache::new(0x1111, 0x2222);
        cache.insert(
            7,
            CachedBinary {
                report: ExtractionReport {
                    total: 3,
                    extracted: 2,
                    skipped: 1,
                    decode_errors: 1,
                    ..Default::default()
                },
                functions: vec![
                    CachedFunction {
                        name: "sub_40".into(),
                        callee_count: 2,
                        vector: vec![1.5, -0.25, f32::MIN_POSITIVE],
                    },
                    CachedFunction {
                        name: "sub_8c".into(),
                        callee_count: 0,
                        vector: vec![0.0, -0.0],
                    },
                ],
            },
        );
        cache.insert(
            99,
            CachedBinary {
                report: ExtractionReport {
                    total: 0,
                    ..Default::default()
                },
                functions: vec![],
            },
        );
        cache
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let cache = sample_cache();
        let mut buf = Vec::new();
        cache.save(&mut buf).unwrap();
        let loaded = IndexCache::load(buf.as_slice()).unwrap();
        assert_eq!(loaded, cache);
        assert_eq!(loaded.function_count(), 2);
    }

    #[test]
    fn save_is_deterministic() {
        let cache = sample_cache();
        let mut a = Vec::new();
        let mut b = Vec::new();
        cache.save(&mut a).unwrap();
        cache.save(&mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn load_rejects_bad_magic_and_version() {
        assert!(matches!(
            IndexCache::load(&b"NOPE"[..]),
            Err(IndexError::BadMagic)
        ));
        let mut buf = Vec::new();
        sample_cache().save(&mut buf).unwrap();
        buf[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            IndexCache::load(buf.as_slice()),
            Err(IndexError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn load_rejects_flipped_payload_bytes_via_checksum() {
        let mut buf = Vec::new();
        sample_cache().save(&mut buf).unwrap();
        // Flip one byte inside the first entry's payload (header is
        // 4 + 4 + 8 + 8 + 4 = 28 bytes, then fingerprint + length).
        let target = 28 + 8 + 4 + 10;
        buf[target] ^= 0x20;
        let err = IndexCache::load(buf.as_slice()).unwrap_err();
        assert!(
            matches!(
                err,
                IndexError::ChecksumMismatch { .. } | IndexError::Corrupt { .. }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn load_rejects_truncation_everywhere() {
        let mut buf = Vec::new();
        sample_cache().save(&mut buf).unwrap();
        for cut in 0..buf.len() {
            let err = IndexCache::load(&buf[..cut]).expect_err("truncated input must fail");
            // Any typed error is fine; a panic is not.
            let _ = err.to_string();
        }
    }

    #[test]
    fn load_caps_lying_length_fields() {
        let mut buf = Vec::new();
        sample_cache().save(&mut buf).unwrap();
        // Entry count at offset 24: claim u32::MAX entries.
        buf[24..28].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = IndexCache::load(buf.as_slice()).unwrap_err();
        assert!(
            matches!(err, IndexError::Corrupt { ref what, .. } if what.contains("cap")),
            "{err:?}"
        );
    }

    #[test]
    fn errors_display_offsets() {
        let mut buf = Vec::new();
        sample_cache().save(&mut buf).unwrap();
        buf.truncate(30);
        let err = IndexCache::load(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("byte"), "{err}");
    }

    #[test]
    fn params_digest_is_sensitive_to_each_field() {
        let base = DecompileLimits::default();
        let d0 = extraction_params_digest(6, &base);
        assert_eq!(d0, extraction_params_digest(6, &base));
        assert_ne!(d0, extraction_params_digest(7, &base));
        let tweaked = DecompileLimits {
            max_ast_nodes: base.max_ast_nodes - 1,
            ..base
        };
        assert_ne!(d0, extraction_params_digest(6, &tweaked));
    }

    #[test]
    fn retain_and_clear_report_evictions() {
        let mut cache = sample_cache();
        assert_eq!(cache.retain_fingerprints(|fp| fp == 7), 1);
        assert_eq!(cache.len(), 1);
        assert!(cache.get(7).is_some());
        assert_eq!(cache.clear(), 1);
        assert!(cache.is_empty());
    }
}
