//! `asteria-exec` — a deterministic scoped worker pool for the
//! workspace's hot paths.
//!
//! The paper's own cost breakdown (Fig. 10) shows the offline phase —
//! decompile + Tree-LSTM encoding at ~1 s/function over a 5,979-image
//! corpus — dominates total cost. This crate provides the execution layer
//! that fans that work out across cores without changing a single bit of
//! the output:
//!
//! - [`par_map`] / [`par_map_threads`] — an order-preserving parallel map
//!   over `std::thread::scope` + channels. Work is claimed item-by-item
//!   from a shared atomic cursor, results are keyed by input index, and
//!   the output `Vec` is assembled in input order, so the result is
//!   **bit-identical to the serial map at every thread count** (each item
//!   is computed by the same code on the same input; only wall-clock
//!   scheduling varies).
//! - [`par_map_chunked`] — the same contract with chunked work claiming,
//!   for very cheap per-item closures where channel traffic would
//!   dominate.
//! - [`thread_count`] / [`resolve_threads`] — thread-count policy:
//!   `ASTERIA_THREADS` (env) overrides, else
//!   [`std::thread::available_parallelism`].
//! - [`StageClock`] / [`StageStats`] — per-stage wall-time accounting for
//!   the offline/online phase breakdowns the benches report.
//!
//! No external dependencies (no rayon): the build environment is
//! offline, and the pool is ~100 lines of `std`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Environment variable overriding the worker-thread count (`0` or unset
/// means "use all available cores").
pub const THREADS_ENV: &str = "ASTERIA_THREADS";

/// The default worker-thread count: the [`THREADS_ENV`] override when set
/// to a positive integer, otherwise [`std::thread::available_parallelism`]
/// (1 if that fails).
pub fn thread_count() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves a requested thread count: `0` means "auto" (the
/// [`thread_count`] policy), anything else is taken literally.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        thread_count()
    } else {
        requested
    }
}

/// Order-preserving parallel map with the default thread count.
///
/// See [`par_map_threads`] for the determinism contract.
pub fn par_map<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    par_map_threads(0, items, f)
}

/// Order-preserving parallel map over `threads` workers (`0` = auto).
///
/// Every item is mapped by the same closure on the same input regardless
/// of the thread count, and results are placed by input index, so the
/// output is bit-identical to `items.iter().map(f).collect()` — the
/// invariant the determinism tests pin down. With one worker (or one
/// item) the map runs inline without spawning.
///
/// Panics in `f` propagate to the caller once the scope joins.
pub fn par_map_threads<I, T, F>(threads: usize, items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let threads = resolve_threads(threads).min(items.len());
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let cursor = AtomicUsize::new(0);
    // Workers run on fresh threads with empty span stacks; propagate the
    // caller's open span path so their spans nest under it.
    let parent = asteria_obs::current_path();
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    std::thread::scope(|s| {
        for _ in 0..threads {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            let parent = parent.as_deref();
            s.spawn(move || {
                let _obs = asteria_obs::worker_scope(parent);
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    if tx.send((i, f(&items[i]))).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
        let mut out: Vec<Option<T>> = Vec::with_capacity(items.len());
        out.resize_with(items.len(), || None);
        for (i, v) in rx {
            out[i] = Some(v);
        }
        out.into_iter()
            .map(|v| v.expect("every index produced exactly once"))
            .collect()
    })
}

/// Order-preserving parallel map that claims work in chunks of
/// `chunk_size` items (`0` = auto-size so each worker sees a handful of
/// chunks). Same determinism contract as [`par_map_threads`]; use it when
/// the per-item closure is so cheap that per-item channel traffic would
/// dominate (e.g. scoring one cached encoding pair).
pub fn par_map_chunked<I, T, F>(threads: usize, chunk_size: usize, items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let threads = resolve_threads(threads).min(items.len());
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let chunk = if chunk_size == 0 {
        (items.len() / (threads * 4)).max(1)
    } else {
        chunk_size
    };
    let chunks = AtomicUsize::new(0);
    let n_chunks = items.len().div_ceil(chunk);
    let parent = asteria_obs::current_path();
    let (tx, rx) = mpsc::channel::<(usize, Vec<T>)>();
    std::thread::scope(|s| {
        for _ in 0..threads {
            let tx = tx.clone();
            let chunks = &chunks;
            let f = &f;
            let parent = parent.as_deref();
            s.spawn(move || {
                let _obs = asteria_obs::worker_scope(parent);
                loop {
                    let c = chunks.fetch_add(1, Ordering::Relaxed);
                    if c >= n_chunks {
                        break;
                    }
                    let start = c * chunk;
                    let end = (start + chunk).min(items.len());
                    let vals: Vec<T> = items[start..end].iter().map(f).collect();
                    if tx.send((start, vals)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
        let mut out: Vec<Option<T>> = Vec::with_capacity(items.len());
        out.resize_with(items.len(), || None);
        for (start, vals) in rx {
            for (off, v) in vals.into_iter().enumerate() {
                out[start + off] = Some(v);
            }
        }
        out.into_iter()
            .map(|v| v.expect("every index produced exactly once"))
            .collect()
    })
}

/// Wall-time record for one named pipeline stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageStats {
    /// Stage name (e.g. `"offline-index"`).
    pub stage: String,
    /// Items processed by the stage.
    pub items: usize,
    /// Worker threads the stage ran with.
    pub threads: usize,
    /// Wall-clock seconds.
    pub seconds: f64,
}

impl StageStats {
    /// Items per wall-clock second (0 for an instantaneous stage).
    pub fn throughput(&self) -> f64 {
        if self.seconds > 0.0 {
            self.items as f64 / self.seconds
        } else {
            0.0
        }
    }
}

/// Collects per-stage wall-time stats across a pipeline run. Shareable
/// across threads; recording order is the order `time`/`record` calls
/// complete.
#[derive(Debug, Default)]
pub struct StageClock {
    stages: Mutex<Vec<StageStats>>,
}

impl StageClock {
    /// Creates an empty clock.
    pub fn new() -> StageClock {
        StageClock::default()
    }

    /// Times `f` as one stage over `items` items on `threads` workers.
    ///
    /// When the obs recorder is enabled, the stage is also recorded as a
    /// span named after the stage (annotated with `items`), so pipeline
    /// timings show up in `--trace` / `--metrics-out` without a second
    /// bespoke reporting path.
    pub fn time<T>(&self, stage: &str, items: usize, threads: usize, f: impl FnOnce() -> T) -> T {
        let mut span = asteria_obs::span(stage);
        span.set_items(items as u64);
        let t0 = Instant::now();
        let out = f();
        drop(span);
        self.record(StageStats {
            stage: stage.to_string(),
            items,
            threads,
            seconds: t0.elapsed().as_secs_f64(),
        });
        out
    }

    /// Appends a pre-measured stage.
    ///
    /// A worker that panicked mid-stage poisons the mutex; the stats data
    /// itself is a plain `Vec` that cannot be left inconsistent by a
    /// panic in *our* critical sections, so recover the inner value
    /// instead of cascading the panic (the fault-injection harness runs
    /// with many workers and must degrade one fault to one lost item).
    pub fn record(&self, stats: StageStats) {
        self.stages
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(stats);
    }

    /// All recorded stages, in completion order.
    pub fn stages(&self) -> Vec<StageStats> {
        self.stages
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Total wall-clock seconds across all recorded stages.
    pub fn total_seconds(&self) -> f64 {
        self.stages
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|s| s.seconds)
            .sum()
    }

    /// Wall-clock seconds of the named stage (summed over repeats), or
    /// `None` if it never ran — lets callers report per-stage timings
    /// (e.g. warm vs cold index builds) without re-walking the list.
    pub fn stage_seconds(&self, stage: &str) -> Option<f64> {
        let stages = self.stages.lock().unwrap_or_else(PoisonError::into_inner);
        let mut total = 0.0;
        let mut seen = false;
        for s in stages.iter().filter(|s| s.stage == stage) {
            total += s.seconds;
            seen = true;
        }
        seen.then_some(total)
    }

    /// Renders the stages as aligned text lines
    /// (`stage  items  threads  seconds  items/s`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in self.stages() {
            out.push_str(&format!(
                "{:<24} {:>8} items  {:>2} threads  {:>9.3}s  {:>10.1} items/s\n",
                s.stage,
                s.items,
                s.threads,
                s.seconds,
                s.throughput()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_serial_at_every_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|x| x.wrapping_mul(0x9E3779B9)).collect();
        for threads in [1, 2, 3, 8] {
            let par = par_map_threads(threads, &items, |x| x.wrapping_mul(0x9E3779B9));
            assert_eq!(par, serial, "{threads} threads");
        }
    }

    #[test]
    fn par_map_chunked_matches_serial() {
        let items: Vec<i64> = (0..1000).collect();
        let serial: Vec<i64> = items.iter().map(|x| x * x - 3).collect();
        for (threads, chunk) in [(2, 1), (4, 7), (8, 0), (3, 1000), (2, 5000)] {
            let par = par_map_chunked(threads, chunk, &items, |x| x * x - 3);
            assert_eq!(par, serial, "{threads} threads, chunk {chunk}");
        }
    }

    #[test]
    fn par_map_preserves_float_bits() {
        // The whole point: floating-point results must be bit-identical,
        // not merely approximately equal.
        let items: Vec<f64> = (0..500).map(|i| (i as f64).sin()).collect();
        let f = |x: &f64| (x * 1.000000119).exp().ln() + x.sqrt();
        let serial: Vec<u64> = items.iter().map(|x| f(x).to_bits()).collect();
        for threads in [2, 5] {
            let par: Vec<u64> = par_map_threads(threads, &items, |x| f(x).to_bits());
            assert_eq!(par, serial);
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_threads(4, &empty, |x| x + 1).is_empty());
        assert_eq!(par_map_threads(4, &[41u32], |x| x + 1), vec![42]);
        assert_eq!(par_map_chunked(4, 3, &[1u32, 2], |x| x * 2), vec![2, 4]);
    }

    #[test]
    fn resolve_threads_contract() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
        assert!(thread_count() >= 1);
    }

    #[test]
    fn stage_clock_records_and_renders() {
        let clock = StageClock::new();
        let v = clock.time("encode", 100, 4, || 7);
        assert_eq!(v, 7);
        clock.record(StageStats {
            stage: "search".into(),
            items: 10,
            threads: 1,
            seconds: 2.0,
        });
        let stages = clock.stages();
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].stage, "encode");
        assert_eq!(stages[1].throughput(), 5.0);
        let rendered = clock.render();
        assert!(rendered.contains("encode"), "{rendered}");
        assert!(rendered.contains("items/s"), "{rendered}");
    }

    #[test]
    fn stage_seconds_and_totals() {
        let clock = StageClock::new();
        for seconds in [1.0, 2.0] {
            clock.record(StageStats {
                stage: "warm".into(),
                items: 1,
                threads: 1,
                seconds,
            });
        }
        clock.record(StageStats {
            stage: "cold".into(),
            items: 1,
            threads: 1,
            seconds: 4.0,
        });
        assert_eq!(clock.stage_seconds("warm"), Some(3.0));
        assert_eq!(clock.stage_seconds("cold"), Some(4.0));
        assert_eq!(clock.stage_seconds("absent"), None);
        assert_eq!(clock.total_seconds(), 7.0);
    }

    #[test]
    fn stage_clock_survives_a_poisoned_lock() {
        // A worker panicking while holding the lock used to poison it and
        // turn every later `record`/`stages` call into a second panic.
        let clock = StageClock::new();
        clock.record(StageStats {
            stage: "before".into(),
            items: 1,
            threads: 1,
            seconds: 0.5,
        });
        std::thread::scope(|s| {
            let handle = s.spawn(|| {
                let _guard = clock.stages.lock().expect("fresh lock");
                panic!("worker fault while holding the clock lock");
            });
            assert!(handle.join().is_err());
        });
        // The lock is now poisoned; all accessors must still work.
        clock.record(StageStats {
            stage: "after".into(),
            items: 2,
            threads: 1,
            seconds: 1.5,
        });
        let stages = clock.stages();
        assert_eq!(stages.len(), 2);
        assert_eq!(clock.total_seconds(), 2.0);
        assert_eq!(clock.stage_seconds("after"), Some(1.5));
        assert!(clock.render().contains("after"));
    }

    #[test]
    fn borrowed_captures_work_in_workers() {
        // The scoped pool must let closures borrow the caller's stack
        // (the model reference in the real pipeline).
        let table: Vec<u32> = (0..32).map(|i| i * 3).collect();
        let out = par_map_threads(4, &(0..32usize).collect::<Vec<_>>(), |i| table[*i]);
        assert_eq!(out, table);
    }
}
