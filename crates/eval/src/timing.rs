//! Wall-clock measurement helpers for the Fig. 10(b)/(c) timing studies.

use std::time::Instant;

/// A timing result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Timing {
    /// Number of operations measured.
    pub iterations: u64,
    /// Total elapsed seconds.
    pub total_seconds: f64,
}

impl Timing {
    /// Mean seconds per operation.
    pub fn per_op(&self) -> f64 {
        self.total_seconds / self.iterations.max(1) as f64
    }
}

/// Measures one invocation of `f`.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, Timing) {
    let start = Instant::now();
    let out = f();
    let total = start.elapsed().as_secs_f64();
    (
        out,
        Timing {
            iterations: 1,
            total_seconds: total,
        },
    )
}

/// Measures `n` invocations, returning the aggregate timing. A black-box
/// sink keeps the optimizer from deleting the work.
pub fn measure_n(n: u64, mut f: impl FnMut() -> f64) -> Timing {
    let start = Instant::now();
    let mut sink = 0.0f64;
    for _ in 0..n {
        sink += f();
    }
    let total = start.elapsed().as_secs_f64();
    // Defeat dead-code elimination without a nightly black_box.
    if sink.is_nan() {
        eprintln!("impossible: {sink}");
    }
    Timing {
        iterations: n,
        total_seconds: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_value_and_positive_time() {
        let (v, t) = measure(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(t.total_seconds >= 0.0);
        assert_eq!(t.iterations, 1);
    }

    #[test]
    fn measure_n_accumulates_iterations() {
        let t = measure_n(100, || 1.0);
        assert_eq!(t.iterations, 100);
        assert!(t.per_op() >= 0.0);
    }

    #[test]
    fn per_op_divides_total() {
        let t = Timing {
            iterations: 4,
            total_seconds: 2.0,
        };
        assert_eq!(t.per_op(), 0.5);
    }
}
