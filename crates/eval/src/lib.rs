//! `asteria-eval` — evaluation metrics and timing utilities.
//!
//! Implements the paper's §IV-D measurement machinery: ROC curves from
//! scored pairs, AUC via the Mann–Whitney formulation, TPR at a fixed FPR
//! (the paper quotes TPR at 5% FPR), the Youden index J = TPR − FPR used
//! to pick the vulnerability-search threshold (§V), CDF construction for
//! the Fig. 10(a) AST-size study, and wall-clock timing helpers for the
//! Fig. 10(b)/(c) overhead studies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod stats;
pub mod timing;

pub use metrics::{auc, roc_curve, tpr_at_fpr, youden_threshold, RocPoint, ScoredPair};
pub use stats::{cdf_points, percentile, Summary};
pub use timing::{measure, measure_n, Timing};
