//! Distribution statistics: CDFs (Fig. 10a) and summaries.

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes a summary; returns `None` for empty input.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let mut v = values.to_vec();
        // total_cmp: NaN sorts to the end instead of panicking the run.
        v.sort_by(f64::total_cmp);
        Some(Summary {
            n: v.len(),
            mean: v.iter().sum::<f64>() / v.len() as f64,
            min: v[0],
            median: percentile(&v, 50.0),
            max: *v.last().expect("non-empty"),
        })
    }
}

/// Percentile of a **sorted** sample by nearest-rank.
///
/// # Panics
///
/// Panics on an empty sample or a percentile outside `[0, 100]`.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    if p == 0.0 {
        return sorted[0];
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Builds an empirical CDF as `(value, fraction ≤ value)` points — the
/// form of the paper's Fig. 10(a) AST-size distribution.
pub fn cdf_points(values: &[f64]) -> Vec<(f64, f64)> {
    let mut v = values.to_vec();
    v.sort_by(f64::total_cmp);
    let n = v.len() as f64;
    let mut out: Vec<(f64, f64)> = Vec::new();
    for (i, x) in v.iter().enumerate() {
        let frac = (i + 1) as f64 / n;
        match out.last_mut() {
            Some((lx, lf)) if lx == x => *lf = frac,
            _ => out.push((*x, frac)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_simple_sample() {
        let s = Summary::of(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(s.n, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.median, 2.0);
        assert!((s.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn summary_of_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 25.0), 1.0);
        assert_eq!(percentile(&v, 50.0), 2.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
    }

    #[test]
    fn nan_values_do_not_panic_stats() {
        let s = Summary::of(&[1.0, f64::NAN, 3.0]).unwrap();
        assert_eq!(s.n, 3);
        assert_eq!(s.min, 1.0);
        let pts = cdf_points(&[2.0, f64::NAN, 1.0]);
        assert_eq!(pts.len(), 3);
    }

    #[test]
    fn cdf_reaches_one_and_dedups() {
        let pts = cdf_points(&[1.0, 1.0, 2.0, 5.0]);
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0], (1.0, 0.5));
        assert_eq!(*pts.last().unwrap(), (5.0, 1.0));
    }

    #[test]
    fn cdf_is_monotone() {
        let pts = cdf_points(&[5.0, 3.0, 9.0, 1.0, 3.0]);
        for w in pts.windows(2) {
            assert!(w[1].0 > w[0].0);
            assert!(w[1].1 > w[0].1);
        }
    }
}
