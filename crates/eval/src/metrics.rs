//! ROC / AUC / Youden-index metrics (paper §IV-D).

/// A scored example: model similarity plus ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredPair {
    /// Similarity score `r` in `[0, 1]`.
    pub score: f64,
    /// True for homologous pairs.
    pub positive: bool,
}

impl ScoredPair {
    /// Convenience constructor.
    pub fn new(score: f64, positive: bool) -> Self {
        ScoredPair { score, positive }
    }
}

/// One point of a ROC curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// Decision threshold β producing this point.
    pub threshold: f64,
    /// False-positive rate at β.
    pub fpr: f64,
    /// True-positive rate at β.
    pub tpr: f64,
}

fn sorted_desc(pairs: &[ScoredPair]) -> Vec<ScoredPair> {
    let mut v = pairs.to_vec();
    // total_cmp: a NaN score must not panic the sweep.
    v.sort_by(|a, b| b.score.total_cmp(&a.score));
    v
}

/// Computes the ROC curve by sweeping the threshold over every distinct
/// score (plus the endpoints `(0,0)` and `(1,1)`).
///
/// # Panics
///
/// Panics if `pairs` contains no positives or no negatives (the curve is
/// undefined). NaN scores are tolerated (they sort like `total_cmp`).
pub fn roc_curve(pairs: &[ScoredPair]) -> Vec<RocPoint> {
    let pos = pairs.iter().filter(|p| p.positive).count();
    let neg = pairs.len() - pos;
    assert!(pos > 0, "ROC requires at least one positive");
    assert!(neg > 0, "ROC requires at least one negative");
    let sorted = sorted_desc(pairs);
    let mut out = vec![RocPoint {
        threshold: f64::INFINITY,
        fpr: 0.0,
        tpr: 0.0,
    }];
    let (mut tp, mut fp) = (0usize, 0usize);
    let mut i = 0;
    while i < sorted.len() {
        let s = sorted[i].score;
        // Consume all pairs tied at this score before emitting a point.
        // total_cmp equality (not `==`): a NaN group must still advance
        // the cursor instead of spinning forever.
        while i < sorted.len() && sorted[i].score.total_cmp(&s).is_eq() {
            if sorted[i].positive {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        out.push(RocPoint {
            threshold: s,
            fpr: fp as f64 / neg as f64,
            tpr: tp as f64 / pos as f64,
        });
    }
    out
}

/// Area under the ROC curve via the Mann–Whitney U statistic — the
/// probability that a random positive outscores a random negative, with
/// ties counting half.
///
/// # Panics
///
/// Panics when either class is empty.
pub fn auc(pairs: &[ScoredPair]) -> f64 {
    let pos: Vec<f64> = pairs
        .iter()
        .filter(|p| p.positive)
        .map(|p| p.score)
        .collect();
    let neg: Vec<f64> = pairs
        .iter()
        .filter(|p| !p.positive)
        .map(|p| p.score)
        .collect();
    assert!(!pos.is_empty(), "AUC requires at least one positive");
    assert!(!neg.is_empty(), "AUC requires at least one negative");
    // Sort negatives once; count via binary search: O((m+n) log n).
    let mut sneg = neg.clone();
    sneg.sort_by(f64::total_cmp);
    let mut u = 0.0f64;
    for p in &pos {
        let below = sneg.partition_point(|x| x < p);
        let equal = sneg.partition_point(|x| x <= p) - below;
        u += below as f64 + equal as f64 * 0.5;
    }
    u / (pos.len() as f64 * neg.len() as f64)
}

/// TPR at the largest threshold whose FPR does not exceed `max_fpr`
/// (the paper quotes "TPR 93.2% at 5% FPR").
pub fn tpr_at_fpr(pairs: &[ScoredPair], max_fpr: f64) -> f64 {
    roc_curve(pairs)
        .iter()
        .filter(|p| p.fpr <= max_fpr)
        .map(|p| p.tpr)
        .fold(0.0, f64::max)
}

/// The threshold maximizing the Youden index J = TPR − FPR (§V).
/// Returns `(threshold, j_statistic)`.
pub fn youden_threshold(pairs: &[ScoredPair]) -> (f64, f64) {
    let mut best = (0.5, f64::NEG_INFINITY);
    for p in roc_curve(pairs) {
        if p.threshold.is_finite() {
            let j = p.tpr - p.fpr;
            if j > best.1 {
                best = (p.threshold, j);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perfect() -> Vec<ScoredPair> {
        (0..10)
            .map(|i| ScoredPair::new(if i < 5 { 0.9 } else { 0.1 }, i < 5))
            .collect()
    }

    fn random_like() -> Vec<ScoredPair> {
        // Positives and negatives share identical score distributions.
        let mut v = Vec::new();
        for i in 0..10 {
            v.push(ScoredPair::new(i as f64 / 10.0, true));
            v.push(ScoredPair::new(i as f64 / 10.0, false));
        }
        v
    }

    #[test]
    fn auc_of_perfect_classifier_is_one() {
        assert_eq!(auc(&perfect()), 1.0);
    }

    #[test]
    fn auc_of_random_classifier_is_half() {
        assert!((auc(&random_like()) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_of_inverted_classifier_is_zero() {
        let inverted: Vec<ScoredPair> = perfect()
            .iter()
            .map(|p| ScoredPair::new(1.0 - p.score, p.positive))
            .collect();
        assert_eq!(auc(&inverted), 0.0);
    }

    #[test]
    fn roc_starts_at_origin_and_ends_at_one_one() {
        let roc = roc_curve(&perfect());
        let first = roc.first().unwrap();
        let last = roc.last().unwrap();
        assert_eq!((first.fpr, first.tpr), (0.0, 0.0));
        assert_eq!((last.fpr, last.tpr), (1.0, 1.0));
    }

    #[test]
    fn roc_is_monotone() {
        let roc = roc_curve(&random_like());
        for w in roc.windows(2) {
            assert!(w[1].fpr >= w[0].fpr);
            assert!(w[1].tpr >= w[0].tpr);
        }
    }

    #[test]
    fn tpr_at_fpr_perfect() {
        assert_eq!(tpr_at_fpr(&perfect(), 0.05), 1.0);
    }

    #[test]
    fn tpr_at_fpr_zero_budget_can_be_zero() {
        // Highest-scored item is a negative → nothing achievable at fpr=0.
        let pairs = vec![
            ScoredPair::new(0.99, false),
            ScoredPair::new(0.5, true),
            ScoredPair::new(0.1, false),
        ];
        assert_eq!(tpr_at_fpr(&pairs, 0.0), 0.0);
    }

    #[test]
    fn youden_picks_separating_threshold() {
        let (thr, j) = youden_threshold(&perfect());
        assert!((0.1..=0.9).contains(&thr), "{thr}");
        assert_eq!(j, 1.0);
    }

    #[test]
    fn auc_handles_ties_as_half() {
        let pairs = vec![ScoredPair::new(0.5, true), ScoredPair::new(0.5, false)];
        assert_eq!(auc(&pairs), 0.5);
    }

    #[test]
    #[should_panic(expected = "at least one positive")]
    fn auc_requires_positives() {
        auc(&[ScoredPair::new(0.3, false)]);
    }

    #[test]
    fn nan_scores_do_not_panic_metrics() {
        // A degenerate encoding producing NaN must not kill the run
        // (PR 1's no-panic guarantee extends to the metric layer).
        let pairs = vec![
            ScoredPair::new(0.9, true),
            ScoredPair::new(f64::NAN, true),
            ScoredPair::new(0.2, false),
            ScoredPair::new(f64::NAN, false),
        ];
        let a = auc(&pairs);
        assert!(a.is_finite(), "{a}");
        let roc = roc_curve(&pairs);
        assert!(roc.len() >= 2);
        let (thr, _) = youden_threshold(&pairs);
        assert!(!thr.is_nan());
        let _ = tpr_at_fpr(&pairs, 0.05);
    }

    #[test]
    fn auc_matches_rank_statistic_on_known_example() {
        // pos = {0.8, 0.6}, neg = {0.7, 0.1}
        // pairs won: (0.8>0.7),(0.8>0.1),(0.6<0.7 →0),(0.6>0.1) = 3/4
        let pairs = vec![
            ScoredPair::new(0.8, true),
            ScoredPair::new(0.6, true),
            ScoredPair::new(0.7, false),
            ScoredPair::new(0.1, false),
        ];
        assert_eq!(auc(&pairs), 0.75);
    }
}
