//! Property-based tests for the metric implementations.

use proptest::prelude::*;

use asteria_eval::{auc, cdf_points, roc_curve, tpr_at_fpr, youden_threshold, ScoredPair};

fn arb_pairs() -> impl Strategy<Value = Vec<ScoredPair>> {
    proptest::collection::vec((0.0f64..=1.0, any::<bool>()), 2..200).prop_filter_map(
        "need both classes",
        |v| {
            let pairs: Vec<ScoredPair> =
                v.into_iter().map(|(s, p)| ScoredPair::new(s, p)).collect();
            let pos = pairs.iter().filter(|p| p.positive).count();
            if pos == 0 || pos == pairs.len() {
                None
            } else {
                Some(pairs)
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// AUC is always a probability.
    #[test]
    fn auc_in_unit_interval(pairs in arb_pairs()) {
        let a = auc(&pairs);
        prop_assert!((0.0..=1.0).contains(&a), "{a}");
    }

    /// Inverting all scores flips AUC around one half.
    #[test]
    fn auc_inversion_symmetry(pairs in arb_pairs()) {
        let a = auc(&pairs);
        let inverted: Vec<ScoredPair> = pairs
            .iter()
            .map(|p| ScoredPair::new(1.0 - p.score, p.positive))
            .collect();
        let b = auc(&inverted);
        prop_assert!((a + b - 1.0).abs() < 1e-9, "{a} + {b} != 1");
    }

    /// ROC curves are monotone staircases from (0,0) to (1,1).
    #[test]
    fn roc_is_monotone_staircase(pairs in arb_pairs()) {
        let roc = roc_curve(&pairs);
        prop_assert_eq!((roc[0].fpr, roc[0].tpr), (0.0, 0.0));
        let last = roc.last().unwrap();
        prop_assert_eq!((last.fpr, last.tpr), (1.0, 1.0));
        for w in roc.windows(2) {
            prop_assert!(w[1].fpr >= w[0].fpr);
            prop_assert!(w[1].tpr >= w[0].tpr);
            prop_assert!(w[1].threshold <= w[0].threshold);
        }
    }

    /// TPR@FPR is monotone in the FPR budget.
    #[test]
    fn tpr_at_fpr_is_monotone(pairs in arb_pairs()) {
        let mut last = 0.0;
        for budget in [0.0, 0.01, 0.05, 0.1, 0.5, 1.0] {
            let t = tpr_at_fpr(&pairs, budget);
            prop_assert!(t >= last, "budget {budget}: {t} < {last}");
            last = t;
        }
        prop_assert_eq!(last, 1.0); // full budget always reaches TPR 1
    }

    /// The Youden threshold's J statistic matches TPR−FPR at that point
    /// and is at least 0 (chance level).
    #[test]
    fn youden_is_consistent(pairs in arb_pairs()) {
        let (thr, j) = youden_threshold(&pairs);
        prop_assert!(j >= 0.0 - 1e-12);
        prop_assert!(thr.is_finite());
        // Recompute J directly at the threshold.
        let pos = pairs.iter().filter(|p| p.positive).count() as f64;
        let neg = pairs.len() as f64 - pos;
        let tp = pairs.iter().filter(|p| p.positive && p.score >= thr).count() as f64;
        let fp = pairs.iter().filter(|p| !p.positive && p.score >= thr).count() as f64;
        let direct = tp / pos - fp / neg;
        prop_assert!((direct - j).abs() < 1e-9, "J mismatch: {direct} vs {j}");
    }

    /// CDFs are monotone and end at 1.
    #[test]
    fn cdf_properties(values in proptest::collection::vec(-100.0f64..100.0, 1..100)) {
        let cdf = cdf_points(&values);
        prop_assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in cdf.windows(2) {
            prop_assert!(w[1].0 > w[0].0);
            prop_assert!(w[1].1 > w[0].1);
        }
    }
}
