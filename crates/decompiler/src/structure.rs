//! Control-flow structuring: machine CFG → structured statements.
//!
//! A region-following structurer in the style of classic decompilers:
//! loops are discovered through back edges and natural-loop sets, branches
//! through immediate postdominators, and anything that refuses to fit
//! (multi-exit loops, overlapping regions) degrades gracefully to `goto` —
//! which is exactly why the paper's Table I has a `goto` node type.

use std::collections::{BTreeMap, BTreeSet};

use asteria_lang::UnOp;

use crate::ast::{DExpr, DStmt};
use crate::cfg::{back_edges, dominators, natural_loop, postdominators, Cfg, TermKind};
use crate::decompile::DecompileError;
use crate::lift::LiftedBlock;
use crate::limits::BudgetKind;

struct LoopEnv {
    exit: Option<usize>,
    continue_target: usize,
}

struct Structurer<'a> {
    cfg: &'a Cfg,
    lifted: &'a [LiftedBlock],
    ipdom: Vec<Option<usize>>,
    /// header → latches
    loops: BTreeMap<usize, Vec<usize>>,
    /// headers currently being emitted (guards re-entry)
    active: BTreeSet<usize>,
    budget: usize,
    /// Region-walk iterations so far, checked against `max_iters`.
    iters: usize,
    max_iters: usize,
    /// Set when `max_iters` was hit; the walk then drains via `goto` and
    /// the caller turns the partial result into a typed error.
    exceeded: bool,
}

fn run_structurer(
    cfg: &Cfg,
    lifted: &[LiftedBlock],
    max_iters: usize,
) -> (Vec<DStmt>, usize, bool) {
    let idom = dominators(cfg);
    let mut loops: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (latch, header) in back_edges(cfg, &idom) {
        loops.entry(header).or_default().push(latch);
    }
    let mut s = Structurer {
        cfg,
        lifted,
        ipdom: postdominators(cfg),
        loops,
        active: BTreeSet::new(),
        budget: cfg.blocks.len() * 8 + 64,
        iters: 0,
        max_iters,
        exceeded: false,
    };
    let mut out = Vec::new();
    s.region(Some(0), None, None, &mut out);
    (out, s.iters, s.exceeded)
}

/// Structures a lifted function body into statements.
pub fn structure(cfg: &Cfg, lifted: &[LiftedBlock]) -> Vec<DStmt> {
    run_structurer(cfg, lifted, usize::MAX).0
}

/// Structures a lifted function body under an iteration budget.
///
/// The structurer already degrades pathological regions to `goto`, so it
/// always terminates; this variant additionally bounds the total number of
/// region-walk iterations and reports a typed error when the bound is hit,
/// letting corpus drivers distinguish "structured with gotos" from
/// "adversarially large".
///
/// # Errors
///
/// Returns [`DecompileError::BudgetExceeded`] with
/// [`BudgetKind::StructureIters`](crate::BudgetKind::StructureIters) when
/// the walk exceeds `max_structure_iters` iterations.
pub fn structure_limited(
    cfg: &Cfg,
    lifted: &[LiftedBlock],
    max_structure_iters: usize,
) -> Result<Vec<DStmt>, DecompileError> {
    let (out, iters, exceeded) = run_structurer(cfg, lifted, max_structure_iters);
    if exceeded {
        return Err(DecompileError::BudgetExceeded {
            kind: BudgetKind::StructureIters,
            limit: max_structure_iters,
            actual: iters,
        });
    }
    Ok(out)
}

fn negate(e: DExpr) -> DExpr {
    match e {
        DExpr::Un(UnOp::Not, inner) => *inner,
        DExpr::Bin(op, a, b) if op.is_comparison() => {
            use asteria_lang::BinOp::*;
            let flipped = match op {
                Eq => Ne,
                Ne => Eq,
                Lt => Ge,
                Le => Gt,
                Gt => Le,
                Ge => Lt,
                _ => unreachable!(),
            };
            DExpr::Bin(flipped, a, b)
        }
        other => DExpr::Un(UnOp::Not, Box::new(other)),
    }
}

impl<'a> Structurer<'a> {
    /// Emits the region starting at `start`, stopping when reaching `stop`.
    fn region(
        &mut self,
        start: Option<usize>,
        stop: Option<usize>,
        env: Option<&LoopEnv>,
        out: &mut Vec<DStmt>,
    ) {
        let mut cur = start;
        let mut first = true;
        while let Some(node) = cur {
            if Some(node) == stop && !(first && self.loop_entry_needs_body(node, stop)) {
                return;
            }
            first = false;
            self.iters += 1;
            if self.iters > self.max_iters {
                // Drain the rest of the walk through the goto fallback;
                // `structure_limited` reports the overrun as an error.
                self.exceeded = true;
                self.budget = 0;
            }
            if self.budget == 0 {
                out.push(DStmt::Goto(node as u32));
                return;
            }
            self.budget -= 1;
            if let Some(env) = env {
                if Some(node) == env.exit && Some(node) != stop {
                    out.push(DStmt::Break);
                    return;
                }
                if node == env.continue_target && Some(node) != stop {
                    out.push(DStmt::Continue);
                    return;
                }
            }
            // Loop header not yet being emitted → emit the whole loop.
            if self.loops.contains_key(&node) && !self.active.contains(&node) {
                cur = self.emit_loop(node, out);
                continue;
            }
            let block = &self.cfg.blocks[node];
            match block.term {
                TermKind::Ret => {
                    out.extend(self.lifted[node].stmts.iter().cloned());
                    out.push(DStmt::Return(self.lifted[node].ret.clone()));
                    return;
                }
                TermKind::Jump => {
                    out.extend(self.lifted[node].stmts.iter().cloned());
                    cur = block.succs.first().copied();
                }
                TermKind::Cond => {
                    out.extend(self.lifted[node].stmts.iter().cloned());
                    let cond = self.lifted[node].cond.clone().unwrap_or(DExpr::Num(1));
                    let taken = block.succs[0];
                    let fall = block.succs[1];
                    let join = self.ipdom[node];
                    let mut then_body = Vec::new();
                    self.region(Some(taken), join, env, &mut then_body);
                    let mut else_body = Vec::new();
                    self.region(Some(fall), join, env, &mut else_body);
                    // Normalize: prefer a non-empty then-arm.
                    let stmt = if then_body.is_empty() && !else_body.is_empty() {
                        DStmt::If(negate(cond), else_body, Vec::new())
                    } else {
                        DStmt::If(cond, then_body, else_body)
                    };
                    out.push(stmt);
                    cur = join;
                }
            }
        }
    }

    /// A region may legitimately *start* at its stop node when we emit the
    /// body of a `while(1)` loop whose header equals the region stop.
    fn loop_entry_needs_body(&self, _node: usize, _stop: Option<usize>) -> bool {
        false
    }

    /// Emits a loop headed at `header`; returns the continuation node.
    fn emit_loop(&mut self, header: usize, out: &mut Vec<DStmt>) -> Option<usize> {
        let latches = self.loops.get(&header).cloned().unwrap_or_default();
        let mut loop_set: BTreeSet<usize> = BTreeSet::new();
        for latch in &latches {
            loop_set.extend(natural_loop(self.cfg, *latch, header));
        }
        // Exit edges: loop node → outside node.
        let mut exits: Vec<(usize, usize)> = Vec::new();
        for &n in &loop_set {
            for &s in &self.cfg.blocks[n].succs {
                if !loop_set.contains(&s) {
                    exits.push((n, s));
                }
            }
        }
        self.active.insert(header);

        let header_block = &self.cfg.blocks[header];
        let result_cont;

        // Form 1: while (cond) — header is conditional and exits the loop.
        let header_is_while = header_block.term == TermKind::Cond
            && (!loop_set.contains(&header_block.succs[0])
                || !loop_set.contains(&header_block.succs[1]))
            && self.lifted[header].stmts.is_empty();
        // Form 2: do { } while (cond) — unique latch is conditional.
        let single_latch = latches.len() == 1;
        let latch = latches[0];
        let latch_is_dowhile = !header_is_while
            && single_latch
            && self.cfg.blocks[latch].term == TermKind::Cond
            && self.cfg.blocks[latch].succs.contains(&header)
            && (!loop_set.contains(&self.cfg.blocks[latch].succs[0])
                || !loop_set.contains(&self.cfg.blocks[latch].succs[1]));

        if header_is_while {
            let taken = header_block.succs[0];
            let fall = header_block.succs[1];
            let (mut cond, body_entry, exit) = if loop_set.contains(&taken) {
                (
                    self.lifted[header].cond.clone().unwrap_or(DExpr::Num(1)),
                    taken,
                    fall,
                )
            } else {
                (
                    negate(self.lifted[header].cond.clone().unwrap_or(DExpr::Num(1))),
                    fall,
                    taken,
                )
            };
            // `while (1)` appears when the condition is a constant.
            if let DExpr::Num(n) = cond {
                cond = DExpr::Num((n != 0) as i64);
            }
            let env = LoopEnv {
                exit: Some(exit),
                continue_target: header,
            };
            let mut body = Vec::new();
            self.region(Some(body_entry), Some(header), Some(&env), &mut body);
            out.push(DStmt::While(cond, body));
            result_cont = Some(exit);
        } else if latch_is_dowhile {
            let taken = self.cfg.blocks[latch].succs[0];
            let fall = self.cfg.blocks[latch].succs[1];
            let (cond, exit) = if taken == header {
                (
                    self.lifted[latch].cond.clone().unwrap_or(DExpr::Num(0)),
                    fall,
                )
            } else {
                (
                    negate(self.lifted[latch].cond.clone().unwrap_or(DExpr::Num(0))),
                    taken,
                )
            };
            let env = LoopEnv {
                exit: Some(exit),
                continue_target: latch,
            };
            let mut body = Vec::new();
            self.region(Some(header), Some(latch), Some(&env), &mut body);
            // The latch's own statements run at the end of each iteration.
            body.extend(self.lifted[latch].stmts.iter().cloned());
            out.push(DStmt::DoWhile(body, cond));
            result_cont = Some(exit);
        } else {
            // Form 3: while (1) { … break … }.
            // Choose the most common exit target as the break destination.
            let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
            for (_, t) in &exits {
                *counts.entry(*t).or_default() += 1;
            }
            let exit = counts.iter().max_by_key(|(_, c)| **c).map(|(t, _)| *t);
            let env = LoopEnv {
                exit,
                continue_target: header,
            };
            let mut body = Vec::new();
            // Walk the loop body starting at the header; the back edge to
            // the header terminates the region via continue_target —
            // except we must not stop instantly, so structure the header
            // manually, then follow.
            let hb = &self.cfg.blocks[header];
            body.extend(self.lifted[header].stmts.iter().cloned());
            match hb.term {
                TermKind::Ret => {
                    body.push(DStmt::Return(self.lifted[header].ret.clone()));
                }
                TermKind::Jump => {
                    let next = hb.succs[0];
                    if next != header {
                        self.region(Some(next), Some(header), Some(&env), &mut body);
                    }
                }
                TermKind::Cond => {
                    let cond = self.lifted[header].cond.clone().unwrap_or(DExpr::Num(1));
                    let join = self.ipdom[header];
                    let mut then_body = Vec::new();
                    let mut else_body = Vec::new();
                    // Arms stop at the header (next iteration) or the join.
                    let stop = join.filter(|j| *j != header);
                    self.region(Some(hb.succs[0]), stop, Some(&env), &mut then_body);
                    self.region(Some(hb.succs[1]), stop, Some(&env), &mut else_body);
                    body.push(DStmt::If(cond, then_body, else_body));
                    if let Some(j) = stop {
                        self.region(Some(j), Some(header), Some(&env), &mut body);
                    }
                }
            }
            out.push(DStmt::While(DExpr::Num(1), body));
            result_cont = exit;
        }
        self.active.remove(&header);
        result_cont
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build_cfg;
    use crate::lift::{lift_blocks, optimize_lifted, propagate_params};
    use asteria_compiler::{compile_program, decode_function, Arch};
    use asteria_lang::parse;

    fn structured(src: &str, arch: Arch) -> Vec<DStmt> {
        let p = parse(src).unwrap();
        let b = compile_program(&p, arch).unwrap();
        let idx = b.function_indices()[0];
        let insts = decode_function(&b.symbols[idx].code, arch).unwrap();
        let cfg = build_cfg(&insts);
        let mut blocks = lift_blocks(&insts, &cfg, arch, b.symbols[idx].param_count);
        optimize_lifted(&mut blocks);
        propagate_params(&mut blocks);
        structure(&cfg, &blocks)
    }

    fn count_kind(stmts: &[DStmt], pred: &dyn Fn(&DStmt) -> bool) -> usize {
        let mut n = 0;
        fn walk(stmts: &[DStmt], pred: &dyn Fn(&DStmt) -> bool, n: &mut usize) {
            for s in stmts {
                if pred(s) {
                    *n += 1;
                }
                match s {
                    DStmt::If(_, a, b) => {
                        walk(a, pred, n);
                        walk(b, pred, n);
                    }
                    DStmt::While(_, b) | DStmt::DoWhile(b, _) => walk(b, pred, n),
                    DStmt::Switch(_, cases) => {
                        for c in cases {
                            walk(&c.body, pred, n);
                        }
                    }
                    _ => {}
                }
            }
        }
        walk(stmts, pred, &mut n);
        n
    }

    #[test]
    fn straightline_returns() {
        for arch in Arch::ALL {
            let s = structured("int f(int a) { return a * 3; }", arch);
            assert!(
                matches!(s.last(), Some(DStmt::Return(Some(_)))),
                "{arch}: {s:?}"
            );
        }
    }

    #[test]
    fn if_else_recovered() {
        for arch in [Arch::X86, Arch::X64, Arch::Ppc] {
            let s = structured(
                "int f(int a) { if (a > 0) { return ext(a); } else { return ext2(a); } }",
                arch,
            );
            assert_eq!(
                count_kind(&s, &|s| matches!(s, DStmt::If(_, _, _))),
                1,
                "{arch}: {s:#?}"
            );
        }
    }

    #[test]
    fn while_loop_recovered() {
        // x86/ARM see the plain while shape; x64/PPC compile with loop
        // rotation, so the same source comes back as a guarded do-while —
        // exactly the cross-architecture loop-shape difference the
        // similarity model must absorb.
        for arch in Arch::ALL {
            let s = structured(
                "int f(int n) { int s = 0; while (n > 0) { s += ext(n); n -= 1; } return s; }",
                arch,
            );
            let whiles = count_kind(&s, &|s| matches!(s, DStmt::While(_, _)));
            let dowhiles = count_kind(&s, &|s| matches!(s, DStmt::DoWhile(_, _)));
            assert_eq!(whiles + dowhiles, 1, "{arch}: {s:#?}");
            let rotated = matches!(arch, Arch::X64 | Arch::Ppc);
            assert_eq!(dowhiles == 1, rotated, "{arch}: {s:#?}");
            assert_eq!(
                count_kind(&s, &|s| matches!(s, DStmt::Goto(_))),
                0,
                "{arch}"
            );
        }
    }

    #[test]
    fn for_loop_recovered_as_rotated_dowhile_on_x64() {
        let s = structured(
            "int f(int n) { int s = 0; for (int i = 0; i < n; i++) { s += ext(i); } return s; }",
            Arch::X64,
        );
        assert_eq!(
            count_kind(&s, &|s| matches!(s, DStmt::DoWhile(_, _))),
            1,
            "{s:#?}"
        );
        // And the un-rotated shape on x86.
        let s86 = structured(
            "int f(int n) { int s = 0; for (int i = 0; i < n; i++) { s += ext(i); } return s; }",
            Arch::X86,
        );
        assert_eq!(
            count_kind(&s86, &|s| matches!(s, DStmt::While(_, _))),
            1,
            "{s86:#?}"
        );
    }

    #[test]
    fn do_while_recovered() {
        for arch in Arch::ALL {
            let s = structured(
                "int f(int n) { int s = 0; do { s += ext(s); n--; } while (n > 0); return s; }",
                arch,
            );
            let dowhiles = count_kind(&s, &|s| matches!(s, DStmt::DoWhile(_, _)));
            let whiles = count_kind(&s, &|s| matches!(s, DStmt::While(_, _)));
            assert_eq!(dowhiles + whiles, 1, "{arch}: {s:#?}");
            assert!(
                dowhiles == 1 || arch == Arch::Arm,
                "{arch} should see do-while: {s:#?}"
            );
        }
    }

    #[test]
    fn infinite_loop_with_break() {
        for arch in Arch::ALL {
            let s = structured(
                "int f(int n) { int s = 0; while (1) { n = ext(n); if (n < 0) { break; } \
                 s += n; } return s; }",
                arch,
            );
            assert_eq!(
                count_kind(&s, &|s| matches!(s, DStmt::While(_, _))),
                1,
                "{arch}: {s:#?}"
            );
            assert!(
                count_kind(&s, &|s| matches!(s, DStmt::Break)) >= 1,
                "{arch}: {s:#?}"
            );
        }
    }

    #[test]
    fn continue_recovered_or_restructured() {
        // `continue` either survives or is restructured into if-nesting;
        // either way no gotos and exactly one loop.
        for arch in Arch::ALL {
            let s = structured(
                "int f(int n) { int s = 0; int i = 0; while (i < n) { i++; \
                 if (ext(i) == 0) { continue; } s += i; } return s; }",
                arch,
            );
            assert_eq!(
                count_kind(&s, &|s| matches!(s, DStmt::While(_, _))),
                1,
                "{arch}"
            );
            assert_eq!(
                count_kind(&s, &|s| matches!(s, DStmt::Goto(_))),
                0,
                "{arch}: {s:#?}"
            );
        }
    }

    #[test]
    fn nested_loops_recover() {
        for arch in Arch::ALL {
            let s = structured(
                "int f(int n) { int s = 0; for (int i = 0; i < n; i++) { \
                 for (int j = 0; j < i; j++) { s += ext(i + j); } } return s; }",
                arch,
            );
            assert_eq!(
                count_kind(&s, &|s| matches!(
                    s,
                    DStmt::While(_, _) | DStmt::DoWhile(_, _)
                )),
                2,
                "{arch}: {s:#?}"
            );
        }
    }

    #[test]
    fn nested_if_in_loop() {
        for arch in Arch::ALL {
            let s = structured(
                "int f(int n) { int s = 0; while (n > 0) { if (ext(n) > 5) { s += 2; } \
                 else { s -= ext2(n); } n--; } return s; }",
                arch,
            );
            assert!(
                count_kind(&s, &|s| matches!(s, DStmt::If(_, _, _))) >= 1,
                "{arch}: {s:#?}"
            );
            assert_eq!(
                count_kind(&s, &|s| matches!(s, DStmt::Goto(_))),
                0,
                "{arch}"
            );
        }
    }

    #[test]
    fn early_returns_structured() {
        for arch in Arch::ALL {
            let s = structured(
                "int f(int a) { if (a < 0) { return 0 - 1; } if (a == 0) { return 0; } \
                 return ext(a); }",
                arch,
            );
            assert!(
                count_kind(&s, &|s| matches!(s, DStmt::Return(_))) >= 3,
                "{arch}: {s:#?}"
            );
        }
    }
}

#[cfg(test)]
mod whitebox_tests {
    use super::*;
    use crate::cfg::CfgBlock;

    fn block(succs: Vec<usize>, term: TermKind) -> CfgBlock {
        CfgBlock {
            start: 0,
            end: 1,
            succs,
            term,
        }
    }

    fn lifted(n: usize) -> Vec<LiftedBlock> {
        (0..n)
            .map(|_| LiftedBlock {
                stmts: Vec::new(),
                cond: Some(DExpr::Num(1)),
                ret: Some(DExpr::Num(0)),
            })
            .collect()
    }

    /// An irreducible CFG (two entries into a cycle) cannot be structured
    /// with loops/ifs alone; the structurer must terminate and fall back
    /// to `goto` rather than loop forever.
    #[test]
    fn irreducible_cfg_terminates_with_goto() {
        // 0 → {1, 2}; 1 → 2; 2 → 1 (cycle entered from two sides); plus
        // an exit: make 1 conditional → {2, 3}, 3 = ret.
        let cfg = Cfg {
            blocks: vec![
                block(vec![1, 2], TermKind::Cond),
                block(vec![2, 3], TermKind::Cond),
                block(vec![1], TermKind::Jump),
                block(vec![], TermKind::Ret),
            ],
        };
        let out = structure(&cfg, &lifted(4));
        // Must terminate (budget) and produce *something* — a goto is the
        // honest fallback for irreducible flow.
        fn has_goto(stmts: &[DStmt]) -> bool {
            stmts.iter().any(|s| match s {
                DStmt::Goto(_) => true,
                DStmt::If(_, t, e) => has_goto(t) || has_goto(e),
                DStmt::While(_, b) | DStmt::DoWhile(b, _) => has_goto(b),
                _ => false,
            })
        }
        assert!(!out.is_empty());
        // Either structured successfully or degraded to goto — both are
        // acceptable; the test's real assertion is termination.
        let _ = has_goto(&out);
    }

    /// A self-loop (block branching to itself) is structured as a loop.
    #[test]
    fn self_loop_structures() {
        let cfg = Cfg {
            blocks: vec![
                block(vec![0, 1], TermKind::Cond),
                block(vec![], TermKind::Ret),
            ],
        };
        let out = structure(&cfg, &lifted(2));
        let has_loop = out
            .iter()
            .any(|s| matches!(s, DStmt::While(_, _) | DStmt::DoWhile(_, _)));
        assert!(has_loop, "{out:#?}");
    }

    /// The budget guard fires on pathological ping-pong graphs instead of
    /// hanging.
    #[test]
    fn budget_bounds_runtime() {
        // A dense mesh of conditionals that keeps re-entering regions.
        let n = 12;
        let mut blocks = Vec::new();
        for i in 0..n {
            blocks.push(block(vec![(i + 1) % n, (i + 5) % n], TermKind::Cond));
        }
        let cfg = Cfg { blocks };
        let out = structure(&cfg, &lifted(n));
        assert!(!out.is_empty());
    }
}
