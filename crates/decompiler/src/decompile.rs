//! The decompilation driver: binary → decompiled ASTs, plus the
//! callee-count feature used by the paper's similarity calibration (§III-C).

use std::fmt;

use asteria_compiler::{decode_function, Arch, Binary, DecodeError, SymbolKind};

use crate::ast::{DExpr, DFunction, DStmt};
use crate::cfg::build_cfg;
use crate::lift::{lift_blocks_limited, optimize_lifted_with, propagate_params};
use crate::limits::{BudgetKind, DecompileLimits};
use crate::postproc::{recover_compound_assign, recover_idioms, recover_switch};
use crate::structure::structure_limited;

/// Errors produced while decompiling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecompileError {
    /// Symbol index out of range or not a defined function.
    NotAFunction(usize),
    /// Function has no instructions (an empty or fully truncated code
    /// section) — there is nothing to build a CFG from.
    EmptyFunction(usize),
    /// Disassembly failed.
    Decode(DecodeError),
    /// A [`DecompileLimits`] budget was exceeded; the function is corrupt
    /// or adversarially large and was abandoned rather than allowed to
    /// hang or exhaust memory.
    BudgetExceeded {
        /// Which budget fired.
        kind: BudgetKind,
        /// The configured limit.
        limit: usize,
        /// The observed value that crossed it.
        actual: usize,
    },
}

impl fmt::Display for DecompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecompileError::NotAFunction(i) => write!(f, "symbol {i} is not a function"),
            DecompileError::EmptyFunction(i) => write!(f, "symbol {i} has an empty body"),
            DecompileError::Decode(e) => write!(f, "disassembly failed: {e}"),
            DecompileError::BudgetExceeded {
                kind,
                limit,
                actual,
            } => write!(f, "budget exceeded: {actual} {kind} > limit {limit}"),
        }
    }
}

impl std::error::Error for DecompileError {}

impl From<DecodeError> for DecompileError {
    fn from(e: DecodeError) -> Self {
        DecompileError::Decode(e)
    }
}

fn collect_callees(stmts: &[DStmt], out: &mut Vec<u32>) {
    fn expr(e: &DExpr, out: &mut Vec<u32>) {
        match e {
            DExpr::Call { sym, args } => {
                if !out.contains(sym) {
                    out.push(*sym);
                }
                for a in args {
                    expr(a, out);
                }
            }
            DExpr::Index(_, i) => expr(i, out),
            DExpr::Un(_, inner) | DExpr::Cast(inner) => expr(inner, out),
            DExpr::Bin(_, a, b) => {
                expr(a, out);
                expr(b, out);
            }
            DExpr::Select(c, a, b) => {
                expr(c, out);
                expr(a, out);
                expr(b, out);
            }
            DExpr::Num(_) | DExpr::Str(_) | DExpr::Var(_) => {}
        }
    }
    for s in stmts {
        match s {
            DStmt::Assign(_, place, e) => {
                if let crate::ast::DPlace::Index(_, i) = place {
                    expr(i, out);
                }
                expr(e, out);
            }
            DStmt::Expr(e) | DStmt::Return(Some(e)) => expr(e, out),
            DStmt::If(c, t, el) => {
                expr(c, out);
                collect_callees(t, out);
                collect_callees(el, out);
            }
            DStmt::While(c, b) => {
                expr(c, out);
                collect_callees(b, out);
            }
            DStmt::DoWhile(b, c) => {
                collect_callees(b, out);
                expr(c, out);
            }
            DStmt::Switch(scrut, cases) => {
                expr(scrut, out);
                for case in cases {
                    collect_callees(&case.body, out);
                }
            }
            _ => {}
        }
    }
}

/// Decompiles one function of a binary.
///
/// The pipeline mirrors the paper's AST extraction step (its Fig. 3 step 1,
/// performed there by IDA Pro + Hex-Rays): disassemble, recover the CFG,
/// lift to expressions, structure, and post-process.
///
/// # Errors
///
/// See [`DecompileError`].
///
/// # Examples
///
/// ```
/// use asteria_compiler::{compile_program, Arch};
/// use asteria_decompiler::decompile_function;
///
/// let program = asteria_lang::parse("int f(int a) { return a + 1; }")?;
/// let binary = compile_program(&program, Arch::Arm)?;
/// let func = decompile_function(&binary, 0)?;
/// assert_eq!(func.name, "f");
/// assert!(func.ast_size() >= 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn decompile_function(binary: &Binary, sym: usize) -> Result<DFunction, DecompileError> {
    decompile_function_with(binary, sym, &DecompileLimits::default())
}

/// Decompiles one function of a binary under an explicit resource budget.
///
/// Every pipeline stage is bounded: decoded instruction count, CFG block
/// count, AST nodes materialized during lifting, and structuring
/// iterations. Corrupt or adversarial code that would otherwise hang the
/// structurer or blow up symbolic evaluation exponentially instead fails
/// fast with [`DecompileError::BudgetExceeded`].
///
/// # Errors
///
/// See [`DecompileError`].
pub fn decompile_function_with(
    binary: &Binary,
    sym: usize,
    limits: &DecompileLimits,
) -> Result<DFunction, DecompileError> {
    let arch = binary.arch.name();
    let result = decompile_function_inner(binary, sym, limits);
    // Counter increments are commutative, so corpus-level totals are
    // identical at every thread count even though workers race here.
    asteria_obs::counter_add("asteria_decompile_functions_total", &[("arch", arch)], 1);
    if let Err(DecompileError::BudgetExceeded { kind, .. }) = &result {
        asteria_obs::counter_add(
            "asteria_budget_exceeded_total",
            &[("kind", kind.label())],
            1,
        );
    }
    result
}

fn decompile_function_inner(
    binary: &Binary,
    sym: usize,
    limits: &DecompileLimits,
) -> Result<DFunction, DecompileError> {
    let symbol = binary
        .symbols
        .get(sym)
        .filter(|s| s.kind == SymbolKind::Function)
        .ok_or(DecompileError::NotAFunction(sym))?;
    let insts = decode_function(&symbol.code, binary.arch)?;
    if insts.is_empty() {
        return Err(DecompileError::EmptyFunction(sym));
    }
    if insts.len() > limits.max_instructions {
        return Err(DecompileError::BudgetExceeded {
            kind: BudgetKind::Instructions,
            limit: limits.max_instructions,
            actual: insts.len(),
        });
    }
    let cfg = build_cfg(&insts);
    if cfg.blocks.len() > limits.max_basic_blocks {
        return Err(DecompileError::BudgetExceeded {
            kind: BudgetKind::BasicBlocks,
            limit: limits.max_basic_blocks,
            actual: cfg.blocks.len(),
        });
    }
    let lift_timer = asteria_obs::timer();
    let mut blocks = lift_blocks_limited(
        &insts,
        &cfg,
        binary.arch,
        symbol.param_count,
        limits.max_ast_nodes,
    )?;
    lift_timer.observe_seconds(
        "asteria_decompile_lift_seconds",
        &[("arch", binary.arch.name())],
    );
    // Lifter artifact: 32-bit x86 output keeps compound temporaries
    // (register pressure), other ISAs re-nest expressions fully.
    optimize_lifted_with(&mut blocks, binary.arch != Arch::X86);
    // Lifter artifact: the x86 stack-argument convention leaves visible
    // incoming-argument copies in decompiled output (Hex-Rays keeps the
    // `v3 = a1;` stack spills on 32-bit x86); register-argument ISAs get
    // the copies propagated away.
    if binary.arch != Arch::X86 {
        propagate_params(&mut blocks);
    }
    let structure_timer = asteria_obs::timer();
    let mut body = structure_limited(&cfg, &blocks, limits.max_structure_iters)?;
    structure_timer.observe_seconds(
        "asteria_decompile_structure_seconds",
        &[("arch", binary.arch.name())],
    );
    // PPC's negate expansion (`0 - x`) is left as-is — decompilers do not
    // re-idiomize it — while the remainder expansion is recovered.
    recover_idioms(&mut body);
    if matches!(binary.arch, Arch::X86 | Arch::X64) {
        recover_compound_assign(&mut body);
    }
    recover_switch(&mut body);

    let mut callees = Vec::new();
    collect_callees(&body, &mut callees);
    Ok(DFunction {
        name: symbol.display_name(),
        param_count: symbol.param_count,
        body,
        callees,
        inst_count: insts.len(),
        block_count: cfg.blocks.len(),
    })
}

/// Decompiles every defined function in a binary.
///
/// # Errors
///
/// Fails on the first function that cannot be decompiled.
pub fn decompile_binary(binary: &Binary) -> Result<Vec<DFunction>, DecompileError> {
    decompile_binary_with(binary, &DecompileLimits::default())
}

/// Decompiles every defined function under an explicit resource budget.
///
/// # Errors
///
/// Fails on the first function that cannot be decompiled; corpus drivers
/// that want per-function degradation should use
/// `asteria_core::extract_binary_resilient` instead.
pub fn decompile_binary_with(
    binary: &Binary,
    limits: &DecompileLimits,
) -> Result<Vec<DFunction>, DecompileError> {
    binary
        .function_indices()
        .into_iter()
        .map(|i| decompile_function_with(binary, i, limits))
        .collect()
}

/// Number of machine instructions of a defined function (`None` for
/// externals, whose size is unknown to the analyst).
pub fn function_inst_count(binary: &Binary, sym: usize) -> Option<usize> {
    let s = binary.symbols.get(sym)?;
    if s.kind != SymbolKind::Function {
        return None;
    }
    decode_function(&s.code, binary.arch).ok().map(|v| v.len())
}

/// The paper's calibration feature: the number of callee functions after
/// filtering out probably-inlined callees (those with fewer than `beta`
/// instructions, §III-C). External imports cannot be inlined and always
/// count.
pub fn callee_count(binary: &Binary, func: &DFunction, beta: usize) -> usize {
    func.callees
        .iter()
        .filter(|sym| match function_inst_count(binary, **sym as usize) {
            Some(n) => n >= beta,
            None => true, // external
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use asteria_compiler::compile_program;
    use asteria_lang::parse;

    const SRC: &str = "int tiny(int x) { return x; } \
                       int big(int x) { int s = 0; for (int i = 0; i < x; i++) \
                       { s += ext_round(s + i); } return s; } \
                       int f(int a) { return tiny(a) + big(a) + ext_log(a); }";

    #[test]
    fn decompiles_all_functions_all_arches() {
        let p = parse(SRC).unwrap();
        for arch in Arch::ALL {
            let b = compile_program(&p, arch).unwrap();
            let funcs = decompile_binary(&b).unwrap();
            assert_eq!(funcs.len(), 3, "{arch}");
            for f in &funcs {
                assert!(f.ast_size() >= 3, "{arch}: {} too small", f.name);
            }
        }
    }

    #[test]
    fn callees_are_collected() {
        let p = parse(SRC).unwrap();
        let b = compile_program(&p, Arch::X64).unwrap();
        let f = decompile_function(&b, b.symbol_index("f").unwrap()).unwrap();
        assert_eq!(f.callees.len(), 3); // tiny, big, ext_log
    }

    #[test]
    fn callee_count_filters_inlinable_functions() {
        let p = parse(SRC).unwrap();
        let b = compile_program(&p, Arch::X64).unwrap();
        let f = decompile_function(&b, b.symbol_index("f").unwrap()).unwrap();
        let all = callee_count(&b, &f, 0);
        assert_eq!(all, 3);
        // `tiny` compiles to only a handful of instructions; a sufficiently
        // large beta filters it while keeping `big` and the external.
        let tiny_size = function_inst_count(&b, b.symbol_index("tiny").unwrap()).unwrap();
        let filtered = callee_count(&b, &f, tiny_size + 1);
        assert_eq!(filtered, 2);
    }

    #[test]
    fn stripped_binaries_get_sub_names() {
        let p = parse(SRC).unwrap();
        let mut b = compile_program(&p, Arch::Arm).unwrap();
        b.strip();
        let funcs = decompile_binary(&b).unwrap();
        assert!(
            funcs.iter().all(|f| f.name.starts_with("sub_")),
            "{funcs:#?}"
        );
    }

    #[test]
    fn decompiling_external_fails() {
        let p = parse(SRC).unwrap();
        let b = compile_program(&p, Arch::Arm).unwrap();
        let ext = b.symbol_index("ext_log").unwrap();
        assert!(matches!(
            decompile_function(&b, ext),
            Err(DecompileError::NotAFunction(_))
        ));
    }

    #[test]
    fn instruction_budget_fires() {
        let p = parse(SRC).unwrap();
        let b = compile_program(&p, Arch::Arm).unwrap();
        let limits = DecompileLimits {
            max_instructions: 1,
            ..DecompileLimits::default()
        };
        let err = decompile_function_with(&b, b.symbol_index("big").unwrap(), &limits).unwrap_err();
        assert!(
            matches!(
                err,
                DecompileError::BudgetExceeded {
                    kind: BudgetKind::Instructions,
                    limit: 1,
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn basic_block_budget_fires() {
        let p = parse(SRC).unwrap();
        let b = compile_program(&p, Arch::Arm).unwrap();
        let limits = DecompileLimits {
            max_basic_blocks: 1,
            ..DecompileLimits::default()
        };
        let err = decompile_function_with(&b, b.symbol_index("big").unwrap(), &limits).unwrap_err();
        assert!(
            matches!(
                err,
                DecompileError::BudgetExceeded {
                    kind: BudgetKind::BasicBlocks,
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn ast_node_budget_fires() {
        let p = parse(SRC).unwrap();
        let b = compile_program(&p, Arch::Arm).unwrap();
        let limits = DecompileLimits {
            max_ast_nodes: 2,
            ..DecompileLimits::default()
        };
        let err = decompile_function_with(&b, b.symbol_index("big").unwrap(), &limits).unwrap_err();
        assert!(
            matches!(
                err,
                DecompileError::BudgetExceeded {
                    kind: BudgetKind::AstNodes,
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn structure_iteration_budget_fires() {
        let p = parse(SRC).unwrap();
        let b = compile_program(&p, Arch::Arm).unwrap();
        let limits = DecompileLimits {
            max_structure_iters: 1,
            ..DecompileLimits::default()
        };
        let err = decompile_function_with(&b, b.symbol_index("big").unwrap(), &limits).unwrap_err();
        assert!(
            matches!(
                err,
                DecompileError::BudgetExceeded {
                    kind: BudgetKind::StructureIters,
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn exponential_register_growth_is_cut_off() {
        // `add r0, r0` doubles r0's symbolic expression every step: 64 of
        // them would materialize a 2^64-node tree. The lifter must refuse
        // quickly (and cheaply) instead of eating all memory.
        use crate::cfg::build_cfg;
        use crate::lift::lift_blocks_limited;
        use asteria_compiler::{AluOp, MInst, Reg};

        let mut insts = vec![MInst::MovImm(Reg(0), 1)];
        insts.extend(std::iter::repeat_n(
            MInst::Alu2(AluOp::Add, Reg(0), Reg(0)),
            64,
        ));
        insts.push(MInst::Ret);
        let cfg = build_cfg(&insts);
        let err = lift_blocks_limited(&insts, &cfg, Arch::Arm, 0, 100_000).unwrap_err();
        assert!(
            matches!(
                err,
                DecompileError::BudgetExceeded {
                    kind: BudgetKind::AstNodes,
                    limit: 100_000,
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn generous_budget_matches_unlimited_output() {
        let p = parse(SRC).unwrap();
        for arch in Arch::ALL {
            let b = compile_program(&p, arch).unwrap();
            for i in b.function_indices() {
                let default = decompile_function(&b, i).unwrap();
                let explicit =
                    decompile_function_with(&b, i, &DecompileLimits::unbounded()).unwrap();
                assert_eq!(default, explicit, "{arch}: function {i}");
            }
        }
    }

    #[test]
    fn empty_function_is_typed_error() {
        let p = parse(SRC).unwrap();
        let mut b = compile_program(&p, Arch::Arm).unwrap();
        let idx = b.symbol_index("tiny").unwrap();
        b.symbols[idx].code.clear();
        assert!(matches!(
            decompile_function(&b, idx),
            Err(DecompileError::EmptyFunction(_))
        ));
    }

    #[test]
    fn ast_sizes_are_similar_across_arches_for_same_function() {
        // The central premise: cross-architecture AST stability.
        let p = parse(SRC).unwrap();
        let sizes: Vec<usize> = Arch::ALL
            .iter()
            .map(|arch| {
                let b = compile_program(&p, *arch).unwrap();
                decompile_function(&b, b.symbol_index("big").unwrap())
                    .unwrap()
                    .ast_size()
            })
            .collect();
        let min = *sizes.iter().min().unwrap() as f64;
        let max = *sizes.iter().max().unwrap() as f64;
        // x86's temp-heavy output inflates its tree; the spread stays
        // bounded but is deliberately non-trivial (cf. the paper's Fig. 2).
        assert!(
            max / min < 2.3,
            "AST sizes vary too much across arches: {sizes:?}"
        );
    }
}
