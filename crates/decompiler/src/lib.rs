//! `asteria-decompiler` — disassembly, lifting and structuring for SBF
//! binaries: the reproduction's stand-in for IDA Pro + Hex-Rays.
//!
//! The paper's entire pipeline begins with "decompile the binary function
//! and extract its AST" (Fig. 3, step 1). This crate provides that step
//! for the four synthetic ISAs of `asteria-compiler`:
//!
//! 1. **Disassembly** — per-architecture decoding (in `asteria-compiler`)
//!    plus machine-CFG recovery ([`cfg`]).
//! 2. **Lifting** ([`lift`]) — symbolic evaluation turns register shuffles
//!    back into expression trees; single-use temporaries are inlined and
//!    dead stores removed.
//! 3. **Structuring** ([`structure`]) — dominator/postdominator-based
//!    region structuring recovers `if`/`while`/`do-while`, with `goto` as
//!    the honest fallback.
//! 4. **Post-processing** ([`postproc`]) — compound-assignment recovery on
//!    two-address ISAs and `switch` recovery from comparison chains.
//!
//! The result is a [`DFunction`] whose [`ast`] is the decompiled AST the
//! Asteria model consumes, plus the callee-count feature used by the
//! paper's similarity calibration.
//!
//! # Examples
//!
//! ```
//! use asteria_compiler::{compile_program, Arch};
//! use asteria_decompiler::{decompile_binary, DStmt};
//!
//! let program = asteria_lang::parse(
//!     "int f(int n) { int s = 0; while (n > 0) { s += n; n -= 1; } return s; }",
//! )?;
//! // PPC compiles with loop rotation, so the while comes back as a
//! // guarded do-while; ARM keeps the plain while shape.
//! let ppc = compile_program(&program, Arch::Ppc)?;
//! let arm = compile_program(&program, Arch::Arm)?;
//! let f_ppc = &decompile_binary(&ppc)?[0];
//! let f_arm = &decompile_binary(&arm)?[0];
//! fn loops(body: &[DStmt]) -> usize {
//!     body.iter()
//!         .map(|s| match s {
//!             DStmt::While(_, b) => 1 + loops(b),
//!             DStmt::DoWhile(b, _) => 1 + loops(b),
//!             DStmt::If(_, t, e) => loops(t) + loops(e),
//!             _ => 0,
//!         })
//!         .sum()
//! }
//! assert_eq!(loops(&f_ppc.body), 1);
//! assert_eq!(loops(&f_arm.body), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// This crate is the robustness-critical layer of the extraction pipeline:
// it must degrade to typed errors on corrupt input, never panic.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod ast;
pub mod cfg;
pub mod decompile;
pub mod display;
pub mod lift;
pub mod limits;
pub mod postproc;
pub mod structure;

pub use ast::{DAssignOp, DExpr, DFunction, DPlace, DStmt, DSwitchCase, VarRef};
pub use cfg::{build_cfg, Cfg, CfgBlock, TermKind};
pub use decompile::{
    callee_count, decompile_binary, decompile_binary_with, decompile_function,
    decompile_function_with, function_inst_count, DecompileError,
};
pub use display::render_function;
pub use lift::{
    lift_blocks, lift_blocks_limited, optimize_lifted, optimize_lifted_with, propagate_params,
    LiftedBlock,
};
pub use limits::{BudgetKind, DecompileLimits};
pub use postproc::{recover_compound_assign, recover_idioms, recover_switch};
pub use structure::{structure, structure_limited};
