//! Lifting: machine instructions → expression-level statements.
//!
//! Works one basic block at a time. A symbolic register file maps each
//! machine register to the expression it currently holds; stores to the
//! frame, to globals, and calls become statements. A subsequent
//! *temporary-elimination* pass ([`optimize_lifted`]) inlines single-use
//! frame slots (the spilled virtual registers of the code generator) so
//! nested source expressions re-emerge, and deletes dead stores — this is
//! the expression-propagation step every real decompiler performs.

use std::collections::HashMap;

use asteria_compiler::{AluOp, Arch, CmpOp, MInst, Mem, UnAluOp};
use asteria_lang::{BinOp, UnOp};

use crate::ast::{DAssignOp, DExpr, DPlace, DStmt, VarRef};
use crate::cfg::{Cfg, TermKind};
use crate::decompile::DecompileError;
use crate::limits::BudgetKind;

/// A lifted basic block: straight-line statements plus terminator data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiftedBlock {
    /// Statements in execution order.
    pub stmts: Vec<DStmt>,
    /// Branch condition when the block ends in a conditional branch.
    pub cond: Option<DExpr>,
    /// Return value when the block ends in a return.
    pub ret: Option<DExpr>,
}

fn alu_binop(op: AluOp) -> BinOp {
    match op {
        AluOp::Add => BinOp::Add,
        AluOp::Sub => BinOp::Sub,
        AluOp::Mul => BinOp::Mul,
        AluOp::Div => BinOp::Div,
        AluOp::Mod => BinOp::Mod,
        AluOp::And => BinOp::And,
        AluOp::Or => BinOp::Or,
        AluOp::Xor => BinOp::Xor,
        AluOp::Shl => BinOp::Shl,
        AluOp::Shr => BinOp::Shr,
    }
}

fn cmp_binop(op: CmpOp) -> BinOp {
    match op {
        CmpOp::Eq => BinOp::Eq,
        CmpOp::Ne => BinOp::Ne,
        CmpOp::Lt => BinOp::Lt,
        CmpOp::Le => BinOp::Le,
        CmpOp::Gt => BinOp::Gt,
        CmpOp::Ge => BinOp::Ge,
    }
}

/// Running count of AST nodes materialized while lifting one function.
///
/// Symbolic evaluation can blow up exponentially — an instruction like
/// `add r0, r0` doubles the expression held in `r0`, so forty of them in a
/// row would try to materialize a 2⁴⁰-node tree. The budget is charged
/// *before* each expression is constructed, using O(1) per-register size
/// bookkeeping, so the lifter errors out without ever allocating the
/// oversized tree.
struct NodeBudget {
    max: usize,
    total: usize,
}

impl NodeBudget {
    fn charge(&mut self, nodes: usize) -> Result<(), DecompileError> {
        self.total = self.total.saturating_add(nodes);
        if self.total > self.max {
            return Err(DecompileError::BudgetExceeded {
                kind: BudgetKind::AstNodes,
                limit: self.max,
                actual: self.total,
            });
        }
        Ok(())
    }
}

/// Lifts every block of a function.
///
/// `arch` drives the calling-convention model used to recover call
/// arguments; `param_count` (from the symbol table) names incoming
/// parameters `a0, a1, …`.
pub fn lift_blocks(insts: &[MInst], cfg: &Cfg, arch: Arch, param_count: u32) -> Vec<LiftedBlock> {
    // Infallible with an unlimited budget.
    lift_blocks_limited(insts, cfg, arch, param_count, usize::MAX).unwrap_or_default()
}

/// Lifts every block of a function under an AST-node budget.
///
/// # Errors
///
/// Returns [`DecompileError::BudgetExceeded`] with
/// [`BudgetKind::AstNodes`](crate::BudgetKind::AstNodes) as soon as the
/// total number of materialized AST nodes would exceed `max_ast_nodes`.
pub fn lift_blocks_limited(
    insts: &[MInst],
    cfg: &Cfg,
    arch: Arch,
    param_count: u32,
    max_ast_nodes: usize,
) -> Result<Vec<LiftedBlock>, DecompileError> {
    let mut budget = NodeBudget {
        max: max_ast_nodes,
        total: 0,
    };
    cfg.blocks
        .iter()
        .map(|b| {
            lift_block(
                &insts[b.start as usize..b.end as usize],
                b.term,
                arch,
                param_count,
                &mut budget,
            )
        })
        .collect()
}

fn lift_block(
    insts: &[MInst],
    term: TermKind,
    arch: Arch,
    param_count: u32,
    budget: &mut NodeBudget,
) -> Result<LiftedBlock, DecompileError> {
    let arg_regs = arch.arg_regs();
    let mut regs: HashMap<u8, DExpr> = HashMap::new();
    // Size of the expression each register holds, maintained alongside
    // `regs` so budget checks never have to walk (or build) a tree.
    let mut sizes: HashMap<u8, usize> = HashMap::new();
    // Entry blocks read parameters out of argument registers; model every
    // block that way (non-entry blocks never read stale arg regs because
    // the code generator reloads explicitly).
    for (i, r) in arg_regs.iter().enumerate() {
        if (i as u32) < param_count {
            regs.insert(r.0, DExpr::Var(VarRef::Param(i as u32)));
            sizes.insert(r.0, 1);
        }
    }
    let reg_arg_count = arg_regs.len() as u32;

    let mut stmts: Vec<DStmt> = Vec::new();
    let mut pending: Vec<DExpr> = Vec::new();
    let mut pending_sizes: Vec<usize> = Vec::new();
    let mut cond = None;
    let mut ret = None;

    let read_reg = |regs: &HashMap<u8, DExpr>, r: u8| -> DExpr {
        regs.get(&r).cloned().unwrap_or(DExpr::Num(0))
    };
    // A register never written holds the `Num(0)` placeholder: size 1.
    let reg_size =
        |sizes: &HashMap<u8, usize>, r: u8| -> usize { sizes.get(&r).copied().unwrap_or(1) };
    let read_mem = |m: &Mem| -> DExpr {
        match m {
            Mem::Frame(s) => DExpr::Var(VarRef::Local(*s)),
            Mem::Global(s) => DExpr::Var(VarRef::Global(*s)),
            Mem::Arg(s) => DExpr::Var(VarRef::Param(reg_arg_count + s)),
        }
    };

    for inst in insts {
        match inst {
            MInst::MovImm(rd, v) => {
                budget.charge(1)?;
                regs.insert(rd.0, DExpr::Num(*v));
                sizes.insert(rd.0, 1);
            }
            MInst::Mov(rd, rs) => {
                let n = reg_size(&sizes, rs.0);
                budget.charge(n)?;
                let e = read_reg(&regs, rs.0);
                regs.insert(rd.0, e);
                sizes.insert(rd.0, n);
            }
            MInst::LoadStr(rd, sid) => {
                budget.charge(1)?;
                regs.insert(rd.0, DExpr::Str(*sid));
                sizes.insert(rd.0, 1);
            }
            MInst::Load(rd, m) => {
                budget.charge(1)?;
                regs.insert(rd.0, read_mem(m));
                sizes.insert(rd.0, 1);
            }
            MInst::Store(m, rs) => {
                budget.charge(reg_size(&sizes, rs.0).saturating_add(2))?;
                let value = read_reg(&regs, rs.0);
                match m {
                    Mem::Frame(s) => {
                        stmts.push(DStmt::Assign(
                            DAssignOp::Assign,
                            DPlace::Var(VarRef::Local(*s)),
                            value,
                        ));
                    }
                    Mem::Global(s) => {
                        stmts.push(DStmt::Assign(
                            DAssignOp::Assign,
                            DPlace::Var(VarRef::Global(*s)),
                            value,
                        ));
                    }
                    Mem::Arg(_) => { /* never emitted by the code generator */ }
                }
            }
            MInst::LoadIdx {
                rd,
                base,
                idx,
                len: _,
            } => {
                let n = reg_size(&sizes, idx.0).saturating_add(2);
                budget.charge(n)?;
                let i = read_reg(&regs, idx.0);
                regs.insert(rd.0, DExpr::Index(*base, Box::new(i)));
                sizes.insert(rd.0, n);
            }
            MInst::StoreIdx {
                rs,
                base,
                idx,
                len: _,
            } => {
                budget.charge(
                    reg_size(&sizes, idx.0)
                        .saturating_add(reg_size(&sizes, rs.0))
                        .saturating_add(3),
                )?;
                let i = read_reg(&regs, idx.0);
                let v = read_reg(&regs, rs.0);
                stmts.push(DStmt::Assign(
                    DAssignOp::Assign,
                    DPlace::Index(*base, Box::new(i)),
                    v,
                ));
            }
            MInst::Alu3(op, rd, ra, rb) => {
                let n = reg_size(&sizes, ra.0)
                    .saturating_add(reg_size(&sizes, rb.0))
                    .saturating_add(1);
                budget.charge(n)?;
                let e = DExpr::bin(alu_binop(*op), read_reg(&regs, ra.0), read_reg(&regs, rb.0));
                regs.insert(rd.0, e);
                sizes.insert(rd.0, n);
            }
            MInst::Alu2(op, rd, rs) => {
                let n = reg_size(&sizes, rd.0)
                    .saturating_add(reg_size(&sizes, rs.0))
                    .saturating_add(1);
                budget.charge(n)?;
                let e = DExpr::bin(alu_binop(*op), read_reg(&regs, rd.0), read_reg(&regs, rs.0));
                regs.insert(rd.0, e);
                sizes.insert(rd.0, n);
            }
            MInst::Alu2Mem(op, rd, m) => {
                let n = reg_size(&sizes, rd.0).saturating_add(2);
                budget.charge(n)?;
                let e = DExpr::bin(alu_binop(*op), read_reg(&regs, rd.0), read_mem(m));
                regs.insert(rd.0, e);
                sizes.insert(rd.0, n);
            }
            MInst::UnAlu(op, rd, rs) => {
                let n = reg_size(&sizes, rs.0).saturating_add(1);
                budget.charge(n)?;
                let inner = read_reg(&regs, rs.0);
                let e = match op {
                    UnAluOp::Neg => DExpr::Un(UnOp::Neg, Box::new(inner)),
                    UnAluOp::Not => DExpr::Un(UnOp::Not, Box::new(inner)),
                    UnAluOp::BitNot => DExpr::Un(UnOp::BitNot, Box::new(inner)),
                };
                regs.insert(rd.0, e);
                sizes.insert(rd.0, n);
            }
            MInst::SetCc(cc, rd, ra, rb) => {
                let n = reg_size(&sizes, ra.0)
                    .saturating_add(reg_size(&sizes, rb.0))
                    .saturating_add(1);
                budget.charge(n)?;
                let e = DExpr::bin(cmp_binop(*cc), read_reg(&regs, ra.0), read_reg(&regs, rb.0));
                regs.insert(rd.0, e);
                sizes.insert(rd.0, n);
            }
            MInst::CSel { rd, rc, ra, rb } => {
                let n = reg_size(&sizes, rc.0)
                    .saturating_add(reg_size(&sizes, ra.0))
                    .saturating_add(reg_size(&sizes, rb.0))
                    .saturating_add(1);
                budget.charge(n)?;
                let e = DExpr::Select(
                    Box::new(read_reg(&regs, rc.0)),
                    Box::new(read_reg(&regs, ra.0)),
                    Box::new(read_reg(&regs, rb.0)),
                );
                regs.insert(rd.0, e);
                sizes.insert(rd.0, n);
            }
            MInst::Push(r) => {
                let n = reg_size(&sizes, r.0);
                budget.charge(n)?;
                pending.push(read_reg(&regs, r.0));
                pending_sizes.push(n);
            }
            MInst::Call { sym, argc } => {
                let argc = *argc as usize;
                let mut args = Vec::with_capacity(argc.min(insts.len()));
                let mut n: usize = 1;
                if arg_regs.is_empty() {
                    let cut = pending.len().saturating_sub(argc);
                    let take = pending.split_off(cut);
                    n = pending_sizes
                        .split_off(cut)
                        .into_iter()
                        .fold(n, usize::saturating_add);
                    args.extend(take.into_iter().rev());
                } else {
                    let in_regs = argc.min(arg_regs.len());
                    for r in &arg_regs[..in_regs] {
                        n = n.saturating_add(reg_size(&sizes, r.0));
                    }
                    budget.charge(n)?;
                    for r in &arg_regs[..in_regs] {
                        args.push(read_reg(&regs, r.0));
                    }
                    let cut = pending.len().saturating_sub(argc - in_regs);
                    let take = pending.split_off(cut);
                    n = pending_sizes
                        .split_off(cut)
                        .into_iter()
                        .fold(n, usize::saturating_add);
                    args.extend(take);
                }
                // Lifter artifact: the x64 ABI zero/sign-extends register
                // arguments, which surfaces as integer casts in decompiled
                // output (cf. Hex-Rays on x86-64).
                if arch == Arch::X64 {
                    n = n.saturating_add(args.len());
                    budget.charge(args.len())?;
                    args = args.into_iter().map(|a| DExpr::Cast(Box::new(a))).collect();
                }
                budget.charge(1)?;
                regs.insert(0, DExpr::Call { sym: *sym, args });
                sizes.insert(0, n);
            }
            MInst::Brnz(rc, _) => {
                budget.charge(reg_size(&sizes, rc.0))?;
                cond = Some(read_reg(&regs, rc.0));
            }
            MInst::Jmp(_) | MInst::Nop => {}
            MInst::Ret => {
                budget.charge(reg_size(&sizes, 0))?;
                ret = Some(read_reg(&regs, 0));
            }
        }
    }
    if term == TermKind::Ret && ret.is_none() {
        ret = Some(DExpr::Num(0));
    }
    Ok(LiftedBlock { stmts, cond, ret })
}

// ---------------------------------------------------------------------------
// Temporary elimination
// ---------------------------------------------------------------------------

fn expr_reads(e: &DExpr) -> Vec<VarRef> {
    let mut v = Vec::new();
    e.reads(&mut v);
    v
}

fn stmt_reads(s: &DStmt) -> Vec<VarRef> {
    match s {
        DStmt::Assign(op, place, e) => {
            let mut v = expr_reads(e);
            if let DPlace::Index(_, idx) = place {
                v.extend(expr_reads(idx));
            }
            // Compound assignment also reads its target.
            if let (DAssignOp::Compound(_), DPlace::Var(var)) = (op, place) {
                v.push(*var);
            }
            v
        }
        DStmt::Expr(e) | DStmt::Return(Some(e)) => expr_reads(e),
        _ => Vec::new(),
    }
}

fn stmt_write(s: &DStmt) -> Option<VarRef> {
    match s {
        DStmt::Assign(_, DPlace::Var(v), _) => Some(*v),
        DStmt::Assign(_, DPlace::Index(base, _), _) => Some(VarRef::Local(*base)),
        _ => None,
    }
}

fn stmt_has_call(s: &DStmt) -> bool {
    match s {
        DStmt::Assign(_, place, e) => {
            e.has_call() || matches!(place, DPlace::Index(_, idx) if idx.has_call())
        }
        DStmt::Expr(e) | DStmt::Return(Some(e)) => e.has_call(),
        _ => false,
    }
}

/// Substitutes `Var(target)` with `replacement` everywhere in `e`.
fn subst(e: &mut DExpr, target: VarRef, replacement: &DExpr) {
    match e {
        DExpr::Var(v) if *v == target => *e = replacement.clone(),
        DExpr::Num(_) | DExpr::Str(_) | DExpr::Var(_) => {}
        DExpr::Index(_, i) => subst(i, target, replacement),
        DExpr::Call { args, .. } => {
            for a in args {
                subst(a, target, replacement);
            }
        }
        DExpr::Un(_, inner) | DExpr::Cast(inner) => subst(inner, target, replacement),
        DExpr::Bin(_, a, b) => {
            subst(a, target, replacement);
            subst(b, target, replacement);
        }
        DExpr::Select(c, a, b) => {
            subst(c, target, replacement);
            subst(a, target, replacement);
            subst(b, target, replacement);
        }
    }
}

fn subst_stmt(s: &mut DStmt, target: VarRef, replacement: &DExpr) {
    match s {
        DStmt::Assign(_, place, e) => {
            if let DPlace::Index(_, idx) = place {
                subst(idx, target, replacement);
            }
            subst(e, target, replacement);
        }
        DStmt::Expr(e) | DStmt::Return(Some(e)) => subst(e, target, replacement),
        _ => {}
    }
}

/// Global read/write counts per variable across all lifted blocks.
fn usage_counts(blocks: &[LiftedBlock]) -> (HashMap<VarRef, usize>, HashMap<VarRef, usize>) {
    let mut reads: HashMap<VarRef, usize> = HashMap::new();
    let mut writes: HashMap<VarRef, usize> = HashMap::new();
    for b in blocks {
        for s in &b.stmts {
            for r in stmt_reads(s) {
                *reads.entry(r).or_default() += 1;
            }
            if let Some(w) = stmt_write(s) {
                *writes.entry(w).or_default() += 1;
            }
        }
        for e in b.cond.iter().chain(b.ret.iter()) {
            for r in expr_reads(e) {
                *reads.entry(r).or_default() += 1;
            }
        }
    }
    (reads, writes)
}

/// Inlines single-use frame-slot temporaries and removes dead stores.
///
/// A slot is inlined only when it has exactly one write and one read,
/// both in the same block, with no interfering statement in between
/// (an interfering statement writes a variable the inlined expression
/// reads, or involves a call when ordering could matter).
///
/// `full_inline = false` restricts inlining to *leaf* expressions
/// (variables and constants): compound temporaries stay as separate
/// statements. The x86 lifter runs in this mode — 32-bit decompiler
/// output is famously temp-heavy due to register pressure — which is one
/// of the larger honest per-architecture AST differences.
pub fn optimize_lifted_with(blocks: &mut [LiftedBlock], full_inline: bool) {
    for _round in 0..8 {
        let mut changed = false;
        let (reads, writes) = usage_counts(blocks);
        for b in blocks.iter_mut() {
            let mut i = 0;
            while i < b.stmts.len() {
                let candidate = match &b.stmts[i] {
                    DStmt::Assign(DAssignOp::Assign, DPlace::Var(v @ VarRef::Local(_)), e) => {
                        if reads.get(v).copied().unwrap_or(0) == 1
                            && writes.get(v).copied().unwrap_or(0) == 1
                        {
                            Some((*v, e.clone()))
                        } else {
                            None
                        }
                    }
                    _ => None,
                };
                let Some((var, expr)) = candidate else {
                    i += 1;
                    continue;
                };
                let leaf = matches!(expr, DExpr::Var(_) | DExpr::Num(_) | DExpr::Str(_));
                let expr_read_vars = expr_reads(&expr);
                let expr_calls = expr.has_call();
                // Find the read among later statements in this block.
                let mut target: Option<usize> = None; // index into stmts, or None → cond/ret
                let mut in_terminator = false;
                let mut blocked = false;
                for j in i + 1..b.stmts.len() {
                    let reads_here = stmt_reads(&b.stmts[j]);
                    if reads_here.contains(&var) {
                        target = Some(j);
                        break;
                    }
                    // Interference checks for hoisting `expr` past stmt j.
                    let w = stmt_write(&b.stmts[j]);
                    if let Some(w) = w {
                        if expr_read_vars.contains(&w) || w == var {
                            blocked = true;
                            break;
                        }
                        // A call in expr must not move past global writes.
                        if expr_calls && matches!(w, VarRef::Global(_)) {
                            blocked = true;
                            break;
                        }
                    }
                    if stmt_has_call(&b.stmts[j])
                        && (expr_calls
                            || expr_read_vars
                                .iter()
                                .any(|r| matches!(r, VarRef::Global(_))))
                    {
                        blocked = true;
                        break;
                    }
                }
                if target.is_none() && !blocked {
                    let term_reads: Vec<VarRef> = b
                        .cond
                        .iter()
                        .chain(b.ret.iter())
                        .flat_map(expr_reads)
                        .collect();
                    if term_reads.contains(&var) {
                        in_terminator = true;
                    }
                }
                if blocked || (target.is_none() && !in_terminator) {
                    i += 1;
                    continue;
                }
                // Restricted mode (x86): compound temporaries survive as
                // statements, but expressions always fold into the block
                // terminator — decompilers show full conditions in `if`
                // and `return` even on temp-heavy targets.
                if !full_inline && !leaf && !in_terminator {
                    i += 1;
                    continue;
                }
                // Perform the substitution and drop the defining statement.
                let def = b.stmts.remove(i);
                let DStmt::Assign(_, _, expr) = def else {
                    unreachable!()
                };
                if let Some(j) = target {
                    subst_stmt(&mut b.stmts[j - 1], var, &expr);
                } else {
                    if let Some(c) = &mut b.cond {
                        subst(c, var, &expr);
                    }
                    if let Some(r) = &mut b.ret {
                        subst(r, var, &expr);
                    }
                }
                changed = true;
            }
        }
        // Dead-store elimination: locals never read anywhere.
        let (reads, _) = usage_counts(blocks);
        for b in blocks.iter_mut() {
            b.stmts.retain_mut(|s| match s {
                DStmt::Assign(DAssignOp::Assign, DPlace::Var(v @ VarRef::Local(_)), e)
                    if reads.get(v).copied().unwrap_or(0) == 0 =>
                {
                    if e.has_call() {
                        *s = DStmt::Expr(e.clone());
                        true
                    } else {
                        changed = true;
                        false
                    }
                }
                _ => true,
            });
        }
        if !changed {
            break;
        }
    }
}

/// Full-inlining wrapper kept for the common (non-x86) case.
pub fn optimize_lifted(blocks: &mut [LiftedBlock]) {
    optimize_lifted_with(blocks, true)
}

/// Renames locals that are mere parameter copies (`v3 = a0` being the only
/// write to `v3`) directly to the parameter, as interactive decompilers do.
pub fn propagate_params(blocks: &mut [LiftedBlock]) {
    let (_, writes) = usage_counts(blocks);
    // Collect rename candidates.
    let mut renames: Vec<(VarRef, VarRef)> = Vec::new();
    for b in blocks.iter() {
        for s in &b.stmts {
            if let DStmt::Assign(
                DAssignOp::Assign,
                DPlace::Var(local @ VarRef::Local(_)),
                DExpr::Var(param @ VarRef::Param(_)),
            ) = s
            {
                if writes.get(local).copied().unwrap_or(0) == 1 {
                    renames.push((*local, *param));
                }
            }
        }
    }
    for (local, param) in renames {
        let replacement = DExpr::Var(param);
        for b in blocks.iter_mut() {
            b.stmts.retain(|s| {
                !matches!(s, DStmt::Assign(DAssignOp::Assign, DPlace::Var(v), DExpr::Var(p))
                    if *v == local && *p == param)
            });
            for s in &mut b.stmts {
                subst_stmt(s, local, &replacement);
            }
            if let Some(c) = &mut b.cond {
                subst(c, local, &replacement);
            }
            if let Some(r) = &mut b.ret {
                subst(r, local, &replacement);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build_cfg;
    use asteria_compiler::{compile_program, decode_function};
    use asteria_lang::parse;

    /// Strips x64 cast artifacts for convention-independent assertions.
    fn uncast(e: &DExpr) -> &DExpr {
        match e {
            DExpr::Cast(inner) => inner,
            other => other,
        }
    }

    fn lift_fn(src: &str, arch: Arch) -> Vec<LiftedBlock> {
        let p = parse(src).unwrap();
        let b = compile_program(&p, arch).unwrap();
        let idx = b.function_indices()[0];
        let insts = decode_function(&b.symbols[idx].code, arch).unwrap();
        let cfg = build_cfg(&insts);
        let mut blocks = lift_blocks(&insts, &cfg, arch, b.symbols[idx].param_count);
        optimize_lifted(&mut blocks);
        propagate_params(&mut blocks);
        blocks
    }

    #[test]
    fn straightline_expression_is_rebuilt() {
        for arch in Arch::ALL {
            let blocks = lift_fn("int f(int a, int b) { return a + b * 2; }", arch);
            assert_eq!(blocks.len(), 1, "{arch}");
            let ret = blocks[0].ret.as_ref().expect("return value");
            // After temp elimination the full tree must be nested:
            // a0 + (a1 * 2)  — 5 nodes.
            assert_eq!(ret.size(), 5, "{arch}: got {ret:?}");
            assert!(
                blocks[0].stmts.is_empty(),
                "{arch}: leftover stmts {:?}",
                blocks[0].stmts
            );
        }
    }

    #[test]
    fn condition_is_rebuilt_into_branch() {
        for arch in [Arch::X86, Arch::X64, Arch::Ppc] {
            let blocks = lift_fn(
                "int f(int a) { if (a > 3) { return ext(a); } return 0; }",
                arch,
            );
            let cond_block = blocks
                .iter()
                .find(|b| b.cond.is_some())
                .expect("cond block");
            let c = cond_block.cond.as_ref().unwrap();
            assert!(
                matches!(c, DExpr::Bin(BinOp::Gt, _, _)),
                "{arch}: condition not recovered: {c:?}"
            );
        }
    }

    #[test]
    fn call_arguments_recovered_on_all_conventions() {
        for arch in Arch::ALL {
            let blocks = lift_fn(
                "int f(int a, int b) { return helper(a, b, a + b, 7); }",
                arch,
            );
            let ret = blocks
                .iter()
                .filter_map(|b| b.ret.as_ref())
                .next()
                .expect("ret");
            match ret {
                DExpr::Call { args, .. } => {
                    assert_eq!(args.len(), 4, "{arch}");
                    let args: Vec<&DExpr> = args.iter().map(uncast).collect();
                    assert_eq!(*args[0], DExpr::Var(VarRef::Param(0)), "{arch}");
                    assert_eq!(*args[1], DExpr::Var(VarRef::Param(1)), "{arch}");
                    assert!(
                        matches!(&args[2], DExpr::Bin(BinOp::Add, _, _)),
                        "{arch}: {:?}",
                        args[2]
                    );
                    assert_eq!(*args[3], DExpr::Num(7), "{arch}");
                }
                other => panic!("{arch}: return is not a call: {other:?}"),
            }
        }
    }

    #[test]
    fn many_args_cross_convention() {
        for arch in Arch::ALL {
            let blocks = lift_fn(
                "int f(int a) { return h(1, 2, 3, 4, 5, 6, 7, 8, 9, 10); }",
                arch,
            );
            let ret = blocks.iter().filter_map(|b| b.ret.as_ref()).next().unwrap();
            match ret {
                DExpr::Call { args, .. } => {
                    let got: Vec<i64> = args
                        .iter()
                        .map(|a| match uncast(a) {
                            DExpr::Num(n) => *n,
                            other => panic!("{arch}: non-constant arg {other:?}"),
                        })
                        .collect();
                    assert_eq!(got, (1..=10).collect::<Vec<i64>>(), "{arch}");
                }
                other => panic!("{arch}: {other:?}"),
            }
        }
    }

    #[test]
    fn array_accesses_lift_to_index() {
        let blocks = lift_fn(
            "int f(int a) { int buf[4]; buf[a] = a * 2; return buf[a]; }",
            Arch::Arm,
        );
        let has_index_store = blocks.iter().any(|b| {
            b.stmts
                .iter()
                .any(|s| matches!(s, DStmt::Assign(_, DPlace::Index(_, _), _)))
        });
        assert!(has_index_store);
        let ret = blocks.iter().filter_map(|b| b.ret.as_ref()).next().unwrap();
        assert!(matches!(ret, DExpr::Index(_, _)), "{ret:?}");
    }

    #[test]
    fn arm_csel_lifts_to_select() {
        let blocks = lift_fn(
            "int f(int a) { int x = 0; if (a > 0) { x = 1; } else { x = 2; } return x; }",
            Arch::Arm,
        );
        // If-converted: a single block that contains a Select expression
        // (in an assignment or directly in the return).
        assert_eq!(blocks.len(), 1);
        fn contains_select(e: &DExpr) -> bool {
            match e {
                DExpr::Select(_, _, _) => true,
                DExpr::Bin(_, a, b) => contains_select(a) || contains_select(b),
                DExpr::Un(_, i) | DExpr::Index(_, i) => contains_select(i),
                DExpr::Call { args, .. } => args.iter().any(contains_select),
                _ => false,
            }
        }
        let found = blocks[0]
            .stmts
            .iter()
            .any(|s| matches!(s, DStmt::Assign(_, _, e) if contains_select(e)))
            || blocks[0].ret.as_ref().is_some_and(contains_select);
        assert!(found, "{:?}", blocks[0]);
    }

    #[test]
    fn unused_call_result_becomes_expr_stmt() {
        let blocks = lift_fn(r#"int f(int a) { log_it(a); return a; }"#, Arch::X64);
        let has_expr_call = blocks.iter().any(|b| {
            b.stmts
                .iter()
                .any(|s| matches!(s, DStmt::Expr(DExpr::Call { .. })))
        });
        assert!(has_expr_call, "{blocks:?}");
    }

    #[test]
    fn global_reads_not_hoisted_past_calls() {
        // g is read, then a call could mutate it, then g is used again.
        let blocks = lift_fn(
            "int g = 1; int f(int a) { int x = g; mutate(a); return x + g; }",
            Arch::X64,
        );
        // The first read of g must remain a separate statement before the
        // call (x = g), not be inlined into the return.
        let entry = &blocks[0];
        let keeps_copy = entry.stmts.iter().any(|s| {
            matches!(
                s,
                DStmt::Assign(
                    _,
                    DPlace::Var(VarRef::Local(_)),
                    DExpr::Var(VarRef::Global(0))
                )
            )
        });
        assert!(keeps_copy, "g read was unsafely inlined: {entry:?}");
    }

    #[test]
    fn param_copies_are_propagated() {
        let blocks = lift_fn("int f(int a, int b) { return a - b; }", Arch::Ppc);
        let ret = blocks[0].ret.as_ref().unwrap();
        assert_eq!(
            *ret,
            DExpr::bin(
                BinOp::Sub,
                DExpr::Var(VarRef::Param(0)),
                DExpr::Var(VarRef::Param(1))
            )
        );
    }
}
