//! Pseudo-C rendering of decompiled functions — the textual view a
//! Hex-Rays user sees, and an invaluable debugging surface for the lifter
//! and structurer.

use std::fmt::Write;

use asteria_lang::BinOp;

use crate::ast::{DAssignOp, DExpr, DFunction, DPlace, DStmt};

/// Renders a whole decompiled function as pseudo-C.
///
/// # Examples
///
/// ```
/// use asteria_compiler::{compile_program, Arch};
/// use asteria_decompiler::{decompile_function, render_function};
///
/// let program = asteria_lang::parse("int f(int a) { return a * 2 + 1; }")?;
/// let binary = compile_program(&program, Arch::Arm)?;
/// let func = decompile_function(&binary, 0)?;
/// let text = render_function(&func, &binary);
/// assert!(text.contains("int f(int a0)"));
/// assert!(text.contains("return"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn render_function(func: &DFunction, binary: &asteria_compiler::Binary) -> String {
    let mut out = String::new();
    let params: Vec<String> = (0..func.param_count).map(|i| format!("int a{i}")).collect();
    let _ = writeln!(out, "int {}({}) {{", func.name, params.join(", "));
    for s in &func.body {
        render_stmt(&mut out, s, 1, binary);
    }
    out.push_str("}\n");
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn render_block(out: &mut String, body: &[DStmt], depth: usize, b: &asteria_compiler::Binary) {
    out.push_str("{\n");
    for s in body {
        render_stmt(out, s, depth + 1, b);
    }
    indent(out, depth);
    out.push('}');
}

fn render_stmt(out: &mut String, s: &DStmt, depth: usize, b: &asteria_compiler::Binary) {
    indent(out, depth);
    match s {
        DStmt::Assign(op, place, e) => {
            let sym = match op {
                DAssignOp::Assign => "=".to_string(),
                DAssignOp::Compound(bop) => format!("{}=", bop.symbol()),
            };
            let _ = writeln!(
                out,
                "{} {} {};",
                render_place(place, b),
                sym,
                render_expr(e, b)
            );
        }
        DStmt::Expr(e) => {
            let _ = writeln!(out, "{};", render_expr(e, b));
        }
        DStmt::If(c, t, e) => {
            let _ = write!(out, "if ({}) ", render_expr(c, b));
            render_block(out, t, depth, b);
            if !e.is_empty() {
                out.push_str(" else ");
                render_block(out, e, depth, b);
            }
            out.push('\n');
        }
        DStmt::While(c, body) => {
            let _ = write!(out, "while ({}) ", render_expr(c, b));
            render_block(out, body, depth, b);
            out.push('\n');
        }
        DStmt::DoWhile(body, c) => {
            out.push_str("do ");
            render_block(out, body, depth, b);
            let _ = writeln!(out, " while ({});", render_expr(c, b));
        }
        DStmt::Switch(scrut, cases) => {
            let _ = writeln!(out, "switch ({}) {{", render_expr(scrut, b));
            for case in cases {
                indent(out, depth);
                match case.value {
                    Some(v) => {
                        let _ = writeln!(out, "case {v}:");
                    }
                    None => out.push_str("default:\n"),
                }
                for s in &case.body {
                    render_stmt(out, s, depth + 1, b);
                }
                // Recovered switches never fall through; print the break a
                // C reader expects unless the arm already diverges.
                let diverges = matches!(
                    case.body.last(),
                    Some(DStmt::Return(_))
                        | Some(DStmt::Break)
                        | Some(DStmt::Continue)
                        | Some(DStmt::Goto(_))
                );
                if case.value.is_some() && !diverges {
                    indent(out, depth + 1);
                    out.push_str("break;\n");
                }
            }
            indent(out, depth);
            out.push_str("}\n");
        }
        DStmt::Return(Some(e)) => {
            let _ = writeln!(out, "return {};", render_expr(e, b));
        }
        DStmt::Return(None) => out.push_str("return;\n"),
        DStmt::Break => out.push_str("break;\n"),
        DStmt::Continue => out.push_str("continue;\n"),
        DStmt::Goto(l) => {
            let _ = writeln!(out, "goto label_{l};");
        }
        DStmt::Label(l) => {
            let _ = writeln!(out, "label_{l}:");
        }
    }
}

fn render_place(p: &DPlace, b: &asteria_compiler::Binary) -> String {
    match p {
        DPlace::Var(v) => v.to_string(),
        DPlace::Index(base, idx) => format!("v{base}[{}]", render_expr(idx, b)),
    }
}

fn needs_parens(e: &DExpr) -> bool {
    matches!(e, DExpr::Bin(_, _, _) | DExpr::Select(_, _, _))
}

fn render_sub(e: &DExpr, b: &asteria_compiler::Binary) -> String {
    if needs_parens(e) {
        format!("({})", render_expr(e, b))
    } else {
        render_expr(e, b)
    }
}

fn render_expr(e: &DExpr, b: &asteria_compiler::Binary) -> String {
    match e {
        DExpr::Num(n) => n.to_string(),
        DExpr::Str(sid) => b
            .strings
            .get(*sid as usize)
            .map(|s| format!("{s:?}"))
            .unwrap_or_else(|| format!("str_{sid}")),
        DExpr::Var(v) => v.to_string(),
        DExpr::Index(base, idx) => format!("v{base}[{}]", render_expr(idx, b)),
        DExpr::Call { sym, args } => {
            let callee = b
                .symbols
                .get(*sym as usize)
                .map(|s| s.display_name())
                .unwrap_or_else(|| format!("sym_{sym}"));
            let rendered: Vec<String> = args.iter().map(|a| render_expr(a, b)).collect();
            format!("{callee}({})", rendered.join(", "))
        }
        DExpr::Un(op, inner) => format!("{}{}", op.symbol(), render_sub(inner, b)),
        DExpr::Bin(op, l, r) => {
            format!("{} {} {}", render_sub(l, b), op.symbol(), render_sub(r, b))
        }
        DExpr::Select(c, a, bb) => format!(
            "{} ? {} : {}",
            render_sub(c, b),
            render_sub(a, b),
            render_sub(bb, b)
        ),
        DExpr::Cast(inner) => format!("(int){}", render_sub(inner, b)),
    }
}

/// Renders the condition operator table used above (exposed for tests).
pub fn binop_symbol(op: BinOp) -> &'static str {
    op.symbol()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompile::decompile_function;
    use asteria_compiler::{compile_program, Arch};
    use asteria_lang::parse;

    fn render(src: &str, arch: Arch) -> String {
        let p = parse(src).unwrap();
        let b = compile_program(&p, arch).unwrap();
        let f = decompile_function(&b, 0).unwrap();
        render_function(&f, &b)
    }

    #[test]
    fn renders_loops_and_calls() {
        let text = render(
            "int f(int n) { int s = 0; while (n > 0) { s += ext_fn(n); n -= 1; } return s; }",
            Arch::Arm,
        );
        assert!(text.contains("while ("), "{text}");
        assert!(text.contains("ext_fn("), "{text}");
        assert!(text.contains("return"), "{text}");
    }

    #[test]
    fn renders_rotated_loop_as_guarded_dowhile() {
        let text = render(
            "int f(int n) { int s = 0; while (n > 0) { s += ext_fn(n); n -= 1; } return s; }",
            Arch::Ppc,
        );
        assert!(text.contains("do {"), "{text}");
        assert!(text.contains("} while ("), "{text}");
    }

    #[test]
    fn renders_strings_and_globals() {
        let text = render(
            r#"int g = 3; int f(int a) { ext_log("hello", g); return g + a; }"#,
            Arch::X64,
        );
        assert!(text.contains("\"hello\""), "{text}");
        assert!(text.contains("g0"), "{text}");
    }

    #[test]
    fn renders_ternary_from_csel() {
        let text = render(
            "int f(int a, int b) { int x = 0; if (a > b) { x = a; } else { x = b; } return x; }",
            Arch::Arm,
        );
        assert!(text.contains('?'), "{text}");
        assert!(text.contains(':'), "{text}");
    }

    #[test]
    fn renders_casts_on_x64() {
        let text = render("int f(int a) { return ext_fn(a + 1); }", Arch::X64);
        assert!(text.contains("(int)"), "{text}");
    }

    #[test]
    fn renders_switch() {
        let text = render(
            "int f(int x) { switch (x) { case 1: return 10; case 2: return 20; \
             case 3: return 30; default: return 0; } }",
            Arch::X86,
        );
        assert!(text.contains("switch ("), "{text}");
        assert!(text.contains("case 1:"), "{text}");
        assert!(text.contains("default:"), "{text}");
    }

    #[test]
    fn stripped_functions_render_with_sub_names() {
        let p =
            parse("int f(int a) { return helper(a); } int helper(int x) { return x; }").unwrap();
        let mut b = compile_program(&p, Arch::Arm).unwrap();
        b.strip();
        let f = decompile_function(&b, 0).unwrap();
        let text = render_function(&f, &b);
        assert!(text.contains("sub_"), "{text}");
    }
}
