//! AST post-processing: compound-assignment recovery (two-address ISAs)
//! and `switch` recovery from equality-comparison chains.

use asteria_lang::BinOp;

use crate::ast::{DAssignOp, DExpr, DPlace, DStmt, DSwitchCase};

/// Recovers arithmetic idioms that instruction expansion obscured, the way
/// interactive decompilers re-idiomize compiler expansions:
///
/// - `a - (a / b) * b` → `a % b` (PPC has no hardware remainder).
///
/// The negate expansion `0 - x` is deliberately *not* recovered: real
/// decompilers print it as-is, which is one of the small per-architecture
/// AST differences the paper's Fig. 2 shows.
pub fn recover_idioms(stmts: &mut [DStmt]) {
    for s in stmts {
        match s {
            DStmt::Assign(_, place, e) => {
                if let DPlace::Index(_, idx) = place {
                    idiom_expr(idx);
                }
                idiom_expr(e);
            }
            DStmt::Expr(e) | DStmt::Return(Some(e)) => idiom_expr(e),
            DStmt::If(c, t, el) => {
                idiom_expr(c);
                recover_idioms(t);
                recover_idioms(el);
            }
            DStmt::While(c, b) => {
                idiom_expr(c);
                recover_idioms(b);
            }
            DStmt::DoWhile(b, c) => {
                recover_idioms(b);
                idiom_expr(c);
            }
            DStmt::Switch(scrut, cases) => {
                idiom_expr(scrut);
                for case in cases {
                    recover_idioms(&mut case.body);
                }
            }
            _ => {}
        }
    }
}

fn idiom_expr(e: &mut DExpr) {
    // Rewrite children first so nested idioms collapse bottom-up.
    match e {
        DExpr::Index(_, i) => idiom_expr(i),
        DExpr::Call { args, .. } => {
            for a in args {
                idiom_expr(a);
            }
        }
        DExpr::Un(_, inner) | DExpr::Cast(inner) => idiom_expr(inner),
        DExpr::Bin(_, a, b) => {
            idiom_expr(a);
            idiom_expr(b);
        }
        DExpr::Select(c, a, b) => {
            idiom_expr(c);
            idiom_expr(a);
            idiom_expr(b);
        }
        _ => {}
    }
    // a - (a / b) * b  →  a % b
    if let DExpr::Bin(BinOp::Sub, a, rhs) = e {
        if let DExpr::Bin(BinOp::Mul, quot, b2) = &**rhs {
            if let DExpr::Bin(BinOp::Div, a2, b1) = &**quot {
                if a2 == a && b1 == b2 && !a.has_call() && !b1.has_call() {
                    *e = DExpr::Bin(BinOp::Mod, a.clone(), b1.clone());
                    return;
                }
            }
        }
        // Strength-reduced variant: a - ((a / 2^k) << k)  →  a % 2^k.
        if let DExpr::Bin(BinOp::Shl, quot, shift) = &**rhs {
            if let (DExpr::Bin(BinOp::Div, a2, pow), DExpr::Num(k)) = (&**quot, &**shift) {
                if let DExpr::Num(p) = **pow {
                    if **a2 == **a && !a.has_call() && *k >= 0 && *k < 63 && p == 1i64 << *k {
                        *e = DExpr::Bin(BinOp::Mod, a.clone(), Box::new(DExpr::Num(p)));
                    }
                }
            }
        }
    }
}

/// Rewrites `x = x op e` into `x op= e` (and likewise for array elements).
///
/// Run only for the two-address architectures (x86/x64), whose
/// `op dst, src` machine form is what prompts interactive decompilers to
/// print compound assignments. This is one of the deliberate *small*
/// cross-architecture AST differences the paper's Fig. 2 highlights.
pub fn recover_compound_assign(stmts: &mut [DStmt]) {
    for s in stmts {
        match s {
            DStmt::Assign(op @ DAssignOp::Assign, place, e) => {
                let matches_place = |lhs: &DExpr, place: &DPlace| -> bool {
                    match (lhs, place) {
                        (DExpr::Var(v), DPlace::Var(pv)) => v == pv,
                        (DExpr::Index(b, i), DPlace::Index(pb, pi)) => b == pb && i == pi,
                        _ => false,
                    }
                };
                if let DExpr::Bin(bop, lhs, rhs) = e {
                    let compoundable = matches!(
                        bop,
                        BinOp::Add
                            | BinOp::Sub
                            | BinOp::Mul
                            | BinOp::Div
                            | BinOp::And
                            | BinOp::Or
                            | BinOp::Xor
                    );
                    if compoundable && matches_place(lhs, place) {
                        *op = DAssignOp::Compound(*bop);
                        *e = (**rhs).clone();
                    }
                }
            }
            DStmt::If(_, t, e) => {
                recover_compound_assign(t);
                recover_compound_assign(e);
            }
            DStmt::While(_, b) | DStmt::DoWhile(b, _) => recover_compound_assign(b),
            DStmt::Switch(_, cases) => {
                for c in cases {
                    recover_compound_assign(&mut c.body);
                }
            }
            _ => {}
        }
    }
}

/// Minimum chain length for switch recovery.
const SWITCH_MIN_CASES: usize = 3;

/// Collapses `if (v == c1) … else if (v == c2) … else …` chains of length
/// ≥ 3 on the *same* scrutinee into a recovered [`DStmt::Switch`] — the
/// analogue of a decompiler's jump-table/compare-chain switch recovery.
pub fn recover_switch(stmts: &mut [DStmt]) {
    for s in stmts.iter_mut() {
        // Recurse first so nested chains inside arms also collapse.
        match s {
            DStmt::If(_, t, e) => {
                recover_switch(t);
                recover_switch(e);
            }
            DStmt::While(_, b) | DStmt::DoWhile(b, _) => recover_switch(b),
            DStmt::Switch(_, cases) => {
                for c in cases {
                    recover_switch(&mut c.body);
                }
            }
            _ => {}
        }
        if let Some(switch) = try_collapse_chain(s) {
            *s = switch;
        }
    }
}

/// Matches `cond` as `scrutinee == constant`.
fn eq_test(cond: &DExpr) -> Option<(&DExpr, i64)> {
    match cond {
        DExpr::Bin(BinOp::Eq, a, b) => match (&**a, &**b) {
            (e, DExpr::Num(n)) => Some((e, *n)),
            (DExpr::Num(n), e) => Some((e, *n)),
            _ => None,
        },
        _ => None,
    }
}

fn try_collapse_chain(s: &DStmt) -> Option<DStmt> {
    let DStmt::If(cond, _, _) = s else {
        return None;
    };
    let (scrutinee, _) = eq_test(cond)?;
    let scrutinee = scrutinee.clone();

    let mut cases: Vec<DSwitchCase> = Vec::new();
    let mut cur = s;
    #[allow(clippy::while_let_loop)] // the non-If arm must also `break`
    loop {
        match cur {
            DStmt::If(cond, then_body, else_body) => {
                let (e, value) = match eq_test(cond) {
                    Some(pair) => pair,
                    None => break,
                };
                if *e != scrutinee {
                    break;
                }
                cases.push(DSwitchCase {
                    value: Some(value),
                    body: then_body.clone(),
                });
                if else_body.len() == 1 && matches!(else_body[0], DStmt::If(_, _, _)) {
                    cur = &else_body[0];
                } else {
                    if !else_body.is_empty() {
                        cases.push(DSwitchCase {
                            value: None,
                            body: else_body.clone(),
                        });
                    }
                    return finish(scrutinee, cases);
                }
            }
            _ => break,
        }
    }
    finish(scrutinee, cases)
}

fn finish(scrutinee: DExpr, cases: Vec<DSwitchCase>) -> Option<DStmt> {
    let named = cases.iter().filter(|c| c.value.is_some()).count();
    if named >= SWITCH_MIN_CASES {
        Some(DStmt::Switch(scrutinee, cases))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::VarRef;

    fn var(i: u32) -> DExpr {
        DExpr::Var(VarRef::Local(i))
    }

    #[test]
    fn compound_assign_rewrites_matching_lhs() {
        let mut stmts = vec![DStmt::Assign(
            DAssignOp::Assign,
            DPlace::Var(VarRef::Local(3)),
            DExpr::bin(BinOp::Add, var(3), DExpr::Num(1)),
        )];
        recover_compound_assign(&mut stmts);
        assert!(matches!(
            &stmts[0],
            DStmt::Assign(DAssignOp::Compound(BinOp::Add), _, DExpr::Num(1))
        ));
    }

    #[test]
    fn compound_assign_leaves_mismatches() {
        let mut stmts = vec![DStmt::Assign(
            DAssignOp::Assign,
            DPlace::Var(VarRef::Local(3)),
            DExpr::bin(BinOp::Add, var(4), DExpr::Num(1)),
        )];
        recover_compound_assign(&mut stmts);
        assert!(matches!(&stmts[0], DStmt::Assign(DAssignOp::Assign, _, _)));
    }

    #[test]
    fn comparison_ops_are_not_compoundable() {
        let mut stmts = vec![DStmt::Assign(
            DAssignOp::Assign,
            DPlace::Var(VarRef::Local(3)),
            DExpr::bin(BinOp::Lt, var(3), DExpr::Num(1)),
        )];
        recover_compound_assign(&mut stmts);
        assert!(matches!(&stmts[0], DStmt::Assign(DAssignOp::Assign, _, _)));
    }

    fn eq_chain(values: &[i64], with_default: bool) -> DStmt {
        let mut cur = if with_default {
            vec![DStmt::Return(Some(DExpr::Num(99)))]
        } else {
            Vec::new()
        };
        for v in values.iter().rev() {
            let inner = std::mem::take(&mut cur);
            cur = vec![DStmt::If(
                DExpr::bin(BinOp::Eq, var(0), DExpr::Num(*v)),
                vec![DStmt::Return(Some(DExpr::Num(*v * 10)))],
                inner,
            )];
        }
        cur.into_iter().next().unwrap()
    }

    #[test]
    fn switch_recovered_from_long_chain() {
        let mut stmts = vec![eq_chain(&[1, 2, 3], true)];
        recover_switch(&mut stmts);
        match &stmts[0] {
            DStmt::Switch(scrut, cases) => {
                assert_eq!(*scrut, var(0));
                assert_eq!(cases.len(), 4);
                assert_eq!(cases[0].value, Some(1));
                assert_eq!(cases[3].value, None);
            }
            other => panic!("not a switch: {other:?}"),
        }
    }

    #[test]
    fn short_chain_stays_if() {
        let mut stmts = vec![eq_chain(&[1, 2], true)];
        recover_switch(&mut stmts);
        assert!(matches!(&stmts[0], DStmt::If(_, _, _)));
    }

    #[test]
    fn mixed_scrutinee_breaks_chain() {
        // if (v0==1) else if (v1==2) else if (v0==3): not a single switch.
        let inner = DStmt::If(
            DExpr::bin(BinOp::Eq, var(0), DExpr::Num(3)),
            vec![DStmt::Break],
            vec![],
        );
        let mid = DStmt::If(
            DExpr::bin(BinOp::Eq, var(1), DExpr::Num(2)),
            vec![DStmt::Break],
            vec![inner],
        );
        let mut stmts = vec![DStmt::If(
            DExpr::bin(BinOp::Eq, var(0), DExpr::Num(1)),
            vec![DStmt::Break],
            vec![mid],
        )];
        recover_switch(&mut stmts);
        assert!(matches!(&stmts[0], DStmt::If(_, _, _)));
    }

    #[test]
    fn switch_inside_loop_recovered() {
        let mut stmts = vec![DStmt::While(
            DExpr::Num(1),
            vec![eq_chain(&[5, 6, 7], false)],
        )];
        recover_switch(&mut stmts);
        match &stmts[0] {
            DStmt::While(_, body) => {
                assert!(matches!(&body[0], DStmt::Switch(_, _)), "{body:?}")
            }
            _ => unreachable!(),
        }
    }
}

#[cfg(test)]
mod idiom_tests {
    use super::*;
    use crate::ast::VarRef;

    fn var(i: u32) -> DExpr {
        DExpr::Var(VarRef::Param(i))
    }

    #[test]
    fn mod_idiom_recovered() {
        // a0 - (a0 / a1) * a1 → a0 % a1
        let mut e = DExpr::bin(
            BinOp::Sub,
            var(0),
            DExpr::bin(BinOp::Mul, DExpr::bin(BinOp::Div, var(0), var(1)), var(1)),
        );
        idiom_expr(&mut e);
        assert_eq!(e, DExpr::bin(BinOp::Mod, var(0), var(1)));
    }

    #[test]
    fn neg_expansion_is_left_alone() {
        // Decompilers print `0 - x` as-is; only `%` is re-idiomized. This
        // is a deliberate per-architecture artifact (PPC expands negate).
        let mut e = DExpr::bin(BinOp::Sub, DExpr::Num(0), var(2));
        let orig = e.clone();
        idiom_expr(&mut e);
        assert_eq!(e, orig);
    }

    #[test]
    fn mismatched_operands_not_rewritten() {
        // a0 - (a0 / a1) * a2 must stay as-is.
        let mut e = DExpr::bin(
            BinOp::Sub,
            var(0),
            DExpr::bin(BinOp::Mul, DExpr::bin(BinOp::Div, var(0), var(1)), var(2)),
        );
        let orig = e.clone();
        idiom_expr(&mut e);
        assert_eq!(e, orig);
    }

    #[test]
    fn call_operands_not_rewritten() {
        let call = DExpr::Call {
            sym: 0,
            args: vec![],
        };
        let mut e = DExpr::bin(
            BinOp::Sub,
            call.clone(),
            DExpr::bin(
                BinOp::Mul,
                DExpr::bin(BinOp::Div, call.clone(), var(1)),
                var(1),
            ),
        );
        let orig = e.clone();
        idiom_expr(&mut e);
        assert_eq!(e, orig, "calls must not be deduplicated");
    }

    #[test]
    fn nested_idioms_collapse() {
        // A `0 - x` subexpression participates in the mod pattern intact.
        let neg = DExpr::bin(BinOp::Sub, DExpr::Num(0), var(0));
        let mut e = DExpr::bin(
            BinOp::Sub,
            neg.clone(),
            DExpr::bin(
                BinOp::Mul,
                DExpr::bin(BinOp::Div, neg.clone(), var(1)),
                var(1),
            ),
        );
        idiom_expr(&mut e);
        assert_eq!(e, DExpr::bin(BinOp::Mod, neg, var(1)));
    }

    #[test]
    fn ppc_mod_matches_other_arch_trees() {
        use asteria_compiler::{compile_program, Arch};
        use asteria_lang::parse;
        let p = parse("int f(int a, int b) { return a % b; }").unwrap();
        let bp = compile_program(&p, Arch::Ppc).unwrap();
        let ba = compile_program(&p, Arch::Arm).unwrap();
        let fp = crate::decompile::decompile_function(&bp, 0).unwrap();
        let fa = crate::decompile::decompile_function(&ba, 0).unwrap();
        assert_eq!(
            fp.body, fa.body,
            "idiom recovery should reunify % across arches"
        );
    }
}

#[cfg(test)]
mod shl_mod_tests {
    use super::*;
    use crate::ast::VarRef;

    #[test]
    fn strength_reduced_mod_idiom_recovered() {
        let a = DExpr::Var(VarRef::Local(4));
        let mut e = DExpr::bin(
            BinOp::Sub,
            a.clone(),
            DExpr::bin(
                BinOp::Shl,
                DExpr::bin(BinOp::Div, a.clone(), DExpr::Num(4)),
                DExpr::Num(2),
            ),
        );
        idiom_expr(&mut e);
        assert_eq!(e, DExpr::bin(BinOp::Mod, a, DExpr::Num(4)), "{e:?}");
    }
}
