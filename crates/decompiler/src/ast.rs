//! The decompiled AST — the data structure the whole paper revolves around.
//!
//! This is *not* the same type as the source AST in `asteria-lang`: it is
//! what a decompiler can actually recover from machine code. Variables are
//! anonymous slots (`v12`), parameters are positional (`a0`), loops come
//! back as `while`/`do-while` (a source `for` is generally recovered as
//! `while`), two-address machine code surfaces as compound assignments, and
//! ARM's conditional selects surface as ternary [`DExpr::Select`]
//! expressions. Structuring failures fall back to `goto`, exactly as in
//! Hex-Rays output (the paper's Table I includes a `goto` node for the same
//! reason).

use std::fmt;

use asteria_lang::{BinOp, UnOp};

/// What a recovered variable refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VarRef {
    /// Incoming parameter `index`.
    Param(u32),
    /// Stack-frame slot (local or compiler temporary).
    Local(u32),
    /// Global data slot.
    Global(u32),
}

impl fmt::Display for VarRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VarRef::Param(i) => write!(f, "a{i}"),
            VarRef::Local(i) => write!(f, "v{i}"),
            VarRef::Global(i) => write!(f, "g{i}"),
        }
    }
}

/// A decompiled expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DExpr {
    /// Integer constant.
    Num(i64),
    /// String-table reference.
    Str(u32),
    /// Variable read.
    Var(VarRef),
    /// Array element read: `array_base[idx]`.
    Index(u32, Box<DExpr>),
    /// Call; `sym` indexes the binary's symbol table.
    Call {
        /// Callee symbol index.
        sym: u32,
        /// Argument expressions.
        args: Vec<DExpr>,
    },
    /// Unary operation.
    Un(UnOp, Box<DExpr>),
    /// Binary operation (never `&&`/`||`; those come back as control flow).
    Bin(BinOp, Box<DExpr>, Box<DExpr>),
    /// Ternary `c ? a : b` (from conditional-select instructions).
    Select(Box<DExpr>, Box<DExpr>, Box<DExpr>),
    /// Integer-width cast artifact. Only some architectures' lifters emit
    /// these (x64 call arguments), mirroring how Hex-Rays decorates
    /// different ISAs' output differently.
    Cast(Box<DExpr>),
}

impl DExpr {
    /// Convenience constructor for binary expressions.
    pub fn bin(op: BinOp, a: DExpr, b: DExpr) -> DExpr {
        DExpr::Bin(op, Box::new(a), Box::new(b))
    }

    /// Number of nodes in this expression tree.
    pub fn size(&self) -> usize {
        match self {
            DExpr::Num(_) | DExpr::Str(_) | DExpr::Var(_) => 1,
            DExpr::Cast(e) => 1 + e.size(),
            DExpr::Index(_, i) => 2 + i.size(),
            DExpr::Call { args, .. } => 1 + args.iter().map(DExpr::size).sum::<usize>(),
            DExpr::Un(_, e) => 1 + e.size(),
            DExpr::Bin(_, a, b) => 1 + a.size() + b.size(),
            DExpr::Select(c, a, b) => 1 + c.size() + a.size() + b.size(),
        }
    }

    /// All variables read by this expression.
    pub fn reads(&self, out: &mut Vec<VarRef>) {
        match self {
            DExpr::Num(_) | DExpr::Str(_) => {}
            DExpr::Var(v) => out.push(*v),
            DExpr::Index(base, i) => {
                out.push(VarRef::Local(*base));
                i.reads(out);
            }
            DExpr::Call { args, .. } => {
                for a in args {
                    a.reads(out);
                }
            }
            DExpr::Un(_, e) | DExpr::Cast(e) => e.reads(out),
            DExpr::Bin(_, a, b) => {
                a.reads(out);
                b.reads(out);
            }
            DExpr::Select(c, a, b) => {
                c.reads(out);
                a.reads(out);
                b.reads(out);
            }
        }
    }

    /// True when the expression contains a call (and therefore must not be
    /// duplicated or reordered across side effects).
    pub fn has_call(&self) -> bool {
        match self {
            DExpr::Num(_) | DExpr::Str(_) | DExpr::Var(_) => false,
            DExpr::Index(_, i) => i.has_call(),
            DExpr::Call { .. } => true,
            DExpr::Un(_, e) | DExpr::Cast(e) => e.has_call(),
            DExpr::Bin(_, a, b) => a.has_call() || b.has_call(),
            DExpr::Select(c, a, b) => c.has_call() || a.has_call() || b.has_call(),
        }
    }
}

/// The target of a decompiled assignment.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DPlace {
    /// A scalar variable.
    Var(VarRef),
    /// An array element.
    Index(u32, Box<DExpr>),
}

impl DPlace {
    /// Node count contribution of this place.
    pub fn size(&self) -> usize {
        match self {
            DPlace::Var(_) => 1,
            DPlace::Index(_, i) => 2 + i.size(),
        }
    }
}

/// Assignment flavour in decompiled output. Plain assignment plus the
/// compound forms the paper's Table I lists ("asgs", labels 10–17).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DAssignOp {
    /// `=`
    Assign,
    /// `|=`, `^=`, `&=`, `+=`, `-=`, `*=`, `/=` carried by the operator.
    Compound(BinOp),
}

/// A case arm of a recovered switch.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DSwitchCase {
    /// Case constant; `None` for the default arm.
    pub value: Option<i64>,
    /// Arm body.
    pub body: Vec<DStmt>,
}

/// A decompiled statement.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DStmt {
    /// `place op= expr;`
    Assign(DAssignOp, DPlace, DExpr),
    /// Expression evaluated for its side effects (almost always a call).
    Expr(DExpr),
    /// `if (cond) { then } else { else }`
    If(DExpr, Vec<DStmt>, Vec<DStmt>),
    /// `while (cond) { body }`
    While(DExpr, Vec<DStmt>),
    /// `do { body } while (cond);`
    DoWhile(Vec<DStmt>, DExpr),
    /// Recovered `switch`.
    Switch(DExpr, Vec<DSwitchCase>),
    /// `return expr;`
    Return(Option<DExpr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// Structuring fallback.
    Goto(u32),
    /// Jump target for [`DStmt::Goto`].
    Label(u32),
}

impl DStmt {
    /// Number of AST nodes in this statement subtree (statements and
    /// expressions both count, matching the paper's AST-size statistic).
    pub fn size(&self) -> usize {
        fn body(b: &[DStmt]) -> usize {
            b.iter().map(DStmt::size).sum()
        }
        match self {
            DStmt::Assign(_, p, e) => 1 + p.size() + e.size(),
            DStmt::Expr(e) => e.size(),
            DStmt::If(c, t, e) => 1 + c.size() + body(t) + body(e),
            DStmt::While(c, b) => 1 + c.size() + body(b),
            DStmt::DoWhile(b, c) => 1 + c.size() + body(b),
            DStmt::Switch(s, cases) => {
                1 + s.size() + cases.iter().map(|c| body(&c.body)).sum::<usize>()
            }
            DStmt::Return(Some(e)) => 1 + e.size(),
            DStmt::Return(None)
            | DStmt::Break
            | DStmt::Continue
            | DStmt::Goto(_)
            | DStmt::Label(_) => 1,
        }
    }
}

/// A fully decompiled function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DFunction {
    /// Display name (symbol name or `sub_<offset>` when stripped).
    pub name: String,
    /// Declared parameter count.
    pub param_count: u32,
    /// Recovered body.
    pub body: Vec<DStmt>,
    /// Symbol indices of distinct call targets (before any inline filter).
    pub callees: Vec<u32>,
    /// Number of machine instructions in the function.
    pub inst_count: usize,
    /// Number of basic blocks in the machine CFG.
    pub block_count: usize,
}

impl DFunction {
    /// Total AST size (number of nodes) of the decompiled body, plus one
    /// for the implicit function/block root — the paper filters ASTs with
    /// fewer than 5 nodes using this measure.
    pub fn ast_size(&self) -> usize {
        1 + self.body.iter().map(DStmt::size).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_size_counts_nodes() {
        // v0 + (a1 * 3) → 5 nodes
        let e = DExpr::bin(
            BinOp::Add,
            DExpr::Var(VarRef::Local(0)),
            DExpr::bin(BinOp::Mul, DExpr::Var(VarRef::Param(1)), DExpr::Num(3)),
        );
        assert_eq!(e.size(), 5);
    }

    #[test]
    fn select_counts_three_children() {
        let s = DExpr::Select(
            Box::new(DExpr::Var(VarRef::Local(0))),
            Box::new(DExpr::Num(1)),
            Box::new(DExpr::Num(2)),
        );
        assert_eq!(s.size(), 4);
    }

    #[test]
    fn stmt_size_recurses() {
        let s = DStmt::If(
            DExpr::Var(VarRef::Param(0)),
            vec![DStmt::Return(Some(DExpr::Num(1)))],
            vec![DStmt::Break],
        );
        // if(1) + cond(1) + return(1+1) + break(1) = 5
        assert_eq!(s.size(), 5);
    }

    #[test]
    fn reads_collects_variables() {
        let e = DExpr::bin(
            BinOp::Add,
            DExpr::Var(VarRef::Param(0)),
            DExpr::Index(3, Box::new(DExpr::Var(VarRef::Local(7)))),
        );
        let mut reads = Vec::new();
        e.reads(&mut reads);
        assert!(reads.contains(&VarRef::Param(0)));
        assert!(reads.contains(&VarRef::Local(3)));
        assert!(reads.contains(&VarRef::Local(7)));
    }

    #[test]
    fn has_call_detects_nested_calls() {
        let e = DExpr::Un(
            UnOp::Neg,
            Box::new(DExpr::Call {
                sym: 2,
                args: vec![DExpr::Num(1)],
            }),
        );
        assert!(e.has_call());
        assert!(!DExpr::Num(3).has_call());
    }

    #[test]
    fn varref_display_names() {
        assert_eq!(VarRef::Param(2).to_string(), "a2");
        assert_eq!(VarRef::Local(9).to_string(), "v9");
        assert_eq!(VarRef::Global(0).to_string(), "g0");
    }
}
