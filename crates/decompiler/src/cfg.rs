//! Machine-level control-flow graph recovery and graph analyses.
//!
//! Works on decoded instruction streams (the output of
//! [`asteria_compiler::decode_function`]): finds basic-block leaders,
//! builds the CFG, and provides dominator / postdominator / natural-loop
//! analyses for the structurer.

use std::collections::BTreeSet;

use asteria_compiler::MInst;

/// How a machine basic block ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TermKind {
    /// Conditional branch: two successors `[taken, fallthrough]`.
    Cond,
    /// One successor (explicit jump or fallthrough).
    Jump,
    /// Function return; no successors.
    Ret,
}

/// A machine basic block: a half-open instruction range plus edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CfgBlock {
    /// First instruction index.
    pub start: u32,
    /// One past the last instruction index.
    pub end: u32,
    /// Successor block indices (0, 1, or 2 entries).
    pub succs: Vec<usize>,
    /// Terminator classification.
    pub term: TermKind,
}

/// A recovered control-flow graph. Block 0 is the entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cfg {
    /// Basic blocks in address order.
    pub blocks: Vec<CfgBlock>,
}

impl Cfg {
    /// Predecessor lists for every block.
    pub fn preds(&self) -> Vec<Vec<usize>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (i, b) in self.blocks.iter().enumerate() {
            for s in &b.succs {
                preds[*s].push(i);
            }
        }
        preds
    }

    /// Reverse postorder of blocks reachable from the entry.
    pub fn reverse_postorder(&self) -> Vec<usize> {
        let mut visited = vec![false; self.blocks.len()];
        let mut post = Vec::new();
        // Iterative DFS with an explicit stack of (node, next-child).
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        visited[0] = true;
        while let Some((node, child)) = stack.pop() {
            if child < self.blocks[node].succs.len() {
                stack.push((node, child + 1));
                let s = self.blocks[node].succs[child];
                if !visited[s] {
                    visited[s] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(node);
            }
        }
        post.reverse();
        post
    }
}

/// Builds the CFG of a decoded function body.
///
/// Leaders are the entry, branch targets, and instructions following a
/// branch. Blocks that merely forward (`jmp`-only) are kept — the
/// structurer sees exactly what the disassembly implies.
pub fn build_cfg(insts: &[MInst]) -> Cfg {
    assert!(!insts.is_empty(), "cannot build a CFG of an empty function");
    let leaders = asteria_compiler::block_boundaries(insts);
    let starts: Vec<u32> = leaders.clone();
    let block_of = |inst: u32| -> usize {
        match starts.binary_search(&inst) {
            Ok(i) => i,
            Err(i) => i - 1,
        }
    };
    let mut blocks = Vec::with_capacity(starts.len());
    for (bi, &start) in starts.iter().enumerate() {
        let end = starts.get(bi + 1).copied().unwrap_or(insts.len() as u32);
        let last = &insts[(end - 1) as usize];
        let (succs, term) = match last {
            MInst::Ret => (vec![], TermKind::Ret),
            MInst::Jmp(t) => (vec![block_of(*t)], TermKind::Jump),
            MInst::Brnz(_, t) => {
                let taken = block_of(*t);
                let fall = block_of(end);
                (vec![taken, fall], TermKind::Cond)
            }
            _ => {
                // Fallthrough into the next block.
                if (end as usize) < insts.len() {
                    (vec![bi + 1], TermKind::Jump)
                } else {
                    (vec![], TermKind::Ret)
                }
            }
        };
        blocks.push(CfgBlock {
            start,
            end,
            succs,
            term,
        });
    }
    Cfg { blocks }
}

/// Immediate dominators (Cooper–Harvey–Kennedy). Entry's idom is itself;
/// unreachable blocks get `usize::MAX`.
pub fn dominators(cfg: &Cfg) -> Vec<usize> {
    let rpo = cfg.reverse_postorder();
    let mut order_of = vec![usize::MAX; cfg.blocks.len()];
    for (i, b) in rpo.iter().enumerate() {
        order_of[*b] = i;
    }
    let preds = cfg.preds();
    let mut idom = vec![usize::MAX; cfg.blocks.len()];
    idom[0] = 0;
    let intersect = |mut a: usize, mut b: usize, idom: &[usize], order_of: &[usize]| {
        while a != b {
            while order_of[a] > order_of[b] {
                a = idom[a];
            }
            while order_of[b] > order_of[a] {
                b = idom[b];
            }
        }
        a
    };
    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new_idom = usize::MAX;
            for &p in &preds[b] {
                if idom[p] != usize::MAX {
                    new_idom = if new_idom == usize::MAX {
                        p
                    } else {
                        intersect(p, new_idom, &idom, &order_of)
                    };
                }
            }
            if new_idom != usize::MAX && idom[b] != new_idom {
                idom[b] = new_idom;
                changed = true;
            }
        }
    }
    idom
}

/// True when `a` dominates `b` under the given idom tree.
pub fn dominates(idom: &[usize], a: usize, b: usize) -> bool {
    let mut cur = b;
    loop {
        if cur == a {
            return true;
        }
        if cur == idom[cur] || idom[cur] == usize::MAX {
            return cur == a;
        }
        cur = idom[cur];
    }
}

/// Immediate postdominators computed against a virtual exit that all
/// return blocks feed. `None` marks blocks postdominated only by the
/// virtual exit.
pub fn postdominators(cfg: &Cfg) -> Vec<Option<usize>> {
    let n = cfg.blocks.len();
    // Build the reverse graph with virtual exit node `n`.
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
    for (i, b) in cfg.blocks.iter().enumerate() {
        if b.succs.is_empty() {
            succs[n].push(i); // reverse edge exit→ret-block
        }
        for s in &b.succs {
            succs[*s].push(i); // reversed
        }
    }
    // Postorder from exit on the reversed graph.
    let mut visited = vec![false; n + 1];
    let mut post = Vec::new();
    let mut stack: Vec<(usize, usize)> = vec![(n, 0)];
    visited[n] = true;
    while let Some((node, child)) = stack.pop() {
        if child < succs[node].len() {
            stack.push((node, child + 1));
            let s = succs[node][child];
            if !visited[s] {
                visited[s] = true;
                stack.push((s, 0));
            }
        } else {
            post.push(node);
        }
    }
    post.reverse(); // now RPO of the reversed graph
    let mut order_of = vec![usize::MAX; n + 1];
    for (i, b) in post.iter().enumerate() {
        order_of[*b] = i;
    }
    let mut ipdom = vec![usize::MAX; n + 1];
    ipdom[n] = n;
    let intersect = |mut a: usize, mut b: usize, ipdom: &[usize], order_of: &[usize]| {
        while a != b {
            while order_of[a] > order_of[b] {
                a = ipdom[a];
            }
            while order_of[b] > order_of[a] {
                b = ipdom[b];
            }
        }
        a
    };
    // Forward preds in the reversed graph = forward succs + virtual edges.
    let mut rpreds: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
    for (node, ss) in succs.iter().enumerate() {
        for s in ss {
            rpreds[*s].push(node);
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for &b in post.iter().skip(1) {
            let mut new = usize::MAX;
            for &p in &rpreds[b] {
                if ipdom[p] != usize::MAX && order_of[p] != usize::MAX {
                    new = if new == usize::MAX {
                        p
                    } else {
                        intersect(p, new, &ipdom, &order_of)
                    };
                }
            }
            if new != usize::MAX && ipdom[b] != new {
                ipdom[b] = new;
                changed = true;
            }
        }
    }
    (0..n)
        .map(|b| {
            let p = ipdom[b];
            if p == usize::MAX || p == n {
                None
            } else {
                Some(p)
            }
        })
        .collect()
}

/// Back edges `(latch, header)` where the header dominates the latch.
pub fn back_edges(cfg: &Cfg, idom: &[usize]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (i, b) in cfg.blocks.iter().enumerate() {
        for &s in &b.succs {
            if dominates(idom, s, i) {
                out.push((i, s));
            }
        }
    }
    out
}

/// The natural loop of a back edge: header plus all blocks that reach the
/// latch without passing through the header.
pub fn natural_loop(cfg: &Cfg, latch: usize, header: usize) -> BTreeSet<usize> {
    let preds = cfg.preds();
    let mut set = BTreeSet::new();
    set.insert(header);
    let mut stack = vec![latch];
    while let Some(b) = stack.pop() {
        if set.insert(b) {
            for &p in &preds[b] {
                stack.push(p);
            }
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use asteria_compiler::{compile_program, decode_function, Arch};
    use asteria_lang::parse;

    fn cfg_of(src: &str, arch: Arch) -> Cfg {
        let p = parse(src).unwrap();
        let b = compile_program(&p, arch).unwrap();
        let idx = b.function_indices()[0];
        let insts = decode_function(&b.symbols[idx].code, arch).unwrap();
        build_cfg(&insts)
    }

    #[test]
    fn straightline_is_single_block() {
        let cfg = cfg_of("int f(int a) { return a + 1; }", Arch::X86);
        assert_eq!(cfg.blocks.len(), 1);
        assert_eq!(cfg.blocks[0].term, TermKind::Ret);
    }

    #[test]
    fn diamond_has_cond_block() {
        let cfg = cfg_of(
            "int f(int a) { if (a > 0) { return ext(a); } else { return ext2(a); } }",
            Arch::X86,
        );
        assert!(cfg.blocks.iter().any(|b| b.term == TermKind::Cond));
        let conds: Vec<_> = cfg
            .blocks
            .iter()
            .filter(|b| b.term == TermKind::Cond)
            .collect();
        assert_eq!(conds[0].succs.len(), 2);
    }

    #[test]
    fn loop_has_back_edge() {
        let cfg = cfg_of(
            "int f(int n) { int s = 0; while (n > 0) { s += n; n--; } return s; }",
            Arch::Ppc,
        );
        let idom = dominators(&cfg);
        let be = back_edges(&cfg, &idom);
        assert_eq!(be.len(), 1, "expected exactly one back edge: {be:?}");
        let (latch, header) = be[0];
        let l = natural_loop(&cfg, latch, header);
        assert!(l.len() >= 2);
        assert!(l.contains(&header) && l.contains(&latch));
    }

    #[test]
    fn dominators_of_diamond() {
        let cfg = cfg_of(
            "int g = 0; int f(int a) { if (a > 0) { g = 1; } else { g = 2; } return g; }",
            Arch::X64,
        );
        let idom = dominators(&cfg);
        // Entry dominates everything.
        for b in 0..cfg.blocks.len() {
            assert!(dominates(&idom, 0, b), "entry must dominate block {b}");
        }
    }

    #[test]
    fn postdominator_of_diamond_is_join() {
        let cfg = cfg_of(
            "int g = 0; int f(int a) { if (a > 0) { g = 1; } else { g = 2; } return g; }",
            Arch::X64,
        );
        let cond = cfg
            .blocks
            .iter()
            .position(|b| b.term == TermKind::Cond)
            .expect("cond block");
        let ipdom = postdominators(&cfg);
        let j = ipdom[cond].expect("cond must have a postdominator");
        // Both arms flow into j.
        let preds = cfg.preds();
        assert!(
            preds[j].len() >= 2,
            "join {j} should have 2+ preds: {preds:?}"
        );
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let cfg = cfg_of(
            "int f(int n) { int s = 0; for (int i = 0; i < n; i++) { if (i % 2) { s += i; } } \
             return s; }",
            Arch::Arm,
        );
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo[0], 0);
        assert_eq!(rpo.len(), cfg.blocks.len());
    }
}
