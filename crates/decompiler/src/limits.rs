//! Resource budgets for decompilation.
//!
//! The paper's large-scale evaluation (5,979 raw firmware images, §V)
//! means the decompiler will meet functions it cannot reasonably lift:
//! corrupt code sections, adversarial inputs, or pathological instruction
//! sequences whose symbolic evaluation blows up exponentially. A
//! [`DecompileLimits`] budget bounds each pipeline stage — decoding,
//! CFG recovery, lifting, structuring — so such functions terminate with
//! a typed [`BudgetExceeded`](crate::DecompileError::BudgetExceeded)
//! error instead of hanging or exhausting memory, and the corpus-level
//! driver can skip them and move on.

use std::fmt;

/// Which budget a function exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BudgetKind {
    /// Too many decoded machine instructions.
    Instructions,
    /// Too many basic blocks in the recovered CFG.
    BasicBlocks,
    /// Too many AST nodes materialized during lifting (this is the guard
    /// against exponential symbolic-expression growth).
    AstNodes,
    /// Too many structuring iterations.
    StructureIters,
}

impl BudgetKind {
    /// All kinds, in declaration order — used to pre-register metric
    /// series so exposition files always carry every kind, even at zero.
    pub const ALL: [BudgetKind; 4] = [
        BudgetKind::Instructions,
        BudgetKind::BasicBlocks,
        BudgetKind::AstNodes,
        BudgetKind::StructureIters,
    ];

    /// Stable `snake_case` label for metric series
    /// (`asteria_budget_exceeded_total{kind="..."}`).
    pub fn label(&self) -> &'static str {
        match self {
            BudgetKind::Instructions => "instructions",
            BudgetKind::BasicBlocks => "basic_blocks",
            BudgetKind::AstNodes => "ast_nodes",
            BudgetKind::StructureIters => "structure_iters",
        }
    }
}

impl fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            BudgetKind::Instructions => "instructions",
            BudgetKind::BasicBlocks => "basic blocks",
            BudgetKind::AstNodes => "AST nodes",
            BudgetKind::StructureIters => "structuring iterations",
        };
        f.write_str(name)
    }
}

/// Per-function resource budget threaded through the decompiler pipeline.
///
/// The [`Default`] limits are far above anything the workspace's own code
/// generator emits, so they only fire on corrupt or adversarial input;
/// [`DecompileLimits::unbounded`] disables every check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecompileLimits {
    /// Maximum decoded instructions per function.
    pub max_instructions: usize,
    /// Maximum basic blocks per function CFG.
    pub max_basic_blocks: usize,
    /// Maximum AST nodes materialized while lifting one function. Both the
    /// running total across statements and every individual symbolic
    /// register expression are held under this bound, so a register that
    /// doubles its expression each instruction errors out after ~log2(max)
    /// steps instead of allocating gigabytes.
    pub max_ast_nodes: usize,
    /// Maximum structurer region-walk iterations per function.
    pub max_structure_iters: usize,
}

impl Default for DecompileLimits {
    fn default() -> Self {
        DecompileLimits {
            max_instructions: 1 << 20,
            max_basic_blocks: 1 << 16,
            max_ast_nodes: 1 << 22,
            max_structure_iters: 1 << 20,
        }
    }
}

impl DecompileLimits {
    /// A budget that never fires.
    pub fn unbounded() -> Self {
        DecompileLimits {
            max_instructions: usize::MAX,
            max_basic_blocks: usize::MAX,
            max_ast_nodes: usize::MAX,
            max_structure_iters: usize::MAX,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_generous() {
        let l = DecompileLimits::default();
        assert!(l.max_instructions >= 1 << 16);
        assert!(l.max_basic_blocks >= 1 << 12);
        assert!(l.max_ast_nodes >= 1 << 20);
        assert!(l.max_structure_iters >= 1 << 16);
    }

    #[test]
    fn kinds_display_distinctly() {
        let kinds = [
            BudgetKind::Instructions,
            BudgetKind::BasicBlocks,
            BudgetKind::AstNodes,
            BudgetKind::StructureIters,
        ];
        let names: Vec<String> = kinds.iter().map(|k| k.to_string()).collect();
        for (i, a) in names.iter().enumerate() {
            for b in &names[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
