//! The line-delimited JSON wire protocol.
//!
//! One request per line, one response per line. Every request carries a
//! caller-chosen `id` (any JSON value) that the matching response echoes
//! verbatim — responses may arrive out of request order (batching and
//! control-op fast paths reorder them), so `id` is the correlation key.
//!
//! Requests:
//!
//! ```text
//! {"id":1,"op":"query","source":"int f(...)","function":"f","arch":"arm","top_k":10,"deadline_ms":500}
//! {"id":2,"op":"ping"}
//! {"id":3,"op":"stats"}
//! {"id":4,"op":"shutdown"}
//! ```
//!
//! Responses: `{"id":…,"ok":true,"result":{…}}` on success,
//! `{"id":…,"ok":false,"error":{"kind":"…","message":"…"}}` on failure,
//! with [`ErrorKind`] as the closed set of `kind` strings.

use asteria_compiler::Arch;
use asteria_vulnsearch::{FunctionQuery, QueryError, QueryOutcome, SearchIndex};

use crate::json::{self, Json};

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answered inline.
    Ping,
    /// Server statistics; answered inline.
    Stats,
    /// Graceful shutdown: drain in-flight requests, then stop.
    Shutdown,
    /// A similarity query; enqueued for batching.
    Query(QueryRequest),
}

/// The query payload of a [`Request::Query`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// The query itself (label = the request id's rendering).
    pub query: FunctionQuery,
    /// Relative deadline in milliseconds from arrival; `None` uses the
    /// server default. `Some(0)` is already expired on arrival.
    pub deadline_ms: Option<u64>,
}

/// Typed error kinds of the wire protocol — the closed set of `kind`
/// strings a client can match on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The line was not a valid request (bad JSON, missing fields,
    /// unknown op or arch).
    Malformed,
    /// The line exceeded the server's `max_request_bytes`.
    Oversized,
    /// The bounded request queue was full — backpressure, retry later.
    Overloaded,
    /// The request's deadline passed before processing finished.
    DeadlineExceeded,
    /// The query failed to encode (parse/compile/resolve/extract).
    Query,
    /// The server is draining and no longer accepts new requests.
    ShuttingDown,
}

impl ErrorKind {
    /// The wire string for this kind.
    pub fn wire(self) -> &'static str {
        match self {
            ErrorKind::Malformed => "malformed",
            ErrorKind::Oversized => "oversized",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::DeadlineExceeded => "deadline_exceeded",
            ErrorKind::Query => "query",
            ErrorKind::ShuttingDown => "shutting_down",
        }
    }
}

/// Why a request line failed to parse as a [`Request`].
#[derive(Debug, Clone, PartialEq)]
pub struct ParseFailure {
    /// The echoable request id, when one could be recovered from the
    /// broken line (`Json::Null` otherwise).
    pub id: Json,
    /// Human-readable reason.
    pub message: String,
}

/// Parses one request line.
///
/// # Errors
///
/// A [`ParseFailure`] carrying whatever `id` could still be recovered,
/// so the error response remains correlatable when only part of the
/// request was broken.
pub fn parse_request(line: &str) -> Result<(Json, Request), ParseFailure> {
    let fail_null = |message: String| ParseFailure {
        id: Json::Null,
        message,
    };
    let value = json::parse(line).map_err(|e| fail_null(e.to_string()))?;
    if !matches!(value, Json::Object(_)) {
        return Err(fail_null("request must be a JSON object".into()));
    }
    let id = value.get("id").cloned().unwrap_or(Json::Null);
    let fail = |message: &str| ParseFailure {
        id: id.clone(),
        message: message.into(),
    };
    let op = value
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| fail("missing or non-string \"op\""))?;
    let request = match op {
        "ping" => Request::Ping,
        "stats" => Request::Stats,
        "shutdown" => Request::Shutdown,
        "query" => {
            let source = value
                .get("source")
                .and_then(Json::as_str)
                .ok_or_else(|| fail("query needs a string \"source\""))?;
            let function = value
                .get("function")
                .and_then(Json::as_str)
                .ok_or_else(|| fail("query needs a string \"function\""))?;
            let arch = match value.get("arch") {
                None => Arch::X86,
                Some(v) => {
                    let name = v
                        .as_str()
                        .ok_or_else(|| fail("\"arch\" must be a string"))?;
                    Arch::ALL
                        .into_iter()
                        .find(|a| a.name() == name)
                        .ok_or_else(|| fail("unknown \"arch\" (x86|x64|arm|ppc)"))?
                }
            };
            let top_k = match value.get("top_k") {
                None => asteria_vulnsearch::DEFAULT_TOP_K,
                Some(v) => v
                    .as_u64()
                    .ok_or_else(|| fail("\"top_k\" must be a non-negative integer"))?
                    as usize,
            };
            let deadline_ms = match value.get("deadline_ms") {
                None => None,
                Some(v) => Some(
                    v.as_u64()
                        .ok_or_else(|| fail("\"deadline_ms\" must be a non-negative integer"))?,
                ),
            };
            let query = FunctionQuery::new(id.render(), source, function, arch).top_k(top_k);
            Request::Query(QueryRequest { query, deadline_ms })
        }
        _ => return Err(fail("unknown \"op\" (query|ping|stats|shutdown)")),
    };
    Ok((id, request))
}

/// Renders a success response line (no trailing newline).
pub fn ok_response(id: &Json, result: Json) -> String {
    Json::Object(vec![
        ("id".into(), id.clone()),
        ("ok".into(), Json::Bool(true)),
        ("result".into(), result),
    ])
    .render()
}

/// Renders an error response line (no trailing newline).
pub fn error_response(id: &Json, kind: ErrorKind, message: &str) -> String {
    Json::Object(vec![
        ("id".into(), id.clone()),
        ("ok".into(), Json::Bool(false)),
        (
            "error".into(),
            Json::Object(vec![
                ("kind".into(), Json::from(kind.wire())),
                ("message".into(), Json::from(message)),
            ]),
        ),
    ])
    .render()
}

/// Renders a [`QueryOutcome`] as the `result` payload, resolving hit
/// indices against the index the session ranked (name + corpus position
/// travel with each score).
pub fn render_outcome(outcome: &QueryOutcome, index: &SearchIndex) -> Json {
    let hits: Vec<Json> = outcome
        .hits
        .iter()
        .map(|h| {
            let f = &index.functions[h.function];
            Json::Object(vec![
                ("function".into(), Json::from(f.name.as_str())),
                ("image".into(), Json::from(f.image)),
                ("binary".into(), Json::from(f.binary)),
                ("index".into(), Json::from(h.function)),
                ("score".into(), Json::Number(h.score)),
            ])
        })
        .collect();
    Json::Object(vec![
        ("hits".into(), Json::Array(hits)),
        ("total_ranked".into(), Json::from(outcome.total_ranked)),
    ])
}

/// Renders a [`QueryError`] as an error response line.
pub fn query_error_response(id: &Json, error: &QueryError) -> String {
    error_response(id, ErrorKind::Query, &error.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_query_request() {
        let (id, req) = parse_request(
            r#"{"id":7,"op":"query","source":"int f() { return 1; }","function":"f","arch":"arm","top_k":3,"deadline_ms":250}"#,
        )
        .expect("parses");
        assert_eq!(id, Json::Number(7.0));
        let Request::Query(q) = req else {
            panic!("expected query")
        };
        assert_eq!(q.query.function, "f");
        assert_eq!(q.query.arch, Arch::Arm);
        assert_eq!(q.query.top_k, 3);
        assert_eq!(q.deadline_ms, Some(250));
    }

    #[test]
    fn defaults_arch_and_top_k() {
        let (_, req) = parse_request(r#"{"id":"a","op":"query","source":"s","function":"f"}"#)
            .expect("parses");
        let Request::Query(q) = req else {
            panic!("expected query")
        };
        assert_eq!(q.query.arch, Arch::X86);
        assert_eq!(q.query.top_k, asteria_vulnsearch::DEFAULT_TOP_K);
        assert_eq!(q.deadline_ms, None);
    }

    #[test]
    fn control_ops_parse() {
        for (op, want) in [
            ("ping", Request::Ping),
            ("stats", Request::Stats),
            ("shutdown", Request::Shutdown),
        ] {
            let (_, req) = parse_request(&format!(r#"{{"id":1,"op":"{op}"}}"#)).expect("parses");
            assert_eq!(req, want);
        }
    }

    #[test]
    fn malformed_requests_keep_a_recoverable_id() {
        // Valid JSON, bad request: the id survives into the failure.
        let err = parse_request(r#"{"id":42,"op":"nope"}"#).expect_err("unknown op");
        assert_eq!(err.id, Json::Number(42.0));
        let err = parse_request(r#"{"id":42,"op":"query"}"#).expect_err("missing source");
        assert_eq!(err.id, Json::Number(42.0));
        // Broken JSON: no id to recover.
        let err = parse_request("not json at all").expect_err("bad json");
        assert_eq!(err.id, Json::Null);
    }

    #[test]
    fn responses_have_the_documented_shape() {
        let ok = ok_response(&Json::Number(1.0), Json::Object(vec![]));
        assert_eq!(ok, r#"{"id":1,"ok":true,"result":{}}"#);
        let err = error_response(&Json::Null, ErrorKind::Overloaded, "queue full");
        assert_eq!(
            err,
            r#"{"id":null,"ok":false,"error":{"kind":"overloaded","message":"queue full"}}"#
        );
    }
}
