//! A minimal, total JSON reader/writer for the line protocol.
//!
//! The serve crate is std-only by design (mirroring `asteria-obs`), so
//! it carries its own JSON support instead of a serde dependency. The
//! subset is exactly what the wire protocol needs: the full JSON data
//! model, a depth-limited recursive parser that is total on arbitrary
//! bytes (fault-injection feeds it garbage), and a writer whose `f64`
//! formatting uses Rust's shortest-roundtrip `Display` — a score printed
//! here and parsed back yields the identical bits, which is what makes
//! "server responses are bit-identical to library calls" testable over
//! the wire.

use std::fmt;

/// Maximum nesting depth the parser accepts. The protocol needs 4; the
/// cap exists so corrupted input cannot trigger unbounded recursion.
const MAX_DEPTH: usize = 32;

/// A JSON value. Objects preserve insertion order so output is
/// deterministic (and diffs are stable).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if this is a
    /// number that holds one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serializes to compact JSON text (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Number(n) => write_number(*n, out),
            Json::String(s) => write_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::String(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::String(s)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Number(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Number(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Number(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

/// JSON `f64` output: `null` for non-finite values (JSON has no NaN/∞),
/// Rust's shortest-roundtrip `Display` otherwise.
fn write_number(n: f64, out: &mut String) {
    if n.is_finite() {
        out.push_str(&n.to_string());
    } else {
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus what was expected there.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub what: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.what)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
///
/// # Errors
///
/// A [`JsonError`] with the byte offset of the first problem. The parser
/// is total: no input can panic it or recurse past [`MAX_DEPTH`].
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        input,
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            what,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') if self.eat("null") => Ok(Json::Null),
            Some(b't') if self.eat("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat("false") => Ok(Json::Bool(false)),
            Some(b'"') => self.string().map(Json::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // '{'
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected a key string"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':'"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Advance one full UTF-8 character (the input is a
                    // &str, so boundaries are always valid).
                    let rest = &self.input[self.pos..];
                    let c = rest.chars().next().ok_or_else(|| self.err("bad utf-8"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (cursor is on the first one);
    /// combines surrogate pairs; rejects lone surrogates.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require an immediately following \uXXXX low
            // surrogate.
            if !self.eat("\\u") {
                return Err(self.err("lone surrogate"));
            }
            let lo = self.hex4()?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err(self.err("invalid surrogate pair"));
            }
            let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            return char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"));
        }
        if (0xDC00..0xE000).contains(&hi) {
            return Err(self.err("lone surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = &self.input[start..self.pos];
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_the_protocol_shapes() {
        let src = r#"{"id":1,"op":"query","source":"int f() { return 1; }","top_k":10,"nested":[{"a":null},true,-1.5e3]}"#;
        let v = parse(src).expect("parses");
        assert_eq!(v.get("op").and_then(Json::as_str), Some("query"));
        assert_eq!(v.get("top_k").and_then(Json::as_u64), Some(10));
        let re = parse(&v.render()).expect("render reparses");
        assert_eq!(v, re);
    }

    #[test]
    fn f64_scores_roundtrip_bit_exact() {
        for bits in [
            0x3FE5_5555_5555_5555u64, // ~0.666…
            0x3FEF_FFFF_FFFF_FFFF,    // just under 1.0
            0x0000_0000_0000_0001,    // smallest subnormal
            0x3FF0_0000_0000_0000,    // 1.0
        ] {
            let score = f64::from_bits(bits);
            let rendered = Json::Number(score).render();
            let back = parse(&rendered).expect("parses").as_f64().expect("number");
            assert_eq!(back.to_bits(), bits, "{rendered}");
        }
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line\nquote\"slash\\tab\tunicode\u{1F600}ctrl\u{1}";
        let rendered = Json::String(s.into()).render();
        assert_eq!(parse(&rendered).expect("parses").as_str(), Some(s));
    }

    #[test]
    fn surrogate_pairs_parse_and_lone_surrogates_fail() {
        assert_eq!(
            parse(r#""\ud83d\ude00""#).expect("pair").as_str(),
            Some("\u{1F600}")
        );
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\ude00""#).is_err());
    }

    #[test]
    fn depth_limit_is_enforced_not_overflowed() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        let err = parse(&deep).expect_err("too deep");
        assert_eq!(err.what, "nesting too deep");
    }

    #[test]
    fn garbage_inputs_error_instead_of_panicking() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\":}",
            "nul",
            "truex",
            "1.2.3",
            "\"\\q\"",
            "\u{7f}",
            "{\"a\" 1}",
            "[1 2]",
            "--1",
            "\"unterminated",
            "{\"k\":1,}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        assert_eq!(Json::Number(f64::NAN).render(), "null");
        assert_eq!(Json::Number(f64::INFINITY).render(), "null");
    }
}
