//! The bounded request queue: the server's backpressure point.
//!
//! Producers (connection readers) `try_push` and get an immediate
//! [`PushError::Full`] when the queue is at capacity — the server turns
//! that into a typed `overloaded` response instead of growing memory
//! without bound. The single batcher thread `pop_batch`es: it blocks for
//! the first item, then dwells up to `batch_wait` to let a batch fill,
//! and returns `None` only when the queue is closed **and** drained, so
//! graceful shutdown never drops an accepted request.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Why a push was rejected; the item comes back to the caller.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity (backpressure — reply `overloaded`).
    Full(T),
    /// The queue is closed (shutdown — reply `shutting_down`).
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A Mutex+Condvar bounded MPSC queue (multi-producer, single batcher).
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    nonempty: Condvar,
    capacity: usize,
}

/// A poisoned lock only means another thread panicked mid-operation; the
/// queue's state is still structurally sound, and the server must keep
/// draining rather than cascade the panic.
fn relock<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            nonempty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Current depth (for the queue-depth gauge).
    pub fn len(&self) -> usize {
        relock(self.inner.lock()).items.len()
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues without blocking; returns the new depth.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`BoundedQueue::close`] — the item is returned either way.
    pub fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut inner = relock(self.inner.lock());
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        drop(inner);
        self.nonempty.notify_one();
        Ok(depth)
    }

    /// Closes the queue: further pushes fail, and `pop_batch` returns
    /// `None` once the remaining items are drained.
    pub fn close(&self) {
        relock(self.inner.lock()).closed = true;
        self.nonempty.notify_all();
    }

    /// True once [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        relock(self.inner.lock()).closed
    }

    /// Takes the next batch: blocks until at least one item is queued,
    /// then dwells up to `dwell` (from the first pop) to let the batch
    /// fill toward `max`. Returns `None` only when the queue is closed
    /// and fully drained. A closed queue never dwells — shutdown drains
    /// at full speed.
    pub fn pop_batch(&self, max: usize, dwell: Duration) -> Option<Vec<T>> {
        let max = max.max(1);
        let mut inner = relock(self.inner.lock());
        loop {
            if !inner.items.is_empty() {
                break;
            }
            if inner.closed {
                return None;
            }
            inner = self
                .nonempty
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
        let mut batch = Vec::with_capacity(max.min(inner.items.len()));
        while batch.len() < max {
            match inner.items.pop_front() {
                Some(item) => batch.push(item),
                None => break,
            }
        }
        if batch.len() >= max || inner.closed || dwell.is_zero() {
            return Some(batch);
        }
        // Dwell: wait for stragglers so small bursts coalesce.
        let deadline = Instant::now() + dwell;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Some(batch);
            }
            let (guard, _timeout) = self
                .nonempty
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
            while batch.len() < max {
                match inner.items.pop_front() {
                    Some(item) => batch.push(item),
                    None => break,
                }
            }
            if batch.len() >= max || inner.closed {
                return Some(batch);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_preserves_fifo_order() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).expect("fits");
        }
        let batch = q.pop_batch(16, Duration::ZERO).expect("has items");
        assert_eq!(batch, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn full_queue_rejects_with_the_item() {
        let q = BoundedQueue::new(2);
        q.try_push(1).expect("fits");
        q.try_push(2).expect("fits");
        match q.try_push(3) {
            Err(PushError::Full(item)) => assert_eq!(item, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn closed_queue_rejects_pushes_but_drains_pops() {
        let q = BoundedQueue::new(4);
        q.try_push(1).expect("fits");
        q.try_push(2).expect("fits");
        q.close();
        match q.try_push(3) {
            Err(PushError::Closed(item)) => assert_eq!(item, 3),
            other => panic!("expected Closed, got {other:?}"),
        }
        // Drain continues after close; batches never dwell.
        assert_eq!(q.pop_batch(1, Duration::from_secs(60)), Some(vec![1]));
        assert_eq!(q.pop_batch(4, Duration::from_secs(60)), Some(vec![2]));
        assert_eq!(q.pop_batch(4, Duration::ZERO), None);
    }

    #[test]
    fn pop_blocks_until_an_item_arrives() {
        let q = Arc::new(BoundedQueue::new(4));
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                q.try_push(42).expect("fits");
            })
        };
        let batch = q.pop_batch(4, Duration::ZERO).expect("item arrives");
        assert_eq!(batch, vec![42]);
        producer.join().expect("producer");
    }

    #[test]
    fn dwell_coalesces_stragglers_into_one_batch() {
        let q = Arc::new(BoundedQueue::new(16));
        q.try_push(1).expect("fits");
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                q.try_push(2).expect("fits");
            })
        };
        let batch = q
            .pop_batch(16, Duration::from_millis(500))
            .expect("has items");
        producer.join().expect("producer");
        assert_eq!(batch, vec![1, 2], "straggler joined the batch");
    }

    #[test]
    fn batch_full_returns_without_dwelling() {
        let q = BoundedQueue::new(16);
        for i in 0..4 {
            q.try_push(i).expect("fits");
        }
        let t0 = Instant::now();
        let batch = q.pop_batch(4, Duration::from_secs(60)).expect("has items");
        assert_eq!(batch.len(), 4);
        assert!(t0.elapsed() < Duration::from_secs(10), "must not dwell");
    }

    #[test]
    fn close_wakes_blocked_poppers() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let popper = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop_batch(4, Duration::ZERO))
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(popper.join().expect("popper"), None);
    }
}
