//! `asteria-serve` — the online similarity-query server.
//!
//! A long-running daemon that loads the model and the search index
//! **once** (into an [`SearchSession`]) and then answers a stream of
//! queries over a line-delimited JSON protocol — the deployment shape of
//! real BCSD services, where per-query process startup (model restore +
//! index build) would dwarf the query itself.
//!
//! Std-only by design, like `asteria-obs`: the protocol ([`proto`]),
//! its JSON support ([`json`]), the bounded backpressure queue
//! ([`queue`]), and the SIGINT/SIGTERM shim ([`signal`]) are all in this
//! crate.
//!
//! # Architecture
//!
//! ```text
//! TCP clients ──► per-conn reader ──try_push──► BoundedQueue ──► batcher ──► SearchSession::query_batch
//!                     │                  (full → overloaded)        │
//!                     └◄── per-conn writer ◄── mpsc<String> ◄───────┘
//! ```
//!
//! - **Batching**: the single batcher thread pops up to
//!   [`ServeConfig::batch_size`] requests, dwelling up to
//!   [`ServeConfig::batch_wait_ms`] so bursts coalesce, and answers them
//!   with one [`SearchSession::query_batch`] call (which deduplicates
//!   identical in-flight queries — the hot-query win).
//! - **Backpressure**: the queue is bounded; a full queue yields an
//!   immediate typed `overloaded` error instead of unbounded growth.
//! - **Deadlines**: each request may carry `deadline_ms`; requests whose
//!   deadline passed while queued get `deadline_exceeded` instead of
//!   burning encode time.
//! - **Graceful shutdown**: SIGTERM/ctrl-c (or the `shutdown` op, or
//!   stdio EOF) stops intake, drains every accepted request, flushes
//!   every response, then returns — zero lost responses.
//! - **Determinism**: responses are bit-identical to direct
//!   [`SearchSession`] calls; scores travel as shortest-roundtrip JSON
//!   numbers, so parsing them back yields the exact bits.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod proto;
pub mod queue;
pub mod signal;

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use asteria_vulnsearch::{FunctionQuery, SearchSession};

use json::Json;
use proto::{ErrorKind, ParseFailure, Request};
use queue::{BoundedQueue, PushError};

/// Histogram buckets for the per-batch size distribution.
const BATCH_SIZE_BUCKETS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];

/// How often blocked reads/accepts wake up to poll the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Server tunables. `Default` gives the production settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Maximum queries answered by one `query_batch` call.
    pub batch_size: usize,
    /// How long the batcher dwells (ms) after the first query of a batch
    /// to let the batch fill. `0` disables batching delay.
    pub batch_wait_ms: u64,
    /// Bound of the request queue — the backpressure point.
    pub queue_capacity: usize,
    /// Default relative deadline (ms) for requests that carry none;
    /// `0` means no default deadline.
    pub default_deadline_ms: u64,
    /// Maximum accepted request-line length in bytes; longer lines get a
    /// typed `oversized` error and are discarded without buffering.
    pub max_request_bytes: usize,
    /// Artificial processing delay per batch (ms) — a test/bench knob
    /// that makes queue saturation and drain behavior reproducible.
    /// Always `0` in production use.
    pub process_delay_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            batch_size: 16,
            batch_wait_ms: 5,
            queue_capacity: 256,
            default_deadline_ms: 0,
            max_request_bytes: 1 << 20,
            process_delay_ms: 0,
        }
    }
}

/// Final tallies of a server's lifetime, by response outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Successful query responses.
    pub ok: u64,
    /// Typed `query` errors (the query source failed to encode).
    pub query_errors: u64,
    /// Malformed request lines.
    pub malformed: u64,
    /// Request lines over `max_request_bytes`.
    pub oversized: u64,
    /// Requests rejected by backpressure.
    pub overloaded: u64,
    /// Requests whose deadline passed while queued.
    pub deadline_exceeded: u64,
    /// Requests rejected because the server was draining.
    pub shutting_down: u64,
}

impl ServeStats {
    /// Total responses sent (every accepted request gets exactly one).
    pub fn total(&self) -> u64 {
        self.ok
            + self.query_errors
            + self.malformed
            + self.oversized
            + self.overloaded
            + self.deadline_exceeded
            + self.shutting_down
    }
}

/// One enqueued query awaiting the batcher.
struct Pending {
    id: Json,
    query: FunctionQuery,
    deadline: Option<Instant>,
    enqueued: Instant,
    reply: mpsc::Sender<String>,
}

/// State shared by the accept loop, connection threads, and the batcher.
struct Shared {
    session: Arc<SearchSession>,
    config: ServeConfig,
    queue: BoundedQueue<Pending>,
    stopping: AtomicBool,
    ok: AtomicU64,
    query_errors: AtomicU64,
    malformed: AtomicU64,
    oversized: AtomicU64,
    overloaded: AtomicU64,
    deadline_exceeded: AtomicU64,
    shutting_down: AtomicU64,
}

impl Shared {
    fn new(session: Arc<SearchSession>, config: ServeConfig) -> Shared {
        Shared {
            queue: BoundedQueue::new(config.queue_capacity),
            session,
            config,
            stopping: AtomicBool::new(false),
            ok: AtomicU64::new(0),
            query_errors: AtomicU64::new(0),
            malformed: AtomicU64::new(0),
            oversized: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            shutting_down: AtomicU64::new(0),
        }
    }

    /// True when this server (or the process, via signal) is draining.
    fn is_stopping(&self) -> bool {
        self.stopping.load(Ordering::SeqCst) || signal::shutdown_requested()
    }

    /// Stops intake: new requests are refused, the queue drains.
    fn begin_shutdown(&self) {
        self.stopping.store(true, Ordering::SeqCst);
        self.queue.close();
    }

    fn stats(&self) -> ServeStats {
        ServeStats {
            ok: self.ok.load(Ordering::SeqCst),
            query_errors: self.query_errors.load(Ordering::SeqCst),
            malformed: self.malformed.load(Ordering::SeqCst),
            oversized: self.oversized.load(Ordering::SeqCst),
            overloaded: self.overloaded.load(Ordering::SeqCst),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::SeqCst),
            shutting_down: self.shutting_down.load(Ordering::SeqCst),
        }
    }

    /// Counts one response by outcome, in both the obs counter and the
    /// final stats.
    fn record(&self, outcome: &'static str) {
        let cell = match outcome {
            "ok" => &self.ok,
            "query" => &self.query_errors,
            "malformed" => &self.malformed,
            "oversized" => &self.oversized,
            "overloaded" => &self.overloaded,
            "deadline_exceeded" => &self.deadline_exceeded,
            _ => &self.shutting_down,
        };
        cell.fetch_add(1, Ordering::SeqCst);
        if asteria_obs::enabled() {
            asteria_obs::counter_add("asteria_serve_requests_total", &[("outcome", outcome)], 1);
        }
    }

    fn set_queue_gauge(&self, depth: usize) {
        if asteria_obs::enabled() {
            asteria_obs::gauge_set("asteria_serve_queue_depth", &[], depth as f64);
        }
    }
}

// ---------------------------------------------------------------------------
// Bounded line reader
// ---------------------------------------------------------------------------

/// What one read step produced.
enum LineEvent {
    /// A complete request line (newline stripped).
    Line(String),
    /// A line exceeded the byte cap; it was discarded without buffering.
    Oversized,
    /// The read timed out — poll the shutdown flag and retry.
    TimedOut,
    /// End of stream (any final unterminated line was already returned).
    Eof,
    /// The connection broke.
    Error,
}

/// Reads `\n`-delimited lines with a hard byte cap: an over-long line is
/// dropped as it streams in (never buffered whole) and reported once as
/// [`LineEvent::Oversized`] when its terminator arrives.
struct LineReader<R: Read> {
    inner: R,
    buf: Vec<u8>,
    max: usize,
    discarding: bool,
    eof: bool,
}

impl<R: Read> LineReader<R> {
    fn new(inner: R, max: usize) -> LineReader<R> {
        LineReader {
            inner,
            buf: Vec::new(),
            max: max.max(1),
            discarding: false,
            eof: false,
        }
    }

    fn next_event(&mut self) -> LineEvent {
        loop {
            // Serve a complete line out of the buffer first.
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=pos).collect();
                if self.discarding || line.len() - 1 > self.max {
                    self.discarding = false;
                    return LineEvent::Oversized;
                }
                let text = String::from_utf8_lossy(&line[..line.len() - 1]);
                return LineEvent::Line(text.trim_end_matches('\r').to_string());
            }
            if self.discarding {
                // Everything buffered belongs to the over-long line.
                self.buf.clear();
            } else if self.buf.len() > self.max {
                self.buf.clear();
                self.discarding = true;
            }
            if self.eof {
                if self.discarding {
                    self.discarding = false;
                    return LineEvent::Oversized;
                }
                if self.buf.is_empty() {
                    return LineEvent::Eof;
                }
                // Final unterminated line.
                let text = String::from_utf8_lossy(&self.buf).to_string();
                self.buf.clear();
                return LineEvent::Line(text);
            }
            let mut chunk = [0u8; 4096];
            match self.inner.read(&mut chunk) {
                Ok(0) => self.eof = true,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return LineEvent::TimedOut;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return LineEvent::Error,
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Request handling
// ---------------------------------------------------------------------------

/// Handles one request line: control ops answer inline, queries enqueue.
fn process_line(shared: &Shared, line: &str, reply: &mpsc::Sender<String>) {
    if line.trim().is_empty() {
        return;
    }
    let (id, request) = match proto::parse_request(line) {
        Ok(parsed) => parsed,
        Err(ParseFailure { id, message }) => {
            shared.record("malformed");
            let _ = reply.send(proto::error_response(&id, ErrorKind::Malformed, &message));
            return;
        }
    };
    match request {
        Request::Ping => {
            let _ = reply.send(proto::ok_response(
                &id,
                Json::Object(vec![("pong".into(), Json::Bool(true))]),
            ));
        }
        Request::Stats => {
            let stats = shared.stats();
            let _ = reply.send(proto::ok_response(
                &id,
                Json::Object(vec![
                    ("functions".into(), Json::from(shared.session.index().len())),
                    ("queue_depth".into(), Json::from(shared.queue.len())),
                    ("served".into(), Json::from(stats.total())),
                    ("ok".into(), Json::from(stats.ok)),
                ]),
            ));
        }
        Request::Shutdown => {
            let _ = reply.send(proto::ok_response(
                &id,
                Json::Object(vec![("stopping".into(), Json::Bool(true))]),
            ));
            shared.begin_shutdown();
        }
        Request::Query(qr) => {
            if shared.is_stopping() {
                shared.record("shutting_down");
                let _ = reply.send(proto::error_response(
                    &id,
                    ErrorKind::ShuttingDown,
                    "server is draining",
                ));
                return;
            }
            let now = Instant::now();
            let deadline_ms = qr.deadline_ms.unwrap_or(shared.config.default_deadline_ms);
            let deadline = match (qr.deadline_ms, shared.config.default_deadline_ms) {
                (None, 0) => None,
                _ => Some(now + Duration::from_millis(deadline_ms)),
            };
            let pending = Pending {
                id,
                query: qr.query,
                deadline,
                enqueued: now,
                reply: reply.clone(),
            };
            match shared.queue.try_push(pending) {
                Ok(depth) => shared.set_queue_gauge(depth),
                Err(PushError::Full(p)) => {
                    shared.record("overloaded");
                    let _ = p.reply.send(proto::error_response(
                        &p.id,
                        ErrorKind::Overloaded,
                        "request queue is full",
                    ));
                }
                Err(PushError::Closed(p)) => {
                    shared.record("shutting_down");
                    let _ = p.reply.send(proto::error_response(
                        &p.id,
                        ErrorKind::ShuttingDown,
                        "server is draining",
                    ));
                }
            }
        }
    }
}

/// The batcher: pops batches until the queue is closed **and** drained,
/// so every accepted request is answered even during shutdown.
fn run_batcher(shared: &Shared) {
    let dwell = Duration::from_millis(shared.config.batch_wait_ms);
    while let Some(batch) = shared.queue.pop_batch(shared.config.batch_size, dwell) {
        shared.set_queue_gauge(shared.queue.len());
        if shared.config.process_delay_ms > 0 {
            std::thread::sleep(Duration::from_millis(shared.config.process_delay_ms));
        }
        let mut span = asteria_obs::span("serve-batch");
        span.set_items(batch.len() as u64);
        // Expired deadlines answer immediately without encode cost. The
        // check uses `now >= deadline` so `deadline_ms: 0` expires
        // deterministically.
        let now = Instant::now();
        let (live, expired): (Vec<Pending>, Vec<Pending>) = batch
            .into_iter()
            .partition(|p| p.deadline.is_none_or(|d| now < d));
        for p in expired {
            shared.record("deadline_exceeded");
            let _ = p.reply.send(proto::error_response(
                &p.id,
                ErrorKind::DeadlineExceeded,
                "deadline passed while queued",
            ));
            if asteria_obs::enabled() {
                asteria_obs::observe_seconds(
                    "asteria_serve_request_seconds",
                    &[("outcome", "deadline_exceeded")],
                    p.enqueued.elapsed().as_secs_f64(),
                );
            }
        }
        if live.is_empty() {
            continue;
        }
        if asteria_obs::enabled() {
            asteria_obs::observe_with_buckets(
                "asteria_serve_batch_size",
                &[],
                live.len() as f64,
                BATCH_SIZE_BUCKETS,
            );
        }
        let queries: Vec<FunctionQuery> = live.iter().map(|p| p.query.clone()).collect();
        let answers = shared.session.query_batch(&queries);
        for (p, answer) in live.into_iter().zip(answers) {
            let (outcome, response) = match answer {
                Ok(result) => (
                    "ok",
                    proto::ok_response(
                        &p.id,
                        proto::render_outcome(&result, shared.session.index()),
                    ),
                ),
                Err(e) => ("query", proto::query_error_response(&p.id, &e)),
            };
            shared.record(outcome);
            let _ = p.reply.send(response);
            if asteria_obs::enabled() {
                asteria_obs::observe_seconds(
                    "asteria_serve_request_seconds",
                    &[("outcome", outcome)],
                    p.enqueued.elapsed().as_secs_f64(),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// TCP server
// ---------------------------------------------------------------------------

/// Handle to a running TCP server: address discovery plus shutdown/join.
pub struct ServerHandle {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Requests a graceful shutdown, drains in-flight requests, waits
    /// for every response to flush, and returns the final tallies.
    pub fn shutdown(mut self) -> ServeStats {
        self.shared.begin_shutdown();
        self.join()
    }

    /// Waits until the server stops on its own (signal or `shutdown`
    /// op), then returns the final tallies.
    pub fn wait(mut self) -> ServeStats {
        self.join()
    }

    fn join(&mut self) -> ServeStats {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
        self.shared.stats()
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shared.begin_shutdown();
        self.join();
    }
}

/// Starts the server on an already-bound listener. Returns immediately;
/// the returned handle joins everything on [`ServerHandle::shutdown`] /
/// [`ServerHandle::wait`] (or on drop).
///
/// # Errors
///
/// Only listener configuration (`set_nonblocking`, `local_addr`) can
/// fail here.
pub fn start_tcp(
    session: Arc<SearchSession>,
    config: ServeConfig,
    listener: TcpListener,
) -> io::Result<ServerHandle> {
    let local_addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let shared = Arc::new(Shared::new(session, config));

    let batcher = std::thread::spawn({
        let shared = Arc::clone(&shared);
        move || run_batcher(&shared)
    });

    let accept = std::thread::spawn({
        let shared = Arc::clone(&shared);
        move || {
            let mut conns: Vec<JoinHandle<()>> = Vec::new();
            loop {
                if shared.is_stopping() {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        if asteria_obs::enabled() {
                            asteria_obs::counter_add("asteria_serve_connections_total", &[], 1);
                        }
                        let shared = Arc::clone(&shared);
                        conns.push(std::thread::spawn(move || {
                            handle_connection(&shared, stream);
                        }));
                        // Opportunistically reap finished connections so
                        // a long-lived server does not accumulate
                        // JoinHandles.
                        conns.retain(|h| !h.is_finished());
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(POLL_INTERVAL);
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => break,
                }
            }
            // Drain: the queue is closed by whoever initiated shutdown;
            // wait for every connection to flush its responses.
            shared.begin_shutdown();
            for h in conns {
                let _ = h.join();
            }
        }
    });

    Ok(ServerHandle {
        local_addr,
        shared,
        accept: Some(accept),
        batcher: Some(batcher),
    })
}

/// One TCP connection: a polling reader (this thread) plus a writer
/// thread fed by an mpsc channel. The writer exits when every sender —
/// the reader and all of its in-flight [`Pending`] entries — is gone and
/// the channel is drained, which is exactly the zero-lost-responses
/// guarantee.
fn handle_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (tx, rx) = mpsc::channel::<String>();
    let writer = std::thread::spawn(move || {
        let mut out = io::BufWriter::new(write_half);
        for line in rx {
            if out.write_all(line.as_bytes()).is_err() || out.write_all(b"\n").is_err() {
                break;
            }
            let _ = out.flush();
        }
    });
    let mut reader = LineReader::new(stream, shared.config.max_request_bytes);
    loop {
        match reader.next_event() {
            LineEvent::Line(line) => process_line(shared, &line, &tx),
            LineEvent::Oversized => {
                shared.record("oversized");
                let _ = tx.send(proto::error_response(
                    &Json::Null,
                    ErrorKind::Oversized,
                    "request line exceeds max_request_bytes",
                ));
            }
            LineEvent::TimedOut => {
                if shared.is_stopping() {
                    break;
                }
            }
            LineEvent::Eof | LineEvent::Error => break,
        }
    }
    drop(tx);
    let _ = writer.join();
}

// ---------------------------------------------------------------------------
// Stdio server
// ---------------------------------------------------------------------------

/// Runs the server over an arbitrary byte stream pair (the `--stdio`
/// mode): same protocol, same batching queue, same drain guarantees as
/// TCP. Returns when the input reaches EOF or a shutdown is requested,
/// after every response has been written.
pub fn run_stdio<R: Read, W: Write + Send>(
    session: Arc<SearchSession>,
    config: ServeConfig,
    input: R,
    output: W,
) -> ServeStats {
    let shared = Shared::new(session, config);
    let (tx, rx) = mpsc::channel::<String>();
    std::thread::scope(|scope| {
        scope.spawn(|| run_batcher(&shared));
        scope.spawn(move || {
            let mut out = io::BufWriter::new(output);
            for line in rx {
                if out.write_all(line.as_bytes()).is_err() || out.write_all(b"\n").is_err() {
                    break;
                }
                let _ = out.flush();
            }
        });
        let mut reader = LineReader::new(input, shared.config.max_request_bytes);
        loop {
            if shared.is_stopping() {
                break;
            }
            match reader.next_event() {
                LineEvent::Line(line) => process_line(&shared, &line, &tx),
                LineEvent::Oversized => {
                    shared.record("oversized");
                    let _ = tx.send(proto::error_response(
                        &Json::Null,
                        ErrorKind::Oversized,
                        "request line exceeds max_request_bytes",
                    ));
                }
                LineEvent::TimedOut => {}
                LineEvent::Eof | LineEvent::Error => break,
            }
        }
        shared.begin_shutdown();
        drop(tx);
    });
    shared.stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use asteria_core::{AsteriaModel, ModelConfig};
    use asteria_vulnsearch::{
        build_firmware_corpus, vulnerability_library, FirmwareConfig, IndexBuilder,
    };

    fn test_session() -> Arc<SearchSession> {
        let model = AsteriaModel::new(ModelConfig {
            hidden_dim: 8,
            embed_dim: 6,
            ..Default::default()
        });
        let firmware = build_firmware_corpus(
            &FirmwareConfig {
                images: 2,
                ..Default::default()
            },
            &vulnerability_library(),
        );
        let index = IndexBuilder::new(&model)
            .threads(1)
            .build(&firmware)
            .expect("in-memory build")
            .index;
        Arc::new(SearchSession::new(model, index).threads(1))
    }

    fn query_line(id: u32, entry: &asteria_vulnsearch::CveEntry) -> String {
        Json::Object(vec![
            ("id".into(), Json::from(id as u64)),
            ("op".into(), Json::from("query")),
            (
                "source".into(),
                Json::from(entry.vulnerable_source.as_str()),
            ),
            ("function".into(), Json::from(entry.function)),
            ("arch".into(), Json::from("arm")),
            ("top_k".into(), Json::from(3u64)),
        ])
        .render()
    }

    #[test]
    fn stdio_roundtrip_answers_every_request() {
        let session = test_session();
        let lib = vulnerability_library();
        let mut input = String::new();
        input.push_str("{\"id\":0,\"op\":\"ping\"}\n");
        input.push_str(&query_line(1, &lib[0]));
        input.push('\n');
        input.push_str("this is not json\n");
        input.push_str(&query_line(2, &lib[1]));
        input.push('\n');
        let mut output = Vec::new();
        let stats = run_stdio(
            Arc::clone(&session),
            ServeConfig::default(),
            input.as_bytes(),
            &mut output,
        );
        assert_eq!(stats.ok, 2);
        assert_eq!(stats.malformed, 1);
        assert_eq!(stats.total(), 3);
        let text = String::from_utf8(output).expect("utf8");
        assert_eq!(text.lines().count(), 4, "{text}");
        // Every response parses and carries the documented shape.
        for line in text.lines() {
            let v = json::parse(line).expect("response parses");
            assert!(v.get("ok").is_some(), "{line}");
        }
    }

    #[test]
    fn stdio_query_matches_direct_session_call_bit_for_bit() {
        let session = test_session();
        let lib = vulnerability_library();
        let direct = session
            .query(
                &FunctionQuery::new(
                    "1",
                    lib[0].vulnerable_source.clone(),
                    lib[0].function,
                    asteria_compiler::Arch::Arm,
                )
                .top_k(3),
            )
            .expect("encodes");
        let input = format!("{}\n", query_line(1, &lib[0]));
        let mut output = Vec::new();
        run_stdio(
            Arc::clone(&session),
            ServeConfig::default(),
            input.as_bytes(),
            &mut output,
        );
        let text = String::from_utf8(output).expect("utf8");
        let v = json::parse(text.trim()).expect("parses");
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{text}");
        let hits = match v.get("result").and_then(|r| r.get("hits")) {
            Some(Json::Array(hits)) => hits,
            other => panic!("missing hits: {other:?}"),
        };
        assert_eq!(hits.len(), direct.hits.len());
        for (wire, want) in hits.iter().zip(&direct.hits) {
            let score = wire.get("score").and_then(Json::as_f64).expect("score");
            assert_eq!(score.to_bits(), want.score.to_bits(), "score bits");
            let idx = wire.get("index").and_then(Json::as_u64).expect("index");
            assert_eq!(idx as usize, want.function);
        }
    }

    #[test]
    fn zero_deadline_expires_deterministically() {
        let session = test_session();
        let lib = vulnerability_library();
        let input = format!(
            "{}\n",
            Json::Object(vec![
                ("id".into(), Json::from(9u64)),
                ("op".into(), Json::from("query")),
                (
                    "source".into(),
                    Json::from(lib[0].vulnerable_source.as_str())
                ),
                ("function".into(), Json::from(lib[0].function)),
                ("deadline_ms".into(), Json::from(0u64)),
            ])
            .render()
        );
        let mut output = Vec::new();
        let stats = run_stdio(
            Arc::clone(&session),
            ServeConfig::default(),
            input.as_bytes(),
            &mut output,
        );
        assert_eq!(stats.deadline_exceeded, 1);
        let text = String::from_utf8(output).expect("utf8");
        assert!(text.contains("\"deadline_exceeded\""), "{text}");
    }

    #[test]
    fn oversized_lines_get_a_typed_error_and_the_stream_recovers() {
        let session = test_session();
        let config = ServeConfig {
            max_request_bytes: 64,
            ..Default::default()
        };
        let long = "x".repeat(1000);
        let input = format!(
            "{{\"id\":1,\"op\":\"ping\",\"pad\":\"{long}\"}}\n{{\"id\":2,\"op\":\"ping\"}}\n"
        );
        let mut output = Vec::new();
        let stats = run_stdio(session, config, input.as_bytes(), &mut output);
        assert_eq!(stats.oversized, 1);
        let text = String::from_utf8(output).expect("utf8");
        assert!(text.contains("\"oversized\""), "{text}");
        assert!(
            text.contains("\"pong\""),
            "next request still served: {text}"
        );
    }

    #[test]
    fn shutdown_op_stops_the_stdio_server_and_refuses_late_queries() {
        let session = test_session();
        let lib = vulnerability_library();
        let mut input = String::new();
        input.push_str(&query_line(1, &lib[0]));
        input.push('\n');
        input.push_str("{\"id\":2,\"op\":\"shutdown\"}\n");
        input.push_str(&query_line(3, &lib[1]));
        input.push('\n');
        let mut output = Vec::new();
        let stats = run_stdio(
            session,
            ServeConfig::default(),
            input.as_bytes(),
            &mut output,
        );
        let text = String::from_utf8(output).expect("utf8");
        assert!(text.contains("\"stopping\""), "{text}");
        // The query accepted before the shutdown op still completed
        // (drain); the one after it was never read (the loop stopped) or
        // was refused with a typed error — never silently half-served.
        assert_eq!(stats.ok, 1, "{text}");
        // Responses: query 1's result, the shutdown ack, and optionally
        // a shutting_down refusal for query 3.
        let lines = text.lines().count();
        assert!(
            lines == 2 + stats.shutting_down as usize,
            "{lines} lines, {stats:?}: {text}"
        );
    }
}
