//! Graceful-shutdown signal handling without a signal crate.
//!
//! The workspace vendors no libc binding, so this module talks to the
//! already-linked C runtime directly: one `extern "C"` declaration of
//! POSIX `signal(2)` and a handler that does the only thing an
//! async-signal-safe handler may do here — store to an atomic. The
//! server's loops poll [`shutdown_requested`]; nothing else in the crate
//! (or the workspace) uses `unsafe`.
//!
//! On non-Unix targets installation is a no-op: shutdown is still
//! reachable through the `shutdown` protocol op, stdio EOF, and
//! [`request_shutdown`].

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// True once a shutdown was requested (signal, `shutdown` op, or
/// [`request_shutdown`]).
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Requests a graceful shutdown programmatically.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Clears the flag — the process-global flag would otherwise leak a
/// previous server's shutdown into the next one (tests start several
/// servers per process).
pub fn reset() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn handle(_signum: i32) {
        // Only async-signal-safe work is allowed here: one atomic store.
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        #[allow(unsafe_code)]
        // SAFETY: `signal` is the POSIX C function from the runtime this
        // binary is already linked against; `handle` is a valid
        // `extern "C" fn(i32)` for the whole program lifetime and does
        // nothing non-reentrant.
        unsafe {
            #[allow(non_camel_case_types)]
            type sighandler_t = extern "C" fn(i32);
            extern "C" {
                fn signal(signum: i32, handler: sighandler_t) -> usize;
            }
            signal(SIGINT, handle);
            signal(SIGTERM, handle);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs SIGINT/SIGTERM handlers that request a graceful shutdown
/// (Unix; a no-op elsewhere). Idempotent.
pub fn install_handlers() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_and_reset_roundtrip() {
        reset();
        assert!(!shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
        reset();
        assert!(!shutdown_requested());
    }

    #[cfg(unix)]
    #[test]
    fn installing_handlers_is_idempotent_and_harmless() {
        install_handlers();
        install_handlers();
    }
}
