//! Property-based tests: BigUint arithmetic against u128 reference
//! values, and factorization as the exact inverse of multiplication.

use proptest::prelude::*;

use asteria_bignum::{first_primes, BigUint};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// mul_u64 agrees with u128 arithmetic while values fit.
    #[test]
    fn mul_matches_u128(a in 0u64..u64::MAX, b in 0u64..=u64::MAX) {
        let mut big = BigUint::from_u64(a);
        big.mul_u64(b);
        let expect = a as u128 * b as u128;
        prop_assert_eq!(big.to_decimal(), expect.to_string());
    }

    /// divmod is the inverse of mul and matches u128 remainders.
    #[test]
    fn divmod_matches_u128(a in 1u64..u64::MAX, d in 1u64..100_000) {
        let mut big = BigUint::from_u64(a);
        big.mul_u64(7919); // force a second limb sometimes
        let expect_val = a as u128 * 7919;
        let rem = big.divmod_u64(d);
        prop_assert_eq!(rem as u128, expect_val % d as u128);
        prop_assert_eq!(big.to_decimal(), (expect_val / d as u128).to_string());
    }

    /// add_u64 carries correctly.
    #[test]
    fn add_matches_u128(a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
        let mut big = BigUint::from_u64(a);
        big.add_u64(b);
        prop_assert_eq!(big.to_decimal(), (a as u128 + b as u128).to_string());
    }

    /// Factoring a constructed prime product recovers the exact exponents.
    #[test]
    fn factorization_inverts_multiplication(exps in proptest::collection::vec(0u32..6, 8)) {
        let primes = first_primes(8);
        let mut n = BigUint::one();
        for (p, e) in primes.iter().zip(&exps) {
            for _ in 0..*e {
                n.mul_u64(*p);
            }
        }
        let (recovered, complete) = n.factor_over(&primes);
        prop_assert!(complete);
        prop_assert_eq!(recovered, exps);
    }

    /// Ordering agrees with decimal-string length + lexicographic order.
    #[test]
    fn ordering_is_consistent(a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
        let (ba, bb) = (BigUint::from_u64(a), BigUint::from_u64(b));
        prop_assert_eq!(ba.cmp(&bb), a.cmp(&b));
    }
}
