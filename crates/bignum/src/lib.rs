//! `asteria-bignum` — minimal arbitrary-precision unsigned integers.
//!
//! The Diaphora baseline hashes an AST as the *product of primes* assigned
//! to its node types; for realistic functions that product far exceeds
//! `u128`, and comparing two hashes requires factoring them back out. This
//! crate supplies exactly the operations that algorithm needs — and nothing
//! more — so the reproduction does not pull in an external bignum
//! dependency. The deliberate cost of long-division-based factorization is
//! also what reproduces Diaphora's slow online comparison in the paper's
//! Fig. 10(c).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer (little-endian 64-bit limbs).
///
/// # Examples
///
/// ```
/// use asteria_bignum::BigUint;
///
/// let mut n = BigUint::from_u64(1);
/// for p in [2u64, 3, 5, 7, 11] {
///     n.mul_u64(p);
/// }
/// assert_eq!(n.to_decimal(), "2310");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigUint {
    /// Little-endian limbs; no trailing zero limbs (canonical form).
    limbs: Vec<u64>,
}

impl BigUint {
    /// Zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// One.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Creates a big integer from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            BigUint::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// True when the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True when the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// Number of significant bits.
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => 64 * (self.limbs.len() - 1) + (64 - top.leading_zeros() as usize),
        }
    }

    /// Number of limbs (for size diagnostics).
    pub fn limb_count(&self) -> usize {
        self.limbs.len()
    }

    fn trim(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// In-place multiplication by a `u64`.
    pub fn mul_u64(&mut self, m: u64) {
        if m == 0 {
            self.limbs.clear();
            return;
        }
        if self.is_zero() {
            return;
        }
        let mut carry: u128 = 0;
        for limb in &mut self.limbs {
            let prod = *limb as u128 * m as u128 + carry;
            *limb = prod as u64;
            carry = prod >> 64;
        }
        if carry > 0 {
            self.limbs.push(carry as u64);
        }
    }

    /// In-place addition of a `u64`.
    pub fn add_u64(&mut self, a: u64) {
        let mut carry = a as u128;
        for limb in &mut self.limbs {
            if carry == 0 {
                return;
            }
            let sum = *limb as u128 + carry;
            *limb = sum as u64;
            carry = sum >> 64;
        }
        if carry > 0 {
            self.limbs.push(carry as u64);
        }
    }

    /// Divides in place by a `u64`, returning the remainder.
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero.
    pub fn divmod_u64(&mut self, d: u64) -> u64 {
        assert!(d != 0, "division by zero");
        let mut rem: u128 = 0;
        for limb in self.limbs.iter_mut().rev() {
            let cur = (rem << 64) | *limb as u128;
            *limb = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        self.trim();
        rem as u64
    }

    /// Remainder modulo a `u64` without modifying `self`.
    pub fn rem_u64(&self, d: u64) -> u64 {
        assert!(d != 0, "division by zero");
        let mut rem: u128 = 0;
        for limb in self.limbs.iter().rev() {
            rem = ((rem << 64) | *limb as u128) % d as u128;
        }
        rem as u64
    }

    /// True when `d` divides `self` exactly.
    pub fn divisible_by(&self, d: u64) -> bool {
        !self.is_zero() && self.rem_u64(d) == 0
    }

    /// Full multiplication with another big integer.
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry: u128 = 0;
            for (j, &b) in other.limbs.iter().enumerate() {
                let idx = i + j;
                let cur = out[idx] as u128 + a as u128 * b as u128 + carry;
                out[idx] = cur as u64;
                carry = cur >> 64;
            }
            let mut idx = i + other.limbs.len();
            while carry > 0 {
                let cur = out[idx] as u128 + carry;
                out[idx] = cur as u64;
                carry = cur >> 64;
                idx += 1;
            }
        }
        let mut r = BigUint { limbs: out };
        r.trim();
        r
    }

    /// Decimal rendering (slow; diagnostics and tests only).
    pub fn to_decimal(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut n = self.clone();
        let mut digits = Vec::new();
        while !n.is_zero() {
            digits.push(b'0' + n.divmod_u64(10) as u8);
        }
        digits.reverse();
        String::from_utf8(digits).expect("ascii digits")
    }

    /// Factors `self` over a known prime table, returning the exponent of
    /// each prime. Any residue that is not fully factored is reported via
    /// the second tuple element (true = fully factored).
    ///
    /// This is the (intentionally slow) operation behind Diaphora-style
    /// hash comparison.
    pub fn factor_over(&self, primes: &[u64]) -> (Vec<u32>, bool) {
        let mut exps = vec![0u32; primes.len()];
        if self.is_zero() {
            return (exps, false);
        }
        let mut n = self.clone();
        for (i, &p) in primes.iter().enumerate() {
            while n.divisible_by(p) {
                n.divmod_u64(p);
                exps[i] += 1;
            }
        }
        let complete = n.is_one();
        (exps, complete)
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint({} bits)", self.bits())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_decimal())
    }
}

/// The first `n` primes, by trial division (plenty fast for n ≤ 10⁴).
pub fn first_primes(n: usize) -> Vec<u64> {
    let mut primes: Vec<u64> = Vec::with_capacity(n);
    let mut candidate = 2u64;
    while primes.len() < n {
        if primes
            .iter()
            .take_while(|p| *p * *p <= candidate)
            .all(|p| !candidate.is_multiple_of(*p))
        {
            primes.push(candidate);
        }
        candidate += 1;
    }
    primes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_roundtrip() {
        assert_eq!(BigUint::from_u64(0).to_decimal(), "0");
        assert_eq!(BigUint::from_u64(123456789).to_decimal(), "123456789");
    }

    #[test]
    fn mul_grows_past_u64() {
        let mut n = BigUint::one();
        for _ in 0..5 {
            n.mul_u64(u64::MAX);
        }
        assert!(n.limb_count() >= 5);
        // (2^64 - 1)^5 mod 2 = 1
        assert_eq!(n.rem_u64(2), 1);
    }

    #[test]
    fn factorial_20_matches_known_value() {
        let mut n = BigUint::one();
        for i in 1..=20u64 {
            n.mul_u64(i);
        }
        assert_eq!(n.to_decimal(), "2432902008176640000");
    }

    #[test]
    fn factorial_30_is_correct() {
        let mut n = BigUint::one();
        for i in 1..=30u64 {
            n.mul_u64(i);
        }
        assert_eq!(n.to_decimal(), "265252859812191058636308480000000");
    }

    #[test]
    fn divmod_inverts_mul() {
        let mut n = BigUint::from_u64(987654321);
        for p in [97u64, 89, 83, 79, 73] {
            n.mul_u64(p);
        }
        for p in [97u64, 89, 83, 79, 73] {
            assert!(n.divisible_by(p));
            assert_eq!(n.divmod_u64(p), 0);
        }
        assert_eq!(n.to_decimal(), "987654321");
    }

    #[test]
    fn add_with_carry_chain() {
        let mut n = BigUint::from_u64(u64::MAX);
        n.add_u64(1);
        assert_eq!(n.limb_count(), 2);
        assert_eq!(n.to_decimal(), "18446744073709551616");
    }

    #[test]
    fn ordering() {
        let a = BigUint::from_u64(5);
        let mut b = BigUint::from_u64(5);
        b.mul_u64(u64::MAX);
        assert!(a < b);
        assert_eq!(a.cmp(&a.clone()), Ordering::Equal);
    }

    #[test]
    fn full_mul_matches_repeated_mul_u64() {
        let mut a = BigUint::from_u64(12345);
        a.mul_u64(67891);
        let b = BigUint::from_u64(12345).mul(&BigUint::from_u64(67891));
        assert_eq!(a, b);
    }

    #[test]
    fn factor_over_recovers_exponents() {
        let primes = [2u64, 3, 5, 7];
        let mut n = BigUint::one();
        for _ in 0..3 {
            n.mul_u64(2);
        }
        for _ in 0..2 {
            n.mul_u64(7);
        }
        n.mul_u64(5);
        let (exps, complete) = n.factor_over(&primes);
        assert!(complete);
        assert_eq!(exps, vec![3, 0, 1, 2]);
    }

    #[test]
    fn factor_over_reports_incomplete() {
        let n = BigUint::from_u64(2 * 3 * 11);
        let (exps, complete) = n.factor_over(&[2, 3]);
        assert!(!complete);
        assert_eq!(exps, vec![1, 1]);
    }

    #[test]
    fn first_primes_table() {
        let p = first_primes(10);
        assert_eq!(p, vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29]);
        assert_eq!(first_primes(50).len(), 50);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn divmod_zero_panics() {
        BigUint::from_u64(5).divmod_u64(0);
    }
}
