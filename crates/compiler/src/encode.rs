//! Per-architecture binary instruction encodings.
//!
//! Each ISA serializes the canonical [`MInst`] form differently, so the
//! disassembler genuinely has four decoders:
//!
//! - **x86**: variable-width, single opcode byte (`tag + 0x10`),
//!   little-endian immediates — instructions are 1–10 bytes;
//! - **x64**: variable-width with a `0x48` prefix byte and a shifted opcode
//!   page (`tag + 0x50`);
//! - **ARM**: fixed 8-byte words `[op, f1, f2, f3, imm32le]`;
//! - **PPC**: fixed 8-byte words with a scrambled opcode map, *reversed*
//!   register fields and a **big-endian** immediate.
//!
//! In the canonical form branch targets are instruction indices; encoded
//! instructions carry byte offsets. [`encode_function`] and
//! [`decode_function`] perform the translation in both directions.

use std::fmt;

use crate::isa::{AluOp, Arch, CmpOp, MInst, Mem, Reg, UnAluOp};

/// Errors produced while encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// An immediate does not fit the fixed-width instruction format.
    ImmOverflow {
        /// The offending value.
        value: i64,
        /// Architecture whose format was exceeded.
        arch: Arch,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::ImmOverflow { value, arch } => {
                write!(f, "immediate {value} does not fit {arch} encoding")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Errors produced while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Opcode byte not valid for this architecture.
    BadOpcode {
        /// Byte offset of the instruction.
        offset: usize,
        /// The opcode byte.
        opcode: u8,
    },
    /// The byte stream ended mid-instruction.
    Truncated {
        /// Byte offset of the instruction.
        offset: usize,
    },
    /// A branch lands between instruction boundaries.
    MisalignedTarget {
        /// The target byte offset.
        target: u32,
    },
    /// A field held an out-of-range value (register, ALU selector, …).
    BadField {
        /// Byte offset of the instruction.
        offset: usize,
        /// Field description.
        what: &'static str,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode { offset, opcode } => {
                write!(f, "bad opcode {opcode:#04x} at byte {offset}")
            }
            DecodeError::Truncated { offset } => {
                write!(f, "truncated instruction at byte {offset}")
            }
            DecodeError::MisalignedTarget { target } => {
                write!(f, "branch target {target} is not an instruction boundary")
            }
            DecodeError::BadField { offset, what } => {
                write!(f, "bad {what} field at byte {offset}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Shape tags shared by all encodings (the per-arch opcode is derived from
/// the tag differently per ISA).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum Tag {
    MovImm32 = 0,
    MovImm64 = 1,
    Mov = 2,
    LoadStr = 3,
    Load = 4,
    Store = 5,
    LoadIdx = 6,
    StoreIdx = 7,
    Alu3 = 8,
    Alu2 = 9,
    Alu2Mem = 10,
    UnAlu = 11,
    SetCc = 12,
    CSel = 13,
    Brnz = 14,
    Jmp = 15,
    Push = 16,
    Call = 17,
    Ret = 18,
    Nop = 19,
}

const TAG_COUNT: u8 = 20;

impl Tag {
    /// Total decode: every byte maps to `Some(tag)` or `None`, with no
    /// panicking arm — this runs on attacker-controlled input.
    fn from_u8(v: u8) -> Option<Tag> {
        Some(match v {
            0 => Tag::MovImm32,
            1 => Tag::MovImm64,
            2 => Tag::Mov,
            3 => Tag::LoadStr,
            4 => Tag::Load,
            5 => Tag::Store,
            6 => Tag::LoadIdx,
            7 => Tag::StoreIdx,
            8 => Tag::Alu3,
            9 => Tag::Alu2,
            10 => Tag::Alu2Mem,
            11 => Tag::UnAlu,
            12 => Tag::SetCc,
            13 => Tag::CSel,
            14 => Tag::Brnz,
            15 => Tag::Jmp,
            16 => Tag::Push,
            17 => Tag::Call,
            18 => Tag::Ret,
            19 => Tag::Nop,
            _ => return None,
        })
    }
}

fn ppc_opcode(tag: Tag) -> u8 {
    ((tag as u8).wrapping_mul(7).wrapping_add(3) & 0x7f) | 0x80
}

fn ppc_tag(opcode: u8) -> Option<Tag> {
    (0..TAG_COUNT)
        .filter_map(Tag::from_u8)
        .find(|t| ppc_opcode(*t) == opcode)
}

fn mem_kind(m: Mem) -> (u8, u32) {
    match m {
        Mem::Frame(s) => (0, s),
        Mem::Global(s) => (1, s),
        Mem::Arg(s) => (2, s),
    }
}

fn mem_from(kind: u8, slot: u32, offset: usize) -> Result<Mem, DecodeError> {
    Ok(match kind {
        0 => Mem::Frame(slot),
        1 => Mem::Global(slot),
        2 => Mem::Arg(slot),
        _ => {
            return Err(DecodeError::BadField {
                offset,
                what: "memory kind",
            })
        }
    })
}

fn alu_index(op: AluOp) -> u8 {
    AluOp::ALL
        .iter()
        .position(|o| *o == op)
        .expect("alu op in table") as u8
}

fn alu_from(i: u8, offset: usize) -> Result<AluOp, DecodeError> {
    AluOp::ALL
        .get(i as usize)
        .copied()
        .ok_or(DecodeError::BadField {
            offset,
            what: "alu op",
        })
}

fn unalu_index(op: UnAluOp) -> u8 {
    match op {
        UnAluOp::Neg => 0,
        UnAluOp::Not => 1,
        UnAluOp::BitNot => 2,
    }
}

fn unalu_from(i: u8, offset: usize) -> Result<UnAluOp, DecodeError> {
    Ok(match i {
        0 => UnAluOp::Neg,
        1 => UnAluOp::Not,
        2 => UnAluOp::BitNot,
        _ => {
            return Err(DecodeError::BadField {
                offset,
                what: "unary alu op",
            })
        }
    })
}

fn cmp_index(op: CmpOp) -> u8 {
    CmpOp::ALL
        .iter()
        .position(|o| *o == op)
        .expect("cmp op in table") as u8
}

fn cmp_from(i: u8, offset: usize) -> Result<CmpOp, DecodeError> {
    CmpOp::ALL
        .get(i as usize)
        .copied()
        .ok_or(DecodeError::BadField {
            offset,
            what: "cmp op",
        })
}

/// The `(tag, f1, f2, f3, imm)` field tuple all encodings serialize.
struct Fields {
    tag: Tag,
    f1: u8,
    f2: u8,
    f3: u8,
    imm: i64,
}

/// Deconstructs an instruction into encoding fields. `imm` carries branch
/// byte-targets, slots, ALU selectors or immediates depending on the tag.
fn to_fields(inst: &MInst) -> Fields {
    let f = |tag, f1, f2, f3, imm| Fields {
        tag,
        f1,
        f2,
        f3,
        imm,
    };
    match inst {
        MInst::MovImm(rd, v) => {
            if i32::try_from(*v).is_ok() {
                f(Tag::MovImm32, rd.0, 0, 0, *v)
            } else {
                f(Tag::MovImm64, rd.0, 0, 0, *v)
            }
        }
        MInst::Mov(rd, rs) => f(Tag::Mov, rd.0, rs.0, 0, 0),
        MInst::LoadStr(rd, sid) => f(Tag::LoadStr, rd.0, 0, 0, *sid as i64),
        MInst::Load(rd, m) => {
            let (k, s) = mem_kind(*m);
            f(Tag::Load, rd.0, k, 0, s as i64)
        }
        MInst::Store(m, rs) => {
            let (k, s) = mem_kind(*m);
            f(Tag::Store, rs.0, k, 0, s as i64)
        }
        MInst::LoadIdx { rd, base, idx, len } => f(
            Tag::LoadIdx,
            rd.0,
            idx.0,
            0,
            ((*base as i64) << 20) | *len as i64,
        ),
        MInst::StoreIdx { rs, base, idx, len } => f(
            Tag::StoreIdx,
            rs.0,
            idx.0,
            0,
            ((*base as i64) << 20) | *len as i64,
        ),
        MInst::Alu3(op, rd, ra, rb) => f(Tag::Alu3, rd.0, ra.0, rb.0, alu_index(*op) as i64),
        MInst::Alu2(op, rd, rs) => f(Tag::Alu2, rd.0, rs.0, 0, alu_index(*op) as i64),
        MInst::Alu2Mem(op, rd, m) => {
            let (k, s) = mem_kind(*m);
            f(Tag::Alu2Mem, rd.0, k, alu_index(*op), s as i64)
        }
        MInst::UnAlu(op, rd, rs) => f(Tag::UnAlu, rd.0, rs.0, 0, unalu_index(*op) as i64),
        MInst::SetCc(cc, rd, ra, rb) => f(Tag::SetCc, rd.0, ra.0, rb.0, cmp_index(*cc) as i64),
        MInst::CSel { rd, rc, ra, rb } => f(Tag::CSel, rd.0, rc.0, ra.0, rb.0 as i64),
        MInst::Brnz(rc, t) => f(Tag::Brnz, rc.0, 0, 0, *t as i64),
        MInst::Jmp(t) => f(Tag::Jmp, 0, 0, 0, *t as i64),
        MInst::Push(r) => f(Tag::Push, r.0, 0, 0, 0),
        MInst::Call { sym, argc } => f(Tag::Call, *argc, 0, 0, *sym as i64),
        MInst::Ret => f(Tag::Ret, 0, 0, 0, 0),
        MInst::Nop => f(Tag::Nop, 0, 0, 0, 0),
    }
}

/// Rebuilds an instruction from decoded fields.
fn from_fields(fl: &Fields, offset: usize) -> Result<MInst, DecodeError> {
    Ok(match fl.tag {
        Tag::MovImm32 | Tag::MovImm64 => MInst::MovImm(Reg(fl.f1), fl.imm),
        Tag::Mov => MInst::Mov(Reg(fl.f1), Reg(fl.f2)),
        Tag::LoadStr => MInst::LoadStr(Reg(fl.f1), fl.imm as u32),
        Tag::Load => MInst::Load(Reg(fl.f1), mem_from(fl.f2, fl.imm as u32, offset)?),
        Tag::Store => MInst::Store(mem_from(fl.f2, fl.imm as u32, offset)?, Reg(fl.f1)),
        Tag::LoadIdx => MInst::LoadIdx {
            rd: Reg(fl.f1),
            idx: Reg(fl.f2),
            base: (fl.imm >> 20) as u32,
            len: (fl.imm & 0xfffff) as u32,
        },
        Tag::StoreIdx => MInst::StoreIdx {
            rs: Reg(fl.f1),
            idx: Reg(fl.f2),
            base: (fl.imm >> 20) as u32,
            len: (fl.imm & 0xfffff) as u32,
        },
        Tag::Alu3 => MInst::Alu3(
            alu_from(fl.imm as u8, offset)?,
            Reg(fl.f1),
            Reg(fl.f2),
            Reg(fl.f3),
        ),
        Tag::Alu2 => MInst::Alu2(alu_from(fl.imm as u8, offset)?, Reg(fl.f1), Reg(fl.f2)),
        Tag::Alu2Mem => MInst::Alu2Mem(
            alu_from(fl.f3, offset)?,
            Reg(fl.f1),
            mem_from(fl.f2, fl.imm as u32, offset)?,
        ),
        Tag::UnAlu => MInst::UnAlu(unalu_from(fl.imm as u8, offset)?, Reg(fl.f1), Reg(fl.f2)),
        Tag::SetCc => MInst::SetCc(
            cmp_from(fl.imm as u8, offset)?,
            Reg(fl.f1),
            Reg(fl.f2),
            Reg(fl.f3),
        ),
        Tag::CSel => MInst::CSel {
            rd: Reg(fl.f1),
            rc: Reg(fl.f2),
            ra: Reg(fl.f3),
            rb: Reg(fl.imm as u8),
        },
        Tag::Brnz => MInst::Brnz(Reg(fl.f1), fl.imm as u32),
        Tag::Jmp => MInst::Jmp(fl.imm as u32),
        Tag::Push => MInst::Push(Reg(fl.f1)),
        Tag::Call => MInst::Call {
            sym: fl.imm as u32,
            argc: fl.f1,
        },
        Tag::Ret => MInst::Ret,
        Tag::Nop => MInst::Nop,
    })
}

/// Byte length of one encoded instruction on the given architecture.
fn encoded_len(inst: &MInst, arch: Arch) -> usize {
    match arch {
        Arch::Arm | Arch::Ppc => 8,
        Arch::X86 | Arch::X64 => {
            let fl = to_fields(inst);
            let body = match fl.tag {
                Tag::MovImm64 => 1 + 1 + 8,
                Tag::MovImm32 => 1 + 1 + 4,
                Tag::Mov | Tag::Push | Tag::Ret | Tag::Nop => {
                    1 + match fl.tag {
                        Tag::Mov => 2,
                        Tag::Push => 1,
                        _ => 0,
                    }
                }
                Tag::LoadStr => 1 + 1 + 4,
                Tag::Jmp => 1 + 4,
                Tag::Load | Tag::Store | Tag::Alu2Mem => 1 + 3 + 4,
                Tag::LoadIdx | Tag::StoreIdx => 1 + 2 + 8,
                Tag::Alu3 | Tag::SetCc | Tag::CSel => 1 + 4,
                Tag::Alu2 | Tag::UnAlu => 1 + 3,
                Tag::Brnz => 1 + 1 + 4,
                Tag::Call => 1 + 1 + 4,
            };
            if arch == Arch::X64 {
                body + 1
            } else {
                body
            }
        }
    }
}

fn check_imm32(v: i64, arch: Arch) -> Result<i32, EncodeError> {
    i32::try_from(v).map_err(|_| EncodeError::ImmOverflow { value: v, arch })
}

/// Encodes a function body. Branch targets in `insts` are instruction
/// indices; in the output they are byte offsets.
///
/// # Errors
///
/// Returns [`EncodeError::ImmOverflow`] when a constant exceeds a
/// fixed-width format (ARM/PPC carry 32-bit immediates).
pub fn encode_function(insts: &[MInst], arch: Arch) -> Result<Vec<u8>, EncodeError> {
    // Pass 1: byte offset of every instruction.
    let mut offsets = Vec::with_capacity(insts.len() + 1);
    let mut pos = 0usize;
    for inst in insts {
        offsets.push(pos as u32);
        pos += encoded_len(inst, arch);
    }
    offsets.push(pos as u32);

    // Pass 2: emit with byte-offset branch targets.
    let mut out = Vec::with_capacity(pos);
    for inst in insts {
        let mut fl = to_fields(inst);
        if let Some(t) = inst.branch_target() {
            fl.imm = offsets[t as usize] as i64;
        }
        match arch {
            Arch::Arm => {
                let imm = check_imm32(fl.imm, arch)?;
                out.push(fl.tag as u8 + 0x20);
                out.push(fl.f1);
                out.push(fl.f2);
                out.push(fl.f3);
                out.extend_from_slice(&imm.to_le_bytes());
            }
            Arch::Ppc => {
                let imm = check_imm32(fl.imm, arch)?;
                out.push(ppc_opcode(fl.tag));
                out.push(fl.f3);
                out.push(fl.f2);
                out.push(fl.f1);
                out.extend_from_slice(&imm.to_be_bytes());
            }
            Arch::X86 | Arch::X64 => {
                if arch == Arch::X64 {
                    out.push(0x48);
                }
                let page = if arch == Arch::X64 { 0x50 } else { 0x10 };
                out.push(fl.tag as u8 + page);
                match fl.tag {
                    Tag::MovImm64 => {
                        out.push(fl.f1);
                        out.extend_from_slice(&fl.imm.to_le_bytes());
                    }
                    Tag::MovImm32 => {
                        out.push(fl.f1);
                        out.extend_from_slice(&(fl.imm as i32).to_le_bytes());
                    }
                    Tag::Mov => {
                        out.push(fl.f1);
                        out.push(fl.f2);
                    }
                    Tag::Push => out.push(fl.f1),
                    Tag::Ret | Tag::Nop => {}
                    Tag::LoadStr | Tag::Jmp => {
                        out.extend_from_slice(&(fl.imm as u32).to_le_bytes());
                        if fl.tag == Tag::LoadStr {
                            // rd rides in front of the imm for LoadStr.
                            let at = out.len() - 4;
                            out.insert(at, fl.f1);
                        }
                    }
                    Tag::Load | Tag::Store | Tag::Alu2Mem => {
                        out.push(fl.f1);
                        out.push(fl.f2);
                        out.push(fl.f3);
                        out.extend_from_slice(&(fl.imm as u32).to_le_bytes());
                    }
                    Tag::LoadIdx | Tag::StoreIdx => {
                        out.push(fl.f1);
                        out.push(fl.f2);
                        out.extend_from_slice(&fl.imm.to_le_bytes());
                    }
                    Tag::Alu3 | Tag::SetCc | Tag::CSel => {
                        out.push(fl.f1);
                        out.push(fl.f2);
                        out.push(fl.f3);
                        out.push(fl.imm as u8);
                    }
                    Tag::Alu2 | Tag::UnAlu => {
                        out.push(fl.f1);
                        out.push(fl.f2);
                        out.push(fl.imm as u8);
                    }
                    Tag::Brnz => {
                        out.push(fl.f1);
                        out.extend_from_slice(&(fl.imm as u32).to_le_bytes());
                    }
                    Tag::Call => {
                        out.push(fl.f1);
                        out.extend_from_slice(&(fl.imm as u32).to_le_bytes());
                    }
                }
            }
        }
    }
    Ok(out)
}

fn take<'a>(
    bytes: &'a [u8],
    pos: &mut usize,
    n: usize,
    start: usize,
) -> Result<&'a [u8], DecodeError> {
    if *pos + n > bytes.len() {
        return Err(DecodeError::Truncated { offset: start });
    }
    let s = &bytes[*pos..*pos + n];
    *pos += n;
    Ok(s)
}

fn read_u32le(bytes: &[u8], pos: &mut usize, start: usize) -> Result<u32, DecodeError> {
    let s = take(bytes, pos, 4, start)?;
    Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
}

/// Decodes one instruction at `pos`, returning fields and advancing `pos`.
fn decode_one(bytes: &[u8], pos: &mut usize, arch: Arch) -> Result<Fields, DecodeError> {
    let start = *pos;
    match arch {
        Arch::Arm => {
            let s = take(bytes, pos, 8, start)?;
            let tag =
                s[0].checked_sub(0x20)
                    .and_then(Tag::from_u8)
                    .ok_or(DecodeError::BadOpcode {
                        offset: start,
                        opcode: s[0],
                    })?;
            let imm = i32::from_le_bytes([s[4], s[5], s[6], s[7]]) as i64;
            Ok(Fields {
                tag,
                f1: s[1],
                f2: s[2],
                f3: s[3],
                imm,
            })
        }
        Arch::Ppc => {
            let s = take(bytes, pos, 8, start)?;
            let tag = ppc_tag(s[0]).ok_or(DecodeError::BadOpcode {
                offset: start,
                opcode: s[0],
            })?;
            let imm = i32::from_be_bytes([s[4], s[5], s[6], s[7]]) as i64;
            Ok(Fields {
                tag,
                f1: s[3],
                f2: s[2],
                f3: s[1],
                imm,
            })
        }
        Arch::X86 | Arch::X64 => {
            if arch == Arch::X64 {
                let p = take(bytes, pos, 1, start)?;
                if p[0] != 0x48 {
                    return Err(DecodeError::BadOpcode {
                        offset: start,
                        opcode: p[0],
                    });
                }
            }
            let page = if arch == Arch::X64 { 0x50 } else { 0x10 };
            let op = take(bytes, pos, 1, start)?[0];
            let tag =
                op.checked_sub(page)
                    .and_then(Tag::from_u8)
                    .ok_or(DecodeError::BadOpcode {
                        offset: start,
                        opcode: op,
                    })?;
            let mut fl = Fields {
                tag,
                f1: 0,
                f2: 0,
                f3: 0,
                imm: 0,
            };
            match tag {
                Tag::MovImm64 => {
                    fl.f1 = take(bytes, pos, 1, start)?[0];
                    let s = take(bytes, pos, 8, start)?;
                    fl.imm = i64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]);
                }
                Tag::MovImm32 => {
                    fl.f1 = take(bytes, pos, 1, start)?[0];
                    let s = take(bytes, pos, 4, start)?;
                    fl.imm = i32::from_le_bytes([s[0], s[1], s[2], s[3]]) as i64;
                }
                Tag::Mov => {
                    fl.f1 = take(bytes, pos, 1, start)?[0];
                    fl.f2 = take(bytes, pos, 1, start)?[0];
                }
                Tag::Push => fl.f1 = take(bytes, pos, 1, start)?[0],
                Tag::Ret | Tag::Nop => {}
                Tag::LoadStr => {
                    fl.f1 = take(bytes, pos, 1, start)?[0];
                    fl.imm = read_u32le(bytes, pos, start)? as i64;
                }
                Tag::Jmp => fl.imm = read_u32le(bytes, pos, start)? as i64,
                Tag::Load | Tag::Store | Tag::Alu2Mem => {
                    fl.f1 = take(bytes, pos, 1, start)?[0];
                    fl.f2 = take(bytes, pos, 1, start)?[0];
                    fl.f3 = take(bytes, pos, 1, start)?[0];
                    fl.imm = read_u32le(bytes, pos, start)? as i64;
                }
                Tag::LoadIdx | Tag::StoreIdx => {
                    fl.f1 = take(bytes, pos, 1, start)?[0];
                    fl.f2 = take(bytes, pos, 1, start)?[0];
                    let s = take(bytes, pos, 8, start)?;
                    fl.imm = i64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]);
                }
                Tag::Alu3 | Tag::SetCc | Tag::CSel => {
                    fl.f1 = take(bytes, pos, 1, start)?[0];
                    fl.f2 = take(bytes, pos, 1, start)?[0];
                    fl.f3 = take(bytes, pos, 1, start)?[0];
                    fl.imm = take(bytes, pos, 1, start)?[0] as i64;
                }
                Tag::Alu2 | Tag::UnAlu => {
                    fl.f1 = take(bytes, pos, 1, start)?[0];
                    fl.f2 = take(bytes, pos, 1, start)?[0];
                    fl.imm = take(bytes, pos, 1, start)?[0] as i64;
                }
                Tag::Brnz => {
                    fl.f1 = take(bytes, pos, 1, start)?[0];
                    fl.imm = read_u32le(bytes, pos, start)? as i64;
                }
                Tag::Call => {
                    fl.f1 = take(bytes, pos, 1, start)?[0];
                    fl.imm = read_u32le(bytes, pos, start)? as i64;
                }
            }
            Ok(fl)
        }
    }
}

/// Decodes a whole function body back to canonical form (branch targets
/// converted from byte offsets to instruction indices).
///
/// # Errors
///
/// See [`DecodeError`].
pub fn decode_function(bytes: &[u8], arch: Arch) -> Result<Vec<MInst>, DecodeError> {
    let mut insts = Vec::new();
    let mut offsets = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let start = pos;
        let fl = decode_one(bytes, &mut pos, arch)?;
        offsets.push(start as u32);
        insts.push(from_fields(&fl, start)?);
    }
    // Byte offsets → instruction indices.
    for inst in &mut insts {
        match inst {
            MInst::Jmp(t) | MInst::Brnz(_, t) => {
                let idx = offsets
                    .binary_search(t)
                    .map_err(|_| DecodeError::MisalignedTarget { target: *t })?;
                *t = idx as u32;
            }
            _ => {}
        }
    }
    Ok(insts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_insts() -> Vec<MInst> {
        vec![
            MInst::MovImm(Reg(0), 42),
            MInst::MovImm(Reg(1), i64::MIN / 3),
            MInst::Mov(Reg(2), Reg(0)),
            MInst::LoadStr(Reg(0), 7),
            MInst::Load(Reg(1), Mem::Frame(12)),
            MInst::Store(Mem::Global(3), Reg(1)),
            MInst::Load(Reg(2), Mem::Arg(1)),
            MInst::LoadIdx {
                rd: Reg(0),
                base: 5,
                idx: Reg(1),
                len: 16,
            },
            MInst::StoreIdx {
                rs: Reg(2),
                base: 5,
                idx: Reg(1),
                len: 16,
            },
            MInst::Alu3(AluOp::Mul, Reg(0), Reg(1), Reg(2)),
            MInst::Alu2(AluOp::Xor, Reg(0), Reg(1)),
            MInst::Alu2Mem(AluOp::Add, Reg(0), Mem::Frame(9)),
            MInst::UnAlu(UnAluOp::BitNot, Reg(0), Reg(1)),
            MInst::SetCc(CmpOp::Le, Reg(0), Reg(1), Reg(2)),
            MInst::CSel {
                rd: Reg(0),
                rc: Reg(1),
                ra: Reg(2),
                rb: Reg(3),
            },
            MInst::Brnz(Reg(0), 0),
            MInst::Push(Reg(1)),
            MInst::Call { sym: 4, argc: 2 },
            MInst::Jmp(19),
            MInst::Ret,
            MInst::Nop,
        ]
    }

    #[test]
    fn roundtrip_all_instructions_all_arches() {
        for arch in Arch::ALL {
            let insts: Vec<MInst> = sample_insts()
                .into_iter()
                .filter(|i| {
                    // Fixed-width formats carry 32-bit immediates only.
                    if matches!(arch, Arch::Arm | Arch::Ppc) {
                        !matches!(i, MInst::MovImm(_, v) if i32::try_from(*v).is_err())
                    } else {
                        true
                    }
                })
                .collect();
            let bytes = encode_function(&insts, arch).unwrap();
            let decoded = decode_function(&bytes, arch).unwrap();
            assert_eq!(decoded, insts, "roundtrip failed on {arch}");
        }
    }

    #[test]
    fn fixed_width_is_eight_bytes() {
        let insts = vec![MInst::Nop, MInst::Ret, MInst::MovImm(Reg(0), 1)];
        for arch in [Arch::Arm, Arch::Ppc] {
            let bytes = encode_function(&insts, arch).unwrap();
            assert_eq!(bytes.len(), 24, "{arch}");
        }
    }

    #[test]
    fn x86_is_variable_width_and_denser_for_simple_code() {
        let insts = vec![MInst::Ret, MInst::Nop, MInst::Push(Reg(1))];
        let x86 = encode_function(&insts, Arch::X86).unwrap();
        let arm = encode_function(&insts, Arch::Arm).unwrap();
        assert!(x86.len() < arm.len());
    }

    #[test]
    fn encodings_differ_across_arches() {
        let insts = vec![MInst::MovImm(Reg(1), 7), MInst::Ret];
        let mut images: Vec<Vec<u8>> = Vec::new();
        for arch in Arch::ALL {
            images.push(encode_function(&insts, arch).unwrap());
        }
        for i in 0..images.len() {
            for j in i + 1..images.len() {
                assert_ne!(images[i], images[j], "arch {i} and {j} encode identically");
            }
        }
    }

    #[test]
    fn big_imm_overflows_fixed_width() {
        let insts = vec![MInst::MovImm(Reg(0), i64::MAX)];
        assert!(matches!(
            encode_function(&insts, Arch::Arm),
            Err(EncodeError::ImmOverflow { .. })
        ));
        assert!(encode_function(&insts, Arch::X86).is_ok());
    }

    #[test]
    fn branch_targets_survive_variable_width() {
        // jmp over a long instruction: byte offsets differ from indices.
        let insts = vec![
            MInst::Jmp(2),
            MInst::MovImm(Reg(0), i64::MAX), // 10 bytes on x86
            MInst::Ret,
        ];
        let bytes = encode_function(&insts, Arch::X86).unwrap();
        let decoded = decode_function(&bytes, Arch::X86).unwrap();
        assert_eq!(decoded, insts);
    }

    #[test]
    fn truncated_stream_errors() {
        let bytes = encode_function(&[MInst::MovImm(Reg(0), 500)], Arch::X86).unwrap();
        let cut = &bytes[..bytes.len() - 1];
        assert!(matches!(
            decode_function(cut, Arch::X86),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn bad_opcode_errors() {
        assert!(matches!(
            decode_function(&[0xff; 8], Arch::Arm),
            Err(DecodeError::BadOpcode { .. })
        ));
    }

    #[test]
    fn misaligned_branch_target_errors() {
        // Craft a jmp into the middle of the following instruction.
        let insts = vec![MInst::Jmp(1), MInst::MovImm(Reg(0), 1), MInst::Ret];
        let mut bytes = encode_function(&insts, Arch::X86).unwrap();
        // Jmp imm starts at byte 1; point it at offset 6 (mid-MovImm).
        bytes[1..5].copy_from_slice(&6u32.to_le_bytes());
        assert!(matches!(
            decode_function(&bytes, Arch::X86),
            Err(DecodeError::MisalignedTarget { .. })
        ));
    }

    #[test]
    fn ppc_immediates_are_big_endian() {
        let bytes = encode_function(&[MInst::MovImm(Reg(0), 1)], Arch::Ppc).unwrap();
        assert_eq!(&bytes[4..8], &[0, 0, 0, 1]);
        let arm = encode_function(&[MInst::MovImm(Reg(0), 1)], Arch::Arm).unwrap();
        assert_eq!(&arm[4..8], &[1, 0, 0, 0]);
    }
}
