//! End-to-end compilation driver: MiniC [`Program`] → [`Binary`].

use std::fmt;

use asteria_lang::Program;

use crate::codegen::{codegen_function_with, CodegenOptions};
use crate::encode::{encode_function, EncodeError};
use crate::isa::Arch;
use crate::lower::{lower_program, LowerError};
use crate::opt::optimize_program;
use crate::sbf::{Binary, Symbol, SymbolKind};

/// Errors produced by [`compile_program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Lowering failed (unknown variable, misplaced jump, …).
    Lower(LowerError),
    /// Encoding failed (immediate overflow on a fixed-width ISA).
    Encode(EncodeError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Lower(e) => write!(f, "lowering failed: {e}"),
            CompileError::Encode(e) => write!(f, "encoding failed: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<LowerError> for CompileError {
    fn from(e: LowerError) -> Self {
        CompileError::Lower(e)
    }
}

impl From<EncodeError> for CompileError {
    fn from(e: EncodeError) -> Self {
        CompileError::Encode(e)
    }
}

/// Optimization level, mirroring a compiler's `-O` flag. Cross-
/// optimization similarity (same source, different levels) is a classic
/// BCSD robustness axis and the paper's stated future work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptLevel {
    /// No IR optimization and no per-architecture character passes
    /// (if-conversion, loop rotation, strength reduction).
    O0,
    /// The default pipeline: constant folding, jump threading, dead-block
    /// removal, plus the per-architecture passes.
    #[default]
    O1,
}

/// Base virtual address of the first function.
const CODE_BASE: u64 = 0x1000;

/// Compiles a MiniC program for one target architecture.
///
/// The pipeline is lower → optimize → (per-arch pre-passes inside codegen)
/// → instruction selection → encoding, producing a self-contained SBF
/// binary whose symbol table lists defined functions first (in source
/// order) followed by externals in first-use order.
///
/// # Errors
///
/// See [`CompileError`].
///
/// # Examples
///
/// ```
/// use asteria_compiler::{compile_program, Arch};
///
/// let program = asteria_lang::parse("int f(int a) { return a + 1; }")?;
/// let binary = compile_program(&program, Arch::X86)?;
/// assert_eq!(binary.arch, Arch::X86);
/// assert_eq!(binary.symbols.len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn compile_program(program: &Program, arch: Arch) -> Result<Binary, CompileError> {
    compile_program_with(program, arch, OptLevel::O1)
}

/// Compiles at an explicit optimization level.
///
/// # Errors
///
/// See [`CompileError`].
pub fn compile_program_with(
    program: &Program,
    arch: Arch,
    opt: OptLevel,
) -> Result<Binary, CompileError> {
    let mut ir = lower_program(program)?;
    if opt == OptLevel::O1 {
        optimize_program(&mut ir);
    }

    // Symbol table: defined functions first, externals appended on demand.
    let mut names: Vec<String> = ir.functions.iter().map(|f| f.name.clone()).collect();
    let defined = names.len();
    let mut mach = Vec::with_capacity(ir.functions.len());
    let options = CodegenOptions {
        arch_character: opt == OptLevel::O1,
    };
    for f in &ir.functions {
        let m = codegen_function_with(f, arch, options, &mut |callee| {
            if let Some(i) = names.iter().position(|n| n == callee) {
                i as u32
            } else {
                names.push(callee.to_string());
                names.len() as u32 - 1
            }
        });
        mach.push(m);
    }

    let mut symbols = Vec::with_capacity(names.len());
    let mut offset = CODE_BASE;
    for (i, m) in mach.iter().enumerate() {
        let code = encode_function(&m.insts, arch)?;
        let len = code.len() as u64;
        symbols.push(Symbol {
            name: Some(names[i].clone()),
            kind: SymbolKind::Function,
            param_count: m.param_count as u32,
            frame_size: m.frame_size,
            offset,
            code,
        });
        // 16-byte function alignment, like a real linker.
        offset += (len + 15) & !15;
    }
    for name in names.iter().skip(defined) {
        symbols.push(Symbol {
            name: Some(name.clone()),
            kind: SymbolKind::External,
            param_count: 0,
            frame_size: 0,
            offset: 0,
            code: Vec::new(),
        });
    }

    Ok(Binary {
        arch,
        symbols,
        globals: ir.globals.iter().map(|(_, v)| *v).collect(),
        strings: ir.strings.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use asteria_lang::parse;

    #[test]
    fn compiles_for_every_arch() {
        let p = parse(
            "int g = 3; int helper(int x) { return x * g; } \
             int f(int a, int b) { if (a > b) { return helper(a); } return helper(b); }",
        )
        .unwrap();
        for arch in Arch::ALL {
            let b = compile_program(&p, arch).unwrap();
            assert_eq!(b.function_indices().len(), 2);
            assert!(b.code_size() > 0);
            assert_eq!(b.globals, vec![3]);
        }
    }

    #[test]
    fn externals_follow_defined_functions() {
        let p = parse("int f() { return ext_a() + ext_b(); }").unwrap();
        let b = compile_program(&p, Arch::X64).unwrap();
        assert_eq!(b.symbols[0].kind, SymbolKind::Function);
        assert_eq!(b.symbols[1].kind, SymbolKind::External);
        assert_eq!(b.symbols[1].name.as_deref(), Some("ext_a"));
        assert_eq!(b.symbols[2].name.as_deref(), Some("ext_b"));
    }

    #[test]
    fn function_offsets_are_aligned_and_increasing() {
        let p = parse("int a() { return 1; } int b() { return 2; } int c() { return 3; }").unwrap();
        let b = compile_program(&p, Arch::X86).unwrap();
        let offs: Vec<u64> = b.symbols.iter().map(|s| s.offset).collect();
        assert!(offs.windows(2).all(|w| w[0] < w[1]));
        assert!(offs.iter().all(|o| o % 16 == 0));
    }

    #[test]
    fn code_sizes_differ_across_arches() {
        let p = parse(
            "int f(int a, int b) { return a % b + helper(a); } \
                       int helper(int x) { return x - 1; }",
        )
        .unwrap();
        let sizes: Vec<usize> = Arch::ALL
            .iter()
            .map(|arch| compile_program(&p, *arch).unwrap().code_size())
            .collect();
        // At least x86 vs the fixed-width ISAs must differ; PPC (mod
        // expansion) must exceed ARM.
        assert_ne!(sizes[0], sizes[2]);
        assert!(sizes[3] > sizes[2], "ppc {} <= arm {}", sizes[3], sizes[2]);
    }
}
