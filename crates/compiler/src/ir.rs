//! Three-address intermediate representation with an explicit CFG.
//!
//! Lowering from the MiniC AST produces one [`IrFunction`] per source
//! function. Locals and temporaries live in named slots ([`LocalId`]) and
//! virtual registers ([`VReg`]); the backends later map both onto frame
//! slots and machine registers.

use std::fmt;

use asteria_lang::{BinOp, UnOp};

/// A virtual register holding a 64-bit integer value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VReg(pub u32);

/// Index of a local slot (scalar or array) in an [`IrFunction`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LocalId(pub u32);

/// Index of a global in the program's global table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalId(pub u32);

/// Index of a string constant in the program's string table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StringId(pub u32);

/// Index of a basic block in an [`IrFunction`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// Kind of storage behind a local slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LocalKind {
    /// A scalar 64-bit slot.
    Scalar,
    /// A fixed-size array of 64-bit slots.
    Array(usize),
}

/// A local slot: parameter, named local, or array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalInfo {
    /// Source-level name (compiler temporaries use a `$t` prefix).
    pub name: String,
    /// Storage kind.
    pub kind: LocalKind,
}

/// A non-terminator instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inst {
    /// `dst = imm`
    Const(VReg, i64),
    /// `dst = addr_of_string(sid)` — string constants only flow into calls.
    Str(VReg, StringId),
    /// `dst = a <op> b`
    Bin(BinOp, VReg, VReg, VReg),
    /// `dst = <op> a`
    Un(UnOp, VReg, VReg),
    /// `dst = local`
    LoadLocal(VReg, LocalId),
    /// `local = src`
    StoreLocal(LocalId, VReg),
    /// `dst = global`
    LoadGlobal(VReg, GlobalId),
    /// `global = src`
    StoreGlobal(GlobalId, VReg),
    /// `dst = array[idx]` (index wraps into bounds; see language semantics)
    LoadElem(VReg, LocalId, VReg),
    /// `array[idx] = src`
    StoreElem(LocalId, VReg, VReg),
    /// `dst = call sym(args…)`; `dst` is always present (results may be unused).
    Call(VReg, String, Vec<VReg>),
    /// `dst = cond != 0 ? a : b` — produced only by the ARM backend's
    /// if-conversion pass; never emitted by the lowerer.
    Select(VReg, VReg, VReg, VReg),
}

/// A block terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Term {
    /// Unconditional jump.
    Jmp(BlockId),
    /// Conditional branch: `if cond != 0 goto then_bb else goto else_bb`.
    Br(VReg, BlockId, BlockId),
    /// Function return; `None` returns 0.
    Ret(Option<VReg>),
}

impl Term {
    /// Successor blocks of this terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Term::Jmp(t) => vec![*t],
            Term::Br(_, a, b) => vec![*a, *b],
            Term::Ret(_) => vec![],
        }
    }
}

/// A basic block: straight-line instructions plus one terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Instructions in execution order.
    pub insts: Vec<Inst>,
    /// The terminator; blocks under construction use `Ret(None)`.
    pub term: Term,
}

impl Block {
    /// Creates an empty block terminated by `ret 0` (placeholder).
    pub fn new() -> Self {
        Block {
            insts: Vec::new(),
            term: Term::Ret(None),
        }
    }
}

impl Default for Block {
    fn default() -> Self {
        Block::new()
    }
}

/// A function in IR form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrFunction {
    /// Symbol name.
    pub name: String,
    /// Number of leading locals that are parameters.
    pub param_count: usize,
    /// All local slots; the first `param_count` are parameters.
    pub locals: Vec<LocalInfo>,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<Block>,
    /// Number of virtual registers used.
    pub vreg_count: u32,
}

impl IrFunction {
    /// Fresh virtual register.
    pub fn new_vreg(&mut self) -> VReg {
        let r = VReg(self.vreg_count);
        self.vreg_count += 1;
        r
    }

    /// Appends an empty block and returns its id.
    pub fn new_block(&mut self) -> BlockId {
        self.blocks.push(Block::new());
        BlockId(self.blocks.len() as u32 - 1)
    }

    /// Shared read access to a block.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0 as usize]
    }

    /// Mutable access to a block.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.0 as usize]
    }

    /// Total instruction count (excluding terminators).
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Blocks reachable from the entry, in DFS preorder.
    pub fn reachable_blocks(&self) -> Vec<BlockId> {
        let mut seen = vec![false; self.blocks.len()];
        let mut order = Vec::new();
        let mut stack = vec![BlockId(0)];
        while let Some(b) = stack.pop() {
            if seen[b.0 as usize] {
                continue;
            }
            seen[b.0 as usize] = true;
            order.push(b);
            for s in self.block(b).term.successors() {
                stack.push(s);
            }
        }
        order
    }

    /// Validates structural invariants; used by tests and debug assertions.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant: out-of-range
    /// block, local or vreg references.
    pub fn validate(&self) -> Result<(), String> {
        if self.blocks.is_empty() {
            return Err(format!("{}: no blocks", self.name));
        }
        if self.param_count > self.locals.len() {
            return Err(format!("{}: param_count out of range", self.name));
        }
        let check_vreg = |r: VReg| -> Result<(), String> {
            if r.0 >= self.vreg_count {
                Err(format!("{}: vreg {:?} out of range", self.name, r))
            } else {
                Ok(())
            }
        };
        let check_local = |l: LocalId| -> Result<(), String> {
            if l.0 as usize >= self.locals.len() {
                Err(format!("{}: local {:?} out of range", self.name, l))
            } else {
                Ok(())
            }
        };
        for (i, b) in self.blocks.iter().enumerate() {
            for inst in &b.insts {
                match inst {
                    Inst::Const(d, _) | Inst::Str(d, _) => check_vreg(*d)?,
                    Inst::Bin(_, d, a, c) => {
                        check_vreg(*d)?;
                        check_vreg(*a)?;
                        check_vreg(*c)?;
                    }
                    Inst::Un(_, d, a) => {
                        check_vreg(*d)?;
                        check_vreg(*a)?;
                    }
                    Inst::LoadLocal(d, l) => {
                        check_vreg(*d)?;
                        check_local(*l)?;
                    }
                    Inst::StoreLocal(l, s) => {
                        check_local(*l)?;
                        check_vreg(*s)?;
                    }
                    Inst::LoadGlobal(d, _) => check_vreg(*d)?,
                    Inst::StoreGlobal(_, s) => check_vreg(*s)?,
                    Inst::LoadElem(d, l, idx) => {
                        check_vreg(*d)?;
                        check_local(*l)?;
                        check_vreg(*idx)?;
                    }
                    Inst::StoreElem(l, idx, s) => {
                        check_local(*l)?;
                        check_vreg(*idx)?;
                        check_vreg(*s)?;
                    }
                    Inst::Call(d, _, args) => {
                        check_vreg(*d)?;
                        for a in args {
                            check_vreg(*a)?;
                        }
                    }
                    Inst::Select(d, c, a, b2) => {
                        check_vreg(*d)?;
                        check_vreg(*c)?;
                        check_vreg(*a)?;
                        check_vreg(*b2)?;
                    }
                }
            }
            for s in b.term.successors() {
                if s.0 as usize >= self.blocks.len() {
                    return Err(format!(
                        "{}: block {} branches to missing {:?}",
                        self.name, i, s
                    ));
                }
            }
            if let Term::Br(c, _, _) = &b.term {
                check_vreg(*c)?;
            }
            if let Term::Ret(Some(r)) = &b.term {
                check_vreg(*r)?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for IrFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "fn {}({} params)", self.name, self.param_count)?;
        for (i, b) in self.blocks.iter().enumerate() {
            writeln!(f, "bb{i}:")?;
            for inst in &b.insts {
                writeln!(f, "  {inst:?}")?;
            }
            writeln!(f, "  {:?}", b.term)?;
        }
        Ok(())
    }
}

/// A lowered program: functions plus global/string tables.
#[derive(Debug, Clone, Default)]
pub struct IrProgram {
    /// All functions.
    pub functions: Vec<IrFunction>,
    /// Global scalar names and initial values.
    pub globals: Vec<(String, i64)>,
    /// Interned string constants.
    pub strings: Vec<String>,
}

impl IrProgram {
    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&IrFunction> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Index of a global by name.
    pub fn global_id(&self, name: &str) -> Option<GlobalId> {
        self.globals
            .iter()
            .position(|(n, _)| n == name)
            .map(|i| GlobalId(i as u32))
    }

    /// Interns a string constant, returning its id.
    pub fn intern_string(&mut self, s: &str) -> StringId {
        if let Some(i) = self.strings.iter().position(|t| t == s) {
            return StringId(i as u32);
        }
        self.strings.push(s.to_string());
        StringId(self.strings.len() as u32 - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_fn() -> IrFunction {
        let mut f = IrFunction {
            name: "t".into(),
            param_count: 0,
            locals: vec![],
            blocks: vec![],
            vreg_count: 0,
        };
        let b = f.new_block();
        let r = f.new_vreg();
        f.block_mut(b).insts.push(Inst::Const(r, 7));
        f.block_mut(b).term = Term::Ret(Some(r));
        f
    }

    #[test]
    fn validate_accepts_wellformed() {
        assert_eq!(tiny_fn().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_bad_vreg() {
        let mut f = tiny_fn();
        f.block_mut(BlockId(0)).term = Term::Ret(Some(VReg(99)));
        assert!(f.validate().is_err());
    }

    #[test]
    fn validate_rejects_missing_block() {
        let mut f = tiny_fn();
        f.block_mut(BlockId(0)).term = Term::Jmp(BlockId(5));
        assert!(f.validate().is_err());
    }

    #[test]
    fn reachable_skips_orphans() {
        let mut f = tiny_fn();
        f.new_block(); // orphan
        assert_eq!(f.reachable_blocks(), vec![BlockId(0)]);
    }

    #[test]
    fn intern_string_dedups() {
        let mut p = IrProgram::default();
        let a = p.intern_string("x");
        let b = p.intern_string("x");
        let c = p.intern_string("y");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
