//! Instruction selection: IR → per-architecture machine code.
//!
//! The backends are deliberately simple "spill-everything" code generators
//! (every virtual register lives in a frame slot), which is both realistic
//! for default-optimization firmware builds and friendly to the decompiler.
//! Architectural character comes from:
//!
//! - **x86**: all arguments pushed on the stack (right to left), two-address
//!   ALU with memory operands;
//! - **x64**: six register arguments, two-address ALU, no memory operands;
//! - **ARM**: four register arguments, three-address ALU, and an
//!   *if-conversion* pass that collapses small branch diamonds into
//!   conditional selects — reproducing the paper's Fig. 2 observation that
//!   the same function has 4 basic blocks on x86 but 1 on ARM;
//! - **PPC**: eight register arguments, three-address ALU, no hardware
//!   remainder or negate (both are expanded), so its functions run longer.

use asteria_lang::BinOp;

use crate::ir::{BlockId, Inst, IrFunction, LocalId, LocalKind, Term, VReg};
use crate::isa::{AluOp, Arch, CmpOp, MInst, Mem, Reg};

/// Machine code for one function, before encoding.
#[derive(Debug, Clone)]
pub struct MachFunction {
    /// Symbol name (cleared when a binary is stripped).
    pub name: String,
    /// Number of parameters.
    pub param_count: usize,
    /// Emitted instructions; branch targets are instruction indices.
    pub insts: Vec<MInst>,
    /// Number of 64-bit frame slots.
    pub frame_size: u32,
}

/// Maps an IR `BinOp` to either an ALU op or a comparison.
fn classify_binop(op: BinOp) -> Result<AluOp, CmpOp> {
    match op {
        BinOp::Add => Ok(AluOp::Add),
        BinOp::Sub => Ok(AluOp::Sub),
        BinOp::Mul => Ok(AluOp::Mul),
        BinOp::Div => Ok(AluOp::Div),
        BinOp::Mod => Ok(AluOp::Mod),
        BinOp::And => Ok(AluOp::And),
        BinOp::Or => Ok(AluOp::Or),
        BinOp::Xor => Ok(AluOp::Xor),
        BinOp::Shl => Ok(AluOp::Shl),
        BinOp::Shr => Ok(AluOp::Shr),
        BinOp::Eq => Err(CmpOp::Eq),
        BinOp::Ne => Err(CmpOp::Ne),
        BinOp::Lt => Err(CmpOp::Lt),
        BinOp::Le => Err(CmpOp::Le),
        BinOp::Gt => Err(CmpOp::Gt),
        BinOp::Ge => Err(CmpOp::Ge),
        BinOp::LogAnd | BinOp::LogOr => {
            unreachable!("logical operators are lowered to control flow")
        }
    }
}

/// Expands operations the target lacks: `%` into `a - (a/b)*b` when there
/// is no hardware remainder, and unary negate into `0 - x`.
pub fn expand_missing_ops(f: &mut IrFunction, arch: Arch) {
    if arch.has_mod() && arch.has_neg() {
        return;
    }
    for bi in 0..f.blocks.len() {
        let mut out = Vec::with_capacity(f.blocks[bi].insts.len());
        let insts = std::mem::take(&mut f.blocks[bi].insts);
        for inst in insts {
            match inst {
                Inst::Bin(BinOp::Mod, d, a, b) if !arch.has_mod() => {
                    let t1 = f.new_vreg();
                    let t2 = f.new_vreg();
                    out.push(Inst::Bin(BinOp::Div, t1, a, b));
                    out.push(Inst::Bin(BinOp::Mul, t2, t1, b));
                    out.push(Inst::Bin(BinOp::Sub, d, a, t2));
                }
                Inst::Un(asteria_lang::UnOp::Neg, d, a) if !arch.has_neg() => {
                    let z = f.new_vreg();
                    out.push(Inst::Const(z, 0));
                    out.push(Inst::Bin(BinOp::Sub, d, z, a));
                }
                other => out.push(other),
            }
        }
        f.blocks[bi].insts = out;
    }
}

/// Maximum number of instructions in an arm for if-conversion to fire.
const IF_CONVERT_LIMIT: usize = 4;

fn is_pure(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::Const(_, _)
            | Inst::Str(_, _)
            | Inst::Bin(_, _, _, _)
            | Inst::Un(_, _, _)
            | Inst::LoadLocal(_, _)
            | Inst::LoadGlobal(_, _)
            | Inst::LoadElem(_, _, _)
            | Inst::Select(_, _, _, _)
    )
}

/// A candidate if-conversion arm: pure instructions followed by a single
/// store to a scalar local, then a jump.
fn arm_pattern(f: &IrFunction, b: BlockId) -> Option<(Vec<Inst>, LocalId, VReg, BlockId)> {
    let block = f.block(b);
    let join = match block.term {
        Term::Jmp(j) => j,
        _ => return None,
    };
    let (last, body) = block.insts.split_last()?;
    if body.len() > IF_CONVERT_LIMIT || !body.iter().all(is_pure) {
        return None;
    }
    match last {
        Inst::StoreLocal(l, v) => Some((body.to_vec(), *l, *v, join)),
        _ => None,
    }
}

/// If-conversion: rewrites diamond (and triangle) patterns whose arms are a
/// single scalar store into straight-line code ending in [`Inst::Select`].
///
/// Only the ARM backend runs this pass; it is the mechanism by which ARM
/// binaries end up with fewer basic blocks than x86 binaries for the same
/// source, while their decompiled ASTs stay nearly identical.
pub fn if_convert(f: &mut IrFunction) {
    loop {
        let mut applied = false;
        'scan: for bi in 0..f.blocks.len() {
            let (cond, t, e) = match f.blocks[bi].term {
                Term::Br(c, t, e) if t != e => (c, t, e),
                _ => continue,
            };
            if t.0 as usize == bi || e.0 as usize == bi {
                continue;
            }
            // Full diamond: both arms store the same local and join.
            if let (Some((t_body, tl, tv, tj)), Some((e_body, el, ev, ej))) =
                (arm_pattern(f, t), arm_pattern(f, e))
            {
                if tl == el && tj == ej && tj != t && tj != e {
                    let d = f.new_vreg();
                    let block = f.block_mut(BlockId(bi as u32));
                    block.insts.extend(t_body);
                    block.insts.extend(e_body);
                    block.insts.push(Inst::Select(d, cond, tv, ev));
                    block.insts.push(Inst::StoreLocal(tl, d));
                    block.term = Term::Jmp(tj);
                    applied = true;
                    break 'scan;
                }
            }
            // Triangle: then-arm stores, else edge goes straight to join.
            if let Some((t_body, tl, tv, tj)) = arm_pattern(f, t) {
                if tj == e && tj != t {
                    let old = f.new_vreg();
                    let d = f.new_vreg();
                    let block = f.block_mut(BlockId(bi as u32));
                    block.insts.push(Inst::LoadLocal(old, tl));
                    block.insts.extend(t_body);
                    block.insts.push(Inst::Select(d, cond, tv, old));
                    block.insts.push(Inst::StoreLocal(tl, d));
                    block.term = Term::Jmp(tj);
                    applied = true;
                    break 'scan;
                }
            }
        }
        if !applied {
            break;
        }
        crate::opt::remove_unreachable(f);
    }
    debug_assert_eq!(f.validate(), Ok(()));
}

struct FrameLayout {
    local_slot: Vec<u32>,
    local_len: Vec<u32>,
    vreg_base: u32,
    size: u32,
}

fn layout_frame(f: &IrFunction) -> FrameLayout {
    let mut local_slot = Vec::with_capacity(f.locals.len());
    let mut local_len = Vec::with_capacity(f.locals.len());
    let mut next = 0u32;
    for l in &f.locals {
        local_slot.push(next);
        match &l.kind {
            LocalKind::Scalar => {
                local_len.push(1);
                next += 1;
            }
            LocalKind::Array(n) => {
                local_len.push(*n as u32);
                next += *n as u32;
            }
        }
    }
    let vreg_base = next;
    FrameLayout {
        local_slot,
        local_len,
        vreg_base,
        size: vreg_base + f.vreg_count,
    }
}

/// Code-generation options.
#[derive(Debug, Clone, Copy)]
pub struct CodegenOptions {
    /// Run the per-architecture character passes (if-conversion, loop
    /// rotation, strength reduction). Disabled at `-O0`.
    pub arch_character: bool,
}

impl Default for CodegenOptions {
    fn default() -> Self {
        CodegenOptions {
            arch_character: true,
        }
    }
}

/// Generates machine code for one IR function with default options.
///
/// `sym_index` resolves callee names to symbol-table indices; the SBF
/// builder passes an interning closure.
pub fn codegen_function(
    ir: &IrFunction,
    arch: Arch,
    sym_index: &mut dyn FnMut(&str) -> u32,
) -> MachFunction {
    codegen_function_with(ir, arch, CodegenOptions::default(), sym_index)
}

/// Generates machine code for one IR function.
pub fn codegen_function_with(
    ir: &IrFunction,
    arch: Arch,
    options: CodegenOptions,
    sym_index: &mut dyn FnMut(&str) -> u32,
) -> MachFunction {
    let mut f = ir.clone();
    expand_missing_ops(&mut f, arch);
    // Per-architecture optimization character (mirrors how real toolchain
    // cost models diverge per target): x64/PPC invert loops, the RISC
    // targets strength-reduce multiplications, ARM if-converts.
    if options.arch_character && matches!(arch, Arch::X64 | Arch::Ppc) {
        crate::opt::rotate_loops(&mut f);
    }
    if options.arch_character && arch.is_three_address() {
        crate::opt::strength_reduce(&mut f);
    }
    if options.arch_character && arch.has_csel() {
        if_convert(&mut f);
    }
    let layout = layout_frame(&f);
    let [s0, s1, s2] = arch.scratch_regs();

    let vslot = |v: VReg| Mem::Frame(layout.vreg_base + v.0);
    let lslot = |l: LocalId| layout.local_slot[l.0 as usize];

    let mut insts: Vec<MInst> = Vec::new();
    // Prologue: copy incoming arguments into their frame slots.
    let arg_regs = arch.arg_regs();
    for i in 0..f.param_count {
        let dst = Mem::Frame(layout.local_slot[i]);
        if i < arg_regs.len() {
            insts.push(MInst::Store(dst, arg_regs[i]));
        } else {
            let stack_index = (i - arg_regs.len()) as u32;
            insts.push(MInst::Load(s0, Mem::Arg(stack_index)));
            insts.push(MInst::Store(dst, s0));
        }
    }

    // Emit blocks in order; record start indices for branch fixup.
    let mut block_start: Vec<u32> = Vec::with_capacity(f.blocks.len());
    // Branch targets temporarily hold block ids; fixed up below.
    for (bi, block) in f.blocks.iter().enumerate() {
        block_start.push(insts.len() as u32);
        for inst in &block.insts {
            match inst {
                Inst::Const(d, v) => {
                    insts.push(MInst::MovImm(s0, *v));
                    insts.push(MInst::Store(vslot(*d), s0));
                }
                Inst::Str(d, sid) => {
                    insts.push(MInst::LoadStr(s0, sid.0));
                    insts.push(MInst::Store(vslot(*d), s0));
                }
                Inst::Bin(op, d, a, b) => {
                    match classify_binop(*op) {
                        Ok(alu) => {
                            insts.push(MInst::Load(s0, vslot(*a)));
                            if arch.has_mem_operands() {
                                insts.push(MInst::Alu2Mem(alu, s0, vslot(*b)));
                            } else if arch.is_three_address() {
                                insts.push(MInst::Load(s1, vslot(*b)));
                                insts.push(MInst::Alu3(alu, s0, s0, s1));
                            } else {
                                insts.push(MInst::Load(s1, vslot(*b)));
                                insts.push(MInst::Alu2(alu, s0, s1));
                            }
                        }
                        Err(cc) => {
                            insts.push(MInst::Load(s0, vslot(*a)));
                            insts.push(MInst::Load(s1, vslot(*b)));
                            insts.push(MInst::SetCc(cc, s0, s0, s1));
                        }
                    }
                    insts.push(MInst::Store(vslot(*d), s0));
                }
                Inst::Un(op, d, a) => {
                    insts.push(MInst::Load(s0, vslot(*a)));
                    insts.push(MInst::UnAlu(
                        match op {
                            asteria_lang::UnOp::Neg => crate::isa::UnAluOp::Neg,
                            asteria_lang::UnOp::Not => crate::isa::UnAluOp::Not,
                            asteria_lang::UnOp::BitNot => crate::isa::UnAluOp::BitNot,
                        },
                        s0,
                        s0,
                    ));
                    insts.push(MInst::Store(vslot(*d), s0));
                }
                Inst::LoadLocal(d, l) => {
                    insts.push(MInst::Load(s0, Mem::Frame(lslot(*l))));
                    insts.push(MInst::Store(vslot(*d), s0));
                }
                Inst::StoreLocal(l, v) => {
                    insts.push(MInst::Load(s0, vslot(*v)));
                    insts.push(MInst::Store(Mem::Frame(lslot(*l)), s0));
                }
                Inst::LoadGlobal(d, g) => {
                    insts.push(MInst::Load(s0, Mem::Global(g.0)));
                    insts.push(MInst::Store(vslot(*d), s0));
                }
                Inst::StoreGlobal(g, v) => {
                    insts.push(MInst::Load(s0, vslot(*v)));
                    insts.push(MInst::Store(Mem::Global(g.0), s0));
                }
                Inst::LoadElem(d, l, idx) => {
                    insts.push(MInst::Load(s1, vslot(*idx)));
                    insts.push(MInst::LoadIdx {
                        rd: s0,
                        base: lslot(*l),
                        idx: s1,
                        len: layout.local_len[l.0 as usize],
                    });
                    insts.push(MInst::Store(vslot(*d), s0));
                }
                Inst::StoreElem(l, idx, v) => {
                    insts.push(MInst::Load(s1, vslot(*idx)));
                    insts.push(MInst::Load(s2, vslot(*v)));
                    insts.push(MInst::StoreIdx {
                        rs: s2,
                        base: lslot(*l),
                        idx: s1,
                        len: layout.local_len[l.0 as usize],
                    });
                }
                Inst::Call(d, name, args) => {
                    let sym = sym_index(name);
                    if arg_regs.is_empty() {
                        // Stack convention: push right-to-left.
                        for a in args.iter().rev() {
                            insts.push(MInst::Load(s0, vslot(*a)));
                            insts.push(MInst::Push(s0));
                        }
                    } else {
                        for (i, a) in args.iter().enumerate() {
                            if i < arg_regs.len() {
                                insts.push(MInst::Load(arg_regs[i], vslot(*a)));
                            } else {
                                insts.push(MInst::Load(s0, vslot(*a)));
                                insts.push(MInst::Push(s0));
                            }
                        }
                    }
                    insts.push(MInst::Call {
                        sym,
                        argc: args.len() as u8,
                    });
                    insts.push(MInst::Store(vslot(*d), Reg(0)));
                }
                Inst::Select(d, c, a, b) => {
                    insts.push(MInst::Load(s0, vslot(*c)));
                    insts.push(MInst::Load(s1, vslot(*a)));
                    insts.push(MInst::Load(s2, vslot(*b)));
                    insts.push(MInst::CSel {
                        rd: s1,
                        rc: s0,
                        ra: s1,
                        rb: s2,
                    });
                    insts.push(MInst::Store(vslot(*d), s1));
                }
            }
        }
        match &block.term {
            Term::Jmp(t) => {
                if t.0 as usize != bi + 1 {
                    insts.push(MInst::Jmp(t.0));
                }
            }
            Term::Br(c, t, e) => {
                insts.push(MInst::Load(s0, vslot(*c)));
                insts.push(MInst::Brnz(s0, t.0));
                if e.0 as usize != bi + 1 {
                    insts.push(MInst::Jmp(e.0));
                }
            }
            Term::Ret(Some(r)) => {
                insts.push(MInst::Load(Reg(0), vslot(*r)));
                insts.push(MInst::Ret);
            }
            Term::Ret(None) => {
                insts.push(MInst::MovImm(Reg(0), 0));
                insts.push(MInst::Ret);
            }
        }
    }

    // Fixup: block-id targets → instruction indices.
    for inst in &mut insts {
        match inst {
            MInst::Jmp(t) | MInst::Brnz(_, t) => *t = block_start[*t as usize],
            _ => {}
        }
    }

    MachFunction {
        name: f.name.clone(),
        param_count: f.param_count,
        insts,
        frame_size: layout.size.max(1),
    }
}

/// Builds a per-block view of machine code: instruction index ranges of the
/// basic blocks implied by branch targets. Shared by the VM (for sanity
/// checks) and, more importantly, by the disassembler-side CFG recovery.
pub fn block_boundaries(insts: &[MInst]) -> Vec<u32> {
    let mut leaders: Vec<u32> = vec![0];
    for (i, inst) in insts.iter().enumerate() {
        if let Some(t) = inst.branch_target() {
            leaders.push(t);
        }
        if inst.is_branch() && i + 1 < insts.len() {
            leaders.push(i as u32 + 1);
        }
    }
    leaders.sort_unstable();
    leaders.dedup();
    leaders
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use crate::opt::optimize_function;
    use asteria_lang::parse;

    fn gen(src: &str, arch: Arch) -> MachFunction {
        let ir = lower_program(&parse(src).unwrap()).unwrap();
        let mut f = ir.functions.into_iter().next().unwrap();
        optimize_function(&mut f);
        let mut syms: Vec<String> = Vec::new();
        codegen_function(&f, arch, &mut |name| {
            if let Some(i) = syms.iter().position(|s| s == name) {
                i as u32
            } else {
                syms.push(name.to_string());
                syms.len() as u32 - 1
            }
        })
    }

    const DIAMOND: &str =
        "int f(int a) { int x = 0; if (a > 0) { x = 1; } else { x = 2; } return x; }";

    #[test]
    fn arm_if_converts_diamond_to_single_block() {
        let arm = gen(DIAMOND, Arch::Arm);
        assert!(
            arm.insts.iter().any(|i| matches!(i, MInst::CSel { .. })),
            "expected a conditional select on ARM"
        );
        assert!(!arm.insts.iter().any(|i| matches!(i, MInst::Brnz(_, _))));
        let x86 = gen(DIAMOND, Arch::X86);
        assert!(x86.insts.iter().any(|i| matches!(i, MInst::Brnz(_, _))));
        // ARM ends up with fewer basic blocks than x86 (Fig. 2 shape).
        assert!(block_boundaries(&arm.insts).len() < block_boundaries(&x86.insts).len());
    }

    #[test]
    fn x86_uses_memory_operands_x64_does_not() {
        let src = "int f(int a, int b) { return a * b + a; }";
        let x86 = gen(src, Arch::X86);
        let x64 = gen(src, Arch::X64);
        assert!(x86
            .insts
            .iter()
            .any(|i| matches!(i, MInst::Alu2Mem(_, _, _))));
        assert!(!x64
            .insts
            .iter()
            .any(|i| matches!(i, MInst::Alu2Mem(_, _, _))));
        assert!(x64.insts.iter().any(|i| matches!(i, MInst::Alu2(_, _, _))));
    }

    #[test]
    fn ppc_expands_mod_and_neg() {
        let src = "int f(int a, int b) { return (a % b) + (-a); }";
        let ppc = gen(src, Arch::Ppc);
        assert!(!ppc
            .insts
            .iter()
            .any(|i| matches!(i, MInst::Alu3(AluOp::Mod, _, _, _))));
        assert!(!ppc
            .insts
            .iter()
            .any(|i| matches!(i, MInst::UnAlu(crate::isa::UnAluOp::Neg, _, _))));
        let arm = gen(src, Arch::Arm);
        assert!(arm
            .insts
            .iter()
            .any(|i| matches!(i, MInst::Alu3(AluOp::Mod, _, _, _))));
        // Expansion makes PPC code longer.
        assert!(ppc.insts.len() > arm.insts.len());
    }

    #[test]
    fn x86_pushes_args_x64_uses_registers() {
        let src = "int f(int a) { return helper(a, a, a); }";
        let x86 = gen(src, Arch::X86);
        let x64 = gen(src, Arch::X64);
        let pushes = |m: &MachFunction| {
            m.insts
                .iter()
                .filter(|i| matches!(i, MInst::Push(_)))
                .count()
        };
        assert_eq!(pushes(&x86), 3);
        assert_eq!(pushes(&x64), 0);
    }

    #[test]
    fn branch_targets_are_valid_instruction_indices() {
        let src = "int f(int n) { int s = 0; while (n > 0) { s += n; n--; } \
                   if (s > 100) { s = 100; } return s; }";
        for arch in Arch::ALL {
            let m = gen(src, arch);
            for inst in &m.insts {
                if let Some(t) = inst.branch_target() {
                    assert!(
                        (t as usize) < m.insts.len(),
                        "{arch}: branch target {t} out of range {}",
                        m.insts.len()
                    );
                }
            }
            // Last instruction must be a branch (no fallthrough off the end).
            assert!(
                m.insts.last().unwrap().is_branch(),
                "{arch}: code falls off the end"
            );
        }
    }

    #[test]
    fn triangle_if_converts_on_arm() {
        let src = "int f(int a) { int x = 5; if (a > 0) { x = 9; } return x; }";
        let arm = gen(src, Arch::Arm);
        assert!(arm.insts.iter().any(|i| matches!(i, MInst::CSel { .. })));
    }

    #[test]
    fn call_heavy_arms_are_not_if_converted() {
        let src = "int f(int a) { int x = 0; if (a) { x = ext1(a); } else { x = ext2(a); } \
                   return x; }";
        let arm = gen(src, Arch::Arm);
        assert!(
            arm.insts.iter().any(|i| matches!(i, MInst::Brnz(_, _))),
            "calls must not be speculated"
        );
    }

    #[test]
    fn frame_size_covers_locals_and_spills() {
        let src = "int f(int a) { int buf[8]; buf[0] = a; return buf[0] + a; }";
        for arch in Arch::ALL {
            let m = gen(src, arch);
            let max_frame = m
                .insts
                .iter()
                .filter_map(|i| match i {
                    MInst::Load(_, Mem::Frame(s)) | MInst::Store(Mem::Frame(s), _) => Some(*s),
                    MInst::Alu2Mem(_, _, Mem::Frame(s)) => Some(*s),
                    MInst::LoadIdx { base, len, .. } | MInst::StoreIdx { base, len, .. } => {
                        Some(base + len - 1)
                    }
                    _ => None,
                })
                .max()
                .unwrap_or(0);
            assert!(
                max_frame < m.frame_size,
                "{arch}: slot {max_frame} >= {}",
                m.frame_size
            );
        }
    }
}
